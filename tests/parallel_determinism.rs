//! Determinism of the parallel harness: rendered experiment output with
//! `jobs = 4` must be byte-identical to a serial (`jobs = 1`) run, across
//! multiple workloads and annotation thresholds.
//!
//! This is the contract that makes `--jobs=N` safe to use for paper
//! reproduction: parallelism may only change wall-clock time, never a
//! single output byte.

use provp::core::experiments::{classification, fig_2_2, table_2_1, table_5_2};
use provp::core::Suite;
use provp::workloads::WorkloadKind;

const KINDS: [WorkloadKind; 2] = [WorkloadKind::Compress, WorkloadKind::M88ksim];

/// Renders a composite report the way `repro-all` does, on a grid that
/// spans 2 workloads and the full 5-point threshold sweep (90%..50%).
fn render_all(jobs: usize) -> String {
    let suite = Suite::with_train_runs(2).with_jobs(jobs);
    let mut out = String::new();
    out.push_str(&table_2_1::run(&suite, &KINDS, &[]).render());
    out.push('\n');
    out.push_str(&fig_2_2::run(&suite, &KINDS).render());
    out.push('\n');
    let cls = classification::run(&suite, &KINDS);
    out.push_str(&cls.render(classification::Which::Mispredictions));
    out.push('\n');
    out.push_str(&cls.render(classification::Which::CorrectPredictions));
    out.push('\n');
    out.push_str(&table_5_2::run(&suite, &KINDS).render());
    out
}

#[test]
fn jobs_4_output_is_byte_identical_to_serial() {
    let serial = render_all(1);
    let parallel = render_all(4);
    assert!(!serial.is_empty());
    assert_eq!(
        serial.as_bytes(),
        parallel.as_bytes(),
        "parallel output diverged from serial output"
    );
}

#[test]
fn repeated_parallel_runs_are_self_consistent() {
    // Two independent 4-job runs (fresh suites, fresh trace stores) must
    // agree with each other too — determinism is absolute, not merely
    // relative to one serial reference.
    assert_eq!(render_all(4).as_bytes(), render_all(4).as_bytes());
}
