//! Integration: workload programs survive binary encoding, and the decoded
//! binary behaves identically under simulation.

use provp::isa::encode::{decode_text, encode_text};
use provp::isa::Program;
use provp::sim::{run, InstrMix, RunLimits};
use provp::workloads::{InputSet, Workload, WorkloadKind};

#[test]
fn every_workload_encodes_and_decodes_losslessly() {
    for kind in WorkloadKind::ALL {
        let program = Workload::new(kind).program(&InputSet::train(0));
        let words =
            encode_text(program.text()).unwrap_or_else(|e| panic!("{kind}: encode failed: {e}"));
        let decoded = decode_text(&words).unwrap_or_else(|e| panic!("{kind}: decode failed: {e}"));
        assert_eq!(decoded, program.text(), "{kind}");
    }
}

#[test]
fn decoded_binary_executes_identically() {
    let kind = WorkloadKind::M88ksim;
    let original = Workload::new(kind).program(&InputSet::train(1));
    let words = encode_text(original.text()).unwrap();
    let reloaded = Program::new(
        original.name(),
        decode_text(&words).unwrap(),
        original.data().to_vec(),
    );

    let mut mix_a = InstrMix::new();
    let mut mix_b = InstrMix::new();
    let a = run(&original, &mut mix_a, RunLimits::default()).unwrap();
    let b = run(&reloaded, &mut mix_b, RunLimits::default()).unwrap();
    assert_eq!(a.instructions(), b.instructions());
    assert_eq!(mix_a, mix_b);
}

#[test]
fn annotated_binaries_round_trip_their_directives() {
    use provp::compiler::{annotate, ThresholdPolicy};
    use provp::profile::ProfileCollector;

    let program = Workload::new(WorkloadKind::Compress).program(&InputSet::train(0));
    let mut collector = ProfileCollector::new("t");
    run(&program, &mut collector, RunLimits::default()).unwrap();
    let annotated = annotate(
        &program,
        &collector.into_image(),
        &ThresholdPolicy::new(0.6),
    );

    let words = encode_text(annotated.program().text()).unwrap();
    let decoded = decode_text(&words).unwrap();
    let (none, lv, st) = annotated.program().directive_counts();
    let decoded_counts = Program::new("x", decoded, vec![]).directive_counts();
    assert_eq!((none, lv, st), decoded_counts);
    assert!(lv + st > 0, "something must be tagged at 60%");
}
