//! End-to-end integration: the three-phase methodology across crates.

use provp::compiler::ThresholdPolicy;
use provp::core::pipeline::{PipelineConfig, ProfileGuidedPipeline};
use provp::isa::encode::text_delta;
use provp::sim::{run, FnTracer, Retirement, RunLimits};
use provp::workloads::{InputSet, Workload, WorkloadKind};

/// Folds a retirement stream into an order-sensitive checksum of
/// (address, destination value) pairs.
fn trace_checksum(program: &provp::isa::Program) -> (u64, u64) {
    let mut checksum = 0u64;
    let mut count = 0u64;
    {
        let mut t = FnTracer::new(|ev: &Retirement<'_>| {
            count += 1;
            if let Some((_, _, v)) = ev.dest {
                checksum = checksum
                    .wrapping_mul(0x100_0000_01b3)
                    .wrapping_add(u64::from(ev.addr.index()))
                    .wrapping_add(v.rotate_left(17));
            }
        });
        run(program, &mut t, RunLimits::default()).expect("program runs");
    }
    (checksum, count)
}

/// Directives are *hints*: phase 3 must never change what the program
/// computes, only how the hardware predicts it.
#[test]
fn annotation_preserves_architectural_semantics() {
    for kind in [
        WorkloadKind::Compress,
        WorkloadKind::Go,
        WorkloadKind::Mgrid,
    ] {
        let workload = Workload::new(kind);
        let pipeline = ProfileGuidedPipeline::new(PipelineConfig {
            train_runs: 2,
            policy: ThresholdPolicy::new(0.7),
            limits: RunLimits::default(),
        });
        let outcome = pipeline.run(&workload).unwrap();

        // Evaluate on the reference input with and without directives.
        let bare = workload.program(&InputSet::reference());
        let tagged = bare.with_directives(|addr, _| {
            outcome.annotated.program().text()[addr.index() as usize].directive
        });
        assert_ne!(bare.directive_counts(), tagged.directive_counts(), "{kind}");
        assert_eq!(
            trace_checksum(&bare),
            trace_checksum(&tagged),
            "{kind}: semantics changed"
        );
    }
}

/// Phase 3 touches only the two directive bits of the encoded words.
#[test]
fn annotation_is_a_directive_bit_patch() {
    let workload = Workload::new(WorkloadKind::Perl);
    let pipeline = ProfileGuidedPipeline::new(PipelineConfig {
        train_runs: 2,
        policy: ThresholdPolicy::new(0.5),
        limits: RunLimits::default(),
    });
    let outcome = pipeline.run(&workload).unwrap();
    let base = workload.program(&InputSet::train(0));
    let deltas = text_delta(&base, outcome.annotated.program()).unwrap();
    assert!(
        !deltas.is_empty(),
        "the pass must tag something at a 50% threshold"
    );
    assert!(deltas.iter().all(|d| d.directive_only));
}

/// Training profiles predict evaluation behaviour: an instruction tagged
/// from training inputs should predict well on the reference input too
/// (the transfer property Section 4 establishes).
#[test]
fn training_classification_transfers_to_reference_input() {
    use provp::core::PredictorTracer;
    use provp::predictor::PredictorConfig;

    let workload = Workload::new(WorkloadKind::Ijpeg);
    let pipeline = ProfileGuidedPipeline::new(PipelineConfig {
        train_runs: 3,
        policy: ThresholdPolicy::new(0.9),
        limits: RunLimits::default(),
    });
    let outcome = pipeline.run(&workload).unwrap();
    let reference = workload
        .program(&InputSet::reference())
        .with_directives(|addr, _| {
            outcome.annotated.program().text()[addr.index() as usize].directive
        });

    let mut tracer = PredictorTracer::new(PredictorConfig::spec_table_stride_profile().build());
    run(&reference, &mut tracer, RunLimits::default()).unwrap();
    let stats = tracer.into_stats();
    assert!(
        stats.effective_accuracy() > 0.85,
        "instructions tagged at a 90% training threshold should stay accurate \
         on unseen inputs, got {:.1}%",
        100.0 * stats.effective_accuracy()
    );
}
