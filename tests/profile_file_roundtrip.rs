//! Integration: the profile-image file format carries real profiles
//! losslessly between the phases, and multi-run merging follows the
//! paper's intersection rule.

use provp::profile::{format, merge, ProfileCollector};
use provp::sim::{run, RunLimits};
use provp::workloads::{InputSet, Workload, WorkloadKind};

fn image_of(kind: WorkloadKind, input: &InputSet) -> provp::profile::ProfileImage {
    let w = Workload::new(kind);
    let mut c = ProfileCollector::new(format!("{}/{input}", w.name()));
    run(&w.program(input), &mut c, RunLimits::default()).unwrap();
    c.into_image()
}

#[test]
fn real_profiles_survive_the_text_format() {
    for kind in [WorkloadKind::Gcc, WorkloadKind::Mgrid] {
        let image = image_of(kind, &InputSet::train(0));
        let text = format::to_text(&image);
        let parsed = format::from_text(&text).unwrap_or_else(|e| panic!("{kind}: {e}"));
        assert_eq!(parsed, image, "{kind}");
        // And the paper-style rendering mentions every address.
        let table = format::to_paper_table(&image);
        assert_eq!(table.lines().count(), image.len() + 1, "{kind}");
    }
}

#[test]
fn multi_run_merge_intersects_and_sums() {
    let images: Vec<_> = InputSet::train_set(3)
        .iter()
        .map(|i| image_of(WorkloadKind::Li, i))
        .collect();
    let merged = merge::intersect_and_sum(&images);
    // Every merged record's executions are the sum over runs.
    for (addr, rec) in merged.image.iter().take(50) {
        let expected: u64 = images.iter().map(|img| img.get(addr).unwrap().execs).sum();
        assert_eq!(rec.execs, expected, "{addr}");
    }
    // The intersection loses at most a few input-dependent instructions.
    let max_len = images.iter().map(|i| i.len()).max().unwrap();
    assert!(
        merged.image.len() + 10 >= max_len,
        "{} vs {max_len}",
        merged.image.len()
    );
}

#[test]
fn accuracy_is_consistent_between_runs_of_the_same_input() {
    // Determinism end-to-end: identical input -> identical image.
    let a = image_of(WorkloadKind::Vortex, &InputSet::train(2));
    let b = image_of(WorkloadKind::Vortex, &InputSet::train(2));
    assert_eq!(a, b);
}
