//! Integration: every experiment runner executes end-to-end through the
//! public API and produces the paper's qualitative shapes on a compact
//! workload subset.

use provp::core::experiments::{
    classification, fig_2_2, fig_2_3, fig_4, finite_table, table_2_1, table_5_1, table_5_2,
};
use provp::core::Suite;
use provp::workloads::WorkloadKind;

const KINDS: [WorkloadKind; 3] = [
    WorkloadKind::M88ksim,
    WorkloadKind::Compress,
    WorkloadKind::Ijpeg,
];

#[test]
fn every_experiment_runs_and_renders() {
    let suite = Suite::with_train_runs(2);

    let t21 = table_2_1::run(&suite, &KINDS, &[WorkloadKind::Mgrid]);
    assert!(t21.render().contains("Table 2.1"));

    let f22 = fig_2_2::run(&suite, &KINDS);
    assert!(f22.render().contains("Figure 2.2"));
    assert_eq!(f22.rows.len(), KINDS.len());

    let f23 = fig_2_3::run(&suite, &KINDS);
    assert!(f23.render().contains("Figure 2.3"));

    let f4 = fig_4::run(&suite, &KINDS);
    for which in [
        fig_4::Which::VMax,
        fig_4::Which::VAverage,
        fig_4::Which::SAverage,
    ] {
        assert!(!f4.render(which).is_empty());
    }

    let cls = classification::run(&suite, &KINDS);
    assert!(cls
        .render(classification::Which::Mispredictions)
        .contains("FSM"));

    let t51 = table_5_1::run(&suite, &KINDS);
    assert_eq!(t51.averages().len(), 5);

    let ft = finite_table::run(&suite, &KINDS);
    assert!(ft.render(finite_table::Which::Correct).contains("th=90%"));

    let t52 = table_5_2::run(&suite, &KINDS);
    assert!(t52.render().contains("VP+SC"));
}

#[test]
fn headline_shapes_hold_on_the_subset() {
    let suite = Suite::with_train_runs(2);

    // Figure 4: profiling information transfers across inputs.
    let f4 = fig_4::run(&suite, &KINDS);
    for row in &f4.rows {
        assert!(
            row.v_avg.low_mass(2) > 0.6,
            "{}: M(V)avg not concentrated low: {:?}",
            row.kind,
            row.v_avg
        );
    }

    // Table 5.1: admission tightens with the threshold.
    let t51 = table_5_1::run(&suite, &KINDS);
    let avg = t51.averages();
    assert!(avg[0] <= avg[4] + 1e-9, "{avg:?}");

    // Table 5.2: the predictable-chain interpreter dwarfs the hash loop.
    let t52 = table_5_2::run(&suite, &[WorkloadKind::M88ksim, WorkloadKind::Compress]);
    assert!(t52.rows[0].fsm_increase() > 5.0 * t52.rows[1].fsm_increase().max(1.0));
}
