//! Golden-output regression suite.
//!
//! Renders every experiment on a compact, fully deterministic subset
//! (2 training runs, `compress` + `ijpeg` + the `mgrid` FP phases) and
//! compares the output byte-for-byte against snapshots under
//! `tests/golden/`. Any change to the simulator, the profile pipeline,
//! the predictors, the ILP machine, the workload generators or the table
//! renderers shows up here as a loud, line-attributed diff.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_repro
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

use provp::core::experiments::{
    ablations, classification, fig_2_2, fig_2_3, fig_4, finite_table, table_2_1, table_5_1,
    table_5_2,
};
use provp::core::Suite;
use provp::workloads::WorkloadKind;

const KINDS: [WorkloadKind; 2] = [WorkloadKind::Compress, WorkloadKind::Ijpeg];
const FP_KINDS: [WorkloadKind; 1] = [WorkloadKind::Mgrid];
const TRAIN_RUNS: u32 = 2;

fn suite() -> &'static Suite {
    static SUITE: OnceLock<Suite> = OnceLock::new();
    SUITE.get_or_init(|| Suite::with_train_runs(TRAIN_RUNS))
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

/// Compares `rendered` against the named snapshot, or rewrites the
/// snapshot when `UPDATE_GOLDEN` is set.
fn check(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        fs::write(&path, rendered).expect("write golden snapshot");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden snapshot {path:?}\n\
             run `UPDATE_GOLDEN=1 cargo test --test golden_repro` to create it"
        )
    });
    if expected != rendered {
        panic!("{}", diff_report(name, &expected, rendered));
    }
}

/// A line-by-line report of where the output diverged from the snapshot.
fn diff_report(name: &str, expected: &str, actual: &str) -> String {
    let mut out = format!(
        "golden-output mismatch for `{name}` ({} expected lines, {} actual)\n\
         if the change is intentional, regenerate with \
         `UPDATE_GOLDEN=1 cargo test --test golden_repro`\n",
        expected.lines().count(),
        actual.lines().count()
    );
    let mut shown = 0;
    for (i, (e, a)) in expected
        .lines()
        .map(Some)
        .chain(std::iter::repeat(None))
        .zip(actual.lines().map(Some).chain(std::iter::repeat(None)))
        .take_while(|(e, a)| e.is_some() || a.is_some())
        .enumerate()
    {
        if e != a {
            let _ = writeln!(
                out,
                "  line {:>3} expected: {}",
                i + 1,
                e.unwrap_or("<eof>")
            );
            let _ = writeln!(
                out,
                "  line {:>3} actual:   {}",
                i + 1,
                a.unwrap_or("<eof>")
            );
            shown += 1;
            if shown >= 8 {
                out.push_str("  ... (further differences elided)\n");
                break;
            }
        }
    }
    out
}

#[test]
fn golden_table_2_1() {
    check(
        "table_2_1",
        &table_2_1::run(suite(), &KINDS, &FP_KINDS).render(),
    );
}

#[test]
fn golden_fig_2_2() {
    check("fig_2_2", &fig_2_2::run(suite(), &KINDS).render());
}

#[test]
fn golden_fig_2_3() {
    check("fig_2_3", &fig_2_3::run(suite(), &KINDS).render());
}

#[test]
fn golden_fig_4() {
    let f4 = fig_4::run(suite(), &KINDS);
    let mut out = String::new();
    for which in [
        fig_4::Which::VMax,
        fig_4::Which::VAverage,
        fig_4::Which::SAverage,
    ] {
        out.push_str(&f4.render(which));
        out.push('\n');
    }
    check("fig_4", &out);
}

#[test]
fn golden_classification() {
    let cls = classification::run(suite(), &KINDS);
    let mut out = String::new();
    out.push_str(&cls.render(classification::Which::Mispredictions));
    out.push('\n');
    out.push_str(&cls.render(classification::Which::CorrectPredictions));
    check("classification", &out);
}

#[test]
fn golden_table_5_1() {
    check("table_5_1", &table_5_1::run(suite(), &KINDS).render());
}

#[test]
fn golden_finite_table() {
    let ft = finite_table::run(suite(), &KINDS);
    let mut out = String::new();
    out.push_str(&ft.render(finite_table::Which::Correct));
    out.push('\n');
    out.push_str(&ft.render(finite_table::Which::Incorrect));
    check("finite_table", &out);
}

#[test]
fn golden_table_5_2() {
    check("table_5_2", &table_5_2::run(suite(), &KINDS).render());
}

// The four sweep ablations below all replay through the fused matrix
// kernel (`provp_core::ReplayRequest`), so these snapshots pin the
// fused path's output byte-for-byte against the pre-fusion renders.

#[test]
fn golden_ablation_schemes() {
    let rows = ablations::schemes(suite(), &KINDS);
    check("ablation_schemes", &ablations::render_schemes(&rows));
}

#[test]
fn golden_ablation_geometry() {
    let kind = KINDS[0];
    let rows = ablations::geometry(suite(), kind, &[64, 128, 256, 512, 1024, 2048]);
    check(
        "ablation_geometry",
        &ablations::render_geometry(kind, &rows),
    );
}

#[test]
fn golden_ablation_hybrid() {
    let kind = KINDS[0];
    let rows = ablations::hybrid_split(suite(), kind, 512);
    check("ablation_hybrid", &ablations::render_hybrid(kind, &rows));
}

#[test]
fn golden_ablation_counters() {
    let kind = KINDS[0];
    let rows = ablations::counters(suite(), kind);
    check(
        "ablation_counters",
        &ablations::render_counters(kind, &rows),
    );
}

// Streaming is an execution strategy, never a result change: the same
// experiment through a bounded-memory streaming suite must render
// byte-identically to the batch suite (which `golden_classification`
// pins to the snapshot — equality here transitively pins the streamed
// stdout too, without racing UPDATE_GOLDEN over one file).
// Classification is the most replay-heavy experiment in the suite.
#[test]
fn golden_classification_streamed() {
    let streamed = Suite::with_train_runs(TRAIN_RUNS).with_streaming(4);
    let render = |s: &Suite| {
        let cls = classification::run(s, &KINDS);
        let mut out = String::new();
        out.push_str(&cls.render(classification::Which::Mispredictions));
        out.push('\n');
        out.push_str(&cls.render(classification::Which::CorrectPredictions));
        out
    };
    let (batch, streamed) = (render(suite()), render(&streamed));
    if batch != streamed {
        panic!(
            "{}",
            diff_report("classification (streamed)", &batch, &streamed)
        );
    }
}

#[test]
fn diff_report_is_loud_and_line_attributed() {
    let report = diff_report("demo", "a\nb\nc\n", "a\nX\nc\n");
    assert!(report.contains("golden-output mismatch for `demo`"));
    assert!(report.contains("line   2 expected: b"));
    assert!(report.contains("line   2 actual:   X"));
    assert!(report.contains("UPDATE_GOLDEN=1"));
}
