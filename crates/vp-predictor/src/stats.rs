//! Per-access outcomes and cumulative predictor statistics.

use std::fmt;

use vp_isa::Directive;

/// What the predictor hardware did for one dynamic value-producing
/// instruction.
///
/// Returned by [`crate::ValuePredictor::access`]. The distinction between
/// the *raw* prediction (what the table would have said) and the
/// *recommended* decision (what the classification mechanism allowed) is the
/// entire subject of the paper's Section 5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Access {
    /// A table entry for the instruction existed at access time.
    pub hit: bool,
    /// The raw predicted value, when an entry existed.
    pub predicted: Option<u64>,
    /// The classification mechanism recommended using the prediction.
    pub recommended: bool,
    /// The raw prediction matched the actual outcome.
    pub correct: bool,
    /// The raw prediction was driven by a non-zero stride.
    pub nonzero_stride: bool,
    /// A new table entry was allocated by this access.
    pub allocated: bool,
}

impl Access {
    /// The machine actually executed dependents on a predicted value:
    /// an entry existed *and* the classifier recommended it.
    #[must_use]
    pub fn speculated(self) -> bool {
        self.hit && self.recommended
    }

    /// Speculated and the value was right (a paper "correct prediction").
    #[must_use]
    pub fn speculated_correct(self) -> bool {
        self.speculated() && self.correct
    }

    /// Speculated and the value was wrong (a paper "misprediction",
    /// charged the misprediction penalty).
    #[must_use]
    pub fn speculated_incorrect(self) -> bool {
        self.speculated() && !self.correct
    }
}

/// Cumulative statistics over every access presented to a predictor.
///
/// A passive data structure: fields are public, derived ratios are methods.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictorStats {
    /// Dynamic value-producing instructions presented.
    pub accesses: u64,
    /// Accesses that found an entry.
    pub hits: u64,
    /// New entries allocated.
    pub allocations: u64,
    /// Entries evicted by LRU replacement.
    pub evictions: u64,
    /// Raw predictions that matched the actual value.
    pub raw_correct: u64,
    /// Raw-correct accesses the classifier also recommended
    /// (numerator of the paper's Figure 5.2).
    pub raw_correct_recommended: u64,
    /// Raw-incorrect accesses the classifier suppressed
    /// (numerator of the paper's Figure 5.1).
    pub raw_incorrect_suppressed: u64,
    /// Accesses where a prediction was actually used.
    pub speculated: u64,
    /// Used predictions that were correct (Figure 5.3's quantity).
    pub speculated_correct: u64,
    /// Correct raw predictions driven by a non-zero stride.
    pub nonzero_stride_correct: u64,
    /// Accesses whose profile directive classified them stride-predictable.
    pub stride_accesses: u64,
    /// Raw-correct accesses among the stride-classified ones.
    pub stride_correct: u64,
    /// Accesses whose directive classified them last-value-predictable.
    pub last_value_accesses: u64,
    /// Raw-correct accesses among the last-value-classified ones.
    pub last_value_correct: u64,
    /// Accesses carrying no predictability directive.
    pub unclassified_accesses: u64,
    /// Raw-correct accesses among the unclassified ones.
    pub unclassified_correct: u64,
    /// Set-index conflicts in the backing table (new keys landing in sets
    /// that already hold other tags); always zero for infinite predictors.
    pub set_conflicts: u64,
}

impl PredictorStats {
    /// An all-zero statistics block.
    #[must_use]
    pub fn new() -> Self {
        PredictorStats::default()
    }

    /// Folds one access outcome into the totals.
    pub fn record(&mut self, a: &Access) {
        self.accesses += 1;
        self.hits += u64::from(a.hit);
        self.allocations += u64::from(a.allocated);
        self.raw_correct += u64::from(a.correct);
        self.raw_correct_recommended += u64::from(a.correct && a.recommended);
        self.raw_incorrect_suppressed += u64::from(!a.correct && !a.recommended);
        self.speculated += u64::from(a.speculated());
        self.speculated_correct += u64::from(a.speculated_correct());
        self.nonzero_stride_correct += u64::from(a.correct && a.nonzero_stride);
    }

    /// Folds one access outcome into the totals, additionally attributing
    /// it to its profile-classification bucket (stride / last-value /
    /// unclassified) so per-class hit rates can be exported.
    pub fn record_classified(&mut self, directive: Directive, a: &Access) {
        self.record(a);
        let correct = u64::from(a.correct);
        match directive {
            Directive::Stride => {
                self.stride_accesses += 1;
                self.stride_correct += correct;
            }
            Directive::LastValue => {
                self.last_value_accesses += 1;
                self.last_value_correct += correct;
            }
            Directive::None => {
                self.unclassified_accesses += 1;
                self.unclassified_correct += correct;
            }
        }
    }

    /// Folds another statistics block into this one (commutative and
    /// associative: every field is an additive counter over a disjoint
    /// set of accesses).
    ///
    /// This is the merge step of PC-sharded parallel replay: because
    /// predictor state is keyed purely by static instruction address (or
    /// by table set), a trace partitioned by that key replays each shard
    /// against an independent predictor whose counters cover exactly that
    /// shard's accesses — summing the per-shard blocks reproduces the
    /// sequential totals bit for bit, in any merge order.
    pub fn merge(&mut self, other: &PredictorStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.allocations += other.allocations;
        self.evictions += other.evictions;
        self.raw_correct += other.raw_correct;
        self.raw_correct_recommended += other.raw_correct_recommended;
        self.raw_incorrect_suppressed += other.raw_incorrect_suppressed;
        self.speculated += other.speculated;
        self.speculated_correct += other.speculated_correct;
        self.nonzero_stride_correct += other.nonzero_stride_correct;
        self.stride_accesses += other.stride_accesses;
        self.stride_correct += other.stride_correct;
        self.last_value_accesses += other.last_value_accesses;
        self.last_value_correct += other.last_value_correct;
        self.unclassified_accesses += other.unclassified_accesses;
        self.unclassified_correct += other.unclassified_correct;
        self.set_conflicts += other.set_conflicts;
    }

    /// Raw predictions that missed the actual value (including accesses with
    /// no entry, which cannot supply a value).
    #[must_use]
    pub fn raw_incorrect(&self) -> u64 {
        self.accesses - self.raw_correct
    }

    /// Used predictions that were wrong (Figure 5.4's quantity).
    #[must_use]
    pub fn speculated_incorrect(&self) -> u64 {
        self.speculated - self.speculated_correct
    }

    /// Raw prediction accuracy over all accesses.
    #[must_use]
    pub fn raw_accuracy(&self) -> f64 {
        ratio(self.raw_correct, self.accesses)
    }

    /// Accuracy of the predictions the machine actually used.
    #[must_use]
    pub fn effective_accuracy(&self) -> f64 {
        ratio(self.speculated_correct, self.speculated)
    }

    /// Fraction of would-be mispredictions the classifier eliminated —
    /// the paper's Figure 5.1 metric, in `[0, 1]`.
    #[must_use]
    pub fn misprediction_classification_accuracy(&self) -> f64 {
        ratio(self.raw_incorrect_suppressed, self.raw_incorrect())
    }

    /// Fraction of would-be correct predictions the classifier admitted —
    /// the paper's Figure 5.2 metric, in `[0, 1]`.
    #[must_use]
    pub fn correct_classification_accuracy(&self) -> f64 {
        ratio(self.raw_correct_recommended, self.raw_correct)
    }

    /// The paper's *stride efficiency ratio*: correct predictions with a
    /// non-zero stride over all correct (raw) predictions, in `[0, 1]`.
    #[must_use]
    pub fn stride_efficiency_ratio(&self) -> f64 {
        ratio(self.nonzero_stride_correct, self.raw_correct)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for PredictorStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {:.1}% raw accuracy, {} used ({} correct / {} wrong), {} allocs, {} evictions",
            self.accesses,
            100.0 * self.raw_accuracy(),
            self.speculated,
            self.speculated_correct,
            self.speculated_incorrect(),
            self.allocations,
            self.evictions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(hit: bool, recommended: bool, correct: bool) -> Access {
        Access {
            hit,
            recommended,
            correct,
            ..Access::default()
        }
    }

    #[test]
    fn speculation_requires_hit_and_recommendation() {
        assert!(access(true, true, true).speculated());
        assert!(!access(false, true, true).speculated());
        assert!(!access(true, false, true).speculated());
    }

    #[test]
    fn record_accumulates_the_four_quadrants() {
        let mut s = PredictorStats::new();
        s.record(&access(true, true, true)); // used, correct
        s.record(&access(true, true, false)); // used, wrong
        s.record(&access(true, false, true)); // suppressed, would-be correct
        s.record(&access(false, false, false)); // miss, suppressed
        assert_eq!(s.accesses, 4);
        assert_eq!(s.speculated, 2);
        assert_eq!(s.speculated_correct, 1);
        assert_eq!(s.speculated_incorrect(), 1);
        assert_eq!(s.raw_correct, 2);
        assert_eq!(s.raw_incorrect(), 2);
        assert_eq!(s.raw_correct_recommended, 1);
        assert_eq!(s.raw_incorrect_suppressed, 1);
        assert!((s.misprediction_classification_accuracy() - 0.5).abs() < 1e-12);
        assert!((s.correct_classification_accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn record_classified_buckets_by_directive() {
        let mut s = PredictorStats::new();
        s.record_classified(Directive::Stride, &access(true, true, true));
        s.record_classified(Directive::Stride, &access(true, true, false));
        s.record_classified(Directive::LastValue, &access(true, true, true));
        s.record_classified(Directive::None, &access(false, false, false));
        assert_eq!(s.accesses, 4);
        assert_eq!(s.stride_accesses, 2);
        assert_eq!(s.stride_correct, 1);
        assert_eq!(s.last_value_accesses, 1);
        assert_eq!(s.last_value_correct, 1);
        assert_eq!(s.unclassified_accesses, 1);
        assert_eq!(s.unclassified_correct, 0);
    }

    #[test]
    fn merge_sums_every_field_and_commutes() {
        let mut a = PredictorStats::new();
        a.record_classified(Directive::Stride, &access(true, true, true));
        a.record_classified(Directive::None, &access(false, false, false));
        a.evictions = 3;
        a.set_conflicts = 2;
        let mut b = PredictorStats::new();
        b.record_classified(Directive::LastValue, &access(true, false, true));
        b.evictions = 1;
        b.set_conflicts = 5;

        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must commute");
        assert_eq!(ab.accesses, 3);
        assert_eq!(ab.hits, 2);
        assert_eq!(ab.raw_correct, 2);
        assert_eq!(ab.speculated, 1);
        assert_eq!(ab.evictions, 4);
        assert_eq!(ab.set_conflicts, 7);
        assert_eq!(ab.stride_accesses, 1);
        assert_eq!(ab.last_value_accesses, 1);
        assert_eq!(ab.unclassified_accesses, 1);

        // Identity: merging a zero block changes nothing.
        let mut id = ab;
        id.merge(&PredictorStats::new());
        assert_eq!(id, ab);
    }

    #[test]
    fn ratios_are_zero_on_empty() {
        let s = PredictorStats::new();
        assert_eq!(s.raw_accuracy(), 0.0);
        assert_eq!(s.effective_accuracy(), 0.0);
        assert_eq!(s.stride_efficiency_ratio(), 0.0);
    }

    #[test]
    fn stride_efficiency_counts_only_correct_nonzero() {
        let mut s = PredictorStats::new();
        s.record(&Access {
            hit: true,
            correct: true,
            nonzero_stride: true,
            ..Access::default()
        });
        s.record(&Access {
            hit: true,
            correct: true,
            nonzero_stride: false,
            ..Access::default()
        });
        s.record(&Access {
            hit: true,
            correct: false,
            nonzero_stride: true,
            ..Access::default()
        });
        assert!((s.stride_efficiency_ratio() - 0.5).abs() < 1e-12);
    }
}
