//! Declarative predictor configurations.
//!
//! Experiment code describes a predictor as data ([`PredictorConfig`]) and
//! builds it with [`PredictorConfig::build`]; this keeps sweep harnesses
//! (threshold sweeps, geometry ablations) free of generics.

use crate::entry::TwoDeltaStrideEntry;
use crate::{
    ClassifierKind, HybridPredictor, InfinitePredictor, LastValueEntry, StrideEntry, TableGeometry,
    TablePredictor, ValuePredictor,
};

/// A predictor + classifier configuration, as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PredictorConfig {
    /// Unbounded stride predictor (§5.1's idealisation).
    InfiniteStride {
        /// Classification mechanism.
        classifier: ClassifierKind,
    },
    /// Unbounded last-value predictor.
    InfiniteLastValue {
        /// Classification mechanism.
        classifier: ClassifierKind,
    },
    /// Finite set-associative stride predictor (§5.2's machine).
    TableStride {
        /// Table geometry.
        geometry: TableGeometry,
        /// Classification mechanism.
        classifier: ClassifierKind,
    },
    /// Finite set-associative last-value predictor.
    TableLastValue {
        /// Table geometry.
        geometry: TableGeometry,
        /// Classification mechanism.
        classifier: ClassifierKind,
    },
    /// Finite set-associative two-delta stride predictor (an extension
    /// ablation; not part of the paper's evaluation).
    TableTwoDelta {
        /// Table geometry.
        geometry: TableGeometry,
        /// Classification mechanism.
        classifier: ClassifierKind,
    },
    /// Directive-routed stride + last-value hybrid (§3.1 / conclusions).
    Hybrid {
        /// Geometry of the stride-side table.
        stride: TableGeometry,
        /// Geometry of the last-value-side table.
        last_value: TableGeometry,
    },
}

impl PredictorConfig {
    /// The paper's §5.2 hardware baseline: 512-entry 2-way stride table with
    /// 2-bit saturating counters.
    #[must_use]
    pub fn spec_table_stride_fsm() -> Self {
        PredictorConfig::TableStride {
            geometry: TableGeometry::SPEC_512_2WAY,
            classifier: ClassifierKind::two_bit_counter(),
        }
    }

    /// The paper's §5.2 profile-guided configuration: the same 512-entry
    /// 2-way stride table, admission and use controlled by directives.
    #[must_use]
    pub fn spec_table_stride_profile() -> Self {
        PredictorConfig::TableStride {
            geometry: TableGeometry::SPEC_512_2WAY,
            classifier: ClassifierKind::Directive,
        }
    }

    /// Instantiates the configured predictor.
    #[must_use]
    pub fn build(&self) -> Box<dyn ValuePredictor> {
        match *self {
            PredictorConfig::InfiniteStride { classifier } => {
                Box::new(InfinitePredictor::<StrideEntry>::new(classifier))
            }
            PredictorConfig::InfiniteLastValue { classifier } => {
                Box::new(InfinitePredictor::<LastValueEntry>::new(classifier))
            }
            PredictorConfig::TableStride {
                geometry,
                classifier,
            } => Box::new(TablePredictor::<StrideEntry>::new(geometry, classifier)),
            PredictorConfig::TableLastValue {
                geometry,
                classifier,
            } => Box::new(TablePredictor::<LastValueEntry>::new(geometry, classifier)),
            PredictorConfig::TableTwoDelta {
                geometry,
                classifier,
            } => Box::new(TablePredictor::<TwoDeltaStrideEntry>::new(
                geometry, classifier,
            )),
            PredictorConfig::Hybrid { stride, last_value } => {
                Box::new(HybridPredictor::new(stride, last_value))
            }
        }
    }

    /// A short human-readable label for experiment output.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            PredictorConfig::InfiniteStride { classifier } => {
                format!("infinite-stride/{}", classifier_label(*classifier))
            }
            PredictorConfig::InfiniteLastValue { classifier } => {
                format!("infinite-lv/{}", classifier_label(*classifier))
            }
            PredictorConfig::TableStride {
                geometry,
                classifier,
            } => {
                format!("stride[{geometry}]/{}", classifier_label(*classifier))
            }
            PredictorConfig::TableLastValue {
                geometry,
                classifier,
            } => {
                format!("lv[{geometry}]/{}", classifier_label(*classifier))
            }
            PredictorConfig::TableTwoDelta {
                geometry,
                classifier,
            } => {
                format!("2delta[{geometry}]/{}", classifier_label(*classifier))
            }
            PredictorConfig::Hybrid { stride, last_value } => {
                format!("hybrid[st {stride} + lv {last_value}]")
            }
        }
    }
}

fn classifier_label(c: ClassifierKind) -> &'static str {
    match c {
        ClassifierKind::SatCounter { .. } => "fsm",
        ClassifierKind::Directive => "profile",
        ClassifierKind::Always => "always",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::{Directive, InstrAddr};

    #[test]
    fn every_config_builds_and_accepts_accesses() {
        let configs = [
            PredictorConfig::InfiniteStride {
                classifier: ClassifierKind::two_bit_counter(),
            },
            PredictorConfig::InfiniteLastValue {
                classifier: ClassifierKind::Always,
            },
            PredictorConfig::spec_table_stride_fsm(),
            PredictorConfig::spec_table_stride_profile(),
            PredictorConfig::TableLastValue {
                geometry: TableGeometry::new(64, 4),
                classifier: ClassifierKind::Directive,
            },
            PredictorConfig::Hybrid {
                stride: TableGeometry::new(64, 2),
                last_value: TableGeometry::new(128, 2),
            },
        ];
        for cfg in configs {
            let mut p = cfg.build();
            for i in 0..10u64 {
                p.access(InstrAddr::new(0), Directive::Stride, i);
            }
            assert_eq!(p.stats().accesses, 10, "{}", cfg.label());
            assert!(!cfg.label().is_empty());
        }
    }

    #[test]
    fn spec_configs_match_paper_geometry() {
        if let PredictorConfig::TableStride { geometry, .. } =
            PredictorConfig::spec_table_stride_fsm()
        {
            assert_eq!(geometry, TableGeometry::SPEC_512_2WAY);
        } else {
            panic!("wrong variant");
        }
    }
}
