//! Declarative predictor configurations.
//!
//! Experiment code describes a predictor as data ([`PredictorConfig`]) and
//! builds it with [`PredictorConfig::build`]; this keeps sweep harnesses
//! (threshold sweeps, geometry ablations) free of generics.

use vp_isa::InstrAddr;

use crate::entry::TwoDeltaStrideEntry;
use crate::{
    ClassifierKind, HybridPredictor, InfinitePredictor, LastValueEntry, StrideEntry, TableGeometry,
    TablePredictor, ValuePredictor,
};

/// A predictor + classifier configuration, as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PredictorConfig {
    /// Unbounded stride predictor (§5.1's idealisation).
    InfiniteStride {
        /// Classification mechanism.
        classifier: ClassifierKind,
    },
    /// Unbounded last-value predictor.
    InfiniteLastValue {
        /// Classification mechanism.
        classifier: ClassifierKind,
    },
    /// Finite set-associative stride predictor (§5.2's machine).
    TableStride {
        /// Table geometry.
        geometry: TableGeometry,
        /// Classification mechanism.
        classifier: ClassifierKind,
    },
    /// Finite set-associative last-value predictor.
    TableLastValue {
        /// Table geometry.
        geometry: TableGeometry,
        /// Classification mechanism.
        classifier: ClassifierKind,
    },
    /// Finite set-associative two-delta stride predictor (an extension
    /// ablation; not part of the paper's evaluation).
    TableTwoDelta {
        /// Table geometry.
        geometry: TableGeometry,
        /// Classification mechanism.
        classifier: ClassifierKind,
    },
    /// Directive-routed stride + last-value hybrid (§3.1 / conclusions).
    Hybrid {
        /// Geometry of the stride-side table.
        stride: TableGeometry,
        /// Geometry of the last-value-side table.
        last_value: TableGeometry,
    },
}

impl PredictorConfig {
    /// The paper's §5.2 hardware baseline: 512-entry 2-way stride table with
    /// 2-bit saturating counters.
    #[must_use]
    pub fn spec_table_stride_fsm() -> Self {
        PredictorConfig::TableStride {
            geometry: TableGeometry::SPEC_512_2WAY,
            classifier: ClassifierKind::two_bit_counter(),
        }
    }

    /// The paper's §5.2 profile-guided configuration: the same 512-entry
    /// 2-way stride table, admission and use controlled by directives.
    #[must_use]
    pub fn spec_table_stride_profile() -> Self {
        PredictorConfig::TableStride {
            geometry: TableGeometry::SPEC_512_2WAY,
            classifier: ClassifierKind::Directive,
        }
    }

    /// Instantiates the configured predictor.
    #[must_use]
    pub fn build(&self) -> Box<dyn ValuePredictor> {
        match *self {
            PredictorConfig::InfiniteStride { classifier } => {
                Box::new(InfinitePredictor::<StrideEntry>::new(classifier))
            }
            PredictorConfig::InfiniteLastValue { classifier } => {
                Box::new(InfinitePredictor::<LastValueEntry>::new(classifier))
            }
            PredictorConfig::TableStride {
                geometry,
                classifier,
            } => Box::new(TablePredictor::<StrideEntry>::new(geometry, classifier)),
            PredictorConfig::TableLastValue {
                geometry,
                classifier,
            } => Box::new(TablePredictor::<LastValueEntry>::new(geometry, classifier)),
            PredictorConfig::TableTwoDelta {
                geometry,
                classifier,
            } => Box::new(TablePredictor::<TwoDeltaStrideEntry>::new(
                geometry, classifier,
            )),
            PredictorConfig::Hybrid { stride, last_value } => {
                Box::new(HybridPredictor::new(stride, last_value))
            }
        }
    }

    /// The state-partition key of `addr` for this configuration: two
    /// static addresses can share predictor state (table set, LRU stamps,
    /// classifier cells) **only if** their keys are equal, so a replay
    /// sharded by `shard_key(addr) % n` is bit-identical to a sequential
    /// one for any shard count `n` (see `PredictorStats::merge`).
    ///
    /// - Infinite predictors keep fully independent per-address state:
    ///   the key is the address itself.
    /// - Finite tables interact exactly within a set (tags, LRU stamps
    ///   and conflicts are all per-set): the key is the set index.
    /// - The hybrid's two tables may have different set counts; addresses
    ///   interact when they share a set in *either* table, and the
    ///   transitive closure of "equal mod `sets_stride`" and "equal mod
    ///   `sets_lv`" is "equal mod gcd" — the key is
    ///   `addr % gcd(sets_stride, sets_lv)`.
    #[must_use]
    pub fn shard_key(&self, addr: InstrAddr) -> u64 {
        let a = u64::from(addr.index());
        match *self {
            PredictorConfig::InfiniteStride { .. } | PredictorConfig::InfiniteLastValue { .. } => a,
            PredictorConfig::TableStride { geometry, .. }
            | PredictorConfig::TableLastValue { geometry, .. }
            | PredictorConfig::TableTwoDelta { geometry, .. } => geometry.set_of(a) as u64,
            PredictorConfig::Hybrid { stride, last_value } => {
                a % gcd(stride.sets() as u64, last_value.sets() as u64)
            }
        }
    }

    /// The modulus of this configuration's state partition, or `None`
    /// when every static address has fully independent state (infinite
    /// predictors).
    ///
    /// Two addresses can share state only if they are congruent modulo
    /// this value; [`PredictorConfig::shard_key`] is `addr % modulus`
    /// (or the raw address for `None`). A fused multi-config replay can
    /// therefore shard by `addr % g` where `g` is the gcd of every
    /// cell's modulus: `g` divides each modulus `m`, so congruence mod
    /// `g` is implied by congruence mod `m` and each cell's state
    /// partition lands wholly inside one shard.
    #[must_use]
    pub fn shard_modulus(&self) -> Option<u64> {
        match *self {
            PredictorConfig::InfiniteStride { .. } | PredictorConfig::InfiniteLastValue { .. } => {
                None
            }
            PredictorConfig::TableStride { geometry, .. }
            | PredictorConfig::TableLastValue { geometry, .. }
            | PredictorConfig::TableTwoDelta { geometry, .. } => Some(geometry.sets() as u64),
            PredictorConfig::Hybrid { stride, last_value } => {
                Some(gcd(stride.sets() as u64, last_value.sets() as u64))
            }
        }
    }

    /// A short human-readable label for experiment output.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            PredictorConfig::InfiniteStride { classifier } => {
                format!("infinite-stride/{}", classifier_label(*classifier))
            }
            PredictorConfig::InfiniteLastValue { classifier } => {
                format!("infinite-lv/{}", classifier_label(*classifier))
            }
            PredictorConfig::TableStride {
                geometry,
                classifier,
            } => {
                format!("stride[{geometry}]/{}", classifier_label(*classifier))
            }
            PredictorConfig::TableLastValue {
                geometry,
                classifier,
            } => {
                format!("lv[{geometry}]/{}", classifier_label(*classifier))
            }
            PredictorConfig::TableTwoDelta {
                geometry,
                classifier,
            } => {
                format!("2delta[{geometry}]/{}", classifier_label(*classifier))
            }
            PredictorConfig::Hybrid { stride, last_value } => {
                format!("hybrid[st {stride} + lv {last_value}]")
            }
        }
    }
}

/// Greatest common divisor (Euclid); both table set counts are positive.
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

fn classifier_label(c: ClassifierKind) -> &'static str {
    match c {
        ClassifierKind::SatCounter { .. } => "fsm",
        ClassifierKind::Directive => "profile",
        ClassifierKind::Always => "always",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::{Directive, InstrAddr};

    #[test]
    fn every_config_builds_and_accepts_accesses() {
        let configs = [
            PredictorConfig::InfiniteStride {
                classifier: ClassifierKind::two_bit_counter(),
            },
            PredictorConfig::InfiniteLastValue {
                classifier: ClassifierKind::Always,
            },
            PredictorConfig::spec_table_stride_fsm(),
            PredictorConfig::spec_table_stride_profile(),
            PredictorConfig::TableLastValue {
                geometry: TableGeometry::new(64, 4),
                classifier: ClassifierKind::Directive,
            },
            PredictorConfig::Hybrid {
                stride: TableGeometry::new(64, 2),
                last_value: TableGeometry::new(128, 2),
            },
        ];
        for cfg in configs {
            let mut p = cfg.build();
            for i in 0..10u64 {
                p.access(InstrAddr::new(0), Directive::Stride, i);
            }
            assert_eq!(p.stats().accesses, 10, "{}", cfg.label());
            assert!(!cfg.label().is_empty());
        }
    }

    #[test]
    fn shard_keys_respect_state_partitions() {
        // Infinite: per-address state, key is the address.
        let inf = PredictorConfig::InfiniteStride {
            classifier: ClassifierKind::two_bit_counter(),
        };
        assert_eq!(inf.shard_key(InstrAddr::new(1234)), 1234);

        // Finite table: key is the set index (modulo sets).
        let table = PredictorConfig::spec_table_stride_fsm();
        assert_eq!(table.shard_key(InstrAddr::new(3)), 3);
        assert_eq!(table.shard_key(InstrAddr::new(256 + 3)), 3);

        // Hybrid: key is addr mod gcd of the two set counts.
        let hybrid = PredictorConfig::Hybrid {
            stride: TableGeometry::new(64, 2),     // 32 sets
            last_value: TableGeometry::new(96, 2), // 48 sets
        };
        // gcd(32, 48) = 16: addresses equal mod 16 share a key.
        assert_eq!(
            hybrid.shard_key(InstrAddr::new(5)),
            hybrid.shard_key(InstrAddr::new(5 + 16))
        );
        assert_ne!(
            hybrid.shard_key(InstrAddr::new(5)),
            hybrid.shard_key(InstrAddr::new(6))
        );
        // Soundness: equal key is implied by sharing a set in either table.
        for (a, b) in [(7u32, 7 + 32), (9, 9 + 48), (11, 11 + 96)] {
            let (a, b) = (InstrAddr::new(a), InstrAddr::new(b));
            assert_eq!(hybrid.shard_key(a), hybrid.shard_key(b));
        }
    }

    #[test]
    fn spec_configs_match_paper_geometry() {
        if let PredictorConfig::TableStride { geometry, .. } =
            PredictorConfig::spec_table_stride_fsm()
        {
            assert_eq!(geometry, TableGeometry::SPEC_512_2WAY);
        } else {
            panic!("wrong variant");
        }
    }
}
