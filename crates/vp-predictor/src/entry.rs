//! Predictor cell types: the paper's Figure 2.1.

/// A prediction-table cell.
///
/// Both of the paper's predictors store per-instruction state in a tagged
/// table entry; this trait abstracts the cell so the table, the infinite
/// predictor and the hybrid predictor are generic over the prediction
/// scheme. The trait is implemented by [`LastValueEntry`] and
/// [`StrideEntry`]; it is not intended for exotic downstream predictors but
/// is left open deliberately (e.g. two-delta stride is a natural extension).
pub trait PredEntry: Clone + std::fmt::Debug {
    /// Creates a cell from the first observed value of an instruction.
    fn allocate(initial: u64) -> Self;

    /// The value the cell currently predicts.
    fn predict(&self) -> u64;

    /// Whether the current prediction is driven by a non-zero stride.
    ///
    /// The paper's *stride efficiency ratio* counts correct predictions for
    /// which this is true; a last-value cell always returns `false`.
    fn nonzero_stride(&self) -> bool;

    /// Trains the cell with the actual outcome value.
    fn train(&mut self, actual: u64);
}

/// Last-value prediction: "the destination value of an individual
/// instruction is predicted based on the last previously seen value it has
/// generated" (§2.1).
///
/// ```
/// use vp_predictor::{LastValueEntry, PredEntry};
/// let mut e = LastValueEntry::allocate(7);
/// assert_eq!(e.predict(), 7);
/// e.train(9);
/// assert_eq!(e.predict(), 9);
/// assert!(!e.nonzero_stride());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LastValueEntry {
    last: u64,
}

impl PredEntry for LastValueEntry {
    fn allocate(initial: u64) -> Self {
        LastValueEntry { last: initial }
    }

    fn predict(&self) -> u64 {
        self.last
    }

    fn nonzero_stride(&self) -> bool {
        false
    }

    fn train(&mut self, actual: u64) {
        self.last = actual;
    }
}

/// Stride prediction: "the predicted value is the sum of the last value and
/// the stride", where "the stride field value is always determined upon the
/// subtraction of two recent consecutive destination values" (§2.1).
///
/// A fresh cell starts with stride 0, so it behaves like last-value until
/// the second training.
///
/// ```
/// use vp_predictor::{StrideEntry, PredEntry};
/// let mut e = StrideEntry::allocate(10);
/// e.train(14); // stride becomes 4
/// assert_eq!(e.predict(), 18);
/// assert!(e.nonzero_stride());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideEntry {
    last: u64,
    stride: u64,
}

impl StrideEntry {
    /// The current stride (wrapping difference of the last two values).
    #[must_use]
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// The most recently trained value.
    #[must_use]
    pub fn last(&self) -> u64 {
        self.last
    }
}

impl PredEntry for StrideEntry {
    fn allocate(initial: u64) -> Self {
        StrideEntry {
            last: initial,
            stride: 0,
        }
    }

    fn predict(&self) -> u64 {
        self.last.wrapping_add(self.stride)
    }

    fn nonzero_stride(&self) -> bool {
        self.stride != 0
    }

    fn train(&mut self, actual: u64) {
        self.stride = actual.wrapping_sub(self.last);
        self.last = actual;
    }
}

/// Two-delta stride prediction: the committed stride is replaced only when
/// the *same* new delta has been observed twice in a row.
///
/// A well-known refinement of the stride predictor (used throughout the
/// later value-prediction literature): one irregular value perturbs a
/// plain stride cell for two predictions, but a two-delta cell keeps
/// predicting with the established stride through the glitch. Included
/// here as an extension ablation; the paper itself evaluates the plain
/// stride predictor.
///
/// ```
/// use vp_predictor::{PredEntry, TwoDeltaStrideEntry};
/// let mut e = TwoDeltaStrideEntry::allocate(0);
/// e.train(4);
/// e.train(8);   // delta 4 seen twice: stride commits to 4
/// e.train(100); // a glitch...
/// assert_eq!(e.predict(), 104); // ...but the committed stride survives
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoDeltaStrideEntry {
    last: u64,
    stride: u64,
    last_delta: u64,
}

impl PredEntry for TwoDeltaStrideEntry {
    fn allocate(initial: u64) -> Self {
        TwoDeltaStrideEntry {
            last: initial,
            stride: 0,
            last_delta: 0,
        }
    }

    fn predict(&self) -> u64 {
        self.last.wrapping_add(self.stride)
    }

    fn nonzero_stride(&self) -> bool {
        self.stride != 0
    }

    fn train(&mut self, actual: u64) {
        let delta = actual.wrapping_sub(self.last);
        if delta == self.last_delta {
            self.stride = delta;
        }
        self.last_delta = delta;
        self.last = actual;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_tracks_most_recent() {
        let mut e = LastValueEntry::allocate(5);
        for v in [5, 5, 8, 8] {
            e.train(v);
        }
        assert_eq!(e.predict(), 8);
    }

    #[test]
    fn stride_locks_onto_arithmetic_sequence() {
        let mut e = StrideEntry::allocate(100);
        let mut correct = 0;
        for v in (1..50u64).map(|i| 100 + 3 * i) {
            if e.predict() == v {
                correct += 1;
            }
            e.train(v);
        }
        // Misses only the very first step (stride still 0).
        assert_eq!(correct, 48);
    }

    #[test]
    fn stride_handles_negative_and_wrapping() {
        let mut e = StrideEntry::allocate(10);
        e.train(7);
        assert_eq!(e.stride() as i64, -3);
        assert_eq!(e.predict(), 4);
        let mut e = StrideEntry::allocate(u64::MAX);
        e.train(1); // stride wraps to +2
        assert_eq!(e.stride(), 2);
        assert_eq!(e.predict(), 3);
    }

    #[test]
    fn zero_stride_behaves_like_last_value() {
        let mut e = StrideEntry::allocate(42);
        e.train(42);
        assert_eq!(e.predict(), 42);
        assert!(!e.nonzero_stride());
    }

    #[test]
    fn stride_reacts_to_pattern_change() {
        let mut e = StrideEntry::allocate(0);
        e.train(4); // stride 4
        e.train(8); // stride 4
        e.train(100); // stride 92
        assert_eq!(e.predict(), 192);
    }

    #[test]
    fn two_delta_survives_a_single_glitch() {
        let (mut plain, mut twod) = (StrideEntry::allocate(0), TwoDeltaStrideEntry::allocate(0));
        for v in [3u64, 6, 9, 12] {
            plain.train(v);
            twod.train(v);
        }
        // One irregular value...
        plain.train(500);
        twod.train(500);
        // ...then the pattern resumes at 503.
        assert_ne!(plain.predict(), 503, "plain stride is perturbed");
        assert_eq!(twod.predict(), 503, "two-delta holds the committed stride");
    }

    #[test]
    fn two_delta_commits_only_after_confirmation() {
        let mut e = TwoDeltaStrideEntry::allocate(0);
        e.train(7); // delta 7 seen once: stride still 0
        assert_eq!(e.predict(), 7);
        e.train(14); // delta 7 confirmed
        assert_eq!(e.predict(), 21);
        assert!(e.nonzero_stride());
    }

    #[test]
    fn two_delta_eventually_adopts_a_new_pattern() {
        let mut e = TwoDeltaStrideEntry::allocate(0);
        for v in [5u64, 10, 15] {
            e.train(v);
        }
        for v in [115u64, 215, 315] {
            e.train(v);
        }
        assert_eq!(e.predict(), 415);
    }
}
