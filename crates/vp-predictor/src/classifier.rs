//! Classification mechanisms: who decides whether a prediction is used.

use crate::SatCounter;
use vp_isa::Directive;

/// The classification mechanism attached to a predictor.
///
/// The paper compares two of these head-to-head:
///
/// - [`ClassifierKind::SatCounter`] — the prior art: a saturating counter
///   per table entry, trained at run time (§2.2);
/// - [`ClassifierKind::Directive`] — the paper's contribution: the decision
///   was made offline from the profile image and is carried in the opcode,
///   so the hardware needs no counters at all (§3.2).
///
/// [`ClassifierKind::Always`] (no classification) is the unclassified
/// baseline used by ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassifierKind {
    /// Per-entry saturating counters; `template` sets bits/threshold/reset
    /// state for newly allocated entries.
    SatCounter {
        /// Counter configuration cloned into each new table entry.
        template: SatCounter,
    },
    /// The opcode directive decides: tagged instructions are admitted and
    /// always trusted; untagged instructions are never allocated.
    Directive,
    /// Every table hit is trusted; every value producer is admitted.
    Always,
}

impl ClassifierKind {
    /// The conventional 2-bit counter configuration.
    #[must_use]
    pub fn two_bit_counter() -> Self {
        ClassifierKind::SatCounter {
            template: SatCounter::two_bit(),
        }
    }

    /// Whether an instruction carrying `directive` may be *allocated* into
    /// the prediction table at all.
    ///
    /// This is the resource-utilisation lever of the paper's Section 5.2:
    /// directive classification admits only tagged instructions, while the
    /// hardware schemes must admit everything.
    #[must_use]
    pub fn admits(self, directive: Directive) -> bool {
        match self {
            ClassifierKind::SatCounter { .. } | ClassifierKind::Always => true,
            ClassifierKind::Directive => directive.is_predictable(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directive_classifier_admits_only_tagged() {
        let c = ClassifierKind::Directive;
        assert!(!c.admits(Directive::None));
        assert!(c.admits(Directive::Stride));
        assert!(c.admits(Directive::LastValue));
    }

    #[test]
    fn hardware_classifiers_admit_everything() {
        for c in [ClassifierKind::two_bit_counter(), ClassifierKind::Always] {
            for d in Directive::ALL {
                assert!(c.admits(d));
            }
        }
    }
}
