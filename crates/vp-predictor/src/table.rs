//! A tagged, set-associative table with true-LRU replacement.

use crate::TableGeometry;

/// Sentinel for [`SetAssocTable::set_mask`]: the set count is not a power
/// of two, index by modulo instead of masking.
const NO_MASK: u64 = u64::MAX;

/// A set-associative, tag-matched table with per-set true-LRU replacement —
/// the "cache table" organisation of the paper's Figure 2.1, generic over
/// the payload so the same structure backs stride entries, last-value
/// entries and their classification counters.
///
/// Keys are full instruction addresses; tags store the full key (a simulator
/// can afford full tags, and partial tags would only add aliasing noise to
/// the experiments).
///
/// Storage is flat and columnar — one contiguous tag array, one stamp
/// array, one payload array, each laid out `sets × ways` with the occupied
/// slots of a set packed at the front of its segment. A lookup therefore
/// touches a handful of adjacent cache lines instead of chasing a per-set
/// heap allocation, and the tag scan never loads payload bytes it does not
/// need. (The replacement behaviour is identical to the nested-vector
/// layout this replaced: stamps are unique, so "first slot with the
/// minimal stamp" picks the same victim.)
///
/// # Examples
///
/// ```
/// use vp_predictor::{SetAssocTable, TableGeometry};
/// let mut t: SetAssocTable<u64> = SetAssocTable::new(TableGeometry::new(4, 2));
/// assert!(t.lookup(10).is_none());
/// t.insert(10, 111);
/// assert_eq!(t.lookup(10), Some(&mut 111));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocTable<E> {
    geometry: TableGeometry,
    /// `sets - 1` when the set count is a power of two (`set index =
    /// key & mask`, the common experiment geometries), [`NO_MASK`] when
    /// indexing must fall back to the general modulo.
    set_mask: u64,
    /// Full-key tags, `sets × ways`; only the first `len[set]` slots of a
    /// set's segment are meaningful.
    tags: Box<[u64]>,
    /// LRU stamps, parallel to `tags`.
    stamps: Box<[u64]>,
    /// Payloads, parallel to `tags` (`None` = never occupied).
    payloads: Box<[Option<E>]>,
    /// Occupied-slot count per set.
    len: Box<[u32]>,
    clock: u64,
    evictions: u64,
    conflicts: u64,
}

impl<E> SetAssocTable<E> {
    /// Creates an empty table.
    #[must_use]
    pub fn new(geometry: TableGeometry) -> Self {
        let entries = geometry.entries();
        let sets = geometry.sets();
        SetAssocTable {
            geometry,
            set_mask: if sets.is_power_of_two() {
                sets as u64 - 1
            } else {
                NO_MASK
            },
            tags: vec![0; entries].into_boxed_slice(),
            stamps: vec![0; entries].into_boxed_slice(),
            payloads: std::iter::repeat_with(|| None).take(entries).collect(),
            len: vec![0; sets].into_boxed_slice(),
            clock: 0,
            evictions: 0,
            conflicts: 0,
        }
    }

    /// The table's geometry.
    #[must_use]
    pub fn geometry(&self) -> TableGeometry {
        self.geometry
    }

    /// The set `key` maps to; equals [`TableGeometry::set_of`] but masks
    /// instead of dividing when the set count is a power of two.
    #[inline]
    fn set_index(&self, key: u64) -> usize {
        if self.set_mask != NO_MASK {
            (key & self.set_mask) as usize
        } else {
            self.geometry.set_of(key)
        }
    }

    /// Looks up `key`, refreshing its LRU position on a hit.
    pub fn lookup(&mut self, key: u64) -> Option<&mut E> {
        self.clock += 1;
        let set = self.set_index(key);
        let base = set * self.geometry.ways();
        let end = base + self.len[set] as usize;
        for i in base..end {
            if self.tags[i] == key {
                self.stamps[i] = self.clock;
                return self.payloads[i].as_mut();
            }
        }
        None
    }

    /// Looks up `key` without touching replacement state.
    #[must_use]
    pub fn probe(&self, key: u64) -> Option<&E> {
        let set = self.set_index(key);
        let base = set * self.geometry.ways();
        let end = base + self.len[set] as usize;
        (base..end)
            .find(|&i| self.tags[i] == key)
            .and_then(|i| self.payloads[i].as_ref())
    }

    /// Inserts (or replaces) the payload for `key`, evicting the set's LRU
    /// victim when the set is full. Returns the evicted `(key, payload)`,
    /// if any.
    pub fn insert(&mut self, key: u64, payload: E) -> Option<(u64, E)> {
        self.clock += 1;
        let set = self.set_index(key);
        let ways = self.geometry.ways();
        let base = set * ways;
        let n = self.len[set] as usize;
        if let Some(i) = (base..base + n).find(|&i| self.tags[i] == key) {
            self.stamps[i] = self.clock;
            let old = self.payloads[i].replace(payload);
            return old.map(|e| (key, e));
        }
        if n < ways {
            if n > 0 {
                // A distinct key landed in a set that already holds other
                // tags — set-index aliasing the geometry experiments care
                // about, even before it forces an eviction.
                self.conflicts += 1;
            }
            let i = base + n;
            self.tags[i] = key;
            self.stamps[i] = self.clock;
            self.payloads[i] = Some(payload);
            self.len[set] = (n + 1) as u32;
            return None;
        }
        // Full set: evict the first slot holding the minimal stamp (stamps
        // are unique, so "first" never actually ties).
        let mut victim = base;
        for i in base + 1..base + ways {
            if self.stamps[i] < self.stamps[victim] {
                victim = i;
            }
        }
        let old_tag = self.tags[victim];
        let old = self.payloads[victim].replace(payload);
        self.tags[victim] = key;
        self.stamps[victim] = self.clock;
        self.evictions += 1;
        self.conflicts += 1;
        old.map(|e| (old_tag, e))
    }

    /// Number of occupied entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.len.iter().map(|&n| n as usize).sum()
    }

    /// Number of LRU evictions performed so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of set-index conflicts observed so far: insertions of a new
    /// key into a set already holding at least one other tag (a superset
    /// of [`evictions`](Self::evictions) that also counts shared-set
    /// co-residency in partially-filled sets).
    #[must_use]
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Empties the table and resets statistics.
    pub fn clear(&mut self) {
        self.len.fill(0);
        for p in &mut self.payloads {
            *p = None;
        }
        self.clock = 0;
        self.evictions = 0;
        self.conflicts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use vp_rng::prop;

    #[test]
    fn miss_then_hit() {
        let mut t = SetAssocTable::new(TableGeometry::new(4, 2));
        assert!(t.lookup(1).is_none());
        assert_eq!(t.insert(1, 'a'), None);
        assert_eq!(t.lookup(1), Some(&mut 'a'));
    }

    #[test]
    fn insert_existing_replaces_and_returns_old() {
        let mut t = SetAssocTable::new(TableGeometry::new(4, 2));
        t.insert(1, 'a');
        assert_eq!(t.insert(1, 'b'), Some((1, 'a')));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 2 sets x 2 ways; keys 0,2,4 all map to set 0.
        let mut t = SetAssocTable::new(TableGeometry::new(4, 2));
        t.insert(0, 'a');
        t.insert(2, 'b');
        t.lookup(0); // refresh 0; LRU is now 2
        let evicted = t.insert(4, 'c');
        assert_eq!(evicted, Some((2, 'b')));
        assert!(t.probe(0).is_some());
        assert!(t.probe(4).is_some());
        assert_eq!(t.evictions(), 1);
    }

    #[test]
    fn probe_does_not_refresh_lru() {
        let mut t = SetAssocTable::new(TableGeometry::new(4, 2));
        t.insert(0, 'a');
        t.insert(2, 'b');
        let _ = t.probe(0); // must NOT refresh
        let evicted = t.insert(4, 'c');
        assert_eq!(evicted, Some((0, 'a')));
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = SetAssocTable::new(TableGeometry::new(2, 1));
        t.insert(0, 1);
        t.insert(2, 2); // evicts in set 0
        t.clear();
        assert_eq!(t.occupancy(), 0);
        assert_eq!(t.evictions(), 0);
        assert_eq!(t.conflicts(), 0);
        assert!(t.probe(0).is_none());
    }

    #[test]
    fn conflicts_count_shared_set_inserts() {
        // 2 sets x 2 ways; keys 0,2,4 all map to set 0.
        let mut t = SetAssocTable::new(TableGeometry::new(4, 2));
        t.insert(0, 'a'); // empty set: no conflict
        assert_eq!(t.conflicts(), 0);
        t.insert(2, 'b'); // co-resident with 0: conflict, no eviction
        assert_eq!(t.conflicts(), 1);
        assert_eq!(t.evictions(), 0);
        t.insert(0, 'c'); // replacement of the same tag: not a conflict
        assert_eq!(t.conflicts(), 1);
        t.insert(4, 'd'); // full set: conflict + eviction
        assert_eq!(t.conflicts(), 2);
        assert_eq!(t.evictions(), 1);
    }

    #[test]
    fn keys_stay_within_their_set() {
        let g = TableGeometry::new(8, 2);
        let mut t = SetAssocTable::new(g);
        for key in 0..100u64 {
            t.insert(key, key);
        }
        // With 4 sets of 2 ways, at most 8 survive, 2 per set.
        assert_eq!(t.occupancy(), 8);
        for key in 96..100 {
            assert_eq!(t.probe(key), Some(&key), "most recent keys must survive");
        }
    }

    /// Occupancy never exceeds capacity, and a fully-associative table
    /// behaves like an LRU cache of the last `entries` distinct keys.
    #[test]
    fn prop_capacity_invariant() {
        prop::forall("table occupancy bounded by capacity", |rng| {
            (0..rng.gen_range(1..200usize))
                .map(|_| rng.gen_range(0..64u64))
                .collect::<Vec<u64>>()
        })
        .check_shrinking(|keys| {
            let g = TableGeometry::new(16, 4);
            let mut t = SetAssocTable::new(g);
            for &k in keys {
                if t.lookup(k).is_none() {
                    t.insert(k, k);
                }
                assert!(t.occupancy() <= g.entries());
                // Every resident payload equals its key.
                assert_eq!(t.probe(k), Some(&k));
            }
        });
    }

    /// The most recently inserted key of every set is always resident.
    #[test]
    fn prop_mru_is_resident() {
        prop::forall("MRU key of every set stays resident", |rng| {
            (0..rng.gen_range(1..300usize))
                .map(|_| rng.gen_range(0..1024u64))
                .collect::<Vec<u64>>()
        })
        .check_shrinking(|keys| {
            let g = TableGeometry::new(8, 2);
            let mut t = SetAssocTable::new(g);
            let mut mru: HashMap<usize, u64> = HashMap::new();
            for &k in keys {
                t.insert(k, k);
                mru.insert(g.set_of(k), k);
                for &m in mru.values() {
                    assert!(t.probe(m).is_some(), "MRU key {m} evicted");
                }
            }
        });
    }
}
