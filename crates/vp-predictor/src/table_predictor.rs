//! The finite, set-associative table predictor of the paper's Section 5.2.

use vp_isa::{Directive, InstrAddr};

use crate::{
    Access, ClassifierKind, PredEntry, PredictorStats, SatCounter, SetAssocTable, TableGeometry,
    ValuePredictor,
};

/// A finite prediction table (entry type `E`) with a classification
/// mechanism that controls **both** admission and use:
///
/// - with [`ClassifierKind::SatCounter`], every dynamic value producer
///   competes for table entries and a per-entry counter gates use — the
///   hardware-only baseline, whose weakness is exactly that "unpredictable
///   instructions could have uselessly occupied entries in the prediction
///   table and evacuated the predictable instructions";
/// - with [`ClassifierKind::Directive`], only directive-tagged instructions
///   are allocated, and every hit is trusted — the paper's mechanism.
///
/// # Examples
///
/// ```
/// use vp_isa::{Directive, InstrAddr};
/// use vp_predictor::{ClassifierKind, StrideEntry, TableGeometry, TablePredictor, ValuePredictor};
///
/// let mut p: TablePredictor<StrideEntry> =
///     TablePredictor::new(TableGeometry::SPEC_512_2WAY, ClassifierKind::Directive);
/// // An untagged instruction never even allocates.
/// let a = p.access(InstrAddr::new(9), Directive::None, 1);
/// assert!(!a.allocated && !a.hit);
/// ```
#[derive(Debug, Clone)]
pub struct TablePredictor<E> {
    classifier: ClassifierKind,
    table: SetAssocTable<(E, SatCounter)>,
    stats: PredictorStats,
}

impl<E: PredEntry> TablePredictor<E> {
    /// Creates an empty table predictor.
    #[must_use]
    pub fn new(geometry: TableGeometry, classifier: ClassifierKind) -> Self {
        TablePredictor {
            classifier,
            table: SetAssocTable::new(geometry),
            stats: PredictorStats::new(),
        }
    }

    /// The table geometry.
    #[must_use]
    pub fn geometry(&self) -> TableGeometry {
        self.table.geometry()
    }

    /// Current number of occupied entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.table.occupancy()
    }

    fn counter_template(&self) -> SatCounter {
        match self.classifier {
            ClassifierKind::SatCounter { template } => template,
            _ => SatCounter::two_bit(),
        }
    }
}

impl<E: PredEntry> ValuePredictor for TablePredictor<E> {
    fn access(&mut self, addr: InstrAddr, directive: Directive, actual: u64) -> Access {
        let mut a = Access::default();
        if !self.classifier.admits(directive) {
            // Untagged under directive classification: invisible to the
            // table. This is the better-utilisation effect of Table 5.1.
            self.stats.record_classified(directive, &a);
            return a;
        }
        let key = u64::from(addr.index());
        match self.table.lookup(key) {
            Some((entry, counter)) => {
                a.hit = true;
                let predicted = entry.predict();
                a.predicted = Some(predicted);
                a.correct = predicted == actual;
                a.nonzero_stride = entry.nonzero_stride();
                a.recommended = match self.classifier {
                    ClassifierKind::SatCounter { .. } => counter.predicts(),
                    ClassifierKind::Directive | ClassifierKind::Always => true,
                };
                counter.record(a.correct);
                entry.train(actual);
            }
            None => {
                a.allocated = true;
                a.recommended = matches!(self.classifier, ClassifierKind::Directive);
                if self
                    .table
                    .insert(key, (E::allocate(actual), self.counter_template()))
                    .is_some()
                {
                    self.stats.evictions += 1;
                }
            }
        }
        self.stats.record_classified(directive, &a);
        self.stats.set_conflicts = self.table.conflicts();
        a
    }

    fn stats(&self) -> &PredictorStats {
        &self.stats
    }

    fn reset(&mut self) {
        self.table.clear();
        self.stats = PredictorStats::new();
    }

    fn occupancy(&self) -> usize {
        TablePredictor::occupancy(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StrideEntry;

    fn tiny(classifier: ClassifierKind) -> TablePredictor<StrideEntry> {
        TablePredictor::new(TableGeometry::new(4, 2), classifier)
    }

    #[test]
    fn fsm_admits_everything_and_thrashes() {
        let mut p = tiny(ClassifierKind::two_bit_counter());
        // Six distinct instructions mapping into 2 sets of 2 ways: constant
        // conflict misses.
        for round in 0..50u64 {
            for addr in 0..6u32 {
                p.access(InstrAddr::new(addr), Directive::None, round);
            }
        }
        assert!(
            p.stats().evictions > 0,
            "small table must evict under pressure"
        );
    }

    #[test]
    fn directive_filtering_protects_the_table() {
        let mut p = tiny(ClassifierKind::Directive);
        // Two tagged strided instructions + four untagged noisy ones.
        for round in 0..50u64 {
            for addr in 0..2u32 {
                p.access(
                    InstrAddr::new(addr),
                    Directive::Stride,
                    10 * u64::from(addr) + round,
                );
            }
            for addr in 2..6u32 {
                p.access(
                    InstrAddr::new(addr),
                    Directive::None,
                    round.wrapping_mul(0x9e3779b9) + u64::from(addr),
                );
            }
        }
        assert_eq!(
            p.stats().evictions,
            0,
            "untagged instructions must not pollute"
        );
        assert_eq!(p.occupancy(), 2);
        // Tagged strided instructions predict almost perfectly: 2 allocs,
        // 2 stride warm-ups.
        assert_eq!(p.stats().speculated_correct, 2 * 50 - 4);
    }

    #[test]
    fn fsm_warmup_takes_one_correct_prediction() {
        let mut p = tiny(ClassifierKind::two_bit_counter());
        let a = InstrAddr::new(0);
        // alloc (counter 1), wrong raw (stride 0) -> counter 0, then lock on.
        let seq: Vec<u64> = (0..10).map(|i| 2 * i).collect();
        let mut first_spec = None;
        for (i, &v) in seq.iter().enumerate() {
            let acc = p.access(a, Directive::None, v);
            if acc.speculated() && first_spec.is_none() {
                first_spec = Some(i);
            }
        }
        // Counter path: alloc@0 (c=1), @1 raw wrong (c=0), @2.. raw correct
        // (c=1,2 -> predicts from the access after c reaches 2).
        assert_eq!(first_spec, Some(4));
    }

    #[test]
    fn eviction_loses_history() {
        let mut p: TablePredictor<StrideEntry> =
            TablePredictor::new(TableGeometry::new(2, 1), ClassifierKind::Always);
        // addr 0 and addr 2 collide in set 0 of a direct-mapped 2-set table.
        p.access(InstrAddr::new(0), Directive::None, 100);
        p.access(InstrAddr::new(2), Directive::None, 500); // evicts 0
        let a = p.access(InstrAddr::new(0), Directive::None, 101);
        assert!(a.allocated, "re-allocated after eviction");
        assert_eq!(p.stats().evictions, 2);
    }

    #[test]
    fn reset_restores_empty_state() {
        let mut p = tiny(ClassifierKind::Always);
        p.access(InstrAddr::new(0), Directive::None, 1);
        p.reset();
        assert_eq!(p.occupancy(), 0);
        assert_eq!(p.stats().accesses, 0);
    }
}
