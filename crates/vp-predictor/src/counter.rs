//! Saturating confidence counters.

/// An n-state saturating counter used as the hardware classification
/// mechanism (§2.2 of the paper): incremented on a correct prediction,
/// decremented on an incorrect one, consulted before using a prediction.
///
/// The conventional configuration is 2-bit (`max = 3`) with predictions
/// taken at state ≥ 2 and new entries starting at 1.
///
/// # Examples
///
/// ```
/// use vp_predictor::SatCounter;
/// let mut c = SatCounter::two_bit();
/// assert!(!c.predicts());
/// c.record(true);
/// assert!(c.predicts());
/// c.record(false);
/// c.record(false);
/// assert!(!c.predicts());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SatCounter {
    value: u8,
    max: u8,
    threshold: u8,
}

impl SatCounter {
    /// Creates a counter saturating at `max`, predicting at
    /// `value >= threshold`, starting at `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `initial > max` or `threshold > max + 1` (a threshold of
    /// `max + 1` would never predict, which is allowed for experiments but
    /// anything above is a configuration bug).
    #[must_use]
    pub fn new(initial: u8, max: u8, threshold: u8) -> Self {
        assert!(initial <= max, "initial {initial} exceeds max {max}");
        assert!(threshold <= max + 1, "threshold {threshold} exceeds max+1");
        SatCounter {
            value: initial,
            max,
            threshold,
        }
    }

    /// The classic 2-bit counter: states 0–3, start 1, predict at ≥ 2.
    #[must_use]
    pub fn two_bit() -> Self {
        SatCounter::new(1, 3, 2)
    }

    /// Current state.
    #[must_use]
    pub fn value(&self) -> u8 {
        self.value
    }

    /// Whether the classifier currently recommends using the prediction.
    #[must_use]
    pub fn predicts(&self) -> bool {
        self.value >= self.threshold
    }

    /// Records a prediction outcome: saturating increment on `correct`,
    /// saturating decrement otherwise.
    pub fn record(&mut self, correct: bool) {
        if correct {
            self.value = (self.value + 1).min(self.max);
        } else {
            self.value = self.value.saturating_sub(1);
        }
    }
}

impl Default for SatCounter {
    fn default() -> Self {
        SatCounter::two_bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_at_both_ends() {
        let mut c = SatCounter::two_bit();
        for _ in 0..10 {
            c.record(true);
        }
        assert_eq!(c.value(), 3);
        for _ in 0..10 {
            c.record(false);
        }
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn two_bit_hysteresis() {
        let mut c = SatCounter::two_bit();
        c.record(true); // 2
        c.record(true); // 3
        c.record(false); // 2 — still predicting after one miss
        assert!(c.predicts());
        c.record(false); // 1
        assert!(!c.predicts());
    }

    #[test]
    fn never_predict_threshold_is_allowed() {
        let c = SatCounter::new(3, 3, 4);
        assert!(!c.predicts());
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn bad_initial_panics() {
        let _ = SatCounter::new(4, 3, 2);
    }
}
