#![warn(missing_docs)]

//! # vp-predictor — value predictors and classification mechanisms
//!
//! Implements the microarchitectural machinery of the paper (and of the
//! prior work it builds on, Lipasti & Shen's last-value predictor and
//! Gabbay & Mendelson's stride predictor):
//!
//! - [`entry::LastValueEntry`] / [`entry::StrideEntry`] — the two predictor
//!   cell types of the paper's Figure 2.1;
//! - [`SetAssocTable`] — the tagged, set-associative, LRU prediction table
//!   both predictors are organised as;
//! - [`SatCounter`] — the 2-bit saturating-counter **hardware classifier**
//!   baseline (§2.2);
//! - [`InfinitePredictor`] — an unbounded table, used to isolate
//!   classification accuracy from table pressure (§5.1);
//! - [`TablePredictor`] — the finite 512-entry 2-way configuration of §5.2;
//! - [`HybridPredictor`] — the stride + last-value split table the paper's
//!   conclusions propose, routed by opcode directive.
//!
//! Every predictor exposes one uniform operation, [`ValuePredictor::access`]:
//! present the dynamic instance of a value-producing instruction (static
//! address, its opcode directive, and the actual outcome value) and get back
//! what the hardware would have done — the raw prediction, the
//! classification decision, and correctness — while the predictor trains
//! itself. Cumulative [`PredictorStats`] make the experiment harness thin.
//!
//! ## Example
//!
//! ```
//! use vp_isa::{Directive, InstrAddr};
//! use vp_predictor::{PredictorConfig, ValuePredictor};
//!
//! // The paper's §5.2 baseline: 512-entry 2-way stride table + counters.
//! let mut p = PredictorConfig::spec_table_stride_fsm().build();
//! let a = InstrAddr::new(3);
//! for v in (0..100u64).map(|i| 10 + 4 * i) {
//!     p.access(a, Directive::None, v);
//! }
//! // After warm-up, the counter saturates and the strides predict correctly.
//! assert!(p.stats().speculated_correct > 90);
//! ```

pub mod attribution;
pub mod classifier;
pub mod config;
pub mod counter;
pub mod entry;
pub mod geometry;
pub mod hybrid;
pub mod infinite;
pub mod stats;
pub mod table;
pub mod table_predictor;

pub use attribution::{AttributionCause, AttributionTable, AttributionTotals, PcAttribution};
pub use classifier::ClassifierKind;
pub use config::PredictorConfig;
pub use counter::SatCounter;
pub use entry::{LastValueEntry, PredEntry, StrideEntry, TwoDeltaStrideEntry};
pub use geometry::TableGeometry;
pub use hybrid::HybridPredictor;
pub use infinite::InfinitePredictor;
pub use stats::{Access, PredictorStats};
pub use table::SetAssocTable;
pub use table_predictor::TablePredictor;

use vp_isa::{Directive, InstrAddr};

/// A value predictor plus classification mechanism, observed one dynamic
/// value-producing instruction at a time.
pub trait ValuePredictor {
    /// Presents one dynamic instance: the instruction at `addr` (carrying
    /// `directive` in its opcode) produced `actual`. Returns what the
    /// hardware did, and trains the predictor.
    fn access(&mut self, addr: InstrAddr, directive: Directive, actual: u64) -> Access;

    /// Presents a block of dynamic instances at once, discarding the
    /// per-access outcomes (cumulative [`ValuePredictor::stats`] still
    /// advance). Semantically identical to calling
    /// [`ValuePredictor::access`] in slice order.
    ///
    /// The default body is monomorphised per implementing type, so the
    /// inner `access` calls dispatch statically: fused sweep kernels pay
    /// one virtual call per *block* per predictor instead of one per
    /// event (see the fused sweep in `provp_core::replay::ReplayRequest`).
    ///
    /// # Panics
    ///
    /// Panics if the three slices have different lengths.
    fn access_batch(&mut self, addrs: &[InstrAddr], directives: &[Directive], values: &[u64]) {
        assert_eq!(addrs.len(), directives.len());
        assert_eq!(addrs.len(), values.len());
        for i in 0..addrs.len() {
            self.access(addrs[i], directives[i], values[i]);
        }
    }

    /// Cumulative statistics over every access so far.
    fn stats(&self) -> &PredictorStats;

    /// Forgets all dynamic state (table contents, counters, statistics).
    fn reset(&mut self);

    /// Number of currently occupied table entries (0 for predictors with
    /// no table state to report). Used by the observability layer to gauge
    /// table pressure; never consulted by the experiments themselves.
    fn occupancy(&self) -> usize {
        0
    }
}
