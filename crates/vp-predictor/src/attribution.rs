//! Per-static-instruction (per-PC) misprediction attribution.
//!
//! [`PredictorStats`] says *how often* a predictor was wrong; this module
//! says *where* and *why*. An [`AttributionTable`] rides alongside a
//! predictor during replay: every [`Access`] outcome is folded into a
//! per-PC record, and every raw-incorrect access is charged to exactly
//! one [`AttributionCause`] decided from a small per-PC shadow of the
//! value history (previous value, previous delta, allocation warm-up).
//!
//! The accounting obeys the same merge contract as
//! [`PredictorStats::merge`]: a PC-sharded replay partitions static
//! addresses across shards, each shard's table covers exactly its own
//! PCs, and [`AttributionTable::merge`] unions them into a table
//! **bit-identical** to a sequential replay's, at any shard count. The
//! table is exact (never sampled or pruned) during replay — top-K
//! selection happens only at report time ([`AttributionTable::top`]),
//! with a deterministic ordering — and its totals reconcile *exactly*
//! against the predictor's own statistics
//! ([`AttributionTable::reconcile`]), which the differential fuzzer
//! checks on every case.
//!
//! Memory stays bounded by program text size: per-PC slots live in a
//! dense array indexed by the static address (the same layout as
//! [`crate::InfinitePredictor`]), with a spill map for implausibly large
//! addresses.

use std::collections::HashMap;
use std::fmt;

use vp_isa::{Directive, InstrAddr};

use crate::{Access, PredictorStats};

/// Static addresses below this index live in the dense direct-indexed
/// array; anything above spills to a hash map (same policy as the
/// infinite predictor's storage).
const DENSE_LIMIT: usize = 1 << 20;

/// Why one raw-incorrect predictor access missed.
///
/// Every access whose raw prediction was wrong (or that found no entry)
/// is charged to exactly one cause, so per-PC cause counts always sum to
/// that PC's raw-incorrect count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttributionCause {
    /// No history yet: the access allocated the PC's first entry, or hit
    /// the entry allocated by the immediately preceding access (stride
    /// warm-up — one observation cannot establish a delta).
    Cold,
    /// The PC's entry had been evicted by set pressure and this access
    /// re-allocated (or missed) at a PC the table had tracked before.
    Conflict,
    /// The value stream broke its stride: the delta from the previous
    /// value changed, so a stride-trained entry predicted stale history.
    StrideBreak,
    /// The value used to repeat (delta zero) and now changed — the
    /// failure mode of last-value prediction on a churning producer.
    LastValueChurn,
    /// The runtime behaviour contradicts the profile directive: the
    /// value stream repeated under a `stride` tag, or kept a steady
    /// non-zero stride under a `last-value` tag.
    ClassMismatch,
    /// The predictor declined to track the PC at all (e.g. an untagged
    /// instruction under directive-gated allocation), so no prediction
    /// was possible.
    Uncovered,
}

impl AttributionCause {
    /// Every cause, in stable report order.
    pub const ALL: [AttributionCause; 6] = [
        AttributionCause::Cold,
        AttributionCause::Conflict,
        AttributionCause::StrideBreak,
        AttributionCause::LastValueChurn,
        AttributionCause::ClassMismatch,
        AttributionCause::Uncovered,
    ];

    /// Stable text name (used by the manifest's attribution section).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AttributionCause::Cold => "cold",
            AttributionCause::Conflict => "conflict",
            AttributionCause::StrideBreak => "stride-break",
            AttributionCause::LastValueChurn => "last-value-churn",
            AttributionCause::ClassMismatch => "class-mismatch",
            AttributionCause::Uncovered => "uncovered",
        }
    }

    /// Parses the text name.
    #[must_use]
    pub fn from_str_name(s: &str) -> Option<Self> {
        AttributionCause::ALL.into_iter().find(|c| c.as_str() == s)
    }

    fn index(self) -> usize {
        match self {
            AttributionCause::Cold => 0,
            AttributionCause::Conflict => 1,
            AttributionCause::StrideBreak => 2,
            AttributionCause::LastValueChurn => 3,
            AttributionCause::ClassMismatch => 4,
            AttributionCause::Uncovered => 5,
        }
    }
}

impl fmt::Display for AttributionCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Accumulated prediction outcomes of one static instruction.
///
/// All fields are additive counters over disjoint accesses, so records
/// merge exactly ([`PcAttribution::merge`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PcAttribution {
    /// The directive the PC carried (stable across a replay; merges
    /// assert it never changes).
    pub directive: Directive,
    /// Dynamic accesses observed at this PC.
    pub accesses: u64,
    /// Accesses that found a table entry.
    pub hits: u64,
    /// Raw predictions that matched the actual value.
    pub raw_correct: u64,
    /// Accesses where the machine actually used the prediction.
    pub speculated: u64,
    /// Used predictions that were correct.
    pub speculated_correct: u64,
    /// Raw-incorrect accesses charged per cause, indexed by
    /// [`AttributionCause::index`]; sums to `accesses - raw_correct`.
    pub causes: [u64; 6],
}

impl PcAttribution {
    /// Raw prediction accuracy at this PC, in `[0, 1]`.
    #[must_use]
    pub fn raw_accuracy(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.raw_correct as f64 / self.accesses as f64
        }
    }

    /// Used predictions that were wrong (each paid the misprediction
    /// penalty).
    #[must_use]
    pub fn speculated_incorrect(&self) -> u64 {
        self.speculated - self.speculated_correct
    }

    /// Count charged to one cause.
    #[must_use]
    pub fn cause(&self, cause: AttributionCause) -> u64 {
        self.causes[cause.index()]
    }

    /// The dominant cause at this PC (largest count; earlier cause in
    /// [`AttributionCause::ALL`] wins ties), or `None` when the PC never
    /// mispredicted.
    #[must_use]
    pub fn dominant_cause(&self) -> Option<AttributionCause> {
        let (mut best, mut best_count) = (None, 0u64);
        for cause in AttributionCause::ALL {
            let n = self.cause(cause);
            if n > best_count {
                best = Some(cause);
                best_count = n;
            }
        }
        best
    }

    /// Folds another record for the same PC (from another shard or run).
    ///
    /// # Panics
    ///
    /// Panics if the directives disagree — directives are static per
    /// replay, so a mismatch means records from different programs were
    /// mixed.
    pub fn merge(&mut self, other: &PcAttribution) {
        assert_eq!(
            self.directive, other.directive,
            "directive mismatch in attribution merge"
        );
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.raw_correct += other.raw_correct;
        self.speculated += other.speculated;
        self.speculated_correct += other.speculated_correct;
        for (slot, n) in self.causes.iter_mut().zip(other.causes) {
            *slot += n;
        }
    }
}

/// Per-PC shadow of the value history, used only to decide causes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Shadow {
    /// The previous actual value produced at this PC.
    prev_value: u64,
    /// Delta between the two most recent values (0 until two are seen).
    prev_delta: u64,
    /// At least two values observed (so `prev_delta` is meaningful).
    has_delta: bool,
    /// The previous access allocated (this one is the warm-up access).
    warming: bool,
    /// The PC has allocated a table entry at least once (a later
    /// allocation is a conflict re-allocation, not a cold start).
    allocated_before: bool,
}

/// Whole-table totals, summed over every tracked PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AttributionTotals {
    /// Static PCs tracked.
    pub pcs: u64,
    /// Dynamic accesses.
    pub accesses: u64,
    /// Accesses that found an entry.
    pub hits: u64,
    /// Raw-correct accesses.
    pub raw_correct: u64,
    /// Accesses that used the prediction.
    pub speculated: u64,
    /// Used-and-correct accesses.
    pub speculated_correct: u64,
    /// Cause counts, indexed by [`AttributionCause::index`].
    pub causes: [u64; 6],
}

impl AttributionTotals {
    /// Count charged to one cause.
    #[must_use]
    pub fn cause(&self, cause: AttributionCause) -> u64 {
        self.causes[cause.index()]
    }
}

/// A per-PC attribution table observed alongside one predictor replay.
///
/// See the module docs for the merge and reconciliation contracts.
#[derive(Debug, Clone, Default)]
pub struct AttributionTable {
    dense: Vec<Option<(PcAttribution, Shadow)>>,
    spill: HashMap<InstrAddr, (PcAttribution, Shadow)>,
    tracked: usize,
}

impl AttributionTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        AttributionTable::default()
    }

    /// Static PCs tracked so far.
    #[must_use]
    pub fn tracked(&self) -> usize {
        self.tracked
    }

    fn slot(&mut self, addr: InstrAddr) -> &mut (PcAttribution, Shadow) {
        let index = addr.index() as usize;
        let tracked = &mut self.tracked;
        if index >= DENSE_LIMIT {
            return self.spill.entry(addr).or_insert_with(|| {
                *tracked += 1;
                Default::default()
            });
        }
        if index >= self.dense.len() {
            self.dense.resize_with(index + 1, || None);
        }
        self.dense[index].get_or_insert_with(|| {
            *tracked += 1;
            Default::default()
        })
    }

    /// Folds one access outcome into the PC's record, charging a cause
    /// when the raw prediction missed. Call with exactly the arguments
    /// passed to / returned by [`crate::ValuePredictor::access`].
    pub fn observe(&mut self, addr: InstrAddr, directive: Directive, a: &Access, actual: u64) {
        let (record, shadow) = self.slot(addr);
        if record.accesses == 0 {
            record.directive = directive;
        }
        record.accesses += 1;
        record.hits += u64::from(a.hit);
        record.raw_correct += u64::from(a.correct);
        record.speculated += u64::from(a.speculated());
        record.speculated_correct += u64::from(a.speculated_correct());
        if !a.correct {
            let cause = decide_cause(directive, a, actual, shadow);
            record.causes[cause.index()] += 1;
        }
        // Advance the shadow history.
        if record.accesses >= 2 {
            shadow.prev_delta = actual.wrapping_sub(shadow.prev_value);
            shadow.has_delta = true;
        }
        shadow.prev_value = actual;
        shadow.warming = a.allocated;
        shadow.allocated_before |= a.allocated;
    }

    /// Iterates every tracked PC in ascending address order (the
    /// deterministic export order).
    pub fn entries(&self) -> impl Iterator<Item = (InstrAddr, &PcAttribution)> + '_ {
        let dense = self
            .dense
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| Some((InstrAddr::new(i as u32), &slot.as_ref()?.0)));
        let mut spilled: Vec<_> = self.spill.iter().map(|(&a, (r, _))| (a, r)).collect();
        spilled.sort_by_key(|&(a, _)| a);
        dense.chain(spilled)
    }

    /// Whole-table totals (exact — never affected by top-K selection).
    #[must_use]
    pub fn totals(&self) -> AttributionTotals {
        let mut t = AttributionTotals::default();
        for (_, r) in self.entries() {
            t.pcs += 1;
            t.accesses += r.accesses;
            t.hits += r.hits;
            t.raw_correct += r.raw_correct;
            t.speculated += r.speculated;
            t.speculated_correct += r.speculated_correct;
            for (slot, n) in t.causes.iter_mut().zip(r.causes) {
                *slot += n;
            }
        }
        t
    }

    /// The `k` hottest mispredicting PCs, ranked by speculated-incorrect
    /// count, then raw-incorrect count, then ascending address (a total
    /// order, so the selection is deterministic at any shard count).
    #[must_use]
    pub fn top(&self, k: usize) -> Vec<(InstrAddr, PcAttribution)> {
        let mut rows: Vec<(InstrAddr, PcAttribution)> =
            self.entries().map(|(a, r)| (a, *r)).collect();
        rows.sort_by(|(aa, ar), (ba, br)| {
            br.speculated_incorrect()
                .cmp(&ar.speculated_incorrect())
                .then_with(|| (br.accesses - br.raw_correct).cmp(&(ar.accesses - ar.raw_correct)))
                .then_with(|| aa.cmp(ba))
        });
        rows.truncate(k);
        rows
    }

    /// Unions another shard's table into this one. PC-sharded replay
    /// partitions addresses across shards, so a PC appears in at most
    /// one input; records for a PC present in both (merged tables,
    /// repeated runs) add field-wise.
    pub fn merge(&mut self, other: &AttributionTable) {
        for (addr, record) in other.entries() {
            let (slot, _) = self.slot(addr);
            if slot.accesses == 0 {
                *slot = *record;
            } else {
                slot.merge(record);
            }
        }
    }

    /// Checks that the table's totals reproduce `stats` exactly — every
    /// access accounted, every raw miss charged to exactly one cause.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first mismatching
    /// quantity.
    pub fn reconcile(&self, stats: &PredictorStats) -> Result<(), String> {
        let t = self.totals();
        let checks = [
            ("accesses", t.accesses, stats.accesses),
            ("hits", t.hits, stats.hits),
            ("raw_correct", t.raw_correct, stats.raw_correct),
            ("speculated", t.speculated, stats.speculated),
            (
                "speculated_correct",
                t.speculated_correct,
                stats.speculated_correct,
            ),
            (
                "cause total",
                t.causes.iter().sum::<u64>(),
                stats.raw_incorrect(),
            ),
        ];
        for (name, attributed, reference) in checks {
            if attributed != reference {
                return Err(format!(
                    "attribution {name} = {attributed} but predictor stats say {reference}"
                ));
            }
        }
        Ok(())
    }
}

impl PartialEq for AttributionTable {
    /// Tables are equal when they track the same PCs with the same
    /// records (shadow history is replay scaffolding, not a result, and
    /// is excluded — merged tables carry no meaningful shadow).
    fn eq(&self, other: &AttributionTable) -> bool {
        self.tracked == other.tracked && self.entries().eq(other.entries())
    }
}

/// Charges one raw-incorrect access to a cause, from the access outcome
/// and the PC's shadow history (*before* this access is folded in).
fn decide_cause(
    directive: Directive,
    a: &Access,
    actual: u64,
    shadow: &Shadow,
) -> AttributionCause {
    if !a.hit {
        if !a.allocated {
            // The predictor refused to track this PC (directive-gated
            // allocation, or a non-allocating miss path).
            return AttributionCause::Uncovered;
        }
        return if shadow.allocated_before {
            AttributionCause::Conflict
        } else {
            AttributionCause::Cold
        };
    }
    // A hit that predicted the wrong value.
    if shadow.warming || !shadow.has_delta {
        // The entry was allocated by the immediately preceding access
        // (or the PC has a single observation): there was no history to
        // predict from yet.
        return AttributionCause::Cold;
    }
    let delta = actual.wrapping_sub(shadow.prev_value);
    if delta == 0 {
        // The value repeated — trivially last-value-predictable — and
        // the prediction still missed (a stride entry extrapolated past
        // it). Under a `stride` tag that is the profile's mistake.
        return if directive == Directive::Stride {
            AttributionCause::ClassMismatch
        } else {
            AttributionCause::StrideBreak
        };
    }
    if delta == shadow.prev_delta {
        // A steady non-zero stride a stride predictor would catch; the
        // miss means this predictor (or this entry's training state)
        // could not. Under a `last-value` tag that is the profile's
        // mistake.
        return if directive == Directive::LastValue {
            AttributionCause::ClassMismatch
        } else {
            AttributionCause::StrideBreak
        };
    }
    if shadow.prev_delta == 0 {
        // The value had been repeating and now churned away.
        AttributionCause::LastValueChurn
    } else {
        AttributionCause::StrideBreak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassifierKind, PredictorConfig, TableGeometry};

    /// Replays `values` at one PC through `config`, observing every
    /// access into a fresh table.
    fn replay_one_pc(
        config: &PredictorConfig,
        directive: Directive,
        values: &[u64],
    ) -> (AttributionTable, PredictorStats) {
        let mut p = config.build();
        let mut table = AttributionTable::new();
        let addr = InstrAddr::new(7);
        for &v in values {
            let a = p.access(addr, directive, v);
            table.observe(addr, directive, &a, v);
        }
        (table, *p.stats())
    }

    fn infinite_stride() -> PredictorConfig {
        PredictorConfig::InfiniteStride {
            classifier: ClassifierKind::Always,
        }
    }

    #[test]
    fn cause_names_round_trip() {
        for c in AttributionCause::ALL {
            assert_eq!(AttributionCause::from_str_name(c.as_str()), Some(c));
        }
        assert_eq!(AttributionCause::from_str_name("bogus"), None);
    }

    #[test]
    fn steady_stride_charges_only_warmup() {
        let values: Vec<u64> = (0..20).map(|i| 10 + 4 * i).collect();
        let (table, stats) = replay_one_pc(&infinite_stride(), Directive::None, &values);
        table.reconcile(&stats).unwrap();
        let t = table.totals();
        // Access 1 allocates (cold), access 2 hits with no delta history
        // (cold warm-up); everything after predicts correctly.
        assert_eq!(t.cause(AttributionCause::Cold), 2);
        assert_eq!(t.causes.iter().sum::<u64>(), 2);
    }

    #[test]
    fn broken_stride_charges_stride_break() {
        // Warm up a stride of 4, then jump irregularly.
        let values = [0u64, 4, 8, 12, 100, 104, 300];
        let (table, stats) = replay_one_pc(&infinite_stride(), Directive::None, &values);
        table.reconcile(&stats).unwrap();
        let t = table.totals();
        assert!(t.cause(AttributionCause::StrideBreak) >= 2, "{t:?}");
        assert_eq!(t.cause(AttributionCause::ClassMismatch), 0);
    }

    #[test]
    fn repeating_value_under_stride_tag_is_a_class_mismatch() {
        // A stride entry trained on 0,8 extrapolates 16; the value
        // instead repeats 8 — trivially last-value-predictable, so the
        // `stride` tag is wrong.
        let values = [0u64, 8, 8, 8];
        let (table, stats) = replay_one_pc(&infinite_stride(), Directive::Stride, &values);
        table.reconcile(&stats).unwrap();
        let t = table.totals();
        assert!(t.cause(AttributionCause::ClassMismatch) >= 1, "{t:?}");
    }

    #[test]
    fn churning_last_value_charges_churn() {
        let config = PredictorConfig::InfiniteLastValue {
            classifier: ClassifierKind::Always,
        };
        // Repeats establish delta 0, then every value differs.
        let values = [5u64, 5, 5, 9, 13, 40];
        let (table, stats) = replay_one_pc(&config, Directive::None, &values);
        table.reconcile(&stats).unwrap();
        let t = table.totals();
        assert!(t.cause(AttributionCause::LastValueChurn) >= 1, "{t:?}");
    }

    #[test]
    fn steady_stride_under_last_value_tag_is_a_class_mismatch() {
        let config = PredictorConfig::InfiniteLastValue {
            classifier: ClassifierKind::Always,
        };
        let values: Vec<u64> = (0..10).map(|i| 4 * i).collect();
        let (table, stats) = replay_one_pc(&config, Directive::LastValue, &values);
        table.reconcile(&stats).unwrap();
        let t = table.totals();
        // After warm-up, every miss sees a steady non-zero stride under
        // a last-value tag.
        assert!(t.cause(AttributionCause::ClassMismatch) >= 6, "{t:?}");
    }

    #[test]
    fn untracked_pcs_charge_uncovered() {
        // The hybrid refuses untagged instructions entirely.
        let config = PredictorConfig::Hybrid {
            stride: TableGeometry::new(8, 2),
            last_value: TableGeometry::new(8, 2),
        };
        let values = [1u64, 2, 3, 4];
        let (table, stats) = replay_one_pc(&config, Directive::None, &values);
        table.reconcile(&stats).unwrap();
        let t = table.totals();
        assert_eq!(t.cause(AttributionCause::Uncovered), 4, "{t:?}");
    }

    #[test]
    fn eviction_reallocation_charges_conflict() {
        // A 1-entry direct-mapped table: two PCs in the same set thrash.
        let config = PredictorConfig::TableStride {
            geometry: TableGeometry::new(1, 1),
            classifier: ClassifierKind::Always,
        };
        let mut p = config.build();
        let mut table = AttributionTable::new();
        let (a0, a1) = (InstrAddr::new(0), InstrAddr::new(1));
        for i in 0..6u64 {
            let a = p.access(a0, Directive::None, i);
            table.observe(a0, Directive::None, &a, i);
            let a = p.access(a1, Directive::None, 100 + i);
            table.observe(a1, Directive::None, &a, 100 + i);
        }
        table.reconcile(p.stats()).unwrap();
        let t = table.totals();
        assert!(t.cause(AttributionCause::Conflict) >= 8, "{t:?}");
        // Exactly one cold start per PC.
        assert_eq!(t.cause(AttributionCause::Cold), 2, "{t:?}");
    }

    #[test]
    fn top_ranks_by_speculated_incorrect_then_address() {
        let mut table = AttributionTable::new();
        let charge = |table: &mut AttributionTable, addr: u32, wrong: u64| {
            let a = Access {
                hit: true,
                recommended: true,
                correct: false,
                predicted: Some(0),
                ..Access::default()
            };
            for i in 0..wrong {
                table.observe(InstrAddr::new(addr), Directive::None, &a, i * 3 + 1);
            }
        };
        charge(&mut table, 5, 2);
        charge(&mut table, 3, 9);
        charge(&mut table, 8, 9);
        let top = table.top(2);
        assert_eq!(top.len(), 2);
        // 3 and 8 tie at 9 speculated-incorrect; the lower address wins.
        assert_eq!(top[0].0, InstrAddr::new(3));
        assert_eq!(top[1].0, InstrAddr::new(8));
        assert_eq!(table.top(10).len(), 3);
    }

    #[test]
    fn merge_of_disjoint_tables_matches_sequential() {
        let values: Vec<u64> = (0..40).map(|i| i * i % 23).collect();
        let config = infinite_stride();
        // Sequential: both PCs through one predictor + one table.
        let mut p = config.build();
        let mut seq = AttributionTable::new();
        for (i, &v) in values.iter().enumerate() {
            let addr = InstrAddr::new((i % 2) as u32);
            let a = p.access(addr, Directive::None, v);
            seq.observe(addr, Directive::None, &a, v);
        }
        // Sharded: one predictor + table per PC (the infinite predictor
        // keys state by address, so this is a legal partition).
        let mut merged = AttributionTable::new();
        for pc in 0..2u32 {
            let mut sp = config.build();
            let mut shard = AttributionTable::new();
            for (i, &v) in values.iter().enumerate() {
                if i % 2 == pc as usize {
                    let addr = InstrAddr::new(pc);
                    let a = sp.access(addr, Directive::None, v);
                    shard.observe(addr, Directive::None, &a, v);
                }
            }
            merged.merge(&shard);
        }
        assert_eq!(merged, seq);
        assert_eq!(merged.totals(), seq.totals());
    }

    #[test]
    fn reconcile_reports_the_mismatching_field() {
        let (table, mut stats) = replay_one_pc(&infinite_stride(), Directive::None, &[1, 2, 3]);
        table.reconcile(&stats).unwrap();
        stats.hits += 1;
        let err = table.reconcile(&stats).unwrap_err();
        assert!(err.contains("hits"), "{err}");
    }

    #[test]
    fn dominant_cause_prefers_the_largest_count() {
        let mut r = PcAttribution::default();
        assert_eq!(r.dominant_cause(), None);
        r.causes[AttributionCause::StrideBreak.index()] = 3;
        r.causes[AttributionCause::Cold.index()] = 1;
        assert_eq!(r.dominant_cause(), Some(AttributionCause::StrideBreak));
    }
}
