//! The hybrid stride + last-value predictor proposed by the paper.
//!
//! Section 3.1, observation 4: most value-predictable instructions reuse
//! their last value, and only a small subset shows true strides — so a
//! stride field on every entry is mostly wasted. The paper proposes "a
//! relatively small stride prediction table only for the instructions that
//! exhibit stride patterns and a larger table for the instructions that tend
//! to reproduce their last value", with the opcode directive steering each
//! instruction to the right table.

use vp_isa::{Directive, InstrAddr};

use crate::{
    Access, ClassifierKind, LastValueEntry, PredictorStats, StrideEntry, TableGeometry,
    TablePredictor, ValuePredictor,
};

/// A two-table hybrid predictor routed by opcode directive:
/// `stride`-tagged instructions use a stride table, `last-value`-tagged
/// instructions use a last-value table, untagged instructions use neither.
///
/// Classification is inherently directive-based; there are no counters.
///
/// # Examples
///
/// ```
/// use vp_isa::{Directive, InstrAddr};
/// use vp_predictor::{HybridPredictor, TableGeometry, ValuePredictor};
///
/// let mut p = HybridPredictor::new(
///     TableGeometry::new(128, 2),  // small stride side
///     TableGeometry::new(512, 2),  // larger last-value side
/// );
/// p.access(InstrAddr::new(0), Directive::Stride, 4);
/// p.access(InstrAddr::new(1), Directive::LastValue, 7);
/// assert_eq!(p.stride_occupancy(), 1);
/// assert_eq!(p.last_value_occupancy(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct HybridPredictor {
    stride: TablePredictor<StrideEntry>,
    last_value: TablePredictor<LastValueEntry>,
    stats: PredictorStats,
}

impl HybridPredictor {
    /// Creates a hybrid with the given per-side geometries.
    #[must_use]
    pub fn new(stride: TableGeometry, last_value: TableGeometry) -> Self {
        HybridPredictor {
            stride: TablePredictor::new(stride, ClassifierKind::Directive),
            last_value: TablePredictor::new(last_value, ClassifierKind::Directive),
            stats: PredictorStats::new(),
        }
    }

    /// Occupied entries on the stride side.
    #[must_use]
    pub fn stride_occupancy(&self) -> usize {
        self.stride.occupancy()
    }

    /// Occupied entries on the last-value side.
    #[must_use]
    pub fn last_value_occupancy(&self) -> usize {
        self.last_value.occupancy()
    }

    /// Statistics of the stride side alone.
    #[must_use]
    pub fn stride_stats(&self) -> &PredictorStats {
        self.stride.stats()
    }

    /// Statistics of the last-value side alone.
    #[must_use]
    pub fn last_value_stats(&self) -> &PredictorStats {
        self.last_value.stats()
    }
}

impl ValuePredictor for HybridPredictor {
    fn access(&mut self, addr: InstrAddr, directive: Directive, actual: u64) -> Access {
        let a = match directive {
            // Route by tag; each side sees the access as a tagged one.
            Directive::Stride => self.stride.access(addr, directive, actual),
            Directive::LastValue => self.last_value.access(addr, directive, actual),
            Directive::None => Access::default(),
        };
        self.stats.record_classified(directive, &a);
        self.stats.set_conflicts =
            self.stride.stats().set_conflicts + self.last_value.stats().set_conflicts;
        a
    }

    fn stats(&self) -> &PredictorStats {
        &self.stats
    }

    fn reset(&mut self) {
        self.stride.reset();
        self.last_value.reset();
        self.stats = PredictorStats::new();
    }

    fn occupancy(&self) -> usize {
        self.stride_occupancy() + self.last_value_occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hybrid() -> HybridPredictor {
        HybridPredictor::new(TableGeometry::new(4, 2), TableGeometry::new(8, 2))
    }

    #[test]
    fn routes_by_directive() {
        let mut p = hybrid();
        for i in 0..10u64 {
            p.access(InstrAddr::new(0), Directive::Stride, 3 * i);
            p.access(InstrAddr::new(1), Directive::LastValue, 42);
            p.access(InstrAddr::new(2), Directive::None, i);
        }
        assert_eq!(p.stride_occupancy(), 1);
        assert_eq!(p.last_value_occupancy(), 1);
        // Untagged instruction was recorded but touched no table.
        assert_eq!(p.stats().accesses, 30);
        assert_eq!(p.stats().allocations, 2);
    }

    #[test]
    fn stride_side_catches_strides_lv_side_catches_repeats() {
        let mut p = hybrid();
        for i in 0..50u64 {
            p.access(InstrAddr::new(0), Directive::Stride, 8 + 2 * i);
            p.access(InstrAddr::new(1), Directive::LastValue, 99);
        }
        // Stride side: misses alloc + stride warm-up = 48 correct.
        assert_eq!(p.stride_stats().speculated_correct, 48);
        // LV side: misses only the allocation = 49 correct.
        assert_eq!(p.last_value_stats().speculated_correct, 49);
        assert_eq!(p.stats().speculated_correct, 97);
    }

    #[test]
    fn a_stride_pattern_on_the_lv_side_fails() {
        // Mis-tagging matters: this is why the compiler consults the stride
        // efficiency ratio before choosing the directive type.
        let mut p = hybrid();
        for i in 0..20u64 {
            p.access(InstrAddr::new(0), Directive::LastValue, 5 * i);
        }
        assert_eq!(p.stats().speculated_correct, 0);
    }

    #[test]
    fn reset_clears_both_sides() {
        let mut p = hybrid();
        p.access(InstrAddr::new(0), Directive::Stride, 1);
        p.access(InstrAddr::new(1), Directive::LastValue, 1);
        p.reset();
        assert_eq!(p.stride_occupancy(), 0);
        assert_eq!(p.last_value_occupancy(), 0);
        assert_eq!(p.stats().accesses, 0);
    }
}
