//! An unbounded predictor: one entry per static instruction, never evicted.
//!
//! Section 5.1 of the paper isolates *classification* quality from *table
//! pressure* by assuming "each of the classification mechanisms has an
//! infinite prediction table … and that the hardware-based classification
//! mechanism also maintains an infinite set of saturated counters". This
//! type is that configuration.

use std::collections::HashMap;

use vp_isa::{Directive, InstrAddr};

use crate::{Access, ClassifierKind, PredEntry, PredictorStats, SatCounter, ValuePredictor};

/// Static addresses below this index live in the dense direct-indexed
/// array; anything above (possible through the public API, never produced
/// by the workloads, whose static addresses index the program text) spills
/// to a hash map so a single absurd address cannot balloon the array.
const DENSE_LIMIT: usize = 1 << 20;

/// An infinite prediction table over entry type `E`, with a pluggable
/// classification mechanism.
///
/// Since static addresses are indices into a program's text, per-address
/// state lives in a dense array indexed directly by the address — a hot
/// replay loop touches it without hashing. (Addresses past an implausibly
/// large bound fall back to a spill map, so the array tracks the program
/// size rather than the address space.)
///
/// # Examples
///
/// Saturating-counter classification over a stride predictor:
///
/// ```
/// use vp_isa::{Directive, InstrAddr};
/// use vp_predictor::{ClassifierKind, InfinitePredictor, StrideEntry, ValuePredictor};
///
/// let mut p: InfinitePredictor<StrideEntry> =
///     InfinitePredictor::new(ClassifierKind::two_bit_counter());
/// for v in 0..20u64 {
///     p.access(InstrAddr::new(1), Directive::None, 100 + v);
/// }
/// assert!(p.stats().speculated_correct > 0);
/// ```
#[derive(Debug, Clone)]
pub struct InfinitePredictor<E> {
    classifier: ClassifierKind,
    dense: Vec<Option<(E, SatCounter)>>,
    spill: HashMap<InstrAddr, (E, SatCounter)>,
    tracked: usize,
    stats: PredictorStats,
}

impl<E: PredEntry> InfinitePredictor<E> {
    /// Creates an empty infinite predictor.
    #[must_use]
    pub fn new(classifier: ClassifierKind) -> Self {
        InfinitePredictor {
            classifier,
            dense: Vec::new(),
            spill: HashMap::new(),
            tracked: 0,
            stats: PredictorStats::new(),
        }
    }

    /// Number of static instructions tracked so far.
    #[must_use]
    pub fn tracked(&self) -> usize {
        self.tracked
    }

    fn counter_template(&self) -> SatCounter {
        match self.classifier {
            ClassifierKind::SatCounter { template } => template,
            _ => SatCounter::two_bit(),
        }
    }
}

impl<E: PredEntry> ValuePredictor for InfinitePredictor<E> {
    fn access(&mut self, addr: InstrAddr, directive: Directive, actual: u64) -> Access {
        let index = addr.index() as usize;
        if index >= DENSE_LIMIT {
            return self.access_spill(addr, directive, actual);
        }
        let mut a = Access::default();
        let template = self.counter_template();
        if index >= self.dense.len() {
            self.dense.resize_with(index + 1, || None);
        }
        let slot = &mut self.dense[index];
        match slot {
            Some((entry, counter)) => {
                a.hit = true;
                let predicted = entry.predict();
                a.predicted = Some(predicted);
                a.correct = predicted == actual;
                a.nonzero_stride = entry.nonzero_stride();
                a.recommended = match self.classifier {
                    ClassifierKind::SatCounter { .. } => counter.predicts(),
                    ClassifierKind::Directive => directive.is_predictable(),
                    ClassifierKind::Always => true,
                };
                counter.record(a.correct);
                entry.train(actual);
            }
            None => {
                // First dynamic occurrence: nothing to predict. The infinite
                // table tracks *every* producer regardless of classification
                // so both mechanisms see identical raw predictions.
                a.recommended = match self.classifier {
                    ClassifierKind::SatCounter { .. } | ClassifierKind::Always => false,
                    ClassifierKind::Directive => directive.is_predictable(),
                };
                a.allocated = true;
                *slot = Some((E::allocate(actual), template));
                self.tracked += 1;
            }
        }
        self.stats.record_classified(directive, &a);
        a
    }

    fn stats(&self) -> &PredictorStats {
        &self.stats
    }

    fn reset(&mut self) {
        self.dense.clear();
        self.spill.clear();
        self.tracked = 0;
        self.stats = PredictorStats::new();
    }

    fn occupancy(&self) -> usize {
        self.tracked
    }
}

impl<E: PredEntry> InfinitePredictor<E> {
    /// The (cold) spill-map flavour of [`ValuePredictor::access`], for
    /// addresses past [`DENSE_LIMIT`]. Behaviourally identical to the
    /// dense path.
    fn access_spill(&mut self, addr: InstrAddr, directive: Directive, actual: u64) -> Access {
        let mut a = Access::default();
        match self.spill.get_mut(&addr) {
            Some((entry, counter)) => {
                a.hit = true;
                let predicted = entry.predict();
                a.predicted = Some(predicted);
                a.correct = predicted == actual;
                a.nonzero_stride = entry.nonzero_stride();
                a.recommended = match self.classifier {
                    ClassifierKind::SatCounter { .. } => counter.predicts(),
                    ClassifierKind::Directive => directive.is_predictable(),
                    ClassifierKind::Always => true,
                };
                counter.record(a.correct);
                entry.train(actual);
            }
            None => {
                a.recommended = match self.classifier {
                    ClassifierKind::SatCounter { .. } | ClassifierKind::Always => false,
                    ClassifierKind::Directive => directive.is_predictable(),
                };
                a.allocated = true;
                self.spill
                    .insert(addr, (E::allocate(actual), self.counter_template()));
                self.tracked += 1;
            }
        }
        self.stats.record_classified(directive, &a);
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LastValueEntry, StrideEntry};

    fn feed<E: PredEntry>(
        p: &mut InfinitePredictor<E>,
        addr: u32,
        dir: Directive,
        values: impl IntoIterator<Item = u64>,
    ) {
        for v in values {
            p.access(InstrAddr::new(addr), dir, v);
        }
    }

    #[test]
    fn stride_sequence_predicts_after_two_observations() {
        let mut p: InfinitePredictor<StrideEntry> = InfinitePredictor::new(ClassifierKind::Always);
        feed(&mut p, 0, Directive::None, (0..10).map(|i| 5 + 3 * i));
        // First access allocates; second access predicts 5 (stride 0) and is
        // wrong; the remaining 8 are correct.
        assert_eq!(p.stats().raw_correct, 8);
        assert_eq!(p.stats().nonzero_stride_correct, 8);
    }

    #[test]
    fn last_value_entry_never_reports_stride() {
        let mut p: InfinitePredictor<LastValueEntry> =
            InfinitePredictor::new(ClassifierKind::Always);
        feed(&mut p, 0, Directive::None, [7, 7, 7, 7]);
        assert_eq!(p.stats().raw_correct, 3);
        assert_eq!(p.stats().nonzero_stride_correct, 0);
    }

    #[test]
    fn counters_suppress_an_unpredictable_instruction() {
        let mut p: InfinitePredictor<StrideEntry> =
            InfinitePredictor::new(ClassifierKind::two_bit_counter());
        // Quadratic values: the stride changes on every step, so raw
        // predictions are always wrong, the counter stays at/below 1, and
        // speculation never happens.
        feed(
            &mut p,
            0,
            Directive::None,
            (0..50).map(|i: u64| i.wrapping_mul(i).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        );
        assert_eq!(p.stats().speculated, 0);
        assert!(p.stats().misprediction_classification_accuracy() > 0.99);
    }

    #[test]
    fn directive_classifier_follows_the_tag_not_the_history() {
        let mut p: InfinitePredictor<StrideEntry> =
            InfinitePredictor::new(ClassifierKind::Directive);
        // Tagged instruction with garbage values: every hit speculates.
        feed(
            &mut p,
            0,
            Directive::Stride,
            (0..10).map(|i: u64| i.wrapping_mul(0x12345677)),
        );
        assert_eq!(p.stats().speculated, 9);
        // Untagged instruction with a perfect stride: never speculates.
        feed(&mut p, 1, Directive::None, (0..10).map(|i| 4 * i));
        assert_eq!(p.stats().speculated, 9);
        // ... but the raw prediction was evaluated identically.
        assert!(p.stats().raw_correct >= 8);
    }

    #[test]
    fn distinct_addresses_have_distinct_state() {
        let mut p: InfinitePredictor<LastValueEntry> =
            InfinitePredictor::new(ClassifierKind::Always);
        feed(&mut p, 0, Directive::None, [1, 1]);
        feed(&mut p, 1, Directive::None, [2, 2]);
        assert_eq!(p.tracked(), 2);
        assert_eq!(p.stats().raw_correct, 2);
    }

    #[test]
    fn reset_clears_state_and_stats() {
        let mut p: InfinitePredictor<StrideEntry> = InfinitePredictor::new(ClassifierKind::Always);
        feed(&mut p, 0, Directive::None, [1, 2, 3]);
        p.reset();
        assert_eq!(p.tracked(), 0);
        assert_eq!(p.stats().accesses, 0);
    }
}
