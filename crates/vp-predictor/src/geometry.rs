//! Prediction-table geometry.

use std::fmt;

/// Size and associativity of a prediction table.
///
/// The paper's finite-table experiments (§5.2, §5.3) use 512 entries,
/// 2-way set associative — available as [`TableGeometry::SPEC_512_2WAY`].
///
/// # Examples
///
/// ```
/// use vp_predictor::TableGeometry;
/// let g = TableGeometry::new(512, 2);
/// assert_eq!(g.sets(), 256);
/// assert_eq!(g.set_of(513), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableGeometry {
    entries: usize,
    ways: usize,
}

impl TableGeometry {
    /// The paper's evaluation geometry: 512 entries, 2-way.
    pub const SPEC_512_2WAY: TableGeometry = TableGeometry {
        entries: 512,
        ways: 2,
    };

    /// Creates a geometry of `entries` total entries with `ways`-way sets.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero or `entries` is not a multiple of
    /// `ways`.
    #[must_use]
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(entries > 0 && ways > 0, "geometry must be non-empty");
        assert!(
            entries.is_multiple_of(ways),
            "{entries} entries not divisible into {ways}-way sets"
        );
        TableGeometry { entries, ways }
    }

    /// A direct-mapped geometry.
    #[must_use]
    pub fn direct_mapped(entries: usize) -> Self {
        TableGeometry::new(entries, 1)
    }

    /// A fully-associative geometry.
    #[must_use]
    pub fn fully_associative(entries: usize) -> Self {
        TableGeometry::new(entries, entries)
    }

    /// Total entries.
    #[must_use]
    pub fn entries(self) -> usize {
        self.entries
    }

    /// Ways per set.
    #[must_use]
    pub fn ways(self) -> usize {
        self.ways
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(self) -> usize {
        self.entries / self.ways
    }

    /// The set a key maps to (modulo indexing, as in the paper's Figure 2.1
    /// "index = low-order instruction address bits").
    #[must_use]
    pub fn set_of(self, key: u64) -> usize {
        (key % self.sets() as u64) as usize
    }
}

impl fmt::Display for TableGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-entry {}-way", self.entries, self.ways)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_geometry_matches_paper() {
        let g = TableGeometry::SPEC_512_2WAY;
        assert_eq!(g.entries(), 512);
        assert_eq!(g.ways(), 2);
        assert_eq!(g.sets(), 256);
    }

    #[test]
    fn set_mapping_is_modulo() {
        let g = TableGeometry::new(8, 2);
        assert_eq!(g.sets(), 4);
        assert_eq!(g.set_of(0), 0);
        assert_eq!(g.set_of(5), 1);
        assert_eq!(g.set_of(7), 3);
    }

    #[test]
    fn degenerate_geometries() {
        assert_eq!(TableGeometry::direct_mapped(16).sets(), 16);
        assert_eq!(TableGeometry::fully_associative(16).sets(), 1);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_geometry_panics() {
        let _ = TableGeometry::new(10, 4);
    }
}
