//! Trace-once / analyze-many memoisation of simulation traces.
//!
//! Every experiment in the evaluation re-executes the same small set of
//! `(workload, input set, limits)` runs — the reference input alone is
//! consumed by the characterisation tables, every predictor configuration
//! and every ILP machine. A [`TraceStore`] runs the functional simulation
//! **once** per key, keeps the retirement trace ([`vp_sim::Trace`]) in an
//! in-memory LRU keyed by [`TraceKey`], and optionally spills traces to
//! disk in the compact `vp_sim::record` binary format so later processes
//! can skip the simulation entirely.
//!
//! Correctness rests on one ISA property: prediction *directives* never
//! change architectural semantics. A trace captured from the bare program
//! therefore replays bit-identically against any directive-annotated
//! variant of the same program, which is exactly the decoupling the
//! evaluation needs — simulate once, then replay into profilers,
//! predictors and the ILP machine under any annotation threshold.
//!
//! The store is fully thread-safe: concurrent requests for the *same* key
//! deduplicate in flight (one thread simulates, the rest wait on a
//! condition variable), and requests for different keys proceed in
//! parallel because the lock is never held across a simulation.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use vp_isa::Program;
use vp_sim::{RunLimits, Trace, Tracer};
use vp_workloads::{InputSet, Workload, WorkloadKind};

/// Identity of one memoised simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// The workload.
    pub kind: WorkloadKind,
    /// The input set it ran under.
    pub input: InputSet,
    /// The run budget (part of the key: a truncated run has a different
    /// trace).
    pub max_instructions: u64,
}

impl TraceKey {
    /// The key for `kind` run under `input` with `limits`.
    #[must_use]
    pub fn new(kind: WorkloadKind, input: InputSet, limits: RunLimits) -> Self {
        TraceKey {
            kind,
            input,
            max_instructions: limits.max_instructions,
        }
    }

    /// The spill file name for this key (stable across processes).
    #[must_use]
    pub fn file_name(&self) -> String {
        format!(
            "{}-{}-{}.trace",
            self.kind.name(),
            self.input,
            self.max_instructions
        )
    }
}

impl fmt::Display for TraceKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}@{}",
            self.kind.name(),
            self.input,
            self.max_instructions
        )
    }
}

/// Counters describing how the store has been used.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStoreStats {
    /// Requests served from the in-memory LRU.
    pub memory_hits: u64,
    /// Requests served by deserialising a spilled trace from disk.
    pub disk_hits: u64,
    /// Requests that ran the functional simulation.
    pub captures: u64,
    /// Traces dropped from memory by the LRU byte budget.
    pub evictions: u64,
}

impl TraceStoreStats {
    /// Total requests.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.memory_hits + self.disk_hits + self.captures
    }
}

struct Entry {
    trace: Arc<Trace>,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct State {
    entries: HashMap<TraceKey, Entry>,
    in_flight: HashSet<TraceKey>,
    bytes: usize,
    tick: u64,
}

/// A thread-safe, byte-budgeted LRU of simulation traces with optional
/// disk spill.
///
/// # Examples
///
/// ```
/// use provp_core::trace_store::TraceStore;
/// use vp_sim::{InstrMix, RunLimits};
/// use vp_workloads::{InputSet, Workload, WorkloadKind};
///
/// let store = TraceStore::new();
/// let kind = WorkloadKind::Compress;
/// let trace = store.get(kind, InputSet::reference(), RunLimits::default());
/// // Second request: served from memory, no simulation.
/// let again = store.get(kind, InputSet::reference(), RunLimits::default());
/// assert_eq!(store.stats().captures, 1);
/// assert_eq!(store.stats().memory_hits, 1);
///
/// // Replay substitutes for re-simulation.
/// let program = Workload::new(kind).program(&InputSet::reference());
/// let mut mix = InstrMix::new();
/// trace.replay(&program, &mut mix).unwrap();
/// assert_eq!(mix.total() as usize, again.len());
/// ```
pub struct TraceStore {
    max_bytes: usize,
    spill_dir: Option<PathBuf>,
    state: Mutex<State>,
    available: Condvar,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    captures: AtomicU64,
    evictions: AtomicU64,
}

impl TraceStore {
    /// Default in-memory budget: 1 GiB of resident trace data.
    pub const DEFAULT_MAX_BYTES: usize = 1 << 30;

    /// An in-memory store with the default byte budget and no disk spill.
    #[must_use]
    pub fn new() -> Self {
        TraceStore::with_max_bytes(TraceStore::DEFAULT_MAX_BYTES)
    }

    /// An in-memory store with an explicit byte budget.
    ///
    /// The budget is advisory per entry: a single trace larger than the
    /// budget is still admitted (and evicted as soon as another arrives).
    #[must_use]
    pub fn with_max_bytes(max_bytes: usize) -> Self {
        TraceStore {
            max_bytes,
            spill_dir: None,
            state: Mutex::new(State::default()),
            available: Condvar::new(),
            memory_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            captures: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Enables disk spill under `dir` (created on first write). Spilled
    /// traces survive eviction and process restarts; `get` checks the
    /// directory before falling back to simulation.
    #[must_use]
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// The spill directory, if any.
    #[must_use]
    pub fn spill_dir(&self) -> Option<&Path> {
        self.spill_dir.as_deref()
    }

    /// Usage counters.
    #[must_use]
    pub fn stats(&self) -> TraceStoreStats {
        TraceStoreStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            captures: self.captures.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of traces currently resident in memory.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.state
            .lock()
            .expect("trace store poisoned")
            .entries
            .len()
    }

    /// Approximate bytes currently resident in memory.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.state.lock().expect("trace store poisoned").bytes
    }

    /// The retirement trace of `kind` under `input` and `limits`,
    /// simulating at most once per key per process (and, with a spill
    /// directory, at most once ever).
    ///
    /// # Panics
    ///
    /// Panics if the workload faults during simulation — well-formed
    /// workloads never fault, so a fault indicates a generator bug.
    pub fn get(&self, kind: WorkloadKind, input: InputSet, limits: RunLimits) -> Arc<Trace> {
        let key = TraceKey::new(kind, input, limits);
        match self.lookup_or_claim(&key) {
            Ok(trace) => trace,
            Err(claim) => {
                let trace = Arc::new(self.load_or_capture(&key));
                self.publish(claim, Arc::clone(&trace));
                trace
            }
        }
    }

    /// Replays the trace for `(kind, input, limits)` into `tracer`,
    /// fetching instructions from `program` — which may be a
    /// directive-annotated variant of the workload binary, since
    /// directives never change architectural semantics.
    ///
    /// On a cache miss this runs the functional simulation **once**,
    /// feeding `tracer` while recording, so the first consumer of a trace
    /// pays a single pass (not capture *plus* replay). Subsequent
    /// consumers replay from memory or disk.
    ///
    /// # Panics
    ///
    /// Panics if the workload faults during simulation or the trace does
    /// not replay against `program` — both indicate generator bugs.
    pub fn replay_into(
        &self,
        kind: WorkloadKind,
        input: InputSet,
        limits: RunLimits,
        program: &Program,
        tracer: &mut impl Tracer,
    ) -> Arc<Trace> {
        let key = TraceKey::new(kind, input, limits);
        match self.lookup_or_claim(&key) {
            Ok(trace) => {
                trace
                    .replay(program, tracer)
                    .unwrap_or_else(|e| panic!("{key} failed to replay: {e}"));
                trace
            }
            Err(claim) => {
                // Simulate once, feeding the caller's tracer while
                // recording (`Trace::capture_with`); a disk hit replays.
                let trace = Arc::new(self.load_or_capture_with(&key, program, tracer));
                self.publish(claim, Arc::clone(&trace));
                trace
            }
        }
    }

    /// Returns the memoised trace, or an in-flight claim obliging the
    /// caller to produce it (and [`publish`](Self::publish) it).
    fn lookup_or_claim(&self, key: &TraceKey) -> Result<Arc<Trace>, InFlightGuard<'_>> {
        let mut state = self.state.lock().expect("trace store poisoned");
        loop {
            if state.entries.contains_key(key) {
                state.tick += 1;
                let tick = state.tick;
                let entry = state.entries.get_mut(key).expect("just checked");
                entry.last_used = tick;
                self.memory_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&entry.trace));
            }
            if state.in_flight.insert(*key) {
                // We are the producer for this key; the guard keeps
                // waiters from deadlocking if production panics.
                return Err(InFlightGuard {
                    store: self,
                    key: *key,
                });
            }
            state = self.available.wait(state).expect("trace store poisoned");
        }
    }

    /// Inserts a freshly produced trace and releases the claim.
    fn publish(&self, claim: InFlightGuard<'_>, trace: Arc<Trace>) {
        let bytes = trace.approx_bytes();
        let key = claim.key;
        let mut state = self.state.lock().expect("trace store poisoned");
        state.tick += 1;
        let tick = state.tick;
        state.bytes += bytes;
        state.entries.insert(
            key,
            Entry {
                trace,
                bytes,
                last_used: tick,
            },
        );
        self.evict_over_budget(&mut state, key);
        drop(state);
        drop(claim); // removes the in-flight mark and wakes waiters
    }

    /// Loads from the spill directory (replaying into `tracer` if given)
    /// or captures by simulation, feeding `tracer` during the pass.
    fn load_or_capture_with(
        &self,
        key: &TraceKey,
        program: &Program,
        tracer: &mut impl Tracer,
    ) -> Trace {
        if let Some(trace) = self.try_disk_load(key) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            trace
                .replay(program, tracer)
                .unwrap_or_else(|e| panic!("{key} failed to replay a spilled trace: {e}"));
            return trace;
        }
        let limits = RunLimits::with_max(key.max_instructions);
        let trace = Trace::capture_with(program, limits, tracer)
            .unwrap_or_else(|e| panic!("{key} faulted while tracing: {e}"));
        self.captures.fetch_add(1, Ordering::Relaxed);
        self.try_disk_store(key, &trace);
        trace
    }

    /// Loads from the spill directory or captures by simulation.
    fn load_or_capture(&self, key: &TraceKey) -> Trace {
        if let Some(trace) = self.try_disk_load(key) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            return trace;
        }
        let program = Workload::new(key.kind).program(&key.input);
        let limits = RunLimits::with_max(key.max_instructions);
        let trace = Trace::capture(&program, limits)
            .unwrap_or_else(|e| panic!("{key} faulted while tracing: {e}"));
        self.captures.fetch_add(1, Ordering::Relaxed);
        self.try_disk_store(key, &trace);
        trace
    }

    fn try_disk_load(&self, key: &TraceKey) -> Option<Trace> {
        let dir = self.spill_dir.as_ref()?;
        let path = dir.join(key.file_name());
        // One read syscall, then parse from the in-memory slice — much
        // faster than pulling the file through a buffered reader.
        let bytes = fs::read(&path).ok()?;
        match Trace::read_from(bytes.as_slice()) {
            Ok(trace) => Some(trace),
            Err(_) => {
                // Corrupt or truncated spill file: drop it and re-simulate.
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Best-effort spill; IO failures silently fall back to memory-only.
    fn try_disk_store(&self, key: &TraceKey, trace: &Trace) {
        let Some(dir) = self.spill_dir.as_ref() else {
            return;
        };
        if fs::create_dir_all(dir).is_err() {
            return;
        }
        let tmp = dir.join(format!("{}.tmp", key.file_name()));
        let finished = dir.join(key.file_name());
        let write = || -> io::Result<()> {
            let mut out = io::BufWriter::new(fs::File::create(&tmp)?);
            trace.write_to(&mut out)?;
            io::Write::flush(&mut out)?;
            drop(out);
            fs::rename(&tmp, &finished)
        };
        if write().is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Evicts least-recently-used entries (never `just_inserted`) until
    /// the budget holds.
    fn evict_over_budget(&self, state: &mut State, just_inserted: TraceKey) {
        while state.bytes > self.max_bytes && state.entries.len() > 1 {
            let victim = state
                .entries
                .iter()
                .filter(|(k, _)| **k != just_inserted)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some(entry) = state.entries.remove(&victim) {
                state.bytes = state.bytes.saturating_sub(entry.bytes);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore::new()
    }
}

impl fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceStore")
            .field("max_bytes", &self.max_bytes)
            .field("spill_dir", &self.spill_dir)
            .field("resident", &self.resident())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Clears the in-flight mark for `key` even if production panicked, so
/// waiting threads retry instead of deadlocking.
struct InFlightGuard<'a> {
    store: &'a TraceStore,
    key: TraceKey,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        let mut state = match self.store.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.in_flight.remove(&self.key);
        drop(state);
        self.store.available.notify_all();
    }
}
