//! Trace-once / analyze-many memoisation of simulation traces.
//!
//! Every experiment in the evaluation re-executes the same small set of
//! `(workload, input set, limits)` runs — the reference input alone is
//! consumed by the characterisation tables, every predictor configuration
//! and every ILP machine. A [`TraceStore`] runs the functional simulation
//! **once** per key, keeps the retirement trace ([`vp_sim::Trace`]) in an
//! in-memory LRU keyed by [`TraceKey`], and optionally spills traces to
//! disk in the compact `vp_sim::record` binary format so later processes
//! can skip the simulation entirely.
//!
//! Correctness rests on one ISA property: prediction *directives* never
//! change architectural semantics. A trace captured from the bare program
//! therefore replays bit-identically against any directive-annotated
//! variant of the same program, which is exactly the decoupling the
//! evaluation needs — simulate once, then replay into profilers,
//! predictors and the ILP machine under any annotation threshold.
//!
//! The store is fully thread-safe: concurrent requests for the *same* key
//! deduplicate in flight (one thread simulates, the rest wait on a
//! condition variable), and requests for different keys proceed in
//! parallel because the lock is never held across a simulation.
//!
//! ## Observability
//!
//! Usage counters live *inside* the store's mutex and are updated under
//! the same lock acquisitions the request path already takes, so a
//! [`TraceStore::stats`] snapshot is always internally consistent — at
//! any instant `requests == memory_hits + misses` holds exactly, even
//! while worker threads are mid-request. Captures are additionally
//! wrapped in a `vp_obs` span (`capture`) so manifest phase timings show
//! where simulation wall-clock goes, and the store emits instant events
//! (`trace_store.evict` / `trace_store.spill` / `trace_store.disk_hit`,
//! each carrying the trace's approximate byte size) into the
//! `vp_obs::events` stream so a Chrome trace shows *when* cache churn
//! happened. Event emission is lock-free and a no-op unless a
//! `--trace-out` run enabled the stream.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};

use vp_isa::Program;
use vp_sim::{RunLimits, SimError, Trace, Tracer};
use vp_workloads::{InputSet, Workload, WorkloadKind};

/// Identity of one memoised simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// The workload.
    pub kind: WorkloadKind,
    /// The input set it ran under.
    pub input: InputSet,
    /// The run budget (part of the key: a truncated run has a different
    /// trace).
    pub max_instructions: u64,
}

impl TraceKey {
    /// The key for `kind` run under `input` with `limits`.
    #[must_use]
    pub fn new(kind: WorkloadKind, input: InputSet, limits: RunLimits) -> Self {
        TraceKey {
            kind,
            input,
            max_instructions: limits.max_instructions,
        }
    }

    /// The spill file name for this key (stable across processes).
    #[must_use]
    pub fn file_name(&self) -> String {
        format!(
            "{}-{}-{}.trace",
            self.kind.name(),
            self.input,
            self.max_instructions
        )
    }
}

impl fmt::Display for TraceKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}@{}",
            self.kind.name(),
            self.input,
            self.max_instructions
        )
    }
}

/// Why a trace could not be produced or replayed.
///
/// Carries the [`TraceKey`] so a faulting workload reports *which* run
/// went wrong instead of poisoning worker threads with an anonymous
/// panic.
#[derive(Debug)]
pub enum TraceError {
    /// The functional simulation faulted while capturing the trace
    /// (well-formed workloads never fault; this indicates a generator
    /// bug — but the report should still name the key).
    Capture {
        /// The run that faulted.
        key: TraceKey,
        /// The simulator fault.
        source: SimError,
    },
    /// A memoised trace failed to replay against the supplied program
    /// (the program does not match the trace's architectural history).
    Replay {
        /// The run whose trace failed to replay.
        key: TraceKey,
        /// The replay failure.
        source: io::Error,
    },
}

impl TraceError {
    /// The key of the failing run.
    #[must_use]
    pub fn key(&self) -> TraceKey {
        match self {
            TraceError::Capture { key, .. } | TraceError::Replay { key, .. } => *key,
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Capture { key, source } => {
                write!(f, "{key} faulted while tracing: {source}")
            }
            TraceError::Replay { key, source } => {
                write!(f, "{key} failed to replay: {source}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Capture { source, .. } => Some(source),
            TraceError::Replay { source, .. } => Some(source),
        }
    }
}

/// Counters describing how the store has been used.
///
/// Produced only by [`TraceStore::stats`], which snapshots every field
/// under one lock acquisition: the invariant
/// `requests == memory_hits + misses` holds in every snapshot, no matter
/// how many threads are mid-`get`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStoreStats {
    /// Total requests presented to the store.
    pub requests: u64,
    /// Requests served from the in-memory LRU.
    pub memory_hits: u64,
    /// Requests that missed memory (and went to disk or simulation).
    pub misses: u64,
    /// Misses served by deserialising a spilled trace from disk.
    pub disk_hits: u64,
    /// Misses that ran the functional simulation.
    pub captures: u64,
    /// Traces dropped from memory by the LRU byte budget.
    pub evictions: u64,
    /// Traces written to the spill directory.
    pub spills: u64,
    /// Spill attempts that failed (IO errors; memory-only fallback).
    pub spill_failures: u64,
    /// Requests that slept waiting for another thread's in-flight
    /// production of the same key.
    pub dedup_waits: u64,
    /// Traces resident in memory at snapshot time.
    pub resident: u64,
    /// Approximate bytes resident in memory at snapshot time.
    pub resident_bytes: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct CounterBlock {
    requests: u64,
    memory_hits: u64,
    misses: u64,
    disk_hits: u64,
    captures: u64,
    evictions: u64,
    spills: u64,
    spill_failures: u64,
    dedup_waits: u64,
}

/// Where a freshly produced trace came from (folded into the counters at
/// publish time, under the state lock).
#[derive(Debug, Clone, Copy)]
enum Provenance {
    Disk,
    Captured { spilled: bool, spill_failed: bool },
}

struct Entry {
    trace: Arc<Trace>,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct State {
    entries: HashMap<TraceKey, Entry>,
    in_flight: HashSet<TraceKey>,
    bytes: usize,
    tick: u64,
    counters: CounterBlock,
}

/// A thread-safe, byte-budgeted LRU of simulation traces with optional
/// disk spill.
///
/// # Examples
///
/// ```
/// use provp_core::trace_store::TraceStore;
/// use vp_sim::{InstrMix, RunLimits};
/// use vp_workloads::{InputSet, Workload, WorkloadKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let store = TraceStore::new();
/// let kind = WorkloadKind::Compress;
/// let trace = store.get(kind, InputSet::reference(), RunLimits::default())?;
/// // Second request: served from memory, no simulation.
/// let again = store.get(kind, InputSet::reference(), RunLimits::default())?;
/// assert_eq!(store.stats().captures, 1);
/// assert_eq!(store.stats().memory_hits, 1);
///
/// // Replay substitutes for re-simulation.
/// let program = Workload::new(kind).program(&InputSet::reference());
/// let mut mix = InstrMix::new();
/// trace.replay(&program, &mut mix)?;
/// assert_eq!(mix.total() as usize, again.len());
/// # Ok(())
/// # }
/// ```
pub struct TraceStore {
    max_bytes: usize,
    spill_dir: Option<PathBuf>,
    state: Mutex<State>,
    available: Condvar,
}

impl TraceStore {
    /// Default in-memory budget: 1 GiB of resident trace data.
    pub const DEFAULT_MAX_BYTES: usize = 1 << 30;

    /// An in-memory store with the default byte budget and no disk spill.
    #[must_use]
    pub fn new() -> Self {
        TraceStore::with_max_bytes(TraceStore::DEFAULT_MAX_BYTES)
    }

    /// An in-memory store with an explicit byte budget.
    ///
    /// The budget is advisory per entry: a single trace larger than the
    /// budget is still admitted (and evicted as soon as another arrives).
    #[must_use]
    pub fn with_max_bytes(max_bytes: usize) -> Self {
        TraceStore {
            max_bytes,
            spill_dir: None,
            state: Mutex::new(State::default()),
            available: Condvar::new(),
        }
    }

    /// Enables disk spill under `dir` (created on first write). Spilled
    /// traces survive eviction and process restarts; `get` checks the
    /// directory before falling back to simulation.
    #[must_use]
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// The spill directory, if any.
    #[must_use]
    pub fn spill_dir(&self) -> Option<&Path> {
        self.spill_dir.as_deref()
    }

    /// A consistent snapshot of every usage counter, taken under one
    /// lock acquisition. `requests == memory_hits + misses` holds in
    /// every snapshot.
    #[must_use]
    pub fn stats(&self) -> TraceStoreStats {
        let state = self.state.lock().expect("trace store poisoned");
        let c = state.counters;
        TraceStoreStats {
            requests: c.requests,
            memory_hits: c.memory_hits,
            misses: c.misses,
            disk_hits: c.disk_hits,
            captures: c.captures,
            evictions: c.evictions,
            spills: c.spills,
            spill_failures: c.spill_failures,
            dedup_waits: c.dedup_waits,
            resident: state.entries.len() as u64,
            resident_bytes: state.bytes as u64,
        }
    }

    /// Number of traces currently resident in memory.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.state
            .lock()
            .expect("trace store poisoned")
            .entries
            .len()
    }

    /// Approximate bytes currently resident in memory.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.state.lock().expect("trace store poisoned").bytes
    }

    /// The retirement trace of `kind` under `input` and `limits`,
    /// simulating at most once per key per process (and, with a spill
    /// directory, at most once ever).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Capture`] (naming the key) if the workload
    /// faults during simulation — well-formed workloads never fault, so
    /// a fault indicates a generator bug, but it is reported instead of
    /// panicking inside worker threads.
    pub fn get(
        &self,
        kind: WorkloadKind,
        input: InputSet,
        limits: RunLimits,
    ) -> Result<Arc<Trace>, TraceError> {
        let key = TraceKey::new(kind, input, limits);
        match self.lookup_or_claim(&key) {
            Ok(trace) => Ok(trace),
            Err(claim) => {
                let (trace, provenance) = self.load_or_capture(&key)?;
                let trace = Arc::new(trace);
                self.publish(claim, Arc::clone(&trace), provenance);
                Ok(trace)
            }
        }
    }

    /// Replays the trace for `(kind, input, limits)` into `tracer`,
    /// fetching instructions from `program` — which may be a
    /// directive-annotated variant of the workload binary, since
    /// directives never change architectural semantics.
    ///
    /// On a cache miss this runs the functional simulation **once**,
    /// feeding `tracer` while recording, so the first consumer of a trace
    /// pays a single pass (not capture *plus* replay). Subsequent
    /// consumers replay from memory or disk.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Capture`] if the workload faults during
    /// simulation, or [`TraceError::Replay`] if the memoised trace does
    /// not replay against `program` — both indicate generator bugs, and
    /// both name the key instead of poisoning worker threads.
    pub fn replay_into(
        &self,
        kind: WorkloadKind,
        input: InputSet,
        limits: RunLimits,
        program: &Program,
        tracer: &mut impl Tracer,
    ) -> Result<Arc<Trace>, TraceError> {
        let key = TraceKey::new(kind, input, limits);
        match self.lookup_or_claim(&key) {
            Ok(trace) => {
                trace
                    .replay(program, tracer)
                    .map_err(|source| TraceError::Replay { key, source })?;
                Ok(trace)
            }
            Err(claim) => {
                // Simulate once, feeding the caller's tracer while
                // recording (`Trace::capture_with`); a disk hit replays.
                let (trace, provenance) = self.load_or_capture_with(&key, program, tracer)?;
                let trace = Arc::new(trace);
                self.publish(claim, Arc::clone(&trace), provenance);
                Ok(trace)
            }
        }
    }

    /// Returns the memoised trace, or an in-flight claim obliging the
    /// caller to produce it (and [`publish`](Self::publish) it).
    fn lookup_or_claim(&self, key: &TraceKey) -> Result<Arc<Trace>, InFlightGuard<'_>> {
        let mut state = self.state.lock().expect("trace store poisoned");
        let mut waited = false;
        loop {
            if state.entries.contains_key(key) {
                state.tick += 1;
                let tick = state.tick;
                // Request and hit are counted under the same lock hold,
                // so snapshots never observe one without the other.
                state.counters.requests += 1;
                state.counters.memory_hits += 1;
                let entry = state.entries.get_mut(key).expect("just checked");
                entry.last_used = tick;
                return Ok(Arc::clone(&entry.trace));
            }
            if state.in_flight.insert(*key) {
                // We are the producer for this key; the guard keeps
                // waiters from deadlocking if production fails.
                state.counters.requests += 1;
                state.counters.misses += 1;
                return Err(InFlightGuard {
                    store: self,
                    key: *key,
                });
            }
            if !waited {
                waited = true;
                state.counters.dedup_waits += 1;
            }
            state = self.available.wait(state).expect("trace store poisoned");
        }
    }

    /// Inserts a freshly produced trace and releases the claim.
    fn publish(&self, claim: InFlightGuard<'_>, trace: Arc<Trace>, provenance: Provenance) {
        let bytes = trace.approx_bytes();
        let key = claim.key;
        let mut state = self.state.lock().expect("trace store poisoned");
        state.tick += 1;
        let tick = state.tick;
        state.bytes += bytes;
        match provenance {
            Provenance::Disk => state.counters.disk_hits += 1,
            Provenance::Captured {
                spilled,
                spill_failed,
            } => {
                state.counters.captures += 1;
                state.counters.spills += u64::from(spilled);
                state.counters.spill_failures += u64::from(spill_failed);
            }
        }
        state.entries.insert(
            key,
            Entry {
                trace,
                bytes,
                last_used: tick,
            },
        );
        self.evict_over_budget(&mut state, key);
        drop(state);
        drop(claim); // removes the in-flight mark and wakes waiters
    }

    /// Loads from the spill directory (replaying into `tracer` if given)
    /// or captures by simulation, feeding `tracer` during the pass.
    fn load_or_capture_with(
        &self,
        key: &TraceKey,
        program: &Program,
        tracer: &mut impl Tracer,
    ) -> Result<(Trace, Provenance), TraceError> {
        if let Some(trace) = self.try_disk_load(key) {
            vp_obs::events::instant("trace_store.disk_hit", trace.approx_bytes() as u64);
            trace
                .replay(program, tracer)
                .map_err(|source| TraceError::Replay { key: *key, source })?;
            return Ok((trace, Provenance::Disk));
        }
        let limits = RunLimits::with_max(key.max_instructions);
        let trace = {
            let _span = vp_obs::span("capture");
            Trace::capture_with(program, limits, tracer)
                .map_err(|source| TraceError::Capture { key: *key, source })?
        };
        let provenance = self.try_disk_store(key, &trace);
        Ok((trace, provenance))
    }

    /// Loads from the spill directory or captures by simulation.
    fn load_or_capture(&self, key: &TraceKey) -> Result<(Trace, Provenance), TraceError> {
        if let Some(trace) = self.try_disk_load(key) {
            vp_obs::events::instant("trace_store.disk_hit", trace.approx_bytes() as u64);
            return Ok((trace, Provenance::Disk));
        }
        let program = Workload::new(key.kind).program(&key.input);
        let limits = RunLimits::with_max(key.max_instructions);
        let trace = {
            let _span = vp_obs::span("capture");
            Trace::capture(&program, limits)
                .map_err(|source| TraceError::Capture { key: *key, source })?
        };
        let provenance = self.try_disk_store(key, &trace);
        Ok((trace, provenance))
    }

    fn try_disk_load(&self, key: &TraceKey) -> Option<Trace> {
        let dir = self.spill_dir.as_ref()?;
        let path = dir.join(key.file_name());
        // One read syscall, then parse from the in-memory slice — much
        // faster than pulling the file through a buffered reader.
        let bytes = fs::read(&path).ok()?;
        match Trace::read_from(bytes.as_slice()) {
            Ok(trace) => Some(trace),
            Err(_) => {
                // Corrupt or truncated spill file: drop it and re-simulate.
                vp_obs::obs_warn!("dropping corrupt trace spill file {path:?}");
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Best-effort spill; IO failures silently fall back to memory-only.
    /// Returns the capture provenance (whether the spill stuck).
    fn try_disk_store(&self, key: &TraceKey, trace: &Trace) -> Provenance {
        let Some(dir) = self.spill_dir.as_ref() else {
            return Provenance::Captured {
                spilled: false,
                spill_failed: false,
            };
        };
        if fs::create_dir_all(dir).is_err() {
            return Provenance::Captured {
                spilled: false,
                spill_failed: true,
            };
        }
        let tmp = dir.join(format!("{}.tmp", key.file_name()));
        let finished = dir.join(key.file_name());
        let write = || -> io::Result<()> {
            let mut out = io::BufWriter::new(fs::File::create(&tmp)?);
            trace.write_to(&mut out)?;
            io::Write::flush(&mut out)?;
            drop(out);
            fs::rename(&tmp, &finished)
        };
        if write().is_err() {
            let _ = fs::remove_file(&tmp);
            Provenance::Captured {
                spilled: false,
                spill_failed: true,
            }
        } else {
            vp_obs::events::instant("trace_store.spill", trace.approx_bytes() as u64);
            Provenance::Captured {
                spilled: true,
                spill_failed: false,
            }
        }
    }

    /// Evicts least-recently-used entries (never `just_inserted`) until
    /// the budget holds.
    fn evict_over_budget(&self, state: &mut State, just_inserted: TraceKey) {
        while state.bytes > self.max_bytes && state.entries.len() > 1 {
            let victim = state
                .entries
                .iter()
                .filter(|(k, _)| **k != just_inserted)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some(entry) = state.entries.remove(&victim) {
                state.bytes = state.bytes.saturating_sub(entry.bytes);
                state.counters.evictions += 1;
                // Lock-free push into the (possibly disabled) event
                // stream; cheap enough to emit under the state lock.
                vp_obs::events::instant("trace_store.evict", entry.bytes as u64);
            }
        }
    }
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore::new()
    }
}

impl fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceStore")
            .field("max_bytes", &self.max_bytes)
            .field("spill_dir", &self.spill_dir)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Clears the in-flight mark for `key` even if production failed or
/// panicked, so waiting threads retry instead of deadlocking.
struct InFlightGuard<'a> {
    store: &'a TraceStore,
    key: TraceKey,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        let mut state = match self.store.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.in_flight.remove(&self.key);
        drop(state);
        self.store.available.notify_all();
    }
}
