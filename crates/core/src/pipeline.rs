//! The three-phase methodology, end to end.

use std::fmt;
use std::sync::Arc;

use vp_compiler::{annotate, Annotated, ThresholdPolicy};
use vp_profile::{merge, ProfileCollector, ProfileImage};
use vp_sim::{RunLimits, SimError};
use vp_workloads::Workload;

use crate::trace_store::{TraceError, TraceStore};

/// Why a pipeline run failed.
#[derive(Debug)]
pub enum PipelineError {
    /// A direct (uncached) profiling simulation faulted.
    Sim(SimError),
    /// The attached trace store failed to capture or replay a trace; the
    /// inner error names the offending trace key.
    Trace(TraceError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Sim(e) => write!(f, "profiling simulation faulted: {e}"),
            PipelineError::Trace(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Sim(e) => Some(e),
            PipelineError::Trace(e) => Some(e),
        }
    }
}

impl From<SimError> for PipelineError {
    fn from(e: SimError) -> Self {
        PipelineError::Sim(e)
    }
}

impl From<TraceError> for PipelineError {
    fn from(e: TraceError) -> Self {
        PipelineError::Trace(e)
    }
}

/// Configuration of a [`ProfileGuidedPipeline`].
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Number of training runs (the paper uses 5).
    pub train_runs: u32,
    /// The phase-3 annotation thresholds.
    pub policy: ThresholdPolicy,
    /// Simulator budget per run.
    pub limits: RunLimits,
}

impl Default for PipelineConfig {
    /// Five training runs, 90% threshold, default budget.
    fn default() -> Self {
        PipelineConfig {
            train_runs: Workload::PAPER_TRAIN_RUNS,
            policy: ThresholdPolicy::new(0.9),
            limits: RunLimits::default(),
        }
    }
}

/// Everything the three phases produced for one workload.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// Per-training-run profile images (phase 2, one per input set).
    pub images: Vec<ProfileImage>,
    /// The merged (intersected) profile the compiler consumed.
    pub merged: ProfileImage,
    /// Static instructions dropped by the intersection rule.
    pub omitted: usize,
    /// The annotated binary and the pass report (phase 3).
    pub annotated: Annotated,
}

/// Runs the paper's three phases for a workload:
///
/// 1. **compile** — generate the phase-1 binary (no directives);
/// 2. **profile** — execute it under each training input on the tracing
///    simulator, collecting a profile image per run, then merge them by
///    intersection;
/// 3. **annotate** — re-emit the binary with directives chosen by the
///    threshold policy.
///
/// # Examples
///
/// ```
/// use provp_core::pipeline::{PipelineConfig, ProfileGuidedPipeline};
/// use vp_workloads::{Workload, WorkloadKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pipeline = ProfileGuidedPipeline::new(PipelineConfig {
///     train_runs: 2, // abbreviated for the doc test
///     ..PipelineConfig::default()
/// });
/// let out = pipeline.run(&Workload::new(WorkloadKind::Compress))?;
/// assert!(out.annotated.summary().tagged() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProfileGuidedPipeline {
    config: PipelineConfig,
    traces: Option<Arc<TraceStore>>,
}

impl ProfileGuidedPipeline {
    /// Creates a pipeline with the given configuration.
    #[must_use]
    pub fn new(config: PipelineConfig) -> Self {
        ProfileGuidedPipeline {
            config,
            traces: None,
        }
    }

    /// Routes the profiling simulations through a shared [`TraceStore`],
    /// so traces captured here (or by a `Suite` sharing the store) are
    /// never re-simulated.
    #[must_use]
    pub fn with_trace_store(mut self, traces: Arc<TraceStore>) -> Self {
        self.traces = Some(traces);
        self
    }

    /// The pipeline's configuration.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs all three phases for `workload`.
    ///
    /// # Errors
    ///
    /// Propagates simulator faults from the profiling runs (well-formed
    /// workloads never fault; a fault indicates a generator bug) and, when
    /// a trace store is attached, capture/replay failures from the store —
    /// each carrying the offending trace key.
    pub fn run(&self, workload: &Workload) -> Result<PipelineOutcome, PipelineError> {
        // Phase 1: the binary, directive-free.
        let base = workload
            .program(&vp_workloads::InputSet::train(0))
            .without_directives();

        // Phase 2: profile under each training input, replaying memoised
        // traces when a store is attached. The event scope brackets the
        // whole profiling phase in the Chrome trace without adding a new
        // manifest phase row; the span makes the phase attributable by
        // the sampling profiler.
        let _profiling = vp_obs::events::scope("pipeline.profile");
        let _profiling_span = vp_obs::span("profile");
        let mut images = Vec::with_capacity(self.config.train_runs as usize);
        for input in vp_workloads::InputSet::train_set(self.config.train_runs) {
            let program = workload.program(&input);
            let mut collector = ProfileCollector::new(format!("{}/{input}", workload.name()));
            match &self.traces {
                Some(store) => {
                    store.replay_into(
                        workload.kind(),
                        input,
                        self.config.limits,
                        &program,
                        &mut collector,
                    )?;
                }
                None => {
                    vp_sim::run(&program, &mut collector, self.config.limits)?;
                }
            }
            images.push(collector.into_image());
        }
        drop(_profiling_span);
        drop(_profiling);
        let merged = merge::intersect_and_sum(&images);

        // Phase 3: insert directives.
        let annotated = {
            let _annotating = vp_obs::events::scope("pipeline.annotate");
            let _annotating_span = vp_obs::span("annotate");
            annotate(&base, &merged.image, &self.config.policy)
        };

        Ok(PipelineOutcome {
            images,
            merged: merged.image,
            omitted: merged.omitted,
            annotated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::encode::text_delta;
    use vp_workloads::WorkloadKind;

    fn quick(kind: WorkloadKind, threshold: f64) -> PipelineOutcome {
        let pipeline = ProfileGuidedPipeline::new(PipelineConfig {
            train_runs: 2,
            policy: ThresholdPolicy::new(threshold),
            limits: RunLimits::default(),
        });
        pipeline.run(&Workload::new(kind)).unwrap()
    }

    #[test]
    fn pipeline_tags_ijpeg_loop_machinery() {
        let out = quick(WorkloadKind::Ijpeg, 0.9);
        let summary = out.annotated.summary();
        assert!(summary.stride_tagged >= 5, "{summary}");
        assert!(summary.below_threshold > 0, "{summary}");
        // ijpeg's sample loads and accumulations must not qualify at 90%.
        assert!(summary.tagged() < summary.producers());
    }

    #[test]
    fn pipeline_output_differs_only_in_directive_bits() {
        let out = quick(WorkloadKind::Compress, 0.8);
        let base = Workload::new(WorkloadKind::Compress).program(&vp_workloads::InputSet::train(0));
        let deltas = text_delta(&base, out.annotated.program()).unwrap();
        assert!(!deltas.is_empty());
        assert!(deltas.iter().all(|d| d.directive_only));
    }

    #[test]
    fn merged_profile_covers_every_run() {
        let out = quick(WorkloadKind::M88ksim, 0.9);
        assert_eq!(out.images.len(), 2);
        let total: u64 = out.images.iter().map(|i| i.total_execs()).sum();
        assert_eq!(out.merged.total_execs() + omitted_execs(&out), total);
    }

    #[test]
    fn trace_store_backed_pipeline_matches_direct() {
        let config = PipelineConfig {
            train_runs: 2,
            policy: ThresholdPolicy::new(0.9),
            limits: RunLimits::default(),
        };
        let workload = Workload::new(WorkloadKind::Compress);
        let direct = ProfileGuidedPipeline::new(config).run(&workload).unwrap();

        let store = Arc::new(TraceStore::new());
        let cached = ProfileGuidedPipeline::new(config)
            .with_trace_store(Arc::clone(&store))
            .run(&workload)
            .unwrap();
        assert_eq!(direct.images, cached.images);
        assert_eq!(direct.merged, cached.merged);
        assert_eq!(
            direct.annotated.program().text(),
            cached.annotated.program().text()
        );
        assert_eq!(store.stats().captures, 2);

        // A second run replays from memory: no new simulations.
        let again = ProfileGuidedPipeline::new(config)
            .with_trace_store(Arc::clone(&store))
            .run(&workload)
            .unwrap();
        assert_eq!(again.merged, direct.merged);
        assert_eq!(store.stats().captures, 2);
        assert!(store.stats().memory_hits >= 2);
    }

    fn omitted_execs(out: &PipelineOutcome) -> u64 {
        // Executions of instructions dropped by intersection.
        out.images
            .iter()
            .flat_map(|img| img.iter())
            .filter(|(a, _)| out.merged.get(*a).is_none())
            .map(|(_, r)| r.execs)
            .sum()
    }
}
