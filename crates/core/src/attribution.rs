//! Process-global sink for per-PC prediction-attribution results.
//!
//! Attribution is observation-only and off by default: the experiment
//! binaries run their exact seed instruction stream unless a caller
//! [`enable`]s the sink, at which point [`crate::Suite::predictor_stats`]
//! switches to the attributed replay
//! (a [`crate::replay::ReplayRequest`] with attribution on) and [`record`]s one
//! [`AttributionRun`] per `(workload, config, threshold)` replay. At exit
//! the bench harness [`drain`]s the sink into the run manifest's
//! `attribution` array (`provp-run-manifest/v3`).
//!
//! Runs may be recorded from [`crate::Suite::par_map`] worker threads in
//! any interleaving; [`drain`] sorts them under a deterministic total
//! order so the exported manifest is byte-identical at any `--jobs`.

use std::sync::Mutex;

use vp_isa::InstrAddr;
use vp_obs::attribution::{AttributionPc, AttributionRun};
use vp_predictor::{AttributionCause, AttributionTable};

/// Sink state: `None` while disabled; `Some((top_k, runs))` once enabled.
static SINK: Mutex<Option<(usize, Vec<AttributionRun>)>> = Mutex::new(None);

fn sink() -> std::sync::MutexGuard<'static, Option<(usize, Vec<AttributionRun>)>> {
    match SINK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Turns the sink on, keeping the `top` hottest mispredicting PCs per
/// run (`0` keeps every PC). Idempotent; later calls update `top`.
pub fn enable(top: usize) {
    let mut guard = sink();
    match guard.as_mut() {
        Some((k, _)) => *k = top,
        None => *guard = Some((top, Vec::new())),
    }
}

/// Whether attribution is being collected.
#[must_use]
pub fn enabled() -> bool {
    sink().is_some()
}

/// The configured per-run top-K (`None` while disabled).
#[must_use]
pub fn top_k() -> Option<usize> {
    sink().as_ref().map(|(k, _)| *k)
}

/// Records one replay's attribution result. A no-op while disabled, so
/// callers need not re-check [`enabled`] between replay and record.
pub fn record(run: AttributionRun) {
    if let Some((_, runs)) = sink().as_mut() {
        runs.push(run);
    }
}

/// Takes every recorded run out of the sink (leaving it enabled),
/// sorted by `(workload, config, threshold)` — a total order independent
/// of worker-thread interleaving, so manifests stay byte-identical at
/// any `--jobs`.
#[must_use]
pub fn drain() -> Vec<AttributionRun> {
    let mut runs = match sink().as_mut() {
        Some((_, runs)) => std::mem::take(runs),
        None => Vec::new(),
    };
    runs.sort_by(|a, b| {
        (&a.workload, &a.config, a.threshold.map(f64::to_bits)).cmp(&(
            &b.workload,
            &b.config,
            b.threshold.map(f64::to_bits),
        ))
    });
    runs
}

/// Converts a replay's [`AttributionTable`] into the passive manifest
/// form: the top-K rows (every row when `top == 0`) plus exact totals.
///
/// `profiled_accuracy` looks a PC's Phase-2 profiled accuracy up in the
/// merged training image (returning `None` for unprofiled PCs); drift is
/// `profiled − observed` raw accuracy, so positive drift means the
/// training profile over-promised on the reference input.
#[must_use]
pub fn run_from_table(
    workload: &str,
    config: &str,
    threshold: Option<f64>,
    table: &AttributionTable,
    top: usize,
    profiled_accuracy: impl Fn(InstrAddr, vp_isa::Directive) -> Option<f64>,
) -> AttributionRun {
    let totals = table.totals();
    let pcs = table
        .top(top)
        .into_iter()
        .map(|(addr, r)| {
            let profiled = profiled_accuracy(addr, r.directive);
            AttributionPc {
                pc: u64::from(addr.index()),
                directive: r.directive.to_string(),
                accesses: r.accesses,
                hits: r.hits,
                raw_correct: r.raw_correct,
                speculated: r.speculated,
                speculated_correct: r.speculated_correct,
                causes: causes_map(&r.causes),
                profiled_accuracy: profiled,
                drift: profiled.map(|p| p - r.raw_accuracy()),
            }
        })
        .collect();
    AttributionRun {
        workload: workload.to_owned(),
        config: config.to_owned(),
        threshold,
        totals: vp_obs::attribution::AttributionTotals {
            pcs: totals.pcs,
            accesses: totals.accesses,
            hits: totals.hits,
            raw_correct: totals.raw_correct,
            speculated: totals.speculated,
            speculated_correct: totals.speculated_correct,
            causes: causes_map(&totals.causes),
        },
        pcs,
    }
}

/// Dense cause counts → named map, zero counts omitted (the manifest
/// form; [`vp_obs::attribution::CAUSE_ORDER`] names match
/// [`AttributionCause::as_str`] one-for-one).
fn causes_map(counts: &[u64; 6]) -> std::collections::BTreeMap<String, u64> {
    AttributionCause::ALL
        .iter()
        .zip(counts)
        .filter(|(_, &n)| n > 0)
        .map(|(c, &n)| (c.as_str().to_owned(), n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(workload: &str, config: &str, threshold: Option<f64>) -> AttributionRun {
        AttributionRun {
            workload: workload.to_owned(),
            config: config.to_owned(),
            threshold,
            totals: vp_obs::attribution::AttributionTotals::default(),
            pcs: Vec::new(),
        }
    }

    #[test]
    fn sink_orders_runs_deterministically() {
        // Serialise against other tests touching the process-global sink.
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        assert!(drain().is_empty());
        record(run("zzz", "a", None)); // dropped: sink disabled
        enable(7);
        assert!(enabled());
        assert_eq!(top_k(), Some(7));
        record(run("go", "stride", Some(0.9)));
        record(run("compress", "lv", None));
        record(run("go", "stride", Some(0.5)));
        let runs = drain();
        let labels: Vec<String> = runs.iter().map(vp_obs::AttributionRun::label).collect();
        assert_eq!(labels, ["compress/lv", "go/stride@0.50", "go/stride@0.90"]);
        // Drain leaves the sink enabled but empty.
        assert!(enabled() && drain().is_empty());
        *super::sink() = None;
    }

    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn run_from_table_maps_counts_and_drift() {
        use vp_isa::Directive;
        use vp_predictor::PredictorConfig;

        let mut table = AttributionTable::new();
        let mut p = PredictorConfig::spec_table_stride_profile().build();
        let pc = InstrAddr::new(3);
        for v in [10u64, 20, 30, 40, 31] {
            let a = p.access(pc, Directive::Stride, v);
            table.observe(pc, Directive::Stride, &a, v);
        }
        let out = run_from_table("wl", "cfg", Some(0.9), &table, 10, |addr, d| {
            assert_eq!(addr, pc);
            assert_eq!(d, Directive::Stride);
            Some(1.0)
        });
        assert_eq!(out.label(), "wl/cfg@0.90");
        assert_eq!(out.totals.pcs, 1);
        assert_eq!(out.totals.accesses, 5);
        assert_eq!(out.pcs.len(), 1);
        let row = &out.pcs[0];
        assert_eq!(row.pc, 3);
        assert_eq!(row.directive, "st");
        assert_eq!(row.accesses, 5);
        // Zero cause counts are omitted from the named map.
        assert!(row.causes.values().all(|&n| n > 0));
        assert_eq!(
            row.causes.values().sum::<u64>(),
            row.accesses - row.raw_correct
        );
        let drift = row.drift.expect("profiled PC has drift");
        assert!((drift - (1.0 - row.raw_accuracy())).abs() < 1e-12);
    }
}
