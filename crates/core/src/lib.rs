#![warn(missing_docs)]

//! # provp-core — end-to-end experiment pipelines
//!
//! Ties the workspace together: the three-phase methodology of the paper
//! ([`pipeline::ProfileGuidedPipeline`]) and one runner per table/figure of
//! its evaluation ([`experiments`]).
//!
//! | Paper artifact | runner |
//! |---|---|
//! | Table 2.1 (predictor accuracy by category) | [`experiments::table_2_1`] |
//! | Figure 2.2 (accuracy distribution) | [`experiments::fig_2_2`] |
//! | Figure 2.3 (stride-efficiency distribution) | [`experiments::fig_2_3`] |
//! | Figures 4.1/4.2/4.3 (input-similarity metrics) | [`experiments::fig_4`] |
//! | Figures 5.1/5.2 (classification accuracy) | [`experiments::classification`] |
//! | Table 5.1 (allocation-candidate fraction) | [`experiments::table_5_1`] |
//! | Figures 5.3/5.4 (finite-table deltas) | [`experiments::finite_table`] |
//! | Table 5.2 (ILP increase) | [`experiments::table_5_2`] |
//!
//! Heavy intermediate artifacts (profile images, annotated binaries) are
//! memoised in a [`suite::Suite`], so running every experiment profiles
//! each workload's five training inputs exactly once. Underneath, a
//! [`trace_store::TraceStore`] memoises each functional simulation as a
//! retirement trace — simulate once per `(workload, input, limits)` key,
//! replay into every consumer — and [`exec::parallel_map`] fans the
//! experiment grid over scoped threads with byte-identical output.

pub mod attribution;
pub mod exec;
pub mod experiments;
pub mod harness;
pub mod pipeline;
pub mod replay;
pub mod suite;
pub mod trace_store;

pub use exec::parallel_map;
pub use harness::PredictorTracer;
pub use pipeline::{PipelineConfig, PipelineError, PipelineOutcome, ProfileGuidedPipeline};
#[allow(deprecated)]
pub use replay::{
    auto_shards, replay_matrix, replay_matrix_attributed, replay_predictor,
    replay_predictor_attributed, MatrixCell, ReplayCellOutcome, ReplayOutcome, ReplayRequest,
    ReplayResponse, ReplaySource, SweepPlan,
};
pub use suite::Suite;
pub use trace_store::{TraceError, TraceKey, TraceStore, TraceStoreStats};
