//! PC-sharded parallel predictor replay.
//!
//! Both predictor families of the paper key their dynamic state purely by
//! **static instruction address** — the infinite predictors keep one cell
//! per address, the finite tables one set per `addr mod sets` (tags, LRU
//! stamps and conflict counts all live inside a set). Replaying a trace
//! through a predictor is therefore embarrassingly parallel once the
//! trace's value events are partitioned by that key: every shard replays
//! against an independent predictor instance, observes exactly the
//! accesses a sequential run would have routed to its state partition *in
//! the same order*, and the per-shard [`PredictorStats`] merge by field
//! addition ([`PredictorStats::merge`]) into totals **bit-identical** to
//! a sequential replay, at any shard count.
//!
//! The shard key is supplied by [`PredictorConfig::shard_key`]; the
//! partition itself is a zero-copy view over the columnar trace
//! ([`vp_sim::TraceColumns::shard_by_pc`]). Shards run on the same
//! deterministic worker pool as the experiment grids
//! ([`crate::exec::parallel_map`]), and [`auto_shards`] degrades to a
//! single shard inside an already-parallel grid worker so nested fan-out
//! never oversubscribes the machine.

use std::io;
use std::time::Instant;

use vp_isa::{Directive, Program};
use vp_predictor::{AttributionTable, PredictorConfig, PredictorStats};
use vp_sim::Trace;

use crate::exec::{in_worker, parallel_map};

/// Traces below this many events are replayed unsharded: the per-shard
/// flag-column rescan and thread hand-off would cost more than they save.
pub const MIN_SHARD_EVENTS: usize = 1 << 16;

/// The result of a (possibly sharded) predictor replay.
#[derive(Debug, Clone, Copy)]
pub struct ReplayOutcome {
    /// Merged predictor statistics, bit-identical to a sequential replay.
    pub stats: PredictorStats,
    /// Total occupied table entries across shards (state partitions are
    /// disjoint, so the sum equals a single predictor's occupancy).
    pub occupancy: usize,
    /// How many shards actually ran.
    pub shards: usize,
}

/// Picks a shard count for a replay: `jobs` shards when sharding can help,
/// 1 when it cannot (serial run, tiny trace) or must not (already inside a
/// [`parallel_map`] worker, where nested fan-out would oversubscribe the
/// pool). Output never depends on the choice — only wall-clock does.
#[must_use]
pub fn auto_shards(jobs: usize, events: usize) -> usize {
    if jobs <= 1 || events < MIN_SHARD_EVENTS || in_worker() {
        1
    } else {
        jobs
    }
}

/// Replays `trace`'s value events through `config`'s predictor, sharded
/// `shards` ways by the configuration's state-partition key and fanned
/// out over up to `jobs` worker threads.
///
/// Directives are pre-resolved from `program` into a dense table once, so
/// the per-event work is a columnar scan plus the predictor access — no
/// instruction fetch, no retirement reconstruction.
///
/// With `shards == 1` the replay is a plain sequential scan (no pool, no
/// partition filter); any `shards >= 1` produces bit-identical
/// [`ReplayOutcome::stats`].
///
/// # Errors
///
/// [`io::Error`] of kind `InvalidData` when a value event's address does
/// not name an instruction of `program` (a foreign trace).
pub fn replay_predictor(
    trace: &Trace,
    program: &Program,
    config: &PredictorConfig,
    shards: usize,
    jobs: usize,
) -> io::Result<ReplayOutcome> {
    let _span = vp_obs::span("replay");
    let directives: Vec<Directive> = program.text().iter().map(|i| i.directive).collect();
    let shards = shards.max(1);
    let cols = trace.columns();

    if shards == 1 {
        let mut predictor = config.build();
        for (addr, value) in cols.value_events() {
            let directive = *directives
                .get(addr.index() as usize)
                .ok_or_else(|| outside_text(addr))?;
            predictor.access(addr, directive, value);
        }
        vp_obs::counter("replay.shards").add(1);
        return Ok(ReplayOutcome {
            stats: *predictor.stats(),
            occupancy: predictor.occupancy(),
            shards: 1,
        });
    }

    let views = cols.shard_by_pc(shards, |addr| config.shard_key(addr));
    let parts = parallel_map(jobs.max(1), &views, |shard| -> io::Result<_> {
        let started = Instant::now();
        let mut predictor = config.build();
        for (addr, value) in shard.values() {
            let directive = *directives
                .get(addr.index() as usize)
                .ok_or_else(|| outside_text(addr))?;
            predictor.access(addr, directive, value);
        }
        Ok((
            *predictor.stats(),
            predictor.occupancy(),
            started.elapsed().as_micros() as u64,
        ))
    });

    let mut stats = PredictorStats::new();
    let mut occupancy = 0usize;
    let (mut fastest, mut slowest) = (u64::MAX, 0u64);
    for part in parts {
        let (shard_stats, shard_occupancy, micros) = part?;
        stats.merge(&shard_stats);
        occupancy += shard_occupancy;
        fastest = fastest.min(micros);
        slowest = slowest.max(micros);
    }
    let skew_us = slowest.saturating_sub(fastest);
    vp_obs::counter("replay.shards").add(shards as u64);
    vp_obs::gauge("replay.shard_skew_ms").set_max(skew_us.div_ceil(1000));
    vp_obs::events::instant("replay.shard_skew", skew_us);
    Ok(ReplayOutcome {
        stats,
        occupancy,
        shards,
    })
}

/// Like [`replay_predictor`], additionally observing every access into a
/// per-PC [`AttributionTable`].
///
/// This is a separate function (rather than a flag) so the unattributed
/// hot path keeps its exact instruction stream: with attribution off,
/// nothing here runs. The attribution contract mirrors the stats one —
/// PC-sharding routes each static address wholly into one shard, so the
/// merged table is **bit-identical** to a sequential replay's at any
/// shard/job count, and [`AttributionTable::reconcile`] holds against the
/// merged [`ReplayOutcome::stats`].
///
/// # Errors
///
/// [`io::Error`] of kind `InvalidData` when a value event's address does
/// not name an instruction of `program` (a foreign trace).
pub fn replay_predictor_attributed(
    trace: &Trace,
    program: &Program,
    config: &PredictorConfig,
    shards: usize,
    jobs: usize,
) -> io::Result<(ReplayOutcome, AttributionTable)> {
    let _span = vp_obs::span("replay");
    let directives: Vec<Directive> = program.text().iter().map(|i| i.directive).collect();
    let shards = shards.max(1);
    let cols = trace.columns();

    if shards == 1 {
        let mut predictor = config.build();
        let mut table = AttributionTable::new();
        for (addr, value) in cols.value_events() {
            let directive = *directives
                .get(addr.index() as usize)
                .ok_or_else(|| outside_text(addr))?;
            let access = predictor.access(addr, directive, value);
            table.observe(addr, directive, &access, value);
        }
        vp_obs::counter("replay.shards").add(1);
        let outcome = ReplayOutcome {
            stats: *predictor.stats(),
            occupancy: predictor.occupancy(),
            shards: 1,
        };
        return Ok((outcome, table));
    }

    let views = cols.shard_by_pc(shards, |addr| config.shard_key(addr));
    let parts = parallel_map(jobs.max(1), &views, |shard| -> io::Result<_> {
        let started = Instant::now();
        let mut predictor = config.build();
        let mut table = AttributionTable::new();
        for (addr, value) in shard.values() {
            let directive = *directives
                .get(addr.index() as usize)
                .ok_or_else(|| outside_text(addr))?;
            let access = predictor.access(addr, directive, value);
            table.observe(addr, directive, &access, value);
        }
        Ok((
            *predictor.stats(),
            predictor.occupancy(),
            table,
            started.elapsed().as_micros() as u64,
        ))
    });

    let mut stats = PredictorStats::new();
    let mut occupancy = 0usize;
    let mut table = AttributionTable::new();
    let (mut fastest, mut slowest) = (u64::MAX, 0u64);
    for part in parts {
        let (shard_stats, shard_occupancy, shard_table, micros) = part?;
        stats.merge(&shard_stats);
        occupancy += shard_occupancy;
        table.merge(&shard_table);
        fastest = fastest.min(micros);
        slowest = slowest.max(micros);
    }
    let skew_us = slowest.saturating_sub(fastest);
    vp_obs::counter("replay.shards").add(shards as u64);
    vp_obs::gauge("replay.shard_skew_ms").set_max(skew_us.div_ceil(1000));
    vp_obs::events::instant("replay.shard_skew", skew_us);
    let outcome = ReplayOutcome {
        stats,
        occupancy,
        shards,
    };
    Ok((outcome, table))
}

fn outside_text(addr: vp_isa::InstrAddr) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("trace event at {addr} outside program text"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::asm::assemble;
    use vp_predictor::{ClassifierKind, TableGeometry};
    use vp_sim::RunLimits;

    fn sample() -> (Program, Trace) {
        let p = assemble(
            "li r1, 0\nli r2, 200\n\
             top: addi.st r1, r1, 1\nadd r3, r1, r1\nbne r1, r2, top\nhalt\n",
        )
        .unwrap();
        let trace = Trace::capture(&p, RunLimits::default()).unwrap();
        (p, trace)
    }

    #[test]
    fn sharded_replay_matches_sequential() {
        let (p, trace) = sample();
        for config in [
            PredictorConfig::spec_table_stride_fsm(),
            PredictorConfig::spec_table_stride_profile(),
            PredictorConfig::InfiniteStride {
                classifier: ClassifierKind::two_bit_counter(),
            },
            PredictorConfig::Hybrid {
                stride: TableGeometry::new(8, 2),
                last_value: TableGeometry::new(12, 2),
            },
        ] {
            let seq = replay_predictor(&trace, &p, &config, 1, 1).unwrap();
            for shards in [2usize, 3, 4, 8] {
                for jobs in [1usize, 4] {
                    let par = replay_predictor(&trace, &p, &config, shards, jobs).unwrap();
                    assert_eq!(
                        par.stats,
                        seq.stats,
                        "{} diverged at {shards} shards / {jobs} jobs",
                        config.label()
                    );
                    assert_eq!(par.occupancy, seq.occupancy, "{}", config.label());
                    assert_eq!(par.shards, shards);
                }
            }
        }
    }

    #[test]
    fn attributed_replay_matches_plain_and_reconciles() {
        let (p, trace) = sample();
        for config in [
            PredictorConfig::spec_table_stride_fsm(),
            PredictorConfig::spec_table_stride_profile(),
            PredictorConfig::Hybrid {
                stride: TableGeometry::new(8, 2),
                last_value: TableGeometry::new(12, 2),
            },
        ] {
            let plain = replay_predictor(&trace, &p, &config, 1, 1).unwrap();
            let (seq, seq_table) = replay_predictor_attributed(&trace, &p, &config, 1, 1).unwrap();
            // Observation-only: attribution never perturbs the stats.
            assert_eq!(seq.stats, plain.stats, "{}", config.label());
            assert_eq!(seq.occupancy, plain.occupancy);
            seq_table
                .reconcile(&seq.stats)
                .unwrap_or_else(|e| panic!("{}: {e}", config.label()));
            for shards in [2usize, 3, 8] {
                let (par, par_table) =
                    replay_predictor_attributed(&trace, &p, &config, shards, 4).unwrap();
                assert_eq!(par.stats, seq.stats, "{}", config.label());
                assert_eq!(
                    par_table,
                    seq_table,
                    "{} attribution diverged at {shards} shards",
                    config.label()
                );
            }
        }
    }

    #[test]
    fn foreign_traces_are_rejected() {
        let (_, trace) = sample();
        let other = assemble("halt\n").unwrap();
        let cfg = PredictorConfig::spec_table_stride_fsm();
        for shards in [1usize, 4] {
            let e = replay_predictor(&trace, &other, &cfg, shards, 2).unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        }
    }

    #[test]
    fn auto_shards_policy() {
        // Serial runs and tiny traces stay unsharded.
        assert_eq!(auto_shards(1, MIN_SHARD_EVENTS * 2), 1);
        assert_eq!(auto_shards(8, MIN_SHARD_EVENTS - 1), 1);
        // Parallel runs over big traces shard by jobs.
        assert_eq!(auto_shards(4, MIN_SHARD_EVENTS), 4);
        // Inside a grid worker: degrade to one shard.
        let nested = parallel_map(2, &[0u8; 4], |_| auto_shards(4, MIN_SHARD_EVENTS));
        assert!(nested.iter().all(|&n| n == 1));
    }
}
