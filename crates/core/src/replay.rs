//! PC-sharded parallel predictor replay.
//!
//! Both predictor families of the paper key their dynamic state purely by
//! **static instruction address** — the infinite predictors keep one cell
//! per address, the finite tables one set per `addr mod sets` (tags, LRU
//! stamps and conflict counts all live inside a set). Replaying a trace
//! through a predictor is therefore embarrassingly parallel once the
//! trace's value events are partitioned by that key: every shard replays
//! against an independent predictor instance, observes exactly the
//! accesses a sequential run would have routed to its state partition *in
//! the same order*, and the per-shard [`PredictorStats`] merge by field
//! addition ([`PredictorStats::merge`]) into totals **bit-identical** to
//! a sequential replay, at any shard count.
//!
//! The shard key is supplied by [`PredictorConfig::shard_key`]; the
//! partition itself is a zero-copy view over the columnar trace
//! ([`vp_sim::TraceColumns::shard_by_pc`]). Shards run on the same
//! deterministic worker pool as the experiment grids
//! ([`crate::exec::parallel_map`]), and [`auto_shards`] degrades to a
//! single shard inside an already-parallel grid worker so nested fan-out
//! never oversubscribes the machine.
//!
//! On top of the per-cell replay sits the **fused sweep matrix**: every
//! headline figure of the paper is a sweep — several predictor
//! configurations × several profiling thresholds over the *same* trace —
//! and replaying per cell scans the identical value stream `cells` times.
//! The fused engine streams the trace once, resolves each distinct
//! directive annotation's per-PC row once per block, and feeds the block
//! to a bank of predictors ([`vp_predictor::ValuePredictor::access_batch`]),
//! sharding by the *joint* state-partition key (gcd of the cells' moduli)
//! so every cell's grid entry stays bit-identical to its sequential
//! per-cell replay.
//!
//! ## Entry point
//!
//! All replays go through one builder, [`ReplayRequest`]: pick a source
//! ([`ReplayRequest::batch`] for a resident [`Trace`],
//! [`ReplayRequest::stream`] to simulate and predict concurrently without
//! ever materialising the trace — see [`stream`]), describe the cells
//! ([`ReplayRequest::plan`] / [`ReplayRequest::single`]), and [`run`]
//! it. The four pre-builder entry points (`replay_predictor`,
//! `replay_predictor_attributed`, `replay_matrix`,
//! `replay_matrix_attributed`) survive as thin deprecated wrappers; see
//! DESIGN.md for the migration table.
//!
//! [`run`]: ReplayRequest::run

use std::collections::HashMap;
use std::io;
use std::time::Instant;

use vp_isa::{Directive, InstrAddr, Program};
use vp_predictor::{AttributionTable, PredictorConfig, PredictorStats, ValuePredictor};
use vp_sim::{RunLimits, Trace};

use crate::exec::{in_worker, parallel_map};

pub mod stream;

/// Traces below this many events are replayed unsharded: the per-shard
/// flag-column rescan and thread hand-off would cost more than they save.
pub const MIN_SHARD_EVENTS: usize = 1 << 16;

/// The result of a (possibly sharded) predictor replay.
#[derive(Debug, Clone, Copy)]
pub struct ReplayOutcome {
    /// Merged predictor statistics, bit-identical to a sequential replay.
    pub stats: PredictorStats,
    /// Total occupied table entries across shards (state partitions are
    /// disjoint, so the sum equals a single predictor's occupancy).
    pub occupancy: usize,
    /// How many shards actually ran.
    pub shards: usize,
}

/// Picks a shard count for a replay: `jobs` shards when sharding can help,
/// 1 when it cannot (serial run, tiny trace) or must not (already inside a
/// [`parallel_map`] worker, where nested fan-out would oversubscribe the
/// pool). Output never depends on the choice — only wall-clock does.
///
/// For a streaming replay the event count is unknown up front; pass
/// [`usize::MAX`] to let `jobs` and worker-nesting decide alone.
#[must_use]
pub fn auto_shards(jobs: usize, events: usize) -> usize {
    if jobs <= 1 || events < MIN_SHARD_EVENTS || in_worker() {
        1
    } else {
        jobs
    }
}

/// Events per fused-kernel block: long enough to amortise the one virtual
/// `access_batch` call per (block, cell) and keep each predictor's tables
/// hot across the block, short enough that the scratch columns (addresses,
/// values, one directive row per distinct annotation) stay cache-resident.
pub(crate) const MATRIX_BLOCK: usize = 1024;

/// One cell of a [`SweepPlan`]: a predictor configuration replayed under
/// one of the plan's directive annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixCell {
    /// The predictor + classifier to replay.
    pub config: PredictorConfig,
    /// Index of the directive table (from [`SweepPlan::add_directives`])
    /// this cell reads its per-PC directives from. Cells sharing a table
    /// share its resolved directive row — the sweep's "compute each
    /// threshold's annotation once" cache.
    pub directives: usize,
}

/// The full sweep matrix for one trace: a set of directive annotations
/// (one per distinct profiling threshold, plus the bare program) and the
/// `(PredictorConfig, annotation)` cells to replay under them.
#[derive(Debug, Clone, Default)]
pub struct SweepPlan {
    tables: Vec<Vec<Directive>>,
    cells: Vec<MatrixCell>,
}

impl SweepPlan {
    /// An empty plan.
    #[must_use]
    pub fn new() -> Self {
        SweepPlan::default()
    }

    /// Registers `program`'s directive annotation as a table and returns
    /// its index for [`SweepPlan::add_cell`]. Identical annotations (e.g.
    /// two thresholds that saturate to the same tagging) dedupe to one
    /// table, so the kernel resolves their directive row once.
    pub fn add_directives(&mut self, program: &Program) -> usize {
        let table: Vec<Directive> = program.text().iter().map(|i| i.directive).collect();
        if let Some(i) = self.tables.iter().position(|t| *t == table) {
            return i;
        }
        self.tables.push(table);
        self.tables.len() - 1
    }

    /// Adds a cell replaying `config` under directive table `directives`.
    ///
    /// # Panics
    ///
    /// Panics if `directives` was not returned by
    /// [`SweepPlan::add_directives`] on this plan.
    pub fn add_cell(&mut self, config: PredictorConfig, directives: usize) {
        assert!(
            directives < self.tables.len(),
            "directive table {directives} not registered (plan has {})",
            self.tables.len()
        );
        self.cells.push(MatrixCell { config, directives });
    }

    /// The cells in request order.
    #[must_use]
    pub fn cells(&self) -> &[MatrixCell] {
        &self.cells
    }

    /// The registered directive tables, in registration order.
    pub(crate) fn tables(&self) -> &[Vec<Directive>] {
        &self.tables
    }

    /// Whether the plan has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Greatest common divisor (Euclid); used for the joint shard modulus.
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

/// The coarsest state partition compatible with *every* cell of the plan:
/// the gcd of the finite cells' [`PredictorConfig::shard_modulus`] values.
///
/// `g` divides each finite cell's modulus `m`, so two addresses sharing
/// state in that cell (`a ≡ b mod m`) also share a shard (`a ≡ b mod g`);
/// infinite cells keep purely per-address state, which any function of the
/// address respects. `None` (an all-infinite plan) shards by raw address.
pub(crate) fn joint_shard_modulus(cells: &[MatrixCell]) -> Option<u64> {
    let mut joint: Option<u64> = None;
    for cell in cells {
        if let Some(m) = cell.config.shard_modulus() {
            joint = Some(match joint {
                Some(g) => gcd(g, m),
                None => m,
            });
        }
    }
    joint
}

/// Dedupes the plan's cells: returns the distinct cells (the predictor
/// bank's slots) and, per request cell, the slot it maps to.
pub(crate) fn dedupe_cells(cells: &[MatrixCell]) -> (Vec<MatrixCell>, Vec<usize>) {
    let mut slots = Vec::new();
    let mut slot_of = Vec::with_capacity(cells.len());
    let mut index: HashMap<MatrixCell, usize> = HashMap::new();
    for &cell in cells {
        let slot = *index.entry(cell).or_insert_with(|| {
            slots.push(cell);
            slots.len() - 1
        });
        slot_of.push(slot);
    }
    (slots, slot_of)
}

/// The distinct directive tables the slots actually read, ascending.
fn used_tables(slots: &[MatrixCell]) -> Vec<usize> {
    let mut used: Vec<usize> = slots.iter().map(|c| c.directives).collect();
    used.sort_unstable();
    used.dedup();
    used
}

/// The push-based fused kernel: accumulates one shard's value events into
/// [`MATRIX_BLOCK`]-sized scratch columns, resolves each full block's
/// directive row once per distinct annotation and feeds the block to
/// every predictor in the bank via [`ValuePredictor::access_batch`] (one
/// virtual call per block per cell, statically dispatched inside).
///
/// Both the batch scan (an iterator drained into `push`) and the
/// streaming consumers ([`stream`]) drive this same kernel, so their
/// per-event instruction streams — and therefore their results — cannot
/// drift apart: the block boundaries a consumer happens to deliver never
/// matter, only the accumulated [`MATRIX_BLOCK`] chunking here does.
pub(crate) struct MatrixScanner<'p> {
    banks: Vec<Box<dyn ValuePredictor>>,
    tables: &'p [Vec<Directive>],
    slots: &'p [MatrixCell],
    used: Vec<usize>,
    addrs: Vec<InstrAddr>,
    values: Vec<u64>,
    rows: Vec<Vec<Directive>>,
}

impl<'p> MatrixScanner<'p> {
    pub(crate) fn new(tables: &'p [Vec<Directive>], slots: &'p [MatrixCell]) -> Self {
        MatrixScanner {
            banks: slots.iter().map(|c| c.config.build()).collect(),
            tables,
            slots,
            used: used_tables(slots),
            addrs: Vec::with_capacity(MATRIX_BLOCK),
            values: Vec::with_capacity(MATRIX_BLOCK),
            rows: tables
                .iter()
                .map(|_| Vec::with_capacity(MATRIX_BLOCK))
                .collect(),
        }
    }

    pub(crate) fn push(&mut self, addr: InstrAddr, value: u64) -> io::Result<()> {
        self.addrs.push(addr);
        self.values.push(value);
        if self.addrs.len() == MATRIX_BLOCK {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.addrs.is_empty() {
            return Ok(());
        }
        for &t in &self.used {
            let table = &self.tables[t];
            let row = &mut self.rows[t];
            row.clear();
            for &addr in &self.addrs {
                row.push(
                    *table
                        .get(addr.index() as usize)
                        .ok_or_else(|| outside_text(addr))?,
                );
            }
        }
        for (bank, cell) in self.banks.iter_mut().zip(self.slots) {
            bank.access_batch(&self.addrs, &self.rows[cell.directives], &self.values);
        }
        self.addrs.clear();
        self.values.clear();
        Ok(())
    }

    pub(crate) fn finish(mut self) -> io::Result<Vec<(PredictorStats, usize)>> {
        self.flush()?;
        Ok(self
            .banks
            .iter()
            .map(|b| (*b.stats(), b.occupancy()))
            .collect())
    }
}

/// [`MatrixScanner`] with per-access attribution observation. Attribution
/// consumes each access outcome, so this variant runs event-at-a-time —
/// it exists to keep `--attribution` runs on the fused path (one trace
/// scan) without perturbing the plain kernel.
pub(crate) struct MatrixScannerAttributed<'p> {
    banks: Vec<Box<dyn ValuePredictor>>,
    attributions: Vec<AttributionTable>,
    tables: &'p [Vec<Directive>],
    slots: &'p [MatrixCell],
    used: Vec<usize>,
    dirs: Vec<Directive>,
}

impl<'p> MatrixScannerAttributed<'p> {
    pub(crate) fn new(tables: &'p [Vec<Directive>], slots: &'p [MatrixCell]) -> Self {
        MatrixScannerAttributed {
            banks: slots.iter().map(|c| c.config.build()).collect(),
            attributions: slots.iter().map(|_| AttributionTable::new()).collect(),
            tables,
            slots,
            used: used_tables(slots),
            dirs: vec![Directive::None; tables.len()],
        }
    }

    pub(crate) fn push(&mut self, addr: InstrAddr, value: u64) -> io::Result<()> {
        for &t in &self.used {
            self.dirs[t] = *self.tables[t]
                .get(addr.index() as usize)
                .ok_or_else(|| outside_text(addr))?;
        }
        for ((bank, cell), table) in self
            .banks
            .iter_mut()
            .zip(self.slots)
            .zip(self.attributions.iter_mut())
        {
            let directive = self.dirs[cell.directives];
            let access = bank.access(addr, directive, value);
            table.observe(addr, directive, &access, value);
        }
        Ok(())
    }

    pub(crate) fn finish(self) -> io::Result<Vec<(PredictorStats, usize, AttributionTable)>> {
        Ok(self
            .banks
            .iter()
            .zip(self.attributions)
            .map(|(b, t)| (*b.stats(), b.occupancy(), t))
            .collect())
    }
}

/// Drains `events` through a [`MatrixScanner`].
fn matrix_scan<I>(
    events: I,
    tables: &[Vec<Directive>],
    slots: &[MatrixCell],
) -> io::Result<Vec<(PredictorStats, usize)>>
where
    I: Iterator<Item = (InstrAddr, u64)>,
{
    let mut scanner = MatrixScanner::new(tables, slots);
    for (addr, value) in events {
        scanner.push(addr, value)?;
    }
    scanner.finish()
}

/// Drains `events` through a [`MatrixScannerAttributed`].
fn matrix_scan_attributed<I>(
    events: I,
    tables: &[Vec<Directive>],
    slots: &[MatrixCell],
) -> io::Result<Vec<(PredictorStats, usize, AttributionTable)>>
where
    I: Iterator<Item = (InstrAddr, u64)>,
{
    let mut scanner = MatrixScannerAttributed::new(tables, slots);
    for (addr, value) in events {
        scanner.push(addr, value)?;
    }
    scanner.finish()
}

/// Publishes the per-replay shard counters shared by the batch engines.
fn publish_shard_skew(shards: usize, fastest: u64, slowest: u64) {
    let skew_us = slowest.saturating_sub(fastest);
    vp_obs::counter("replay.shards").add(shards as u64);
    vp_obs::gauge("replay.shard_skew_ms").set_max(skew_us.div_ceil(1000));
    vp_obs::events::instant("replay.shard_skew", skew_us);
}

/// The batch fused engine behind [`ReplayRequest::run`] (plain variant).
fn batch_matrix(
    trace: &Trace,
    plan: &SweepPlan,
    shards: usize,
    jobs: usize,
) -> io::Result<Vec<ReplayOutcome>> {
    let _span = vp_obs::span("matrix");
    let (slots, slot_of) = dedupe_cells(&plan.cells);
    vp_obs::counter("replay.matrix_passes").add(1);
    vp_obs::counter("replay.fused_cells").add(slots.len() as u64);
    let shards = shards.max(1);
    let cols = trace.columns();

    if shards == 1 {
        let per_slot = matrix_scan(cols.value_events(), &plan.tables, &slots)?;
        vp_obs::counter("replay.shards").add(1);
        return Ok(slot_of
            .iter()
            .map(|&s| ReplayOutcome {
                stats: per_slot[s].0,
                occupancy: per_slot[s].1,
                shards: 1,
            })
            .collect());
    }

    let modulus = joint_shard_modulus(&slots);
    let views = cols.shard_by_pc(shards, move |addr| match modulus {
        Some(g) => u64::from(addr.index()) % g,
        None => u64::from(addr.index()),
    });
    let parts = parallel_map(jobs.max(1), &views, |shard| -> io::Result<_> {
        let started = Instant::now();
        let per_slot = matrix_scan(shard.values(), &plan.tables, &slots)?;
        Ok((per_slot, started.elapsed().as_micros() as u64))
    });

    let mut merged = vec![(PredictorStats::new(), 0usize); slots.len()];
    let (mut fastest, mut slowest) = (u64::MAX, 0u64);
    for part in parts {
        let (per_slot, micros) = part?;
        for (acc, part) in merged.iter_mut().zip(per_slot) {
            acc.0.merge(&part.0);
            acc.1 += part.1;
        }
        fastest = fastest.min(micros);
        slowest = slowest.max(micros);
    }
    publish_shard_skew(shards, fastest, slowest);
    Ok(slot_of
        .iter()
        .map(|&s| ReplayOutcome {
            stats: merged[s].0,
            occupancy: merged[s].1,
            shards,
        })
        .collect())
}

/// The batch fused engine behind [`ReplayRequest::run`] (attributed).
fn batch_matrix_attributed(
    trace: &Trace,
    plan: &SweepPlan,
    shards: usize,
    jobs: usize,
) -> io::Result<Vec<(ReplayOutcome, AttributionTable)>> {
    let _span = vp_obs::span("matrix");
    let (slots, slot_of) = dedupe_cells(&plan.cells);
    vp_obs::counter("replay.matrix_passes").add(1);
    vp_obs::counter("replay.fused_cells").add(slots.len() as u64);
    let shards = shards.max(1);
    let cols = trace.columns();

    if shards == 1 {
        let per_slot = matrix_scan_attributed(cols.value_events(), &plan.tables, &slots)?;
        vp_obs::counter("replay.shards").add(1);
        return Ok(slot_of
            .iter()
            .map(|&s| {
                let (stats, occupancy, ref table) = per_slot[s];
                (
                    ReplayOutcome {
                        stats,
                        occupancy,
                        shards: 1,
                    },
                    table.clone(),
                )
            })
            .collect());
    }

    let modulus = joint_shard_modulus(&slots);
    let views = cols.shard_by_pc(shards, move |addr| match modulus {
        Some(g) => u64::from(addr.index()) % g,
        None => u64::from(addr.index()),
    });
    let parts = parallel_map(jobs.max(1), &views, |shard| -> io::Result<_> {
        let started = Instant::now();
        let per_slot = matrix_scan_attributed(shard.values(), &plan.tables, &slots)?;
        Ok((per_slot, started.elapsed().as_micros() as u64))
    });

    let mut merged: Vec<(PredictorStats, usize, AttributionTable)> = slots
        .iter()
        .map(|_| (PredictorStats::new(), 0usize, AttributionTable::new()))
        .collect();
    let (mut fastest, mut slowest) = (u64::MAX, 0u64);
    for part in parts {
        let (per_slot, micros) = part?;
        for (acc, (stats, occupancy, table)) in merged.iter_mut().zip(per_slot) {
            acc.0.merge(&stats);
            acc.1 += occupancy;
            acc.2.merge(&table);
        }
        fastest = fastest.min(micros);
        slowest = slowest.max(micros);
    }
    publish_shard_skew(shards, fastest, slowest);
    Ok(slot_of
        .iter()
        .map(|&s| {
            let (stats, occupancy, ref table) = merged[s];
            (
                ReplayOutcome {
                    stats,
                    occupancy,
                    shards,
                },
                table.clone(),
            )
        })
        .collect())
}

/// Where a [`ReplayRequest`] reads its value events from.
#[derive(Debug, Clone, Copy)]
pub enum ReplaySource<'a> {
    /// Replay a fully materialised in-memory [`Trace`] (the classic
    /// path: capture once via [`crate::TraceStore`], replay many times).
    Batch(&'a Trace),
    /// Simulate `program` under `limits` and feed its value events
    /// straight into the predictor workers through a bounded block
    /// channel — the trace is never resident. See [`stream`].
    Stream {
        /// The program to simulate (directive annotations are irrelevant
        /// to execution; the plan's tables supply the directives).
        program: &'a Program,
        /// Instruction budget for the simulation.
        limits: RunLimits,
    },
}

/// One cell's result from a [`ReplayRequest`]: the replay outcome plus,
/// when attribution was requested, its per-PC [`AttributionTable`]
/// (duplicate cells receive clones of the shared slot's table).
#[derive(Debug, Clone)]
pub struct ReplayCellOutcome {
    /// Stats, occupancy and shard count — bit-identical to a sequential
    /// per-cell replay at any shard/job/block-pool count.
    pub outcome: ReplayOutcome,
    /// The per-PC attribution table, if [`ReplayRequest::attribution`]
    /// asked for one.
    pub attribution: Option<AttributionTable>,
}

/// The per-cell results of a [`ReplayRequest`], in plan order.
#[derive(Debug, Clone, Default)]
pub struct ReplayResponse {
    /// One entry per plan cell, in [`SweepPlan::cells`] order.
    pub cells: Vec<ReplayCellOutcome>,
}

impl ReplayResponse {
    /// The plain outcomes in plan order (convenience for callers that
    /// don't use attribution).
    #[must_use]
    pub fn outcomes(&self) -> Vec<ReplayOutcome> {
        self.cells.iter().map(|c| c.outcome).collect()
    }

    /// Unwraps a single-cell response.
    ///
    /// # Panics
    ///
    /// Panics if the response does not hold exactly one cell.
    #[must_use]
    pub fn into_single(mut self) -> ReplayCellOutcome {
        assert_eq!(
            self.cells.len(),
            1,
            "response holds {} cells",
            self.cells.len()
        );
        self.cells.pop().expect("one cell")
    }
}

/// A builder describing one replay: which cells to evaluate
/// ([`SweepPlan`]), whether to attribute mispredictions, how to shard and
/// fan out, and where the value events come from ([`ReplaySource`]).
///
/// This is the single entry point subsuming the four older functions
/// (`replay_predictor[_attributed]`, `replay_matrix[_attributed]`, all
/// now thin deprecated wrappers):
///
/// ```
/// use provp_core::replay::ReplayRequest;
/// use vp_isa::asm::assemble;
/// use vp_predictor::PredictorConfig;
/// use vp_sim::{RunLimits, Trace};
///
/// # fn main() -> std::io::Result<()> {
/// let p = assemble("li r1, 0\nli r2, 9\ntop: addi r1, r1, 1\nbne r1, r2, top\nhalt\n").unwrap();
/// let trace = Trace::capture(&p, RunLimits::default()).unwrap();
///
/// // Batch: replay the captured trace.
/// let batch = ReplayRequest::batch(&trace)
///     .single(&p, PredictorConfig::spec_table_stride_fsm())
///     .run()?
///     .into_single();
///
/// // Streaming: same result, no resident trace.
/// let streamed = ReplayRequest::stream(&p, RunLimits::default())
///     .single(&p, PredictorConfig::spec_table_stride_fsm())
///     .run()?
///     .into_single();
/// assert_eq!(batch.outcome.stats, streamed.outcome.stats);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReplayRequest<'a> {
    plan: SweepPlan,
    source: ReplaySource<'a>,
    attribution: bool,
    shards: usize,
    jobs: usize,
    block_pool: usize,
}

impl<'a> ReplayRequest<'a> {
    /// A request reading value events from `source`.
    #[must_use]
    pub fn new(source: ReplaySource<'a>) -> Self {
        ReplayRequest {
            plan: SweepPlan::new(),
            source,
            attribution: false,
            shards: 1,
            jobs: 1,
            block_pool: stream::DEFAULT_BLOCK_POOL,
        }
    }

    /// A request replaying the materialised `trace`.
    #[must_use]
    pub fn batch(trace: &'a Trace) -> Self {
        ReplayRequest::new(ReplaySource::Batch(trace))
    }

    /// A request simulating `program` and predicting concurrently,
    /// without materialising a trace.
    #[must_use]
    pub fn stream(program: &'a Program, limits: RunLimits) -> Self {
        ReplayRequest::new(ReplaySource::Stream { program, limits })
    }

    /// Replaces the request's sweep plan wholesale.
    #[must_use]
    pub fn plan(mut self, plan: SweepPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Appends a single cell: `config` replayed under `program`'s
    /// directive annotation (registered as a plan table, deduped).
    #[must_use]
    pub fn single(mut self, program: &Program, config: PredictorConfig) -> Self {
        let table = self.plan.add_directives(program);
        self.plan.add_cell(config, table);
        self
    }

    /// Whether to additionally build a per-PC [`AttributionTable`] per
    /// cell (observation-only; stats stay bit-identical).
    #[must_use]
    pub fn attribution(mut self, on: bool) -> Self {
        self.attribution = on;
        self
    }

    /// Shard count for the state-partitioned replay (see [`auto_shards`]).
    /// Results are bit-identical at any value; only wall-clock changes.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Worker-thread cap for a batch replay's shard fan-out. A streaming
    /// replay always runs one thread per shard plus the producer (its
    /// shards *are* its workers), so pick `shards` from `jobs` there.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Block-pool size for a streaming replay: the fixed number of
    /// [`vp_sim::VALUE_BLOCK`]-event buffers circulating between producer
    /// and consumers (clamped to at least
    /// [`stream::MIN_BLOCK_POOL`]). Ignored by batch replays.
    #[must_use]
    pub fn block_pool(mut self, blocks: usize) -> Self {
        self.block_pool = blocks.max(stream::MIN_BLOCK_POOL);
        self
    }

    /// Runs the replay and returns per-cell results in plan order.
    ///
    /// Duplicate cells are deduped into one predictor-bank slot and share
    /// one replay; the results are **bit-identical** to per-cell
    /// sequential replays at any shard/job/block-pool count
    /// (property-tested and fuzzed via the vp-verify oracle, including a
    /// streaming ≡ batch stage).
    ///
    /// # Errors
    ///
    /// [`io::Error`] of kind `InvalidData` when a value event's address
    /// lies outside a used directive table (a foreign trace or program);
    /// for streaming sources, any [`vp_sim::SimError`] fault surfaces as
    /// an [`io::Error`] with the fault as its [`source`].
    ///
    /// [`source`]: std::error::Error::source
    pub fn run(self) -> io::Result<ReplayResponse> {
        if self.plan.is_empty() {
            return Ok(ReplayResponse::default());
        }
        let cells = match (self.source, self.attribution) {
            (ReplaySource::Batch(trace), false) => {
                batch_matrix(trace, &self.plan, self.shards, self.jobs)?
                    .into_iter()
                    .map(|outcome| ReplayCellOutcome {
                        outcome,
                        attribution: None,
                    })
                    .collect()
            }
            (ReplaySource::Batch(trace), true) => {
                batch_matrix_attributed(trace, &self.plan, self.shards, self.jobs)?
                    .into_iter()
                    .map(|(outcome, table)| ReplayCellOutcome {
                        outcome,
                        attribution: Some(table),
                    })
                    .collect()
            }
            (ReplaySource::Stream { program, limits }, false) => {
                stream::stream_matrix(program, limits, &self.plan, self.shards, self.block_pool)?
                    .into_iter()
                    .map(|outcome| ReplayCellOutcome {
                        outcome,
                        attribution: None,
                    })
                    .collect()
            }
            (ReplaySource::Stream { program, limits }, true) => stream::stream_matrix_attributed(
                program,
                limits,
                &self.plan,
                self.shards,
                self.block_pool,
            )?
            .into_iter()
            .map(|(outcome, table)| ReplayCellOutcome {
                outcome,
                attribution: Some(table),
            })
            .collect(),
        };
        Ok(ReplayResponse { cells })
    }
}

/// Replays `trace`'s value events through `config`'s predictor.
///
/// # Errors
///
/// [`io::Error`] of kind `InvalidData` for foreign traces.
#[deprecated(
    since = "0.1.0",
    note = "use ReplayRequest::batch(trace).single(program, *config) instead"
)]
pub fn replay_predictor(
    trace: &Trace,
    program: &Program,
    config: &PredictorConfig,
    shards: usize,
    jobs: usize,
) -> io::Result<ReplayOutcome> {
    Ok(ReplayRequest::batch(trace)
        .single(program, *config)
        .shards(shards)
        .jobs(jobs)
        .run()?
        .into_single()
        .outcome)
}

/// Like `replay_predictor`, additionally observing every access into a
/// per-PC [`AttributionTable`].
///
/// # Errors
///
/// [`io::Error`] of kind `InvalidData` for foreign traces.
#[deprecated(
    since = "0.1.0",
    note = "use ReplayRequest::batch(trace).single(program, *config).attribution(true) instead"
)]
pub fn replay_predictor_attributed(
    trace: &Trace,
    program: &Program,
    config: &PredictorConfig,
    shards: usize,
    jobs: usize,
) -> io::Result<(ReplayOutcome, AttributionTable)> {
    let cell = ReplayRequest::batch(trace)
        .single(program, *config)
        .attribution(true)
        .shards(shards)
        .jobs(jobs)
        .run()?
        .into_single();
    Ok((
        cell.outcome,
        cell.attribution.expect("attribution requested"),
    ))
}

/// Replays `trace`'s value events through *every* cell of `plan` in a
/// single fused pass.
///
/// # Errors
///
/// [`io::Error`] of kind `InvalidData` for foreign traces.
#[deprecated(
    since = "0.1.0",
    note = "use ReplayRequest::batch(trace).plan(plan.clone()) instead"
)]
pub fn replay_matrix(
    trace: &Trace,
    plan: &SweepPlan,
    shards: usize,
    jobs: usize,
) -> io::Result<Vec<ReplayOutcome>> {
    if plan.is_empty() {
        return Ok(Vec::new());
    }
    batch_matrix(trace, plan, shards, jobs)
}

/// Like `replay_matrix`, additionally producing a per-PC
/// [`AttributionTable`] per cell.
///
/// # Errors
///
/// [`io::Error`] of kind `InvalidData` for foreign traces.
#[deprecated(
    since = "0.1.0",
    note = "use ReplayRequest::batch(trace).plan(plan.clone()).attribution(true) instead"
)]
pub fn replay_matrix_attributed(
    trace: &Trace,
    plan: &SweepPlan,
    shards: usize,
    jobs: usize,
) -> io::Result<Vec<(ReplayOutcome, AttributionTable)>> {
    if plan.is_empty() {
        return Ok(Vec::new());
    }
    batch_matrix_attributed(trace, plan, shards, jobs)
}

pub(crate) fn outside_text(addr: vp_isa::InstrAddr) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("trace event at {addr} outside program text"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::asm::assemble;
    use vp_predictor::{ClassifierKind, TableGeometry};

    fn sample() -> (Program, Trace) {
        let p = assemble(
            "li r1, 0\nli r2, 200\n\
             top: addi.st r1, r1, 1\nadd r3, r1, r1\nbne r1, r2, top\nhalt\n",
        )
        .unwrap();
        let trace = Trace::capture(&p, RunLimits::default()).unwrap();
        (p, trace)
    }

    fn single_outcome(
        trace: &Trace,
        p: &Program,
        config: &PredictorConfig,
        shards: usize,
        jobs: usize,
    ) -> ReplayOutcome {
        ReplayRequest::batch(trace)
            .single(p, *config)
            .shards(shards)
            .jobs(jobs)
            .run()
            .unwrap()
            .into_single()
            .outcome
    }

    #[test]
    fn sharded_replay_matches_sequential() {
        let (p, trace) = sample();
        for config in [
            PredictorConfig::spec_table_stride_fsm(),
            PredictorConfig::spec_table_stride_profile(),
            PredictorConfig::InfiniteStride {
                classifier: ClassifierKind::two_bit_counter(),
            },
            PredictorConfig::Hybrid {
                stride: TableGeometry::new(8, 2),
                last_value: TableGeometry::new(12, 2),
            },
        ] {
            let seq = single_outcome(&trace, &p, &config, 1, 1);
            for shards in [2usize, 3, 4, 8] {
                for jobs in [1usize, 4] {
                    let par = single_outcome(&trace, &p, &config, shards, jobs);
                    assert_eq!(
                        par.stats,
                        seq.stats,
                        "{} diverged at {shards} shards / {jobs} jobs",
                        config.label()
                    );
                    assert_eq!(par.occupancy, seq.occupancy, "{}", config.label());
                    assert_eq!(par.shards, shards);
                }
            }
        }
    }

    #[test]
    fn attributed_replay_matches_plain_and_reconciles() {
        let (p, trace) = sample();
        for config in [
            PredictorConfig::spec_table_stride_fsm(),
            PredictorConfig::spec_table_stride_profile(),
            PredictorConfig::Hybrid {
                stride: TableGeometry::new(8, 2),
                last_value: TableGeometry::new(12, 2),
            },
        ] {
            let plain = single_outcome(&trace, &p, &config, 1, 1);
            let seq = ReplayRequest::batch(&trace)
                .single(&p, config)
                .attribution(true)
                .run()
                .unwrap()
                .into_single();
            let seq_table = seq.attribution.expect("attribution requested");
            // Observation-only: attribution never perturbs the stats.
            assert_eq!(seq.outcome.stats, plain.stats, "{}", config.label());
            assert_eq!(seq.outcome.occupancy, plain.occupancy);
            seq_table
                .reconcile(&seq.outcome.stats)
                .unwrap_or_else(|e| panic!("{}: {e}", config.label()));
            for shards in [2usize, 3, 8] {
                let par = ReplayRequest::batch(&trace)
                    .single(&p, config)
                    .attribution(true)
                    .shards(shards)
                    .jobs(4)
                    .run()
                    .unwrap()
                    .into_single();
                assert_eq!(par.outcome.stats, seq.outcome.stats, "{}", config.label());
                assert_eq!(
                    par.attribution.expect("attribution requested"),
                    seq_table,
                    "{} attribution diverged at {shards} shards",
                    config.label()
                );
            }
        }
    }

    #[test]
    fn foreign_traces_are_rejected() {
        let (_, trace) = sample();
        let other = assemble("halt\n").unwrap();
        let cfg = PredictorConfig::spec_table_stride_fsm();
        for shards in [1usize, 4] {
            let e = ReplayRequest::batch(&trace)
                .single(&other, cfg)
                .shards(shards)
                .jobs(2)
                .run()
                .unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        }
    }

    #[test]
    fn auto_shards_policy() {
        // Serial runs and tiny traces stay unsharded.
        assert_eq!(auto_shards(1, MIN_SHARD_EVENTS * 2), 1);
        assert_eq!(auto_shards(8, MIN_SHARD_EVENTS - 1), 1);
        // Parallel runs over big traces shard by jobs.
        assert_eq!(auto_shards(4, MIN_SHARD_EVENTS), 4);
        // Streaming replays (unknown event count) shard by jobs alone.
        assert_eq!(auto_shards(4, usize::MAX), 4);
        // Inside a grid worker: degrade to one shard.
        let nested = parallel_map(2, &[0u8; 4], |_| auto_shards(4, MIN_SHARD_EVENTS));
        assert!(nested.iter().all(|&n| n == 1));
    }

    #[test]
    fn empty_plan_returns_no_cells() {
        let (_, trace) = sample();
        let response = ReplayRequest::batch(&trace).run().unwrap();
        assert!(response.cells.is_empty());
    }

    /// The deprecated wrappers must stay bit-identical to the builder.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_the_builder() {
        let (p, trace) = sample();
        let cfg = PredictorConfig::spec_table_stride_profile();
        let via_builder = single_outcome(&trace, &p, &cfg, 3, 2);
        let via_wrapper = replay_predictor(&trace, &p, &cfg, 3, 2).unwrap();
        assert_eq!(via_wrapper.stats, via_builder.stats);
        assert_eq!(via_wrapper.occupancy, via_builder.occupancy);

        let mut plan = SweepPlan::new();
        let t = plan.add_directives(&p);
        plan.add_cell(cfg, t);
        plan.add_cell(PredictorConfig::spec_table_stride_fsm(), t);
        let grid = replay_matrix(&trace, &plan, 2, 2).unwrap();
        let response = ReplayRequest::batch(&trace)
            .plan(plan.clone())
            .shards(2)
            .jobs(2)
            .run()
            .unwrap();
        assert_eq!(grid.len(), response.cells.len());
        for (w, b) in grid.iter().zip(&response.cells) {
            assert_eq!(w.stats, b.outcome.stats);
            assert_eq!(w.occupancy, b.outcome.occupancy);
        }

        let (out, table) = replay_predictor_attributed(&trace, &p, &cfg, 2, 2).unwrap();
        let attributed = replay_matrix_attributed(&trace, &plan, 2, 2).unwrap();
        assert_eq!(attributed[0].0.stats, out.stats);
        assert_eq!(attributed[0].1, table);
    }
}
