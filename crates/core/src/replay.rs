//! PC-sharded parallel predictor replay.
//!
//! Both predictor families of the paper key their dynamic state purely by
//! **static instruction address** — the infinite predictors keep one cell
//! per address, the finite tables one set per `addr mod sets` (tags, LRU
//! stamps and conflict counts all live inside a set). Replaying a trace
//! through a predictor is therefore embarrassingly parallel once the
//! trace's value events are partitioned by that key: every shard replays
//! against an independent predictor instance, observes exactly the
//! accesses a sequential run would have routed to its state partition *in
//! the same order*, and the per-shard [`PredictorStats`] merge by field
//! addition ([`PredictorStats::merge`]) into totals **bit-identical** to
//! a sequential replay, at any shard count.
//!
//! The shard key is supplied by [`PredictorConfig::shard_key`]; the
//! partition itself is a zero-copy view over the columnar trace
//! ([`vp_sim::TraceColumns::shard_by_pc`]). Shards run on the same
//! deterministic worker pool as the experiment grids
//! ([`crate::exec::parallel_map`]), and [`auto_shards`] degrades to a
//! single shard inside an already-parallel grid worker so nested fan-out
//! never oversubscribes the machine.
//!
//! On top of the per-cell replay sits the **fused sweep matrix**
//! ([`replay_matrix`]): every headline figure of the paper is a sweep —
//! several predictor configurations × several profiling thresholds over
//! the *same* trace — and replaying per cell scans the identical value
//! stream `cells` times. The fused engine streams the trace once,
//! resolves each distinct directive annotation's per-PC row once per
//! block, and feeds the block to a bank of predictors
//! ([`vp_predictor::ValuePredictor::access_batch`]), sharding by the
//! *joint* state-partition key (gcd of the cells' moduli) so every cell's
//! grid entry stays bit-identical to its sequential per-cell replay.

use std::collections::HashMap;
use std::io;
use std::time::Instant;

use vp_isa::{Directive, InstrAddr, Program};
use vp_predictor::{AttributionTable, PredictorConfig, PredictorStats, ValuePredictor};
use vp_sim::Trace;

use crate::exec::{in_worker, parallel_map};

/// Traces below this many events are replayed unsharded: the per-shard
/// flag-column rescan and thread hand-off would cost more than they save.
pub const MIN_SHARD_EVENTS: usize = 1 << 16;

/// The result of a (possibly sharded) predictor replay.
#[derive(Debug, Clone, Copy)]
pub struct ReplayOutcome {
    /// Merged predictor statistics, bit-identical to a sequential replay.
    pub stats: PredictorStats,
    /// Total occupied table entries across shards (state partitions are
    /// disjoint, so the sum equals a single predictor's occupancy).
    pub occupancy: usize,
    /// How many shards actually ran.
    pub shards: usize,
}

/// Picks a shard count for a replay: `jobs` shards when sharding can help,
/// 1 when it cannot (serial run, tiny trace) or must not (already inside a
/// [`parallel_map`] worker, where nested fan-out would oversubscribe the
/// pool). Output never depends on the choice — only wall-clock does.
#[must_use]
pub fn auto_shards(jobs: usize, events: usize) -> usize {
    if jobs <= 1 || events < MIN_SHARD_EVENTS || in_worker() {
        1
    } else {
        jobs
    }
}

/// Replays `trace`'s value events through `config`'s predictor, sharded
/// `shards` ways by the configuration's state-partition key and fanned
/// out over up to `jobs` worker threads.
///
/// Directives are pre-resolved from `program` into a dense table once, so
/// the per-event work is a columnar scan plus the predictor access — no
/// instruction fetch, no retirement reconstruction.
///
/// With `shards == 1` the replay is a plain sequential scan (no pool, no
/// partition filter); any `shards >= 1` produces bit-identical
/// [`ReplayOutcome::stats`].
///
/// # Errors
///
/// [`io::Error`] of kind `InvalidData` when a value event's address does
/// not name an instruction of `program` (a foreign trace).
pub fn replay_predictor(
    trace: &Trace,
    program: &Program,
    config: &PredictorConfig,
    shards: usize,
    jobs: usize,
) -> io::Result<ReplayOutcome> {
    let _span = vp_obs::span("replay");
    let directives: Vec<Directive> = program.text().iter().map(|i| i.directive).collect();
    let shards = shards.max(1);
    let cols = trace.columns();

    if shards == 1 {
        let mut predictor = config.build();
        for (addr, value) in cols.value_events() {
            let directive = *directives
                .get(addr.index() as usize)
                .ok_or_else(|| outside_text(addr))?;
            predictor.access(addr, directive, value);
        }
        vp_obs::counter("replay.shards").add(1);
        return Ok(ReplayOutcome {
            stats: *predictor.stats(),
            occupancy: predictor.occupancy(),
            shards: 1,
        });
    }

    let views = cols.shard_by_pc(shards, |addr| config.shard_key(addr));
    let parts = parallel_map(jobs.max(1), &views, |shard| -> io::Result<_> {
        let started = Instant::now();
        let mut predictor = config.build();
        for (addr, value) in shard.values() {
            let directive = *directives
                .get(addr.index() as usize)
                .ok_or_else(|| outside_text(addr))?;
            predictor.access(addr, directive, value);
        }
        Ok((
            *predictor.stats(),
            predictor.occupancy(),
            started.elapsed().as_micros() as u64,
        ))
    });

    let mut stats = PredictorStats::new();
    let mut occupancy = 0usize;
    let (mut fastest, mut slowest) = (u64::MAX, 0u64);
    for part in parts {
        let (shard_stats, shard_occupancy, micros) = part?;
        stats.merge(&shard_stats);
        occupancy += shard_occupancy;
        fastest = fastest.min(micros);
        slowest = slowest.max(micros);
    }
    let skew_us = slowest.saturating_sub(fastest);
    vp_obs::counter("replay.shards").add(shards as u64);
    vp_obs::gauge("replay.shard_skew_ms").set_max(skew_us.div_ceil(1000));
    vp_obs::events::instant("replay.shard_skew", skew_us);
    Ok(ReplayOutcome {
        stats,
        occupancy,
        shards,
    })
}

/// Like [`replay_predictor`], additionally observing every access into a
/// per-PC [`AttributionTable`].
///
/// This is a separate function (rather than a flag) so the unattributed
/// hot path keeps its exact instruction stream: with attribution off,
/// nothing here runs. The attribution contract mirrors the stats one —
/// PC-sharding routes each static address wholly into one shard, so the
/// merged table is **bit-identical** to a sequential replay's at any
/// shard/job count, and [`AttributionTable::reconcile`] holds against the
/// merged [`ReplayOutcome::stats`].
///
/// # Errors
///
/// [`io::Error`] of kind `InvalidData` when a value event's address does
/// not name an instruction of `program` (a foreign trace).
pub fn replay_predictor_attributed(
    trace: &Trace,
    program: &Program,
    config: &PredictorConfig,
    shards: usize,
    jobs: usize,
) -> io::Result<(ReplayOutcome, AttributionTable)> {
    let _span = vp_obs::span("replay");
    let directives: Vec<Directive> = program.text().iter().map(|i| i.directive).collect();
    let shards = shards.max(1);
    let cols = trace.columns();

    if shards == 1 {
        let mut predictor = config.build();
        let mut table = AttributionTable::new();
        for (addr, value) in cols.value_events() {
            let directive = *directives
                .get(addr.index() as usize)
                .ok_or_else(|| outside_text(addr))?;
            let access = predictor.access(addr, directive, value);
            table.observe(addr, directive, &access, value);
        }
        vp_obs::counter("replay.shards").add(1);
        let outcome = ReplayOutcome {
            stats: *predictor.stats(),
            occupancy: predictor.occupancy(),
            shards: 1,
        };
        return Ok((outcome, table));
    }

    let views = cols.shard_by_pc(shards, |addr| config.shard_key(addr));
    let parts = parallel_map(jobs.max(1), &views, |shard| -> io::Result<_> {
        let started = Instant::now();
        let mut predictor = config.build();
        let mut table = AttributionTable::new();
        for (addr, value) in shard.values() {
            let directive = *directives
                .get(addr.index() as usize)
                .ok_or_else(|| outside_text(addr))?;
            let access = predictor.access(addr, directive, value);
            table.observe(addr, directive, &access, value);
        }
        Ok((
            *predictor.stats(),
            predictor.occupancy(),
            table,
            started.elapsed().as_micros() as u64,
        ))
    });

    let mut stats = PredictorStats::new();
    let mut occupancy = 0usize;
    let mut table = AttributionTable::new();
    let (mut fastest, mut slowest) = (u64::MAX, 0u64);
    for part in parts {
        let (shard_stats, shard_occupancy, shard_table, micros) = part?;
        stats.merge(&shard_stats);
        occupancy += shard_occupancy;
        table.merge(&shard_table);
        fastest = fastest.min(micros);
        slowest = slowest.max(micros);
    }
    let skew_us = slowest.saturating_sub(fastest);
    vp_obs::counter("replay.shards").add(shards as u64);
    vp_obs::gauge("replay.shard_skew_ms").set_max(skew_us.div_ceil(1000));
    vp_obs::events::instant("replay.shard_skew", skew_us);
    let outcome = ReplayOutcome {
        stats,
        occupancy,
        shards,
    };
    Ok((outcome, table))
}

/// Events per fused-kernel block: long enough to amortise the one virtual
/// `access_batch` call per (block, cell) and keep each predictor's tables
/// hot across the block, short enough that the scratch columns (addresses,
/// values, one directive row per distinct annotation) stay cache-resident.
const MATRIX_BLOCK: usize = 1024;

/// One cell of a [`SweepPlan`]: a predictor configuration replayed under
/// one of the plan's directive annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixCell {
    /// The predictor + classifier to replay.
    pub config: PredictorConfig,
    /// Index of the directive table (from [`SweepPlan::add_directives`])
    /// this cell reads its per-PC directives from. Cells sharing a table
    /// share its resolved directive row — the sweep's "compute each
    /// threshold's annotation once" cache.
    pub directives: usize,
}

/// The full sweep matrix for one trace: a set of directive annotations
/// (one per distinct profiling threshold, plus the bare program) and the
/// `(PredictorConfig, annotation)` cells to replay under them.
#[derive(Debug, Clone, Default)]
pub struct SweepPlan {
    tables: Vec<Vec<Directive>>,
    cells: Vec<MatrixCell>,
}

impl SweepPlan {
    /// An empty plan.
    #[must_use]
    pub fn new() -> Self {
        SweepPlan::default()
    }

    /// Registers `program`'s directive annotation as a table and returns
    /// its index for [`SweepPlan::add_cell`]. Identical annotations (e.g.
    /// two thresholds that saturate to the same tagging) dedupe to one
    /// table, so the kernel resolves their directive row once.
    pub fn add_directives(&mut self, program: &Program) -> usize {
        let table: Vec<Directive> = program.text().iter().map(|i| i.directive).collect();
        if let Some(i) = self.tables.iter().position(|t| *t == table) {
            return i;
        }
        self.tables.push(table);
        self.tables.len() - 1
    }

    /// Adds a cell replaying `config` under directive table `directives`.
    ///
    /// # Panics
    ///
    /// Panics if `directives` was not returned by
    /// [`SweepPlan::add_directives`] on this plan.
    pub fn add_cell(&mut self, config: PredictorConfig, directives: usize) {
        assert!(
            directives < self.tables.len(),
            "directive table {directives} not registered (plan has {})",
            self.tables.len()
        );
        self.cells.push(MatrixCell { config, directives });
    }

    /// The cells in request order.
    #[must_use]
    pub fn cells(&self) -> &[MatrixCell] {
        &self.cells
    }

    /// Whether the plan has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Greatest common divisor (Euclid); used for the joint shard modulus.
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

/// The coarsest state partition compatible with *every* cell of the plan:
/// the gcd of the finite cells' [`PredictorConfig::shard_modulus`] values.
///
/// `g` divides each finite cell's modulus `m`, so two addresses sharing
/// state in that cell (`a ≡ b mod m`) also share a shard (`a ≡ b mod g`);
/// infinite cells keep purely per-address state, which any function of the
/// address respects. `None` (an all-infinite plan) shards by raw address.
fn joint_shard_modulus(cells: &[MatrixCell]) -> Option<u64> {
    let mut joint: Option<u64> = None;
    for cell in cells {
        if let Some(m) = cell.config.shard_modulus() {
            joint = Some(match joint {
                Some(g) => gcd(g, m),
                None => m,
            });
        }
    }
    joint
}

/// Dedupes the plan's cells: returns the distinct cells (the predictor
/// bank's slots) and, per request cell, the slot it maps to.
fn dedupe_cells(cells: &[MatrixCell]) -> (Vec<MatrixCell>, Vec<usize>) {
    let mut slots = Vec::new();
    let mut slot_of = Vec::with_capacity(cells.len());
    let mut index: HashMap<MatrixCell, usize> = HashMap::new();
    for &cell in cells {
        let slot = *index.entry(cell).or_insert_with(|| {
            slots.push(cell);
            slots.len() - 1
        });
        slot_of.push(slot);
    }
    (slots, slot_of)
}

/// The distinct directive tables the slots actually read, ascending.
fn used_tables(slots: &[MatrixCell]) -> Vec<usize> {
    let mut used: Vec<usize> = slots.iter().map(|c| c.directives).collect();
    used.sort_unstable();
    used.dedup();
    used
}

/// The fused single-pass kernel: streams `events` once, resolving each
/// block's directive row once per distinct annotation and feeding the
/// whole block to every predictor in the bank via
/// [`ValuePredictor::access_batch`] (one virtual call per block per cell,
/// statically dispatched inside).
fn matrix_scan<I>(
    events: I,
    tables: &[Vec<Directive>],
    slots: &[MatrixCell],
) -> io::Result<Vec<(PredictorStats, usize)>>
where
    I: Iterator<Item = (InstrAddr, u64)>,
{
    let mut banks: Vec<Box<dyn ValuePredictor>> = slots.iter().map(|c| c.config.build()).collect();
    let used = used_tables(slots);
    let mut addrs: Vec<InstrAddr> = Vec::with_capacity(MATRIX_BLOCK);
    let mut values: Vec<u64> = Vec::with_capacity(MATRIX_BLOCK);
    let mut rows: Vec<Vec<Directive>> = tables
        .iter()
        .map(|_| Vec::with_capacity(MATRIX_BLOCK))
        .collect();
    let mut events = events.fuse();
    loop {
        addrs.clear();
        values.clear();
        while addrs.len() < MATRIX_BLOCK {
            let Some((addr, value)) = events.next() else {
                break;
            };
            addrs.push(addr);
            values.push(value);
        }
        if addrs.is_empty() {
            break;
        }
        for &t in &used {
            let table = &tables[t];
            let row = &mut rows[t];
            row.clear();
            for &addr in &addrs {
                row.push(
                    *table
                        .get(addr.index() as usize)
                        .ok_or_else(|| outside_text(addr))?,
                );
            }
        }
        for (bank, cell) in banks.iter_mut().zip(slots) {
            bank.access_batch(&addrs, &rows[cell.directives], &values);
        }
    }
    Ok(banks.iter().map(|b| (*b.stats(), b.occupancy())).collect())
}

/// [`matrix_scan`] with per-access attribution observation. Attribution
/// consumes each access outcome, so this variant runs event-at-a-time —
/// it exists to keep `--attribution` runs on the fused path (one trace
/// scan) without perturbing the plain kernel.
fn matrix_scan_attributed<I>(
    events: I,
    tables: &[Vec<Directive>],
    slots: &[MatrixCell],
) -> io::Result<Vec<(PredictorStats, usize, AttributionTable)>>
where
    I: Iterator<Item = (InstrAddr, u64)>,
{
    let mut banks: Vec<Box<dyn ValuePredictor>> = slots.iter().map(|c| c.config.build()).collect();
    let mut attributions: Vec<AttributionTable> =
        slots.iter().map(|_| AttributionTable::new()).collect();
    let used = used_tables(slots);
    let mut dirs: Vec<Directive> = vec![Directive::None; tables.len()];
    for (addr, value) in events {
        for &t in &used {
            dirs[t] = *tables[t]
                .get(addr.index() as usize)
                .ok_or_else(|| outside_text(addr))?;
        }
        for ((bank, cell), table) in banks.iter_mut().zip(slots).zip(attributions.iter_mut()) {
            let directive = dirs[cell.directives];
            let access = bank.access(addr, directive, value);
            table.observe(addr, directive, &access, value);
        }
    }
    Ok(banks
        .iter()
        .zip(attributions)
        .map(|(b, t)| (*b.stats(), b.occupancy(), t))
        .collect())
}

/// Replays `trace`'s value events through *every* cell of `plan` in a
/// single pass, sharded `shards` ways by the plan's joint state-partition
/// key and fanned out over up to `jobs` worker threads.
///
/// The per-cell results are **bit-identical** to calling
/// [`replay_predictor`] once per cell against a program carrying the
/// cell's directive table — at any shard/job count (property-tested and
/// fuzzed via the vp-verify oracle). Duplicate cells are deduped into one
/// predictor-bank slot and share one replay.
///
/// Observability: one `matrix` span per call; `replay.matrix_passes` +1,
/// `replay.fused_cells` += distinct cells, `replay.shards` += shards.
///
/// # Errors
///
/// [`io::Error`] of kind `InvalidData` when a value event's address lies
/// outside a used directive table (a foreign trace).
pub fn replay_matrix(
    trace: &Trace,
    plan: &SweepPlan,
    shards: usize,
    jobs: usize,
) -> io::Result<Vec<ReplayOutcome>> {
    if plan.cells.is_empty() {
        return Ok(Vec::new());
    }
    let _span = vp_obs::span("matrix");
    let (slots, slot_of) = dedupe_cells(&plan.cells);
    vp_obs::counter("replay.matrix_passes").add(1);
    vp_obs::counter("replay.fused_cells").add(slots.len() as u64);
    let shards = shards.max(1);
    let cols = trace.columns();

    if shards == 1 {
        let per_slot = matrix_scan(cols.value_events(), &plan.tables, &slots)?;
        vp_obs::counter("replay.shards").add(1);
        return Ok(slot_of
            .iter()
            .map(|&s| ReplayOutcome {
                stats: per_slot[s].0,
                occupancy: per_slot[s].1,
                shards: 1,
            })
            .collect());
    }

    let modulus = joint_shard_modulus(&slots);
    let views = cols.shard_by_pc(shards, move |addr| match modulus {
        Some(g) => u64::from(addr.index()) % g,
        None => u64::from(addr.index()),
    });
    let parts = parallel_map(jobs.max(1), &views, |shard| -> io::Result<_> {
        let started = Instant::now();
        let per_slot = matrix_scan(shard.values(), &plan.tables, &slots)?;
        Ok((per_slot, started.elapsed().as_micros() as u64))
    });

    let mut merged = vec![(PredictorStats::new(), 0usize); slots.len()];
    let (mut fastest, mut slowest) = (u64::MAX, 0u64);
    for part in parts {
        let (per_slot, micros) = part?;
        for (acc, part) in merged.iter_mut().zip(per_slot) {
            acc.0.merge(&part.0);
            acc.1 += part.1;
        }
        fastest = fastest.min(micros);
        slowest = slowest.max(micros);
    }
    let skew_us = slowest.saturating_sub(fastest);
    vp_obs::counter("replay.shards").add(shards as u64);
    vp_obs::gauge("replay.shard_skew_ms").set_max(skew_us.div_ceil(1000));
    vp_obs::events::instant("replay.shard_skew", skew_us);
    Ok(slot_of
        .iter()
        .map(|&s| ReplayOutcome {
            stats: merged[s].0,
            occupancy: merged[s].1,
            shards,
        })
        .collect())
}

/// Like [`replay_matrix`], additionally producing a per-PC
/// [`AttributionTable`] per cell (duplicate cells receive clones of the
/// shared slot's table). The stats and tables are bit-identical to
/// per-cell [`replay_predictor_attributed`] at any shard/job count.
///
/// # Errors
///
/// [`io::Error`] of kind `InvalidData` when a value event's address lies
/// outside a used directive table (a foreign trace).
pub fn replay_matrix_attributed(
    trace: &Trace,
    plan: &SweepPlan,
    shards: usize,
    jobs: usize,
) -> io::Result<Vec<(ReplayOutcome, AttributionTable)>> {
    if plan.cells.is_empty() {
        return Ok(Vec::new());
    }
    let _span = vp_obs::span("matrix");
    let (slots, slot_of) = dedupe_cells(&plan.cells);
    vp_obs::counter("replay.matrix_passes").add(1);
    vp_obs::counter("replay.fused_cells").add(slots.len() as u64);
    let shards = shards.max(1);
    let cols = trace.columns();

    if shards == 1 {
        let per_slot = matrix_scan_attributed(cols.value_events(), &plan.tables, &slots)?;
        vp_obs::counter("replay.shards").add(1);
        return Ok(slot_of
            .iter()
            .map(|&s| {
                let (stats, occupancy, ref table) = per_slot[s];
                (
                    ReplayOutcome {
                        stats,
                        occupancy,
                        shards: 1,
                    },
                    table.clone(),
                )
            })
            .collect());
    }

    let modulus = joint_shard_modulus(&slots);
    let views = cols.shard_by_pc(shards, move |addr| match modulus {
        Some(g) => u64::from(addr.index()) % g,
        None => u64::from(addr.index()),
    });
    let parts = parallel_map(jobs.max(1), &views, |shard| -> io::Result<_> {
        let started = Instant::now();
        let per_slot = matrix_scan_attributed(shard.values(), &plan.tables, &slots)?;
        Ok((per_slot, started.elapsed().as_micros() as u64))
    });

    let mut merged: Vec<(PredictorStats, usize, AttributionTable)> = slots
        .iter()
        .map(|_| (PredictorStats::new(), 0usize, AttributionTable::new()))
        .collect();
    let (mut fastest, mut slowest) = (u64::MAX, 0u64);
    for part in parts {
        let (per_slot, micros) = part?;
        for (acc, (stats, occupancy, table)) in merged.iter_mut().zip(per_slot) {
            acc.0.merge(&stats);
            acc.1 += occupancy;
            acc.2.merge(&table);
        }
        fastest = fastest.min(micros);
        slowest = slowest.max(micros);
    }
    let skew_us = slowest.saturating_sub(fastest);
    vp_obs::counter("replay.shards").add(shards as u64);
    vp_obs::gauge("replay.shard_skew_ms").set_max(skew_us.div_ceil(1000));
    vp_obs::events::instant("replay.shard_skew", skew_us);
    Ok(slot_of
        .iter()
        .map(|&s| {
            let (stats, occupancy, ref table) = merged[s];
            (
                ReplayOutcome {
                    stats,
                    occupancy,
                    shards,
                },
                table.clone(),
            )
        })
        .collect())
}

fn outside_text(addr: vp_isa::InstrAddr) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("trace event at {addr} outside program text"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::asm::assemble;
    use vp_predictor::{ClassifierKind, TableGeometry};
    use vp_sim::RunLimits;

    fn sample() -> (Program, Trace) {
        let p = assemble(
            "li r1, 0\nli r2, 200\n\
             top: addi.st r1, r1, 1\nadd r3, r1, r1\nbne r1, r2, top\nhalt\n",
        )
        .unwrap();
        let trace = Trace::capture(&p, RunLimits::default()).unwrap();
        (p, trace)
    }

    #[test]
    fn sharded_replay_matches_sequential() {
        let (p, trace) = sample();
        for config in [
            PredictorConfig::spec_table_stride_fsm(),
            PredictorConfig::spec_table_stride_profile(),
            PredictorConfig::InfiniteStride {
                classifier: ClassifierKind::two_bit_counter(),
            },
            PredictorConfig::Hybrid {
                stride: TableGeometry::new(8, 2),
                last_value: TableGeometry::new(12, 2),
            },
        ] {
            let seq = replay_predictor(&trace, &p, &config, 1, 1).unwrap();
            for shards in [2usize, 3, 4, 8] {
                for jobs in [1usize, 4] {
                    let par = replay_predictor(&trace, &p, &config, shards, jobs).unwrap();
                    assert_eq!(
                        par.stats,
                        seq.stats,
                        "{} diverged at {shards} shards / {jobs} jobs",
                        config.label()
                    );
                    assert_eq!(par.occupancy, seq.occupancy, "{}", config.label());
                    assert_eq!(par.shards, shards);
                }
            }
        }
    }

    #[test]
    fn attributed_replay_matches_plain_and_reconciles() {
        let (p, trace) = sample();
        for config in [
            PredictorConfig::spec_table_stride_fsm(),
            PredictorConfig::spec_table_stride_profile(),
            PredictorConfig::Hybrid {
                stride: TableGeometry::new(8, 2),
                last_value: TableGeometry::new(12, 2),
            },
        ] {
            let plain = replay_predictor(&trace, &p, &config, 1, 1).unwrap();
            let (seq, seq_table) = replay_predictor_attributed(&trace, &p, &config, 1, 1).unwrap();
            // Observation-only: attribution never perturbs the stats.
            assert_eq!(seq.stats, plain.stats, "{}", config.label());
            assert_eq!(seq.occupancy, plain.occupancy);
            seq_table
                .reconcile(&seq.stats)
                .unwrap_or_else(|e| panic!("{}: {e}", config.label()));
            for shards in [2usize, 3, 8] {
                let (par, par_table) =
                    replay_predictor_attributed(&trace, &p, &config, shards, 4).unwrap();
                assert_eq!(par.stats, seq.stats, "{}", config.label());
                assert_eq!(
                    par_table,
                    seq_table,
                    "{} attribution diverged at {shards} shards",
                    config.label()
                );
            }
        }
    }

    #[test]
    fn foreign_traces_are_rejected() {
        let (_, trace) = sample();
        let other = assemble("halt\n").unwrap();
        let cfg = PredictorConfig::spec_table_stride_fsm();
        for shards in [1usize, 4] {
            let e = replay_predictor(&trace, &other, &cfg, shards, 2).unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        }
    }

    #[test]
    fn auto_shards_policy() {
        // Serial runs and tiny traces stay unsharded.
        assert_eq!(auto_shards(1, MIN_SHARD_EVENTS * 2), 1);
        assert_eq!(auto_shards(8, MIN_SHARD_EVENTS - 1), 1);
        // Parallel runs over big traces shard by jobs.
        assert_eq!(auto_shards(4, MIN_SHARD_EVENTS), 4);
        // Inside a grid worker: degrade to one shard.
        let nested = parallel_map(2, &[0u8; 4], |_| auto_shards(4, MIN_SHARD_EVENTS));
        assert!(nested.iter().all(|&n| n == 1));
    }
}
