//! Store-value predictability: quantifying the paper's §2.1 remark that
//! the prediction schemes generalize to memory storage operands.

use vp_profile::{StoreValueCollector, VpCategory};
use vp_stats::{table::percent, TextTable};
use vp_workloads::{InputSet, WorkloadKind};

use crate::Suite;

/// One workload's store-value predictability.
#[derive(Debug, Clone)]
pub struct Row {
    /// The workload.
    pub kind: WorkloadKind,
    /// Dynamic stores observed.
    pub stores: u64,
    /// Store-value accuracy under the stride predictor, `[0, 1]`.
    pub stride_accuracy: f64,
    /// Store-value accuracy under the last-value predictor.
    pub last_value_accuracy: f64,
}

/// The store-value extension table.
#[derive(Debug, Clone)]
pub struct StoreValues {
    /// Per-workload rows.
    pub rows: Vec<Row>,
}

/// Profiles the values stored by each workload's reference run.
pub fn run_analysis(suite: &Suite, kinds: &[WorkloadKind]) -> StoreValues {
    let rows = suite.par_map(kinds, |&kind| {
        let program = suite.reference_program(kind, None);
        let trace = suite.trace(kind, InputSet::reference());
        let mut collector = StoreValueCollector::new(kind.name());
        trace
            .replay(&program, &mut collector)
            .unwrap_or_else(|e| panic!("{kind} replay failed: {e}"));
        let image = collector.into_image();
        let (execs, _, _) = image.category_totals(VpCategory::Store);
        Row {
            kind,
            stores: execs,
            stride_accuracy: image.category_stride_accuracy(VpCategory::Store),
            last_value_accuracy: image.category_last_value_accuracy(VpCategory::Store),
        }
    });
    StoreValues { rows }
}

/// Convenience: all nine Table 4.1 workloads.
pub fn run_all(suite: &Suite) -> StoreValues {
    run_analysis(suite, &WorkloadKind::ALL)
}

impl StoreValues {
    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["benchmark", "dyn stores", "stride", "last-value"]);
        for r in &self.rows {
            t.row([
                r.kind.name().to_owned(),
                r.stores.to_string(),
                percent(r.stride_accuracy),
                percent(r.last_value_accuracy),
            ]);
        }
        format!(
            "Extension — predictability of stored values (the paper's §2.1\n\
             generalization to memory storage operands)\n{t}"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stored_values_are_predictable_where_registers_are() {
        let suite = Suite::with_train_runs(1);
        let sv = run_analysis(
            &suite,
            &[
                WorkloadKind::Vortex,
                WorkloadKind::Compress,
                WorkloadKind::M88ksim,
            ],
        );
        let by = |kind| sv.rows.iter().find(|r| r.kind == kind).expect("row");
        // vortex's log-sequence stores stride; m88ksim's statistics stores
        // stride; both should be clearly predictable.
        assert!(by(WorkloadKind::Vortex).stride_accuracy > 0.4);
        assert!(by(WorkloadKind::M88ksim).stride_accuracy > 0.4);
        for r in &sv.rows {
            assert!(r.stores > 1_000, "{}: {} stores", r.kind, r.stores);
            assert!((0.0..=1.0).contains(&r.stride_accuracy));
            assert!((0.0..=1.0).contains(&r.last_value_accuracy));
        }
        assert!(sv.render().contains("stored values"));
    }
}
