//! Ablation studies beyond the paper's evaluation (DESIGN.md §6).
//!
//! The paper fixes several design parameters (512-entry 2-way table,
//! 1-cycle penalty, n = 5 training runs, one shared table). These runners
//! vary them to show *why* the paper's conclusions hold:
//!
//! - [`geometry`] — table-size sweep: profile-guided admission matters
//!   exactly when the table is under pressure;
//! - [`penalty`] — misprediction-penalty sweep: classification quality
//!   matters more as mispredictions get more expensive;
//! - [`hybrid_split`] — how to divide one entry budget between a stride
//!   side and a last-value side (§3.1, observation 4);
//! - [`train_runs`] — how many training inputs the §4 stability result
//!   needs.

use vp_ilp::{BranchConfig, IlpConfig};
use vp_predictor::{ClassifierKind, PredictorConfig, PredictorStats, SatCounter, TableGeometry};
use vp_profile::AlignedVectors;
use vp_stats::metrics;
use vp_stats::table::{percent, signed_percent};
use vp_stats::{DecileHistogram, TextTable};
use vp_workloads::WorkloadKind;

use crate::Suite;

/// One row of the geometry sweep.
#[derive(Debug, Clone)]
pub struct GeometryRow {
    /// Table geometry under test.
    pub geometry: TableGeometry,
    /// Hardware-classified statistics.
    pub fsm: PredictorStats,
    /// Profile-classified statistics (threshold 90%).
    pub profile: PredictorStats,
}

/// Sweeps prediction-table sizes for one workload at fixed associativity,
/// comparing hardware and profile classification. The whole sweep (every
/// geometry × both classifiers) replays as one fused matrix pass over the
/// reference trace.
pub fn geometry(suite: &Suite, kind: WorkloadKind, entries: &[usize]) -> Vec<GeometryRow> {
    let geometries: Vec<TableGeometry> = entries
        .iter()
        .map(|&n| TableGeometry::new(n, 2.min(n)))
        .collect();
    let mut cells = Vec::with_capacity(2 * geometries.len());
    for &geometry in &geometries {
        cells.push((
            PredictorConfig::TableStride {
                geometry,
                classifier: ClassifierKind::two_bit_counter(),
            },
            None,
        ));
        cells.push((
            PredictorConfig::TableStride {
                geometry,
                classifier: ClassifierKind::Directive,
            },
            Some(0.9),
        ));
    }
    let grid = suite.predictor_stats_matrix(kind, &cells);
    geometries
        .iter()
        .zip(grid.chunks_exact(2))
        .map(|(&geometry, pair)| GeometryRow {
            geometry,
            fsm: pair[0],
            profile: pair[1],
        })
        .collect()
}

/// Renders the geometry sweep.
#[must_use]
pub fn render_geometry(kind: WorkloadKind, rows: &[GeometryRow]) -> String {
    let mut t = TextTable::new([
        "table",
        "FSM correct",
        "FSM wrong",
        "prof correct",
        "prof wrong",
        "Δcorrect",
    ]);
    for r in rows {
        let delta = if r.fsm.speculated_correct == 0 {
            0.0
        } else {
            100.0 * (r.profile.speculated_correct as f64 / r.fsm.speculated_correct as f64 - 1.0)
        };
        t.row([
            r.geometry.to_string(),
            r.fsm.speculated_correct.to_string(),
            r.fsm.speculated_incorrect().to_string(),
            r.profile.speculated_correct.to_string(),
            r.profile.speculated_incorrect().to_string(),
            signed_percent(delta),
        ]);
    }
    format!("Ablation — table geometry sweep on {kind} (profile threshold 90%)\n{t}")
}

/// One row of the penalty sweep: ILP increase per penalty value.
#[derive(Debug, Clone)]
pub struct PenaltyRow {
    /// Misprediction penalty in cycles.
    pub penalty: u64,
    /// ILP increase of VP + saturating counters over no-VP, %.
    pub fsm_increase: f64,
    /// ILP increase of VP + profiling (threshold 90%) over no-VP, %.
    pub profile_increase: f64,
}

/// Sweeps the value-misprediction penalty for one workload.
pub fn penalty(suite: &Suite, kind: WorkloadKind, penalties: &[u64]) -> Vec<PenaltyRow> {
    let base = suite.ilp(kind, IlpConfig::paper_no_vp(), None);
    suite.par_map(penalties, |&p| {
        let fsm = suite.ilp(kind, IlpConfig::paper_vp_fsm().with_penalty(p), None);
        let prof = suite.ilp(
            kind,
            IlpConfig::paper_vp_profile().with_penalty(p),
            Some(0.9),
        );
        PenaltyRow {
            penalty: p,
            fsm_increase: fsm.ilp_increase_over(&base),
            profile_increase: prof.ilp_increase_over(&base),
        }
    })
}

/// Renders the penalty sweep.
#[must_use]
pub fn render_penalty(kind: WorkloadKind, rows: &[PenaltyRow]) -> String {
    let mut t = TextTable::new(["penalty", "VP+SC", "VP+Prof 90%"]);
    for r in rows {
        t.row([
            format!("{} cycles", r.penalty),
            signed_percent(r.fsm_increase),
            signed_percent(r.profile_increase),
        ]);
    }
    format!("Ablation — misprediction-penalty sweep on {kind}\n{t}")
}

/// One row of the hybrid-split sweep.
#[derive(Debug, Clone)]
pub struct HybridRow {
    /// Entries on the stride side (the rest go to the last-value side).
    pub stride_entries: usize,
    /// Entries on the last-value side.
    pub last_value_entries: usize,
    /// Hybrid statistics on the annotated binary.
    pub stats: PredictorStats,
}

/// Sweeps how a fixed entry budget is split between the hybrid's stride
/// and last-value sides (threshold 70% so both directive kinds appear).
/// All splits replay as one fused matrix pass over the reference trace.
pub fn hybrid_split(suite: &Suite, kind: WorkloadKind, total: usize) -> Vec<HybridRow> {
    let splits = [total / 8, total / 4, total / 2, 3 * total / 4];
    let cells: Vec<(PredictorConfig, Option<f64>)> = splits
        .iter()
        .map(|&stride_entries| {
            (
                PredictorConfig::Hybrid {
                    stride: TableGeometry::new(stride_entries, 2),
                    last_value: TableGeometry::new(total - stride_entries, 2),
                },
                Some(0.7),
            )
        })
        .collect();
    let grid = suite.predictor_stats_matrix(kind, &cells);
    splits
        .iter()
        .zip(grid)
        .map(|(&stride_entries, stats)| HybridRow {
            stride_entries,
            last_value_entries: total - stride_entries,
            stats,
        })
        .collect()
}

/// Renders the hybrid-split sweep.
#[must_use]
pub fn render_hybrid(kind: WorkloadKind, rows: &[HybridRow]) -> String {
    let mut t = TextTable::new(["split (st/lv)", "correct", "wrong", "effective accuracy"]);
    for r in rows {
        t.row([
            format!("{}/{}", r.stride_entries, r.last_value_entries),
            r.stats.speculated_correct.to_string(),
            r.stats.speculated_incorrect().to_string(),
            percent(r.stats.effective_accuracy()),
        ]);
    }
    format!(
        "Ablation — hybrid split sweep on {kind} ({} total entries, th=70%)\n",
        rows[0].stride_entries + rows[0].last_value_entries
    ) + &t.to_string()
}

/// One row of the confidence-counter configuration sweep.
#[derive(Debug, Clone)]
pub struct CounterRow {
    /// Configuration label.
    pub label: &'static str,
    /// Statistics on the paper's table with this counter configuration.
    pub stats: PredictorStats,
}

/// Sweeps saturating-counter configurations (the hardware classifier's
/// only tuning knobs: state count, prediction threshold, reset state) on
/// the paper's 512-entry 2-way stride table. All configurations replay as
/// one fused matrix pass over the reference trace.
pub fn counters(suite: &Suite, kind: WorkloadKind) -> Vec<CounterRow> {
    let configs: [(&'static str, SatCounter); 4] = [
        ("1-bit", SatCounter::new(0, 1, 1)),
        ("2-bit, predict>=2", SatCounter::two_bit()),
        ("2-bit, predict==3", SatCounter::new(1, 3, 3)),
        ("3-bit, predict>=4", SatCounter::new(3, 7, 4)),
    ];
    let cells: Vec<(PredictorConfig, Option<f64>)> = configs
        .iter()
        .map(|&(_, template)| {
            (
                PredictorConfig::TableStride {
                    geometry: TableGeometry::SPEC_512_2WAY,
                    classifier: ClassifierKind::SatCounter { template },
                },
                None,
            )
        })
        .collect();
    let grid = suite.predictor_stats_matrix(kind, &cells);
    configs
        .iter()
        .zip(grid)
        .map(|(&(label, _), stats)| CounterRow { label, stats })
        .collect()
}

/// Renders the counter sweep.
#[must_use]
pub fn render_counters(kind: WorkloadKind, rows: &[CounterRow]) -> String {
    let mut t = TextTable::new([
        "counter",
        "correct",
        "wrong",
        "effective accuracy",
        "misp. suppressed",
    ]);
    for r in rows {
        t.row([
            r.label.to_owned(),
            r.stats.speculated_correct.to_string(),
            r.stats.speculated_incorrect().to_string(),
            percent(r.stats.effective_accuracy()),
            percent(r.stats.misprediction_classification_accuracy()),
        ]);
    }
    format!("Ablation — confidence-counter configurations on {kind}\n{t}")
}

/// One row of the front-end relaxation sweep.
#[derive(Debug, Clone)]
pub struct FrontEndRow {
    /// The workload.
    pub kind: WorkloadKind,
    /// Front-end label.
    pub front_end: &'static str,
    /// Baseline (no VP) ILP on this front end.
    pub base_ilp: f64,
    /// ILP increase (%) from VP + profiling (threshold 90%) on this front
    /// end.
    pub vp_increase: f64,
}

/// Relaxes the paper's perfect-branch-prediction assumption: measures the
/// no-VP baseline and the VP gain under perfect, bimodal and gshare front
/// ends (8-cycle redirect penalty).
pub fn front_end(suite: &Suite, kinds: &[WorkloadKind]) -> Vec<FrontEndRow> {
    let fronts: [(&'static str, BranchConfig, u64); 3] = [
        ("perfect", BranchConfig::Perfect, 0),
        ("bimodal-4k", BranchConfig::bimodal_4k(), 8),
        ("gshare-4k", BranchConfig::gshare_4k(), 8),
    ];
    let grid: Vec<(WorkloadKind, (&'static str, BranchConfig, u64))> = kinds
        .iter()
        .flat_map(|&kind| fronts.iter().map(move |&front| (kind, front)))
        .collect();
    suite.par_map(&grid, |&(kind, (label, branch, bp))| {
        let base = suite.ilp(kind, IlpConfig::paper_no_vp().with_branch(branch, bp), None);
        let vp = suite.ilp(
            kind,
            IlpConfig::paper_vp_profile().with_branch(branch, bp),
            Some(0.9),
        );
        FrontEndRow {
            kind,
            front_end: label,
            base_ilp: base.ilp(),
            vp_increase: vp.ilp_increase_over(&base),
        }
    })
}

/// Renders the front-end sweep.
#[must_use]
pub fn render_front_end(rows: &[FrontEndRow]) -> String {
    let mut t = TextTable::new(["benchmark", "front end", "base ILP", "VP+Prof 90%"]);
    for r in rows {
        t.row([
            r.kind.name().to_owned(),
            r.front_end.to_owned(),
            format!("{:.2}", r.base_ilp),
            signed_percent(r.vp_increase),
        ]);
    }
    format!("Ablation — relaxing perfect branch prediction (8-cycle redirect penalty)\n{t}")
}

/// One row of the predictor-scheme comparison.
#[derive(Debug, Clone)]
pub struct SchemeRow {
    /// The workload.
    pub kind: WorkloadKind,
    /// Plain stride predictor statistics (the paper's scheme).
    pub stride: PredictorStats,
    /// Two-delta stride predictor statistics (extension).
    pub two_delta: PredictorStats,
    /// Last-value predictor statistics (the prior-art baseline).
    pub last_value: PredictorStats,
}

/// Compares prediction schemes head-to-head on the paper's 512-entry 2-way
/// table with saturating-counter classification. The three schemes replay
/// as one fused matrix pass per workload.
pub fn schemes(suite: &Suite, kinds: &[WorkloadKind]) -> Vec<SchemeRow> {
    let geometry = TableGeometry::SPEC_512_2WAY;
    let classifier = ClassifierKind::two_bit_counter();
    let cells = [
        (
            PredictorConfig::TableStride {
                geometry,
                classifier,
            },
            None,
        ),
        (
            PredictorConfig::TableTwoDelta {
                geometry,
                classifier,
            },
            None,
        ),
        (
            PredictorConfig::TableLastValue {
                geometry,
                classifier,
            },
            None,
        ),
    ];
    suite.par_map(kinds, |&kind| {
        let grid = suite.predictor_stats_matrix(kind, &cells);
        SchemeRow {
            kind,
            stride: grid[0],
            two_delta: grid[1],
            last_value: grid[2],
        }
    })
}

/// Renders the scheme comparison (raw accuracy per scheme).
#[must_use]
pub fn render_schemes(rows: &[SchemeRow]) -> String {
    let mut t = TextTable::new(["benchmark", "last-value", "stride", "two-delta"]);
    for r in rows {
        t.row([
            r.kind.name().to_owned(),
            percent(r.last_value.raw_accuracy()),
            percent(r.stride.raw_accuracy()),
            percent(r.two_delta.raw_accuracy()),
        ]);
    }
    format!(
        "Ablation — predictor schemes (raw accuracy, 512-entry 2-way table, 2-bit counters)\n{t}"
    )
}

/// One row of the training-run-count sweep.
#[derive(Debug, Clone)]
pub struct TrainRunsRow {
    /// Number of training inputs `n`.
    pub runs: u32,
    /// Mass of `M(V)average` coordinates in the lowest two deciles.
    pub v_avg_low_mass: f64,
    /// Aligned vector dimension.
    pub dim: usize,
}

/// Measures §4 profile stability as a function of `n` (2..=max_runs).
pub fn train_runs(kind: WorkloadKind, max_runs: u32) -> Vec<TrainRunsRow> {
    (2..=max_runs)
        .map(|runs| {
            let suite = Suite::with_train_runs(runs);
            let images = suite.train_images(kind);
            let vectors = AlignedVectors::from_images(&images, 10);
            let m = metrics::average_distance(vectors.accuracy_vectors());
            let hist = DecileHistogram::from_values(&m);
            TrainRunsRow {
                runs,
                v_avg_low_mass: hist.low_mass(2),
                dim: vectors.dim(),
            }
        })
        .collect()
}

/// Renders the training-run sweep.
#[must_use]
pub fn render_train_runs(kind: WorkloadKind, rows: &[TrainRunsRow]) -> String {
    let mut t = TextTable::new(["n", "M(V)avg mass in [0,20]", "coords"]);
    for r in rows {
        t.row([
            r.runs.to_string(),
            percent(r.v_avg_low_mass),
            r.dim.to_string(),
        ]);
    }
    format!("Ablation — profile stability vs number of training inputs on {kind}\n{t}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_pressure_story() {
        let suite = Suite::with_train_runs(2);
        let rows = geometry(&suite, WorkloadKind::Gcc, &[64, 512, 4096]);
        // The hardware scheme recovers as the table grows...
        assert!(rows[2].fsm.speculated_correct > rows[0].fsm.speculated_correct);
        // ...while the profile scheme is much less size-sensitive.
        let prof_ratio = rows[2].profile.speculated_correct as f64
            / rows[0].profile.speculated_correct.max(1) as f64;
        let fsm_ratio =
            rows[2].fsm.speculated_correct as f64 / rows[0].fsm.speculated_correct.max(1) as f64;
        assert!(
            prof_ratio < fsm_ratio,
            "profile {prof_ratio} vs fsm {fsm_ratio}"
        );
        assert!(render_geometry(WorkloadKind::Gcc, &rows).contains("Δcorrect"));
    }

    #[test]
    fn penalty_hurts_the_less_selective_classifier_more() {
        let suite = Suite::with_train_runs(2);
        let rows = penalty(&suite, WorkloadKind::Ijpeg, &[0, 4]);
        // Raising the penalty can only reduce the gain.
        assert!(rows[1].fsm_increase <= rows[0].fsm_increase + 1e-9);
        assert!(rows[1].profile_increase <= rows[0].profile_increase + 1e-9);
        assert!(render_penalty(WorkloadKind::Ijpeg, &rows).contains("penalty"));
    }

    #[test]
    fn hybrid_split_runs_and_renders() {
        let suite = Suite::with_train_runs(2);
        let rows = hybrid_split(&suite, WorkloadKind::M88ksim, 512);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert_eq!(r.stride_entries + r.last_value_entries, 512);
            assert!(
                r.stats.speculated_correct > 0,
                "split {}/{}",
                r.stride_entries,
                r.last_value_entries
            );
        }
        assert!(render_hybrid(WorkloadKind::M88ksim, &rows).contains("split"));
    }

    #[test]
    fn stricter_counters_trade_coverage_for_accuracy() {
        let suite = Suite::with_train_runs(1);
        let rows = counters(&suite, WorkloadKind::Gcc);
        let by = |label: &str| {
            rows.iter()
                .find(|r| r.label.starts_with(label))
                .expect("config present")
        };
        let loose = by("1-bit");
        let strict = by("3-bit");
        // A stricter confidence requirement uses fewer predictions...
        assert!(strict.stats.speculated <= loose.stats.speculated);
        // ...but the ones it uses are at least as accurate.
        assert!(
            strict.stats.effective_accuracy() >= loose.stats.effective_accuracy() - 1e-9,
            "strict {:.3} vs loose {:.3}",
            strict.stats.effective_accuracy(),
            loose.stats.effective_accuracy()
        );
        assert!(render_counters(WorkloadKind::Gcc, &rows).contains("counter"));
    }

    #[test]
    fn relaxed_front_end_dampens_but_preserves_vp_gains() {
        let suite = Suite::with_train_runs(1);
        let rows = front_end(&suite, &[WorkloadKind::M88ksim]);
        assert_eq!(rows.len(), 3);
        let (perfect, bimodal, gshare) = (&rows[0], &rows[1], &rows[2]);
        // Relaxing the front end can only lower the baseline ILP.
        assert!(bimodal.base_ilp <= perfect.base_ilp + 1e-9);
        assert!(gshare.base_ilp <= perfect.base_ilp + 1e-9);
        // m88ksim's dispatch branches alternate: bimodal thrashes on them
        // (the VP gain collapses), but history-based gshare recovers nearly
        // the full idealised gain.
        assert!(bimodal.vp_increase < 100.0, "{}", bimodal.vp_increase);
        assert!(gshare.vp_increase > 300.0, "{}", gshare.vp_increase);
        assert!(render_front_end(&rows).contains("front end"));
    }

    #[test]
    fn two_delta_never_loses_to_plain_stride_by_much() {
        let suite = Suite::with_train_runs(1);
        let rows = schemes(&suite, &[WorkloadKind::Ijpeg, WorkloadKind::M88ksim]);
        for r in &rows {
            // Stride subsumes last-value repeats; two-delta tracks stride
            // closely and wins when glitches interrupt regular patterns.
            assert!(
                r.two_delta.raw_accuracy() >= r.stride.raw_accuracy() - 0.05,
                "{}: 2delta {:.3} vs stride {:.3}",
                r.kind,
                r.two_delta.raw_accuracy(),
                r.stride.raw_accuracy()
            );
            assert!(r.stride.raw_accuracy() > 0.0);
        }
        assert!(render_schemes(&rows).contains("two-delta"));
    }

    #[test]
    fn stability_holds_for_small_n() {
        let rows = train_runs(WorkloadKind::Compress, 3);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                r.v_avg_low_mass > 0.8,
                "n={} mass={}",
                r.runs,
                r.v_avg_low_mass
            );
        }
        assert!(render_train_runs(WorkloadKind::Compress, &rows).contains("coords"));
    }
}
