//! Figure 2.3 — how static instructions spread across stride-efficiency
//! deciles.
//!
//! The paper's observation 2.5: value-predictable instructions split into a
//! small subset with genuinely non-zero strides and a large subset that
//! merely repeats its last value — the motivation for the hybrid predictor
//! and for the two directive kinds.

use vp_stats::{table::percent, DecileHistogram, TextTable};
use vp_workloads::WorkloadKind;

use crate::Suite;

use super::fig_2_2::MIN_EXECS;

/// One workload's stride-efficiency distribution.
#[derive(Debug, Clone)]
pub struct Row {
    /// The workload.
    pub kind: WorkloadKind,
    /// Decile histogram over per-instruction stride efficiency ratios
    /// (among instructions with at least one correct prediction).
    pub histogram: DecileHistogram,
    /// The dynamic (execution-weighted) stride efficiency ratio, `[0, 1]`.
    pub dynamic_ratio: f64,
}

/// The reproduced Figure 2.3.
#[derive(Debug, Clone)]
pub struct Fig23 {
    /// Per-workload distributions.
    pub rows: Vec<Row>,
}

/// Runs the experiment over the given workloads.
pub fn run(suite: &Suite, kinds: &[WorkloadKind]) -> Fig23 {
    let rows = suite.par_map(kinds, |&kind| {
        let mut img = suite.reference_image(kind);
        img.retain_min_execs(MIN_EXECS);
        let values: Vec<f64> = img
            .iter()
            .filter(|(_, r)| r.stride_correct > 0)
            .map(|(_, r)| 100.0 * r.stride_efficiency_ratio())
            .collect();
        Row {
            kind,
            histogram: DecileHistogram::from_values(&values),
            dynamic_ratio: img.dynamic_stride_efficiency_ratio(),
        }
    });
    Fig23 { rows }
}

/// Convenience: all nine workloads.
pub fn run_all(suite: &Suite) -> Fig23 {
    run(suite, &WorkloadKind::ALL)
}

impl Fig23 {
    /// Renders per-bin fractions plus the dynamic aggregate ratio.
    #[must_use]
    pub fn render(&self) -> String {
        let mut headers = vec!["benchmark".to_owned()];
        headers.extend((0..10).map(DecileHistogram::label));
        headers.push("dyn ratio".to_owned());
        let mut t = TextTable::new(headers);
        for row in &self.rows {
            let mut cells = vec![row.kind.name().to_owned()];
            cells.extend((0..10).map(|b| percent(row.histogram.fraction(b))));
            cells.push(percent(row.dynamic_ratio));
            t.row(cells);
        }
        format!("Figure 2.3 — spread of instructions by stride efficiency ratio\n{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_stride_populations_emerge() {
        let suite = Suite::with_train_runs(1);
        let fig = run(&suite, &[WorkloadKind::Ijpeg, WorkloadKind::Gcc]);
        for row in &fig.rows {
            assert!(row.histogram.total() > 0, "{}", row.kind);
            // The paper's split: both extremes are populated (pure
            // last-value reuse at the bottom, true strides at the top)
            // and the middle is thin.
            assert!(
                row.histogram.low_mass(2) > 0.05,
                "{}: {:?}",
                row.kind,
                row.histogram
            );
            assert!(
                row.histogram.high_mass(2) > 0.05,
                "{}: {:?}",
                row.kind,
                row.histogram
            );
            let middle = 1.0 - row.histogram.low_mass(2) - row.histogram.high_mass(2);
            assert!(
                middle < 0.5,
                "{}: middle-heavy {:?}",
                row.kind,
                row.histogram
            );
            assert!((0.0..=1.0).contains(&row.dynamic_ratio));
        }
        // The dense transform kernel is far more stride-efficient than the
        // constant-heavy compiler analogue (dynamic, execution-weighted).
        assert!(fig.rows[0].dynamic_ratio > fig.rows[1].dynamic_ratio);
        assert!(fig.render().contains("dyn ratio"));
    }
}
