//! Table 5.1 — how many allocation candidates the profile mechanism admits,
//! relative to the hardware mechanism.
//!
//! The saturating-counter scheme must allocate every dynamic value producer
//! into the prediction table; the directive scheme admits only tagged ones.
//! The admitted fraction — the paper reports 24% at threshold 90% up to 47%
//! at 50% — is the resource-utilisation advantage of classifying *before*
//! allocation.

use vp_compiler::ThresholdPolicy;
use vp_predictor::PredictorConfig;
use vp_stats::{table::percent, TextTable};
use vp_workloads::WorkloadKind;

use crate::Suite;

/// One workload's admitted-candidate fractions.
#[derive(Debug, Clone)]
pub struct Row {
    /// The workload.
    pub kind: WorkloadKind,
    /// Fraction of dynamic value producers admitted at each threshold of
    /// [`ThresholdPolicy::PAPER_SWEEP`], in `[0, 1]` (the hardware scheme's
    /// fraction is 1 by construction).
    pub fractions: Vec<f64>,
}

/// The reproduced Table 5.1.
#[derive(Debug, Clone)]
pub struct Table51 {
    /// Per-workload rows.
    pub rows: Vec<Row>,
}

/// The sweep-matrix cells this experiment requests per workload: the
/// profile-classified finite table at each threshold of
/// [`ThresholdPolicy::PAPER_SWEEP`] (see [`Suite::prime_matrix`]).
#[must_use]
pub fn matrix_cells() -> Vec<(PredictorConfig, Option<f64>)> {
    ThresholdPolicy::PAPER_SWEEP
        .iter()
        .map(|&th| (PredictorConfig::spec_table_stride_profile(), Some(th)))
        .collect()
}

/// Runs the experiment over the given workloads: counts, on the reference
/// input, the dynamic value producers the finite-table directive predictor
/// actually touches the table for. The per-workload threshold sweep
/// replays as one fused matrix pass over the reference trace.
pub fn run(suite: &Suite, kinds: &[WorkloadKind]) -> Table51 {
    let cells = matrix_cells();
    let rows = suite.par_map(kinds, |&kind| {
        let fractions = suite
            .predictor_stats_matrix(kind, &cells)
            .iter()
            .map(|stats| {
                // Admitted = table was consulted (hit or allocation).
                let admitted = stats.hits + stats.allocations;
                if stats.accesses == 0 {
                    0.0
                } else {
                    admitted as f64 / stats.accesses as f64
                }
            })
            .collect();
        Row { kind, fractions }
    });
    Table51 { rows }
}

/// Convenience: all nine workloads.
pub fn run_all(suite: &Suite) -> Table51 {
    run(suite, &WorkloadKind::ALL)
}

impl Table51 {
    /// Column averages across workloads (the paper's single summary row).
    #[must_use]
    pub fn averages(&self) -> Vec<f64> {
        let n = self.rows.len().max(1) as f64;
        (0..ThresholdPolicy::PAPER_SWEEP.len())
            .map(|i| self.rows.iter().map(|r| r.fractions[i]).sum::<f64>() / n)
            .collect()
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "benchmark",
            "th=90%",
            "th=80%",
            "th=70%",
            "th=60%",
            "th=50%",
        ]);
        for row in &self.rows {
            let mut cells = vec![row.kind.name().to_owned()];
            cells.extend(row.fractions.iter().map(|&f| percent(f)));
            t.row(cells);
        }
        let mut cells = vec!["average".to_owned()];
        cells.extend(self.averages().iter().map(|&f| percent(f)));
        t.row(cells);
        format!(
            "Table 5.1 — fraction of allocation candidates admitted by the\n\
             profiling classification, relative to saturated counters (=100%)\n{t}"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_widens_as_the_threshold_drops() {
        let suite = Suite::with_train_runs(2);
        let table = run(&suite, &[WorkloadKind::Gcc, WorkloadKind::Ijpeg]);
        let avg = table.averages();
        // Monotone non-decreasing 90% -> 50%, strictly below admitting all.
        for w in avg.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "{avg:?}");
        }
        assert!(avg[0] < avg[4], "sweep must actually widen: {avg:?}");
        assert!(
            avg[4] < 0.95,
            "even at 50% a good chunk stays excluded: {avg:?}"
        );
        assert!(avg[0] > 0.01, "something must be admitted at 90%: {avg:?}");
        assert!(table.render().contains("Table 5.1"));
    }
}
