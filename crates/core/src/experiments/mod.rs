//! One runner per table/figure of the paper's evaluation.
//!
//! Every module follows the same pattern: a `run` function that drives a
//! [`crate::Suite`] over a set of workloads and returns a plain result
//! struct, plus `render*` methods producing the text table/histogram the
//! matching `repro-*` binary prints. EXPERIMENTS.md records the measured
//! output next to the paper's numbers.

pub mod ablations;
pub mod classification;
pub mod critical_path;
pub mod fig_2_2;
pub mod fig_2_3;
pub mod fig_4;
pub mod finite_table;
pub mod store_values;
pub mod table_2_1;
pub mod table_5_1;
pub mod table_5_2;
