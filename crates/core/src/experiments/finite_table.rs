//! Figures 5.3 and 5.4 — correct and incorrect predictions with the finite
//! 512-entry, 2-way stride table.
//!
//! The head-to-head that matters: with real table pressure, does admitting
//! only directive-tagged instructions beat letting everything compete under
//! saturating counters? The paper finds large-working-set benchmarks (go,
//! gcc, li, perl, vortex) can gain correct predictions *and* shed
//! mispredictions at the right threshold, while small-working-set ones
//! (m88ksim, compress, ijpeg, mgrid) cannot.

use vp_compiler::ThresholdPolicy;
use vp_predictor::{PredictorConfig, PredictorStats};
use vp_stats::{table::signed_percent, TextTable};
use vp_workloads::WorkloadKind;

use crate::Suite;

/// One workload's finite-table comparison.
#[derive(Debug, Clone)]
pub struct Row {
    /// The workload.
    pub kind: WorkloadKind,
    /// Hardware-classified predictor statistics.
    pub fsm: PredictorStats,
    /// Profile-classified statistics per threshold of
    /// [`ThresholdPolicy::PAPER_SWEEP`].
    pub profile: Vec<PredictorStats>,
}

impl Row {
    /// Percentage change in *correct* predictions vs. the hardware scheme
    /// at threshold index `i` (Figure 5.3's bars).
    #[must_use]
    pub fn correct_delta(&self, i: usize) -> f64 {
        delta(
            self.profile[i].speculated_correct,
            self.fsm.speculated_correct,
        )
    }

    /// Percentage change in *incorrect* predictions vs. the hardware scheme
    /// at threshold index `i` (Figure 5.4's bars; negative is good).
    #[must_use]
    pub fn incorrect_delta(&self, i: usize) -> f64 {
        delta(
            self.profile[i].speculated_incorrect(),
            self.fsm.speculated_incorrect(),
        )
    }

    /// Whether some threshold achieves the paper's double win: more correct
    /// predictions *and* fewer mispredictions than the hardware scheme.
    #[must_use]
    pub fn has_double_win(&self) -> bool {
        (0..self.profile.len())
            .any(|i| self.correct_delta(i) > 0.0 && self.incorrect_delta(i) < 0.0)
    }
}

fn delta(ours: u64, theirs: u64) -> f64 {
    if theirs == 0 {
        if ours == 0 {
            0.0
        } else {
            100.0
        }
    } else {
        100.0 * (ours as f64 / theirs as f64 - 1.0)
    }
}

/// The reproduced Figures 5.3/5.4.
#[derive(Debug, Clone)]
pub struct FiniteTable {
    /// Per-workload rows.
    pub rows: Vec<Row>,
}

/// Which figure to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Which {
    /// Figure 5.3: change in correct predictions.
    Correct,
    /// Figure 5.4: change in incorrect predictions.
    Incorrect,
}

/// The sweep-matrix cells this experiment requests per workload: the FSM
/// baseline first, then one profile-classified cell per threshold of
/// [`ThresholdPolicy::PAPER_SWEEP`] (see [`Suite::prime_matrix`]).
#[must_use]
pub fn matrix_cells() -> Vec<(PredictorConfig, Option<f64>)> {
    let mut cells = vec![(PredictorConfig::spec_table_stride_fsm(), None)];
    cells.extend(
        ThresholdPolicy::PAPER_SWEEP
            .iter()
            .map(|&th| (PredictorConfig::spec_table_stride_profile(), Some(th))),
    );
    cells
}

/// Runs the experiment over the given workloads. The whole per-workload
/// sweep (FSM baseline + every threshold) replays as one fused matrix
/// pass over the reference trace.
pub fn run(suite: &Suite, kinds: &[WorkloadKind]) -> FiniteTable {
    let cells = matrix_cells();
    let rows = suite.par_map(kinds, |&kind| {
        let mut grid = suite.predictor_stats_matrix(kind, &cells).into_iter();
        let fsm = grid.next().expect("fsm cell");
        let profile = grid.collect();
        Row { kind, fsm, profile }
    });
    FiniteTable { rows }
}

/// Convenience: all nine workloads.
pub fn run_all(suite: &Suite) -> FiniteTable {
    run(suite, &WorkloadKind::ALL)
}

impl FiniteTable {
    /// Renders one of the two figures.
    #[must_use]
    pub fn render(&self, which: Which) -> String {
        let title = match which {
            Which::Correct => "Figure 5.3 — increase in the number of correct predictions",
            Which::Incorrect => "Figure 5.4 — increase in the number of incorrect predictions",
        };
        let mut t = TextTable::new([
            "benchmark",
            "th=90%",
            "th=80%",
            "th=70%",
            "th=60%",
            "th=50%",
        ]);
        for row in &self.rows {
            let mut cells = vec![row.kind.name().to_owned()];
            for i in 0..row.profile.len() {
                let v = match which {
                    Which::Correct => row.correct_delta(i),
                    Which::Incorrect => row.incorrect_delta(i),
                };
                cells.push(signed_percent(v));
            }
            t.row(cells);
        }
        format!("{title}\n(profile-classified vs saturated counters, 512-entry 2-way stride table)\n{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn working_set_size_decides_who_wins() {
        let suite = Suite::with_train_runs(2);
        let ft = run(&suite, &[WorkloadKind::Gcc, WorkloadKind::M88ksim]);
        let gcc = &ft.rows[0];
        let m88k = &ft.rows[1];
        // Large working set: the paper's double win exists at some
        // threshold.
        assert!(
            gcc.has_double_win(),
            "gcc correct {:?} / incorrect {:?}",
            (0..5).map(|i| gcc.correct_delta(i)).collect::<Vec<_>>(),
            (0..5).map(|i| gcc.incorrect_delta(i)).collect::<Vec<_>>()
        );
        // Small working set: no table pressure, so profiling cannot add
        // correct predictions (the counters already capture everything).
        assert!(
            (0..5).all(|i| m88k.correct_delta(i) < 20.0),
            "m88ksim should gain little: {:?}",
            (0..5).map(|i| m88k.correct_delta(i)).collect::<Vec<_>>()
        );
        assert!(ft.render(Which::Correct).contains("Figure 5.3"));
        assert!(ft.render(Which::Incorrect).contains("Figure 5.4"));
    }
}
