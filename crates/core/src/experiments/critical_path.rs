//! Critical-path predictability: the paper's future-work analysis.
//!
//! Joins `vp-ilp`'s criticality attribution with the phase-2 profile
//! image: for each workload, how much of the dataflow-binding work is done
//! by instructions the profiler would tag as value-predictable? This is
//! the mechanistic explanation of Table 5.2 — workloads gain from value
//! prediction in proportion to the predictable share of their critical
//! path.

use vp_ilp::{CriticalPathAnalyzer, IlpConfig};
use vp_stats::{table::percent, TextTable};
use vp_workloads::{InputSet, WorkloadKind};

use crate::Suite;

/// One workload's critical-path breakdown.
#[derive(Debug, Clone)]
pub struct Row {
    /// The workload.
    pub kind: WorkloadKind,
    /// Fraction of issues bound by data dependences (vs. the window).
    pub data_bound_fraction: f64,
    /// Fraction of data-bound issues charged to producers with ≥90%
    /// profiled stride accuracy.
    pub predictable_critical_fraction: f64,
    /// The top binding producers: `(address, share of data-bound issues,
    /// profiled accuracy)`.
    pub top: Vec<(vp_isa::InstrAddr, f64, f64)>,
}

/// The critical-path report for a set of workloads.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Per-workload rows.
    pub rows: Vec<Row>,
}

/// Runs the analysis on each workload's reference input.
pub fn run_analysis(suite: &Suite, kinds: &[WorkloadKind]) -> CriticalPath {
    let rows = suite.par_map(kinds, |&kind| {
        let program = suite.reference_program(kind, None);
        let trace = suite.trace(kind, InputSet::reference());
        let mut analyzer = CriticalPathAnalyzer::new(IlpConfig::PAPER_WINDOW);
        trace
            .replay(&program, &mut analyzer)
            .unwrap_or_else(|e| panic!("{kind} replay failed: {e}"));
        let report = analyzer.finish();
        let image = suite.reference_image(kind);
        let accuracy_of = |addr| image.get(addr).map_or(0.0, |r| r.stride_accuracy());
        let data = report.data_bound().max(1);
        let top = report
            .ranked()
            .into_iter()
            .take(5)
            .map(|(addr, n)| (addr, n as f64 / data as f64, accuracy_of(addr)))
            .collect();
        Row {
            kind,
            data_bound_fraction: report.data_bound() as f64 / report.instructions.max(1) as f64,
            predictable_critical_fraction: report
                .predictable_fraction(|addr| accuracy_of(addr) >= 0.9),
            top,
        }
    });
    CriticalPath { rows }
}

/// Convenience: all nine workloads.
pub fn run_all(suite: &Suite) -> CriticalPath {
    run_analysis(suite, &WorkloadKind::ALL)
}

impl CriticalPath {
    /// Renders the report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "benchmark",
            "data-bound issues",
            "critical & predictable",
            "top binding instruction",
        ]);
        for row in &self.rows {
            let top = row
                .top
                .first()
                .map(|(addr, share, acc)| {
                    format!("{addr} ({}, acc {})", percent(*share), percent(*acc))
                })
                .unwrap_or_else(|| "-".to_owned());
            t.row([
                row.kind.name().to_owned(),
                percent(row.data_bound_fraction),
                percent(row.predictable_critical_fraction),
                top,
            ]);
        }
        format!(
            "Critical-path predictability (no-VP schedule, 40-entry window)\n\
             'critical & predictable' = share of data-bound issues charged to\n\
             producers with >=90% profiled accuracy — the headroom value\n\
             prediction can collapse.\n{t}"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_predictability_explains_table_5_2() {
        let suite = Suite::with_train_runs(1);
        let cp = run_analysis(
            &suite,
            &[
                WorkloadKind::M88ksim,
                WorkloadKind::Compress,
                WorkloadKind::Vortex,
            ],
        );
        let by = |kind| cp.rows.iter().find(|r| r.kind == kind).expect("row");
        let m88k = by(WorkloadKind::M88ksim);
        let compress = by(WorkloadKind::Compress);
        let vortex = by(WorkloadKind::Vortex);
        // The big Table 5.2 winners have mostly-predictable critical paths;
        // compress's hash chain is critical and unpredictable.
        assert!(
            m88k.predictable_critical_fraction > 0.6,
            "m88ksim {}",
            m88k.predictable_critical_fraction
        );
        assert!(
            vortex.predictable_critical_fraction > 0.4,
            "vortex {}",
            vortex.predictable_critical_fraction
        );
        assert!(
            compress.predictable_critical_fraction < m88k.predictable_critical_fraction,
            "compress {} vs m88ksim {}",
            compress.predictable_critical_fraction,
            m88k.predictable_critical_fraction
        );
        // Everything here is heavily data-bound (that is why VP matters).
        for row in &cp.rows {
            assert!(
                row.data_bound_fraction > 0.3,
                "{}: {}",
                row.kind,
                row.data_bound_fraction
            );
            assert!(!row.top.is_empty());
        }
        assert!(cp.render().contains("Critical-path"));
    }
}
