//! Figures 4.1, 4.2 and 4.3 — are profiles stable across inputs?
//!
//! Profiles each workload under `n` different training inputs, aligns the
//! per-instruction accuracy vectors `V` (and stride-efficiency vectors
//! `S`), computes the paper's maximum-distance and average-distance
//! metrics, and bins the metric coordinates into deciles. Mass concentrated
//! in the lowest intervals means the program's value predictability is an
//! input-independent property — the finding the whole methodology rests
//! on.

use vp_profile::AlignedVectors;
use vp_stats::{metrics, table::percent, DecileHistogram, TextTable};
use vp_workloads::WorkloadKind;

use crate::Suite;

use super::fig_2_2::MIN_EXECS;

/// One workload's three metric distributions.
#[derive(Debug, Clone)]
pub struct Row {
    /// The workload.
    pub kind: WorkloadKind,
    /// Number of aligned coordinates in the accuracy vectors `V`.
    pub dim: usize,
    /// Number of aligned coordinates in the stride-efficiency vectors `S`
    /// (instructions with enough correct predictions for the ratio to be
    /// meaningful).
    pub s_dim: usize,
    /// Spread of `M(V)max` coordinates (Figure 4.1).
    pub v_max: DecileHistogram,
    /// Spread of `M(V)average` coordinates (Figure 4.2).
    pub v_avg: DecileHistogram,
    /// Spread of `M(S)average` coordinates (Figure 4.3).
    pub s_avg: DecileHistogram,
}

/// The reproduced Figures 4.1–4.3.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Number of runs `n`.
    pub runs: usize,
    /// Per-workload distributions.
    pub rows: Vec<Row>,
}

/// Which of the three figures to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Which {
    /// Figure 4.1: `M(V)max`.
    VMax,
    /// Figure 4.2: `M(V)average`.
    VAverage,
    /// Figure 4.3: `M(S)average`.
    SAverage,
}

/// Runs the experiment over the given workloads.
pub fn run(suite: &Suite, kinds: &[WorkloadKind]) -> Fig4 {
    let rows = suite.par_map(kinds, |&kind| {
        let images = suite.train_images(kind);
        let vectors = AlignedVectors::from_images(&images, MIN_EXECS);
        let v = vectors.accuracy_vectors();
        let s = vectors.stride_ratio_vectors();
        Row {
            kind,
            dim: vectors.dim(),
            s_dim: vectors.s_addrs().len(),
            v_max: DecileHistogram::from_values(&metrics::max_distance(v)),
            v_avg: DecileHistogram::from_values(&metrics::average_distance(v)),
            s_avg: DecileHistogram::from_values(&metrics::average_distance(s)),
        }
    });
    Fig4 {
        runs: suite.train_runs() as usize,
        rows,
    }
}

/// Convenience: all nine workloads.
pub fn run_all(suite: &Suite) -> Fig4 {
    run(suite, &WorkloadKind::ALL)
}

impl Fig4 {
    /// The histogram selected by `which` for one row.
    #[must_use]
    pub fn histogram_of<'a>(&self, row: &'a Row, which: Which) -> &'a DecileHistogram {
        match which {
            Which::VMax => &row.v_max,
            Which::VAverage => &row.v_avg,
            Which::SAverage => &row.s_avg,
        }
    }

    /// Renders one of the three figures.
    #[must_use]
    pub fn render(&self, which: Which) -> String {
        let title = match which {
            Which::VMax => "Figure 4.1 — the spread of M(V)max",
            Which::VAverage => "Figure 4.2 — the spread of M(V)average",
            Which::SAverage => "Figure 4.3 — the spread of M(S)average",
        };
        let mut headers = vec!["benchmark".to_owned()];
        headers.extend((0..10).map(DecileHistogram::label));
        headers.push("coords".to_owned());
        let mut t = TextTable::new(headers);
        for row in &self.rows {
            let h = self.histogram_of(row, which);
            let mut cells = vec![row.kind.name().to_owned()];
            cells.extend((0..10).map(|b| percent(h.fraction(b))));
            cells.push(
                if which == Which::SAverage {
                    row.s_dim
                } else {
                    row.dim
                }
                .to_string(),
            );
            t.row(cells);
        }
        format!("{title} (n = {})\n{t}", self.runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_input_invariant() {
        let suite = Suite::with_train_runs(3);
        let fig = run(&suite, &[WorkloadKind::Compress, WorkloadKind::Ijpeg]);
        assert_eq!(fig.runs, 3);
        for row in &fig.rows {
            assert!(
                row.dim > 10,
                "{}: only {} aligned coordinates",
                row.kind,
                row.dim
            );
            // The paper's conclusion: most coordinates in the lowest
            // intervals, for every metric and benchmark.
            assert!(
                row.v_max.low_mass(2) > 0.6,
                "{}: M(V)max {:?}",
                row.kind,
                row.v_max
            );
            assert!(
                row.v_avg.low_mass(2) > 0.6,
                "{}: M(V)avg {:?}",
                row.kind,
                row.v_avg
            );
            assert!(
                row.s_avg.low_mass(2) > 0.6,
                "{}: M(S)avg {:?}",
                row.kind,
                row.s_avg
            );
            // And M(V)average is never more spread than M(V)max.
            assert!(row.v_avg.low_mass(3) >= row.v_max.low_mass(3) - 1e-9);
        }
        assert!(fig.render(Which::VMax).contains("Figure 4.1"));
        assert!(fig.render(Which::SAverage).contains("M(S)average"));
    }
}
