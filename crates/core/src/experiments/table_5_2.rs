//! Table 5.2 — the ILP increase from value prediction under each
//! classification mechanism.
//!
//! The paper's bottom line: on the abstract 40-entry-window machine, the
//! ILP gained by value prediction relative to no value prediction, with
//! classification by saturating counters ("VP + SC") versus profiling at
//! thresholds 90%…50% ("VP + Prof. X%").

use vp_compiler::ThresholdPolicy;
use vp_ilp::{IlpConfig, IlpResult};
use vp_stats::{table::signed_percent, TextTable};
use vp_workloads::WorkloadKind;

use crate::Suite;

/// One workload's ILP measurements.
#[derive(Debug, Clone)]
pub struct Row {
    /// The workload.
    pub kind: WorkloadKind,
    /// The no-value-prediction baseline.
    pub base: IlpResult,
    /// Value prediction + saturating counters.
    pub vp_fsm: IlpResult,
    /// Value prediction + profiling, per threshold of
    /// [`ThresholdPolicy::PAPER_SWEEP`].
    pub vp_profile: Vec<IlpResult>,
}

impl Row {
    /// ILP increase (%) of VP + saturating counters over the baseline.
    #[must_use]
    pub fn fsm_increase(&self) -> f64 {
        self.vp_fsm.ilp_increase_over(&self.base)
    }

    /// ILP increase (%) of VP + profiling at threshold index `i`.
    #[must_use]
    pub fn profile_increase(&self, i: usize) -> f64 {
        self.vp_profile[i].ilp_increase_over(&self.base)
    }

    /// The best profiling threshold's ILP increase.
    #[must_use]
    pub fn best_profile_increase(&self) -> f64 {
        (0..self.vp_profile.len())
            .map(|i| self.profile_increase(i))
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// The reproduced Table 5.2.
#[derive(Debug, Clone)]
pub struct Table52 {
    /// Per-workload rows.
    pub rows: Vec<Row>,
}

/// Runs the experiment over the given workloads.
pub fn run(suite: &Suite, kinds: &[WorkloadKind]) -> Table52 {
    let rows = suite.par_map(kinds, |&kind| {
        let base = suite.ilp(kind, IlpConfig::paper_no_vp(), None);
        let vp_fsm = suite.ilp(kind, IlpConfig::paper_vp_fsm(), None);
        let vp_profile = ThresholdPolicy::PAPER_SWEEP
            .iter()
            .map(|&th| suite.ilp(kind, IlpConfig::paper_vp_profile(), Some(th)))
            .collect();
        Row {
            kind,
            base,
            vp_fsm,
            vp_profile,
        }
    });
    Table52 { rows }
}

/// Convenience: all nine workloads.
pub fn run_all(suite: &Suite) -> Table52 {
    run(suite, &WorkloadKind::ALL)
}

impl Table52 {
    /// Renders the table in the paper's layout (plus the absolute baseline
    /// ILP for context).
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new([
            "benchmark",
            "base ILP",
            "VP+SC",
            "VP+Prof 90%",
            "80%",
            "70%",
            "60%",
            "50%",
        ]);
        for row in &self.rows {
            let mut cells = vec![
                row.kind.name().to_owned(),
                format!("{:.2}", row.base.ilp()),
                signed_percent(row.fsm_increase()),
            ];
            cells
                .extend((0..row.vp_profile.len()).map(|i| signed_percent(row.profile_increase(i))));
            t.row(cells);
        }
        format!(
            "Table 5.2 — ILP increase from value prediction, relative to no VP\n\
             (40-entry window, unlimited units, perfect branch prediction, 1-cycle penalty)\n{t}"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m88ksim_dominates_and_profiling_is_competitive() {
        let suite = Suite::with_train_runs(2);
        let t = run(&suite, &[WorkloadKind::M88ksim, WorkloadKind::Compress]);
        let m88k = &t.rows[0];
        let compress = &t.rows[1];
        // The paper's headline: m88ksim's predictable serial chains give a
        // dramatically larger gain than compress's unpredictable hashing.
        assert!(
            m88k.fsm_increase() > 100.0,
            "m88ksim VP+SC = {:.1}%",
            m88k.fsm_increase()
        );
        assert!(
            compress.fsm_increase() < 60.0,
            "compress VP+SC = {:.1}%",
            compress.fsm_increase()
        );
        assert!(m88k.fsm_increase() > 3.0 * compress.fsm_increase().max(1.0));
        // Profiling is in the same league as the counters on its best
        // threshold.
        assert!(
            m88k.best_profile_increase() > 0.5 * m88k.fsm_increase(),
            "profile best {:.1}% vs fsm {:.1}%",
            m88k.best_profile_increase(),
            m88k.fsm_increase()
        );
        // VP never makes things slower than a sane margin on these codes.
        for row in &t.rows {
            assert!(row.fsm_increase() > -5.0);
            for i in 0..5 {
                assert!(row.profile_increase(i) > -5.0);
            }
        }
        assert!(t.render().contains("Table 5.2"));
    }
}
