//! Figures 5.1 and 5.2 — classification accuracy with an infinite table.
//!
//! Isolates the classification decision from table pressure: both
//! mechanisms see identical raw (unbounded stride) predictions on the
//! reference input; only the *use it / suppress it* decision differs. The
//! paper's trade-off appears directly: profile classification at tight
//! thresholds eliminates more mispredictions (Figure 5.1), while the
//! saturating counters admit slightly more of the correct predictions
//! (Figure 5.2).

use vp_compiler::ThresholdPolicy;
use vp_predictor::{ClassifierKind, PredictorConfig, PredictorStats};
use vp_stats::{table::percent, TextTable};
use vp_workloads::WorkloadKind;

use crate::Suite;

/// One workload's classification-accuracy measurements.
#[derive(Debug, Clone)]
pub struct Row {
    /// The workload.
    pub kind: WorkloadKind,
    /// Hardware (saturating-counter) classification statistics.
    pub fsm: PredictorStats,
    /// Profile classification statistics, one per threshold of
    /// [`ThresholdPolicy::PAPER_SWEEP`].
    pub profile: Vec<PredictorStats>,
}

/// The reproduced Figures 5.1/5.2.
#[derive(Debug, Clone)]
pub struct Classification {
    /// Per-workload rows.
    pub rows: Vec<Row>,
}

/// Which of the two figures to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Which {
    /// Figure 5.1: % of mispredictions classified correctly (suppressed).
    Mispredictions,
    /// Figure 5.2: % of correct predictions classified correctly (used).
    CorrectPredictions,
}

/// The sweep-matrix cells this experiment requests per workload: the FSM
/// baseline first, then one profile-classified cell per threshold of
/// [`ThresholdPolicy::PAPER_SWEEP`]. Drivers use this to prime the fused
/// matrix ([`Suite::prime_matrix`]) across experiments.
#[must_use]
pub fn matrix_cells() -> Vec<(PredictorConfig, Option<f64>)> {
    let mut cells = vec![(
        PredictorConfig::InfiniteStride {
            classifier: ClassifierKind::two_bit_counter(),
        },
        None,
    )];
    cells.extend(ThresholdPolicy::PAPER_SWEEP.iter().map(|&th| {
        (
            PredictorConfig::InfiniteStride {
                classifier: ClassifierKind::Directive,
            },
            Some(th),
        )
    }));
    cells
}

/// Runs the experiment over the given workloads. The whole per-workload
/// sweep (FSM baseline + every threshold) replays as one fused matrix
/// pass over the reference trace.
pub fn run(suite: &Suite, kinds: &[WorkloadKind]) -> Classification {
    let cells = matrix_cells();
    let rows = suite.par_map(kinds, |&kind| {
        let mut grid = suite.predictor_stats_matrix(kind, &cells).into_iter();
        let fsm = grid.next().expect("fsm cell");
        let profile = grid.collect();
        Row { kind, fsm, profile }
    });
    Classification { rows }
}

/// Convenience: all nine workloads.
pub fn run_all(suite: &Suite) -> Classification {
    run(suite, &WorkloadKind::ALL)
}

fn metric(stats: &PredictorStats, which: Which) -> f64 {
    match which {
        Which::Mispredictions => stats.misprediction_classification_accuracy(),
        Which::CorrectPredictions => stats.correct_classification_accuracy(),
    }
}

impl Classification {
    /// Column-wise averages `(fsm, per-threshold)` of the chosen metric.
    #[must_use]
    pub fn averages(&self, which: Which) -> (f64, Vec<f64>) {
        let n = self.rows.len().max(1) as f64;
        let fsm = self.rows.iter().map(|r| metric(&r.fsm, which)).sum::<f64>() / n;
        let sweep = (0..ThresholdPolicy::PAPER_SWEEP.len())
            .map(|i| {
                self.rows
                    .iter()
                    .map(|r| metric(&r.profile[i], which))
                    .sum::<f64>()
                    / n
            })
            .collect();
        (fsm, sweep)
    }

    /// Renders one of the two figures.
    #[must_use]
    pub fn render(&self, which: Which) -> String {
        let title = match which {
            Which::Mispredictions => "Figure 5.1 — % of mispredictions classified correctly",
            Which::CorrectPredictions => {
                "Figure 5.2 — % of correct predictions classified correctly"
            }
        };
        let mut t = TextTable::new([
            "benchmark",
            "FSM",
            "th=90%",
            "th=80%",
            "th=70%",
            "th=60%",
            "th=50%",
        ]);
        for row in &self.rows {
            let mut cells = vec![row.kind.name().to_owned(), percent(metric(&row.fsm, which))];
            cells.extend(row.profile.iter().map(|s| percent(metric(s, which))));
            t.row(cells);
        }
        let (fsm, sweep) = self.averages(which);
        let mut cells = vec!["average".to_owned(), percent(fsm)];
        cells.extend(sweep.iter().map(|&v| percent(v)));
        t.row(cells);
        format!("{title} (infinite table, stride predictor)\n{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_papers_classification_tradeoff_appears() {
        let suite = Suite::with_train_runs(2);
        let c = run(&suite, &[WorkloadKind::Ijpeg, WorkloadKind::Compress]);

        let (fsm_mis, prof_mis) = c.averages(Which::Mispredictions);
        // Tight profiling beats the counters at eliminating mispredictions.
        assert!(
            prof_mis[0] > fsm_mis - 0.02,
            "profile@90 {} vs fsm {fsm_mis}",
            prof_mis[0]
        );
        // Loosening the threshold weakens misprediction elimination
        // overall (paper: monotone decline from 90% to 50%).
        assert!(
            prof_mis[0] > prof_mis[4],
            "90% {} should beat 50% {}",
            prof_mis[0],
            prof_mis[4]
        );

        let (_, prof_cor) = c.averages(Which::CorrectPredictions);
        // Loosening the threshold admits more correct predictions.
        assert!(
            prof_cor[4] >= prof_cor[0],
            "50% {} should admit at least as many corrects as 90% {}",
            prof_cor[4],
            prof_cor[0]
        );
        assert!(c.render(Which::Mispredictions).contains("Figure 5.1"));
    }
}
