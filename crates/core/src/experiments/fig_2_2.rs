//! Figure 2.2 — how static instructions spread across prediction-accuracy
//! deciles.
//!
//! The paper's headline characterisation: predictability is *bimodal* —
//! roughly 30% of instructions predict above 90% accuracy and roughly 40%
//! below 10%, with little in between. This is what makes classification
//! worthwhile at all.

use vp_stats::{table::percent, DecileHistogram, TextTable};
use vp_workloads::WorkloadKind;

use crate::Suite;

/// Instructions executed fewer times than this in the profiled run carry
/// no statistical signal and are excluded (they would read as spurious 0%
/// or 100% rows).
pub const MIN_EXECS: u64 = 10;

/// One workload's accuracy distribution.
#[derive(Debug, Clone)]
pub struct Row {
    /// The workload.
    pub kind: WorkloadKind,
    /// Decile histogram over static-instruction prediction accuracy.
    pub histogram: DecileHistogram,
}

impl Row {
    /// Fraction of instructions above 90% accuracy.
    #[must_use]
    pub fn highly_predictable(&self) -> f64 {
        self.histogram.high_mass(1)
    }

    /// Fraction of instructions below (or at) 10% accuracy.
    #[must_use]
    pub fn highly_unpredictable(&self) -> f64 {
        self.histogram.low_mass(1)
    }
}

/// The reproduced Figure 2.2.
#[derive(Debug, Clone)]
pub struct Fig22 {
    /// Per-workload distributions.
    pub rows: Vec<Row>,
}

/// Runs the experiment: profiles each workload's reference run and bins
/// its static value producers by stride-predictor accuracy.
pub fn run(suite: &Suite, kinds: &[WorkloadKind]) -> Fig22 {
    let rows = suite.par_map(kinds, |&kind| {
        let mut img = suite.reference_image(kind);
        img.retain_min_execs(MIN_EXECS);
        let values: Vec<f64> = img
            .iter()
            .map(|(_, r)| 100.0 * r.stride_accuracy())
            .collect();
        Row {
            kind,
            histogram: DecileHistogram::from_values(&values),
        }
    });
    Fig22 { rows }
}

/// Convenience: all nine workloads.
pub fn run_all(suite: &Suite) -> Fig22 {
    run(suite, &WorkloadKind::ALL)
}

impl Fig22 {
    /// Renders the per-bin fractions as a table plus the bimodality
    /// summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut headers = vec!["benchmark".to_owned()];
        headers.extend((0..10).map(DecileHistogram::label));
        let mut t = TextTable::new(headers);
        for row in &self.rows {
            let mut cells = vec![row.kind.name().to_owned()];
            cells.extend((0..10).map(|b| percent(row.histogram.fraction(b))));
            t.row(cells);
        }
        let mut out = format!("Figure 2.2 — spread of instructions by prediction accuracy\n{t}\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{:<10} >90%: {:>6}   <=10%: {:>6}\n",
                row.kind.name(),
                percent(row.highly_predictable()),
                percent(row.highly_unpredictable())
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributions_are_bimodal() {
        let suite = Suite::with_train_runs(1);
        let fig = run(&suite, &[WorkloadKind::Ijpeg, WorkloadKind::Compress]);
        for row in &fig.rows {
            assert!(
                row.histogram.total() > 10,
                "{}: too few instructions",
                row.kind
            );
            // Both extremes are populated...
            assert!(
                row.highly_predictable() > 0.05,
                "{}: {}",
                row.kind,
                row.highly_predictable()
            );
            assert!(
                row.highly_unpredictable() > 0.10,
                "{}: {}",
                row.kind,
                row.highly_unpredictable()
            );
            // ...and they dominate the middle (bimodality).
            let extremes = row.highly_predictable() + row.highly_unpredictable();
            assert!(extremes > 0.4, "{}: extremes only {extremes}", row.kind);
        }
        assert!(fig.render().contains("(90,100]"));
    }
}
