//! Table 2.1 — value-prediction accuracy of the last-value and stride
//! predictors, split by instruction category, with the FP workload measured
//! separately in its initialization and computation phases.

use vp_profile::{ProfileImage, VpCategory};
use vp_stats::{table::percent, TextTable};
use vp_workloads::WorkloadKind;

use crate::Suite;

/// One row of the table: a workload (or phase) with its four accuracies.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (workload name, `mgrid/init`, `mgrid/comp`, or an
    /// aggregate label).
    pub label: String,
    /// Integer-or-FP ALU accuracy under the stride predictor, `[0, 1]`.
    pub alu_stride: f64,
    /// ALU accuracy under the last-value predictor.
    pub alu_last: f64,
    /// Load accuracy under the stride predictor.
    pub load_stride: f64,
    /// Load accuracy under the last-value predictor.
    pub load_last: f64,
}

impl Row {
    fn from_image(label: impl Into<String>, img: &ProfileImage, fp: bool) -> Row {
        let (alu, load) = if fp {
            (VpCategory::FpAlu, VpCategory::FpLoad)
        } else {
            (VpCategory::IntAlu, VpCategory::IntLoad)
        };
        Row {
            label: label.into(),
            alu_stride: img.category_stride_accuracy(alu),
            alu_last: img.category_last_value_accuracy(alu),
            load_stride: img.category_stride_accuracy(load),
            load_last: img.category_last_value_accuracy(load),
        }
    }
}

/// The reproduced Table 2.1.
#[derive(Debug, Clone)]
pub struct Table21 {
    /// Per-workload rows for the integer suite.
    pub int_rows: Vec<Row>,
    /// The integer-suite average (the paper's "Spec-int95" row).
    pub int_avg: Row,
    /// Per-FP-workload `(init, computation)` phase rows.
    pub fp_rows: Vec<(Row, Row)>,
    /// The FP initialization-phase average (the paper's "Spec-fp95 init
    /// phase" row).
    pub fp_init: Row,
    /// The FP computation-phase average.
    pub fp_comp: Row,
}

fn average(label: &str, rows: &[&Row]) -> Row {
    let n = rows.len().max(1) as f64;
    let avg = |f: fn(&Row) -> f64| rows.iter().map(|r| f(r)).sum::<f64>() / n;
    Row {
        label: label.to_owned(),
        alu_stride: avg(|r| r.alu_stride),
        alu_last: avg(|r| r.alu_last),
        load_stride: avg(|r| r.load_stride),
        load_last: avg(|r| r.load_last),
    }
}

/// Runs the experiment over the given integer and FP workloads (FP
/// workloads are measured per phase).
pub fn run(suite: &Suite, int_kinds: &[WorkloadKind], fp_kinds: &[WorkloadKind]) -> Table21 {
    let int_rows: Vec<Row> = suite.par_map(int_kinds, |&k| {
        Row::from_image(k.name(), &suite.reference_image(k), false)
    });
    let int_avg = average("spec-int (avg)", &int_rows.iter().collect::<Vec<_>>());
    let fp_rows: Vec<(Row, Row)> = suite.par_map(fp_kinds, |&k| {
        let (init, comp) = suite.reference_phase_images(k);
        (
            Row::from_image(format!("{k}/init"), &init, true),
            Row::from_image(format!("{k}/comp"), &comp, true),
        )
    });
    let fp_init = average(
        "spec-fp init (avg)",
        &fp_rows.iter().map(|(i, _)| i).collect::<Vec<_>>(),
    );
    let fp_comp = average(
        "spec-fp comp (avg)",
        &fp_rows.iter().map(|(_, c)| c).collect::<Vec<_>>(),
    );
    Table21 {
        int_rows,
        int_avg,
        fp_rows,
        fp_init,
        fp_comp,
    }
}

/// Convenience: the full integer suite plus all five FP workloads.
pub fn run_all(suite: &Suite) -> Table21 {
    run(suite, &WorkloadKind::INT, &WorkloadKind::FP)
}

impl Table21 {
    /// Renders the table in the paper's column layout.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(["benchmark", "ALU S", "ALU L", "loads S", "loads L"]);
        let mut emit = |row: &Row| {
            t.row([
                row.label.clone(),
                percent(row.alu_stride),
                percent(row.alu_last),
                percent(row.load_stride),
                percent(row.load_last),
            ]);
        };
        for row in &self.int_rows {
            emit(row);
        }
        emit(&self.int_avg);
        for (init, comp) in &self.fp_rows {
            emit(init);
            emit(comp);
        }
        emit(&self.fp_init);
        emit(&self.fp_comp);
        format!("Table 2.1 — value prediction accuracy (S = stride, L = last-value)\n{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_the_paper() {
        let suite = Suite::with_train_runs(1);
        let t = run(
            &suite,
            &[WorkloadKind::Ijpeg, WorkloadKind::Compress],
            &[WorkloadKind::Mgrid],
        );
        assert_eq!(t.int_rows.len(), 2);
        // Stride subsumes last-value on repeats, so on integer ALU the
        // stride predictor is at least as accurate overall.
        assert!(
            t.int_avg.alu_stride >= t.int_avg.alu_last - 0.02,
            "stride {} vs lv {}",
            t.int_avg.alu_stride,
            t.int_avg.alu_last
        );
        // ijpeg's dense index arithmetic makes its ALU stride accuracy high.
        let ijpeg = &t.int_rows[0];
        assert!(ijpeg.alu_stride > 0.4, "{}", ijpeg.alu_stride);
        // compress is the least predictable integer benchmark.
        let compress = &t.int_rows[1];
        assert!(compress.alu_stride < ijpeg.alu_stride);
        // All accuracies are valid ratios and the FP rows are populated.
        for r in t.int_rows.iter().chain([&t.fp_init, &t.fp_comp]) {
            for v in [r.alu_stride, r.alu_last, r.load_stride, r.load_last] {
                assert!((0.0..=1.0).contains(&v), "{}: {v}", r.label);
            }
        }
        // FP computation loads repeat coefficients: strongly last-value
        // predictable, unlike the init phase's fresh conversions.
        assert!(t.fp_comp.load_last > t.fp_init.alu_last);
        let rendered = t.render();
        assert!(rendered.contains("mgrid/init"));
        assert!(rendered.contains("spec-fp comp"));
        assert!(rendered.contains("ALU S"));
    }

    #[test]
    fn fp_suite_averages_cover_all_five_codes() {
        let suite = Suite::with_train_runs(1);
        let t = run(&suite, &[WorkloadKind::Compress], &WorkloadKind::FP);
        assert_eq!(t.fp_rows.len(), WorkloadKind::FP.len());
        // Computation-phase FP loads carry value locality everywhere
        // (constant/coefficient reloads); init phases do not.
        assert!(
            t.fp_comp.load_last > t.fp_init.load_last,
            "comp {} vs init {}",
            t.fp_comp.load_last,
            t.fp_init.load_last
        );
    }
}
