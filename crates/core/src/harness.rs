//! Glue between the simulator trace and the predictor models.

use vp_predictor::{PredictorStats, ValuePredictor};
use vp_sim::{Retirement, Tracer};

/// A tracer that feeds every value-producing retirement to a predictor —
/// the "emulate the value predictor while the program runs" step used by
/// the Section 5 evaluations.
///
/// # Examples
///
/// ```
/// use provp_core::PredictorTracer;
/// use vp_predictor::PredictorConfig;
/// use vp_sim::{run, RunLimits};
/// use vp_isa::asm::assemble;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble("li r1, 0\nli r2, 99\ntop: addi r1, r1, 1\nbne r1, r2, top\nhalt\n")?;
/// let mut t = PredictorTracer::new(PredictorConfig::spec_table_stride_fsm().build());
/// run(&p, &mut t, RunLimits::default())?;
/// assert!(t.stats().speculated_correct > 50);
/// # Ok(())
/// # }
/// ```
pub struct PredictorTracer {
    predictor: Box<dyn ValuePredictor>,
}

impl PredictorTracer {
    /// Wraps a predictor.
    #[must_use]
    pub fn new(predictor: Box<dyn ValuePredictor>) -> Self {
        PredictorTracer { predictor }
    }

    /// The predictor's cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> &PredictorStats {
        self.predictor.stats()
    }

    /// Finishes, returning the final statistics.
    #[must_use]
    pub fn into_stats(self) -> PredictorStats {
        *self.predictor.stats()
    }

    /// Current number of occupied predictor-table entries (0 for
    /// predictors with no table state to report).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.predictor.occupancy()
    }
}

impl Tracer for PredictorTracer {
    fn retire(&mut self, ev: &Retirement<'_>) {
        if let Some((_, _, value)) = ev.dest {
            self.predictor.access(ev.addr, ev.instr.directive, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::asm::assemble;
    use vp_predictor::PredictorConfig;
    use vp_sim::{run, RunLimits};

    #[test]
    fn only_value_producers_reach_the_predictor() {
        let p = assemble("li r1, 1\nsd r1, (r0)\nbeq r0, r0, e\ne: halt\n").unwrap();
        let mut t = PredictorTracer::new(PredictorConfig::spec_table_stride_fsm().build());
        run(&p, &mut t, RunLimits::default()).unwrap();
        assert_eq!(t.stats().accesses, 1, "only the li produces a value");
    }

    #[test]
    fn directive_annotated_program_steers_the_profile_predictor() {
        let src = "li r1, 0\nli r2, 50\ntop: addi.st r1, r1, 1\nbne r1, r2, top\nhalt\n";
        let p = assemble(src).unwrap();
        let mut t = PredictorTracer::new(PredictorConfig::spec_table_stride_profile().build());
        run(&p, &mut t, RunLimits::default()).unwrap();
        let s = t.into_stats();
        // Only the tagged addi is admitted; the li's are untagged.
        assert_eq!(s.allocations, 1);
        assert!(s.speculated_correct >= 47);
    }
}
