//! Memoised experiment context.
//!
//! The evaluation section re-uses the same expensive artifacts — five
//! training-run profile images per workload, merged profiles, annotated
//! binaries — across many tables and figures. A [`Suite`] computes each
//! artifact once and hands out clones.

use std::collections::HashMap;

use vp_compiler::{annotate, AnnotationSummary, ThresholdPolicy};
use vp_ilp::{IlpAnalyzer, IlpConfig, IlpResult};
use vp_isa::Program;
use vp_predictor::{PredictorConfig, PredictorStats};
use vp_profile::{merge, ProfileCollector, ProfileImage};
use vp_sim::{run, RunLimits};
use vp_workloads::{InputSet, Workload, WorkloadKind};

use crate::PredictorTracer;

/// Threshold key with stable hashing (per-mille accuracy).
fn th_key(threshold: f64) -> u32 {
    (threshold * 1000.0).round() as u32
}

/// A memoising context for the whole evaluation.
///
/// All methods take `&mut self` (they may fill caches) and return owned
/// values; profile images and programs are small enough that cloning is
/// negligible next to simulation.
pub struct Suite {
    limits: RunLimits,
    train_runs: u32,
    train_images: HashMap<WorkloadKind, Vec<ProfileImage>>,
    reference_images: HashMap<WorkloadKind, ProfileImage>,
    phase_images: HashMap<WorkloadKind, (ProfileImage, ProfileImage)>,
    annotated: HashMap<(WorkloadKind, u32), (Program, AnnotationSummary)>,
}

impl Suite {
    /// A suite with the paper's parameters (5 training runs).
    #[must_use]
    pub fn new() -> Self {
        Suite::with_train_runs(Workload::PAPER_TRAIN_RUNS)
    }

    /// A suite with an abbreviated number of training runs (for tests).
    #[must_use]
    pub fn with_train_runs(train_runs: u32) -> Self {
        assert!(train_runs >= 1, "at least one training run required");
        Suite {
            limits: RunLimits::default(),
            train_runs,
            train_images: HashMap::new(),
            reference_images: HashMap::new(),
            phase_images: HashMap::new(),
            annotated: HashMap::new(),
        }
    }

    /// Number of training runs per workload.
    #[must_use]
    pub fn train_runs(&self) -> u32 {
        self.train_runs
    }

    fn profile_once(limits: RunLimits, workload: &Workload, input: &InputSet) -> ProfileImage {
        let program = workload.program(input);
        let mut collector = ProfileCollector::new(format!("{}/{input}", workload.name()));
        run(&program, &mut collector, limits)
            .unwrap_or_else(|e| panic!("{} faulted while profiling: {e}", workload.name()));
        collector.into_image()
    }

    /// Profile images of the training runs (phase 2), one per input.
    pub fn train_images(&mut self, kind: WorkloadKind) -> Vec<ProfileImage> {
        let limits = self.limits;
        let runs = self.train_runs;
        self.train_images
            .entry(kind)
            .or_insert_with(|| {
                let w = Workload::new(kind);
                InputSet::train_set(runs)
                    .iter()
                    .map(|input| Self::profile_once(limits, &w, input))
                    .collect()
            })
            .clone()
    }

    /// The intersected-and-summed training profile the compiler consumes.
    pub fn merged_image(&mut self, kind: WorkloadKind) -> ProfileImage {
        let images = self.train_images(kind);
        merge::intersect_and_sum(&images).image
    }

    /// A profile image of the held-out reference run (used by the
    /// Section 2 characterisation tables/figures).
    pub fn reference_image(&mut self, kind: WorkloadKind) -> ProfileImage {
        let limits = self.limits;
        self.reference_images
            .entry(kind)
            .or_insert_with(|| {
                Self::profile_once(limits, &Workload::new(kind), &InputSet::reference())
            })
            .clone()
    }

    /// For FP workloads: `(init, computation)` phase images of the
    /// reference run.
    ///
    /// # Panics
    ///
    /// Panics if the workload has no phase split (only `mgrid` does).
    pub fn reference_phase_images(&mut self, kind: WorkloadKind) -> (ProfileImage, ProfileImage) {
        let limits = self.limits;
        self.phase_images
            .entry(kind)
            .or_insert_with(|| {
                let w = Workload::new(kind);
                let split = w
                    .phase_split()
                    .unwrap_or_else(|| panic!("{kind} has no phase split"));
                let program = w.program(&InputSet::reference());
                let mut collector = ProfileCollector::with_phase_split(w.name().to_owned(), split);
                run(&program, &mut collector, limits)
                    .unwrap_or_else(|e| panic!("{kind} faulted: {e}"));
                collector.into_phase_images()
            })
            .clone()
    }

    /// The phase-3 annotated binary (trained on the training inputs) plus
    /// the annotation report, for one accuracy threshold.
    pub fn annotated(
        &mut self,
        kind: WorkloadKind,
        threshold: f64,
    ) -> (Program, AnnotationSummary) {
        if let Some(hit) = self.annotated.get(&(kind, th_key(threshold))) {
            return hit.clone();
        }
        let merged = self.merged_image(kind);
        let base = Workload::new(kind)
            .program(&InputSet::train(0))
            .without_directives();
        let out = annotate(&base, &merged, &ThresholdPolicy::new(threshold));
        let value = (out.program().clone(), *out.summary());
        self.annotated
            .insert((kind, th_key(threshold)), value.clone());
        value
    }

    /// The reference-input program, carrying directives from the training
    /// profile when `threshold` is given (the evaluation configuration:
    /// train on training inputs, run on the reference input).
    pub fn reference_program(&mut self, kind: WorkloadKind, threshold: Option<f64>) -> Program {
        let fresh = Workload::new(kind).program(&InputSet::reference());
        match threshold {
            None => fresh,
            Some(th) => {
                let (tagged, _) = self.annotated(kind, th);
                fresh.with_directives(|addr, _| tagged.text()[addr.index() as usize].directive)
            }
        }
    }

    /// Runs the reference input through a predictor configuration and
    /// returns the predictor statistics. `threshold` selects the annotated
    /// binary (profile-guided classification) or the bare one (hardware
    /// classification).
    pub fn predictor_stats(
        &mut self,
        kind: WorkloadKind,
        config: PredictorConfig,
        threshold: Option<f64>,
    ) -> PredictorStats {
        let program = self.reference_program(kind, threshold);
        let mut tracer = PredictorTracer::new(config.build());
        run(&program, &mut tracer, self.limits).unwrap_or_else(|e| panic!("{kind} faulted: {e}"));
        tracer.into_stats()
    }

    /// Replays the reference input through the abstract ILP machine.
    pub fn ilp(
        &mut self,
        kind: WorkloadKind,
        config: IlpConfig,
        threshold: Option<f64>,
    ) -> IlpResult {
        let program = self.reference_program(kind, threshold);
        let mut analyzer = IlpAnalyzer::new(config);
        run(&program, &mut analyzer, self.limits).unwrap_or_else(|e| panic!("{kind} faulted: {e}"));
        analyzer.finish()
    }
}

impl Default for Suite {
    fn default() -> Self {
        Suite::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_images_are_memoised() {
        let mut s = Suite::with_train_runs(2);
        let a = s.train_images(WorkloadKind::Compress);
        let b = s.train_images(WorkloadKind::Compress);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn annotated_threshold_monotonicity() {
        let mut s = Suite::with_train_runs(2);
        let (_, strict) = s.annotated(WorkloadKind::Ijpeg, 0.9);
        let (_, lax) = s.annotated(WorkloadKind::Ijpeg, 0.5);
        assert!(lax.tagged() >= strict.tagged());
    }

    #[test]
    fn reference_program_carries_directives_only_when_asked() {
        let mut s = Suite::with_train_runs(2);
        let bare = s.reference_program(WorkloadKind::M88ksim, None);
        let tagged = s.reference_program(WorkloadKind::M88ksim, Some(0.9));
        assert_eq!(bare.directive_counts().1 + bare.directive_counts().2, 0);
        let (_, lv, st) = tagged.directive_counts();
        assert!(lv + st > 0, "m88ksim must have predictable instructions");
        // Same text modulo directives, reference data.
        assert_eq!(bare.len(), tagged.len());
        assert_eq!(bare.data(), tagged.data());
    }

    #[test]
    fn mgrid_phase_images_are_disjoint() {
        let mut s = Suite::with_train_runs(1);
        let (init, comp) = s.reference_phase_images(WorkloadKind::Mgrid);
        assert!(!init.is_empty() && !comp.is_empty());
        for (addr, _) in init.iter() {
            assert!(comp.get(addr).is_none(), "{addr} in both phases");
        }
    }
}
