//! Memoised experiment context.
//!
//! The evaluation section re-uses the same expensive artifacts — five
//! training-run profile images per workload, merged profiles, annotated
//! binaries — across many tables and figures. A [`Suite`] computes each
//! artifact once and hands out clones.
//!
//! Since the trace-cache rework every method takes `&self`: caches live
//! behind mutexes, the underlying simulations are memoised as retirement
//! traces in a shared [`TraceStore`], and independent grid points can be
//! fanned out over threads with [`Suite::par_map`] while keeping output
//! order (and therefore rendered experiment output) byte-identical to a
//! serial run.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};

use vp_compiler::{annotate, AnnotationSummary, ThresholdPolicy};
use vp_ilp::{IlpAnalyzer, IlpConfig, IlpResult};
use vp_isa::Program;
use vp_predictor::{PredictorConfig, PredictorStats};
use vp_profile::{merge, ProfileCollector, ProfileImage};
use vp_sim::{run, RunLimits, Trace};
use vp_workloads::{InputSet, Workload, WorkloadKind};

use crate::exec::parallel_map;
use crate::trace_store::{TraceError, TraceKey, TraceStore, TraceStoreStats};

/// Threshold key with stable hashing (per-mille accuracy).
fn th_key(threshold: f64) -> u32 {
    (threshold * 1000.0).round() as u32
}

/// A thread-safe get-or-compute cache with in-flight deduplication: when
/// two threads request the same missing key, one computes while the other
/// waits, and the value is computed without holding the lock.
struct Memo<K, V> {
    state: Mutex<MemoState<K, V>>,
    available: Condvar,
}

struct MemoState<K, V> {
    done: HashMap<K, V>,
    running: HashSet<K>,
}

impl<K: Eq + Hash + Copy, V: Clone> Memo<K, V> {
    fn new() -> Self {
        Memo {
            state: Mutex::new(MemoState {
                done: HashMap::new(),
                running: HashSet::new(),
            }),
            available: Condvar::new(),
        }
    }

    fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> V {
        {
            let mut state = self.state.lock().expect("memo poisoned");
            loop {
                if let Some(v) = state.done.get(&key) {
                    return v.clone();
                }
                if state.running.insert(key) {
                    break;
                }
                state = self.available.wait(state).expect("memo poisoned");
            }
        }
        let guard = RunningGuard { memo: self, key };
        let value = compute();
        let mut state = self.state.lock().expect("memo poisoned");
        state.done.insert(key, value.clone());
        drop(state);
        drop(guard);
        value
    }
}

/// Clears the running mark even if `compute` panicked, so waiters retry
/// instead of deadlocking.
struct RunningGuard<'a, K: Eq + Hash + Copy, V: Clone> {
    memo: &'a Memo<K, V>,
    key: K,
}

impl<K: Eq + Hash + Copy, V: Clone> Drop for RunningGuard<'_, K, V> {
    fn drop(&mut self) {
        let mut state = match self.memo.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.running.remove(&self.key);
        drop(state);
        self.memo.available.notify_all();
    }
}

/// A memoising context for the whole evaluation.
///
/// All methods take `&self` (caches use interior mutability, so a single
/// suite can be shared across worker threads) and return owned values;
/// profile images and programs are small enough that cloning is negligible
/// next to simulation. Functional simulations run at most once per
/// `(workload, input, limits)` key — every consumer replays the memoised
/// retirement trace from the embedded [`TraceStore`].
pub struct Suite {
    limits: RunLimits,
    train_runs: u32,
    jobs: usize,
    traces: Arc<TraceStore>,
    train_images: Memo<WorkloadKind, Vec<ProfileImage>>,
    reference_images: Memo<WorkloadKind, ProfileImage>,
    phase_images: Memo<WorkloadKind, (ProfileImage, ProfileImage)>,
    annotated: Memo<(WorkloadKind, u32), (Program, AnnotationSummary)>,
}

impl Suite {
    /// A suite with the paper's parameters (5 training runs), serial
    /// execution and an in-memory trace cache.
    #[must_use]
    pub fn new() -> Self {
        Suite::with_train_runs(Workload::PAPER_TRAIN_RUNS)
    }

    /// A suite with an abbreviated number of training runs (for tests).
    #[must_use]
    pub fn with_train_runs(train_runs: u32) -> Self {
        assert!(train_runs >= 1, "at least one training run required");
        Suite {
            limits: RunLimits::default(),
            train_runs,
            jobs: 1,
            traces: Arc::new(TraceStore::new()),
            train_images: Memo::new(),
            reference_images: Memo::new(),
            phase_images: Memo::new(),
            annotated: Memo::new(),
        }
    }

    /// Sets the number of worker threads used by [`Suite::par_map`]
    /// (1 = serial; output is byte-identical either way).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Spills captured traces under `dir` and reloads them from there in
    /// later processes, skipping the functional simulation entirely.
    #[must_use]
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.traces = Arc::new(TraceStore::new().with_spill_dir(dir));
        self
    }

    /// Replaces the trace store wholesale (to share one across suites or
    /// to bound its memory differently).
    #[must_use]
    pub fn with_trace_store(mut self, traces: Arc<TraceStore>) -> Self {
        self.traces = traces;
        self
    }

    /// Number of training runs per workload.
    #[must_use]
    pub fn train_runs(&self) -> u32 {
        self.train_runs
    }

    /// Worker threads used by [`Suite::par_map`].
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Usage counters of the embedded trace store.
    #[must_use]
    pub fn trace_stats(&self) -> TraceStoreStats {
        self.traces.stats()
    }

    /// A handle on the embedded trace store (shared, so a mid-run
    /// sampler hook can snapshot its internally-consistent stats from a
    /// background thread).
    #[must_use]
    pub fn trace_store(&self) -> Arc<TraceStore> {
        Arc::clone(&self.traces)
    }

    /// Maps `f` over `items` on up to [`Suite::jobs`] threads, returning
    /// results in input order — the building block every experiment grid
    /// uses to fan out per-workload work deterministically.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        parallel_map(self.jobs, items, f)
    }

    /// The memoised retirement trace of `kind` under `input` (simulating
    /// at most once per key).
    ///
    /// # Panics
    ///
    /// Panics if the underlying simulation faults or a spilled trace is
    /// unreadable; the message carries the offending trace key.
    pub fn trace(&self, kind: WorkloadKind, input: InputSet) -> Arc<Trace> {
        self.traces
            .get(kind, input, self.limits)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn profile_once(&self, kind: WorkloadKind, input: &InputSet) -> ProfileImage {
        let _span = vp_obs::span("profile");
        let workload = Workload::new(kind);
        let program = workload.program(input);
        let mut collector = ProfileCollector::new(format!("{}/{input}", workload.name()));
        if input.is_reference() || self.traces.spill_dir().is_some() {
            // Reference traces have many consumers (profilers, predictor
            // configurations, ILP models) and training traces become
            // reusable across processes once a spill directory exists —
            // worth memoising either way.
            self.traces
                .replay_into(kind, *input, self.limits, &program, &mut collector)
                .unwrap_or_else(|e| panic!("{e}"));
        } else {
            // A training trace is consumed exactly once (its profile image
            // is what gets memoised), so recording it would cost memory
            // for nothing: simulate straight into the collector.
            run(&program, &mut collector, self.limits)
                .unwrap_or_else(|e| panic!("{} faulted while profiling: {e}", workload.name()));
        }
        collector.into_image()
    }

    /// Profile images of the training runs (phase 2), one per input.
    pub fn train_images(&self, kind: WorkloadKind) -> Vec<ProfileImage> {
        self.train_images.get_or_compute(kind, || {
            let inputs = InputSet::train_set(self.train_runs);
            self.par_map(&inputs, |input| self.profile_once(kind, input))
        })
    }

    /// The intersected-and-summed training profile the compiler consumes.
    pub fn merged_image(&self, kind: WorkloadKind) -> ProfileImage {
        let images = self.train_images(kind);
        let _span = vp_obs::span("merge");
        merge::intersect_and_sum(&images).image
    }

    /// A profile image of the held-out reference run (used by the
    /// Section 2 characterisation tables/figures).
    pub fn reference_image(&self, kind: WorkloadKind) -> ProfileImage {
        self.reference_images
            .get_or_compute(kind, || self.profile_once(kind, &InputSet::reference()))
    }

    /// For FP workloads: `(init, computation)` phase images of the
    /// reference run.
    ///
    /// # Panics
    ///
    /// Panics if the workload has no phase split (only `mgrid` does).
    pub fn reference_phase_images(&self, kind: WorkloadKind) -> (ProfileImage, ProfileImage) {
        self.phase_images.get_or_compute(kind, || {
            let w = Workload::new(kind);
            let split = w
                .phase_split()
                .unwrap_or_else(|| panic!("{kind} has no phase split"));
            let program = w.program(&InputSet::reference());
            let mut collector = ProfileCollector::with_phase_split(w.name().to_owned(), split);
            self.traces
                .replay_into(
                    kind,
                    InputSet::reference(),
                    self.limits,
                    &program,
                    &mut collector,
                )
                .unwrap_or_else(|e| panic!("{e}"));
            collector.into_phase_images()
        })
    }

    /// The phase-3 annotated binary (trained on the training inputs) plus
    /// the annotation report, for one accuracy threshold.
    pub fn annotated(&self, kind: WorkloadKind, threshold: f64) -> (Program, AnnotationSummary) {
        self.annotated
            .get_or_compute((kind, th_key(threshold)), || {
                let merged = self.merged_image(kind);
                let _span = vp_obs::span("annotate");
                let base = Workload::new(kind)
                    .program(&InputSet::train(0))
                    .without_directives();
                let out = annotate(&base, &merged, &ThresholdPolicy::new(threshold));
                (out.program().clone(), *out.summary())
            })
    }

    /// The reference-input program, carrying directives from the training
    /// profile when `threshold` is given (the evaluation configuration:
    /// train on training inputs, run on the reference input).
    pub fn reference_program(&self, kind: WorkloadKind, threshold: Option<f64>) -> Program {
        let fresh = Workload::new(kind).program(&InputSet::reference());
        match threshold {
            None => fresh,
            Some(th) => {
                let (tagged, _) = self.annotated(kind, th);
                fresh.with_directives(|addr, _| tagged.text()[addr.index() as usize].directive)
            }
        }
    }

    /// Runs the reference input through a predictor configuration and
    /// returns the predictor statistics. `threshold` selects the annotated
    /// binary (profile-guided classification) or the bare one (hardware
    /// classification).
    ///
    /// Directives never change execution, so every configuration replays
    /// the same memoised reference trace instead of re-simulating.
    pub fn predictor_stats(
        &self,
        kind: WorkloadKind,
        config: PredictorConfig,
        threshold: Option<f64>,
    ) -> PredictorStats {
        let program = self.reference_program(kind, threshold);
        // Materialise (or fetch) the memoised trace first, outside the
        // predict phase: capture cost is accounted to its own `capture`
        // span, and the replay below touches only the columnar value
        // events — no instruction fetch, no retirement reconstruction.
        let trace = self.trace(kind, InputSet::reference());
        let replay_panic = |source| -> ! {
            panic!(
                "{}",
                TraceError::Replay {
                    key: TraceKey::new(kind, InputSet::reference(), self.limits),
                    source,
                }
            )
        };
        // The attributed replay is a separate code path so that with
        // attribution off the hot loop runs the exact seed instruction
        // stream (observation-only contract: byte-identical stdout,
        // negligible wall-clock delta).
        let (outcome, table) = {
            let _span = vp_obs::span("predict");
            let shards = crate::replay::auto_shards(self.jobs, trace.len());
            if crate::attribution::enabled() {
                crate::replay::replay_predictor_attributed(
                    &trace, &program, &config, shards, self.jobs,
                )
                .map(|(o, t)| (o, Some(t)))
                .unwrap_or_else(|source| replay_panic(source))
            } else {
                crate::replay::replay_predictor(&trace, &program, &config, shards, self.jobs)
                    .map(|o| (o, None))
                    .unwrap_or_else(|source| replay_panic(source))
            }
        };
        if let Some(table) = table {
            // Drift compares the Phase-2 training profile's promised
            // accuracy against what the reference replay observed;
            // merged_image is memoised, so this costs one lookup per
            // exported PC (outside the predict span either way).
            let top = crate::attribution::top_k().unwrap_or(0);
            let merged = self.merged_image(kind);
            crate::attribution::record(crate::attribution::run_from_table(
                Workload::new(kind).name(),
                &config.label(),
                threshold,
                &table,
                top,
                |addr, directive| merged.get(addr).map(|p| p.profiled_accuracy(directive)),
            ));
        }
        vp_obs::gauge("predictor.occupancy.max").set_max(outcome.occupancy as u64);
        publish_predictor_metrics(&outcome.stats);
        outcome.stats
    }

    /// Replays the reference input through the abstract ILP machine.
    pub fn ilp(&self, kind: WorkloadKind, config: IlpConfig, threshold: Option<f64>) -> IlpResult {
        let program = self.reference_program(kind, threshold);
        let mut analyzer = IlpAnalyzer::new(config);
        let _span = vp_obs::span("ilp");
        self.traces
            .replay_into(
                kind,
                InputSet::reference(),
                self.limits,
                &program,
                &mut analyzer,
            )
            .unwrap_or_else(|e| panic!("{e}"));
        analyzer.finish()
    }
}

/// Folds one run's predictor statistics into the process-wide
/// observability counters (table pressure + per-classification hit rates)
/// and marks allocation bursts in the event stream (an instant event per
/// run carrying that run's allocation count, so the Chrome trace shows
/// *which* predictor runs churned the table).
fn publish_predictor_metrics(stats: &PredictorStats) {
    if stats.allocations > 0 {
        vp_obs::events::instant("predictor.alloc_burst", stats.allocations);
    }
    vp_obs::counter("predictor.accesses").add(stats.accesses);
    vp_obs::counter("predictor.hits").add(stats.hits);
    vp_obs::counter("predictor.raw_correct").add(stats.raw_correct);
    vp_obs::counter("predictor.speculated").add(stats.speculated);
    vp_obs::counter("predictor.speculated_correct").add(stats.speculated_correct);
    vp_obs::counter("predictor.allocations").add(stats.allocations);
    vp_obs::counter("predictor.evictions").add(stats.evictions);
    vp_obs::counter("predictor.set_conflicts").add(stats.set_conflicts);
    vp_obs::counter("predictor.stride.accesses").add(stats.stride_accesses);
    vp_obs::counter("predictor.stride.correct").add(stats.stride_correct);
    vp_obs::counter("predictor.last_value.accesses").add(stats.last_value_accesses);
    vp_obs::counter("predictor.last_value.correct").add(stats.last_value_correct);
    vp_obs::counter("predictor.unclassified.accesses").add(stats.unclassified_accesses);
    vp_obs::counter("predictor.unclassified.correct").add(stats.unclassified_correct);
}

impl Default for Suite {
    fn default() -> Self {
        Suite::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_images_are_memoised() {
        let s = Suite::with_train_runs(2);
        let a = s.train_images(WorkloadKind::Compress);
        let b = s.train_images(WorkloadKind::Compress);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        // Training profiles are simulated straight into the collector
        // (their single consumer): nothing is recorded without a spill
        // directory asking for cross-process reuse.
        assert_eq!(s.trace_stats().requests, 0);
    }

    #[test]
    fn annotated_threshold_monotonicity() {
        let s = Suite::with_train_runs(2);
        let (_, strict) = s.annotated(WorkloadKind::Ijpeg, 0.9);
        let (_, lax) = s.annotated(WorkloadKind::Ijpeg, 0.5);
        assert!(lax.tagged() >= strict.tagged());
    }

    #[test]
    fn reference_program_carries_directives_only_when_asked() {
        let s = Suite::with_train_runs(2);
        let bare = s.reference_program(WorkloadKind::M88ksim, None);
        let tagged = s.reference_program(WorkloadKind::M88ksim, Some(0.9));
        assert_eq!(bare.directive_counts().1 + bare.directive_counts().2, 0);
        let (_, lv, st) = tagged.directive_counts();
        assert!(lv + st > 0, "m88ksim must have predictable instructions");
        // Same text modulo directives, reference data.
        assert_eq!(bare.len(), tagged.len());
        assert_eq!(bare.data(), tagged.data());
    }

    #[test]
    fn mgrid_phase_images_are_disjoint() {
        let s = Suite::with_train_runs(1);
        let (init, comp) = s.reference_phase_images(WorkloadKind::Mgrid);
        assert!(!init.is_empty() && !comp.is_empty());
        for (addr, _) in init.iter() {
            assert!(comp.get(addr).is_none(), "{addr} in both phases");
        }
    }

    #[test]
    fn reference_trace_is_simulated_once_across_consumers() {
        let s = Suite::with_train_runs(1);
        let kind = WorkloadKind::Compress;
        let _ = s.reference_image(kind);
        let _ = s.predictor_stats(kind, PredictorConfig::spec_table_stride_fsm(), None);
        let _ = s.predictor_stats(
            kind,
            PredictorConfig::spec_table_stride_profile(),
            Some(0.9),
        );
        let _ = s.ilp(kind, IlpConfig::paper_vp_fsm(), None);
        let stats = s.trace_stats();
        // The reference input is simulated exactly once; every further
        // consumer (predictor configurations, the ILP machine) replays
        // the memoised trace from memory.
        assert_eq!(stats.captures, 1);
        assert!(stats.memory_hits >= 3, "{stats:?}");
    }

    #[test]
    fn parallel_suite_matches_serial_suite() {
        let serial = Suite::with_train_runs(2);
        let threaded = Suite::with_train_runs(2).with_jobs(4);
        let kind = WorkloadKind::Ijpeg;
        assert_eq!(serial.train_images(kind), threaded.train_images(kind));
        assert_eq!(
            serial.predictor_stats(kind, PredictorConfig::spec_table_stride_fsm(), None),
            threaded.predictor_stats(kind, PredictorConfig::spec_table_stride_fsm(), None),
        );
    }
}
