//! Memoised experiment context.
//!
//! The evaluation section re-uses the same expensive artifacts — five
//! training-run profile images per workload, merged profiles, annotated
//! binaries — across many tables and figures. A [`Suite`] computes each
//! artifact once and hands out clones.
//!
//! Since the trace-cache rework every method takes `&self`: caches live
//! behind mutexes, the underlying simulations are memoised as retirement
//! traces in a shared [`TraceStore`], and independent grid points can be
//! fanned out over threads with [`Suite::par_map`] while keeping output
//! order (and therefore rendered experiment output) byte-identical to a
//! serial run.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};

use vp_compiler::{annotate, AnnotationSummary, ThresholdPolicy};
use vp_ilp::{IlpAnalyzer, IlpConfig, IlpResult};
use vp_isa::Program;
use vp_predictor::{AttributionTable, PredictorConfig, PredictorStats};
use vp_profile::{merge, ProfileCollector, ProfileImage};
use vp_sim::{run, RunLimits, Trace};
use vp_workloads::{InputSet, Workload, WorkloadKind};

use crate::exec::parallel_map;
use crate::replay::{ReplayRequest, SweepPlan};
use crate::trace_store::{TraceError, TraceKey, TraceStore, TraceStoreStats};

/// Threshold key with stable hashing (per-mille accuracy).
fn th_key(threshold: f64) -> u32 {
    (threshold * 1000.0).round() as u32
}

/// Identity of one sweep-matrix cell: configuration × annotation
/// threshold, for one workload's reference trace.
type CellKey = (WorkloadKind, PredictorConfig, Option<u32>);

/// The memoised result of one sweep-matrix cell. Attribution is captured
/// at compute time (when the process has it enabled) so later requests
/// for the same cell can record their run without replaying.
#[derive(Clone)]
struct CellResult {
    stats: PredictorStats,
    occupancy: usize,
    attribution: Option<Arc<AttributionTable>>,
}

/// The per-trace sweep memo: like [`Memo`], but claims are made in
/// *batches* so one fused [`ReplayRequest`] pass computes every missing
/// cell of a request at once.
struct SweepMemo {
    state: Mutex<SweepState>,
    available: Condvar,
}

struct SweepState {
    done: HashMap<CellKey, CellResult>,
    running: HashSet<CellKey>,
    /// Kinds whose reference trace has been matrix-replayed at least
    /// once (drives the `replay.matrix_traces` counter, the denominator
    /// of the CI `matrix_passes per trace` gate).
    swept: HashSet<WorkloadKind>,
}

impl SweepMemo {
    fn new() -> Self {
        SweepMemo {
            state: Mutex::new(SweepState {
                done: HashMap::new(),
                running: HashSet::new(),
                swept: HashSet::new(),
            }),
            available: Condvar::new(),
        }
    }
}

/// Clears a batch of running marks even if the compute panicked, so
/// waiters retry (re-claim) instead of deadlocking.
struct SweepRunningGuard<'a> {
    memo: &'a SweepMemo,
    keys: Vec<CellKey>,
}

impl Drop for SweepRunningGuard<'_> {
    fn drop(&mut self) {
        let mut state = match self.memo.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        for key in &self.keys {
            state.running.remove(key);
        }
        drop(state);
        self.memo.available.notify_all();
    }
}

/// A thread-safe get-or-compute cache with in-flight deduplication: when
/// two threads request the same missing key, one computes while the other
/// waits, and the value is computed without holding the lock.
struct Memo<K, V> {
    state: Mutex<MemoState<K, V>>,
    available: Condvar,
}

struct MemoState<K, V> {
    done: HashMap<K, V>,
    running: HashSet<K>,
}

impl<K: Eq + Hash + Copy, V: Clone> Memo<K, V> {
    fn new() -> Self {
        Memo {
            state: Mutex::new(MemoState {
                done: HashMap::new(),
                running: HashSet::new(),
            }),
            available: Condvar::new(),
        }
    }

    fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> V {
        {
            let mut state = self.state.lock().expect("memo poisoned");
            loop {
                if let Some(v) = state.done.get(&key) {
                    return v.clone();
                }
                if state.running.insert(key) {
                    break;
                }
                state = self.available.wait(state).expect("memo poisoned");
            }
        }
        let guard = RunningGuard { memo: self, key };
        let value = compute();
        let mut state = self.state.lock().expect("memo poisoned");
        state.done.insert(key, value.clone());
        drop(state);
        drop(guard);
        value
    }
}

/// Clears the running mark even if `compute` panicked, so waiters retry
/// instead of deadlocking.
struct RunningGuard<'a, K: Eq + Hash + Copy, V: Clone> {
    memo: &'a Memo<K, V>,
    key: K,
}

impl<K: Eq + Hash + Copy, V: Clone> Drop for RunningGuard<'_, K, V> {
    fn drop(&mut self) {
        let mut state = match self.memo.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        state.running.remove(&self.key);
        drop(state);
        self.memo.available.notify_all();
    }
}

/// A memoising context for the whole evaluation.
///
/// All methods take `&self` (caches use interior mutability, so a single
/// suite can be shared across worker threads) and return owned values;
/// profile images and programs are small enough that cloning is negligible
/// next to simulation. Functional simulations run at most once per
/// `(workload, input, limits)` key — every consumer replays the memoised
/// retirement trace from the embedded [`TraceStore`].
pub struct Suite {
    limits: RunLimits,
    train_runs: u32,
    jobs: usize,
    streaming: Option<usize>,
    traces: Arc<TraceStore>,
    train_images: Memo<WorkloadKind, Vec<ProfileImage>>,
    reference_images: Memo<WorkloadKind, ProfileImage>,
    phase_images: Memo<WorkloadKind, (ProfileImage, ProfileImage)>,
    annotated: Memo<(WorkloadKind, u32), (Program, AnnotationSummary)>,
    sweep: SweepMemo,
}

impl Suite {
    /// A suite with the paper's parameters (5 training runs), serial
    /// execution and an in-memory trace cache.
    #[must_use]
    pub fn new() -> Self {
        Suite::with_train_runs(Workload::PAPER_TRAIN_RUNS)
    }

    /// A suite with an abbreviated number of training runs (for tests).
    #[must_use]
    pub fn with_train_runs(train_runs: u32) -> Self {
        assert!(train_runs >= 1, "at least one training run required");
        Suite {
            limits: RunLimits::default(),
            train_runs,
            jobs: 1,
            streaming: None,
            traces: Arc::new(TraceStore::new()),
            train_images: Memo::new(),
            reference_images: Memo::new(),
            phase_images: Memo::new(),
            annotated: Memo::new(),
            sweep: SweepMemo::new(),
        }
    }

    /// Sets the number of worker threads used by [`Suite::par_map`]
    /// (1 = serial; output is byte-identical either way).
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Spills captured traces under `dir` and reloads them from there in
    /// later processes, skipping the functional simulation entirely.
    #[must_use]
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.traces = Arc::new(TraceStore::new().with_spill_dir(dir));
        self
    }

    /// Replaces the trace store wholesale (to share one across suites or
    /// to bound its memory differently).
    #[must_use]
    pub fn with_trace_store(mut self, traces: Arc<TraceStore>) -> Self {
        self.traces = traces;
        self
    }

    /// Runs predictor sweeps in **streaming** mode with a `blocks`-buffer
    /// block pool: the reference simulation feeds the fused replay
    /// kernel through a bounded channel ([`crate::replay::stream`]) and
    /// the trace is never materialised, so peak RSS stays independent of
    /// trace length. Results are bit-identical to batch mode. Consumers
    /// that need a full trace (profiling, ILP, trace export) still
    /// capture one through the [`TraceStore`] as before — full traces
    /// become an optional cache policy, not a requirement of the sweep.
    #[must_use]
    pub fn with_streaming(mut self, blocks: usize) -> Self {
        self.streaming = Some(blocks.max(crate::replay::stream::MIN_BLOCK_POOL));
        self
    }

    /// Number of training runs per workload.
    #[must_use]
    pub fn train_runs(&self) -> u32 {
        self.train_runs
    }

    /// Worker threads used by [`Suite::par_map`].
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Usage counters of the embedded trace store.
    #[must_use]
    pub fn trace_stats(&self) -> TraceStoreStats {
        self.traces.stats()
    }

    /// A handle on the embedded trace store (shared, so a mid-run
    /// sampler hook can snapshot its internally-consistent stats from a
    /// background thread).
    #[must_use]
    pub fn trace_store(&self) -> Arc<TraceStore> {
        Arc::clone(&self.traces)
    }

    /// Maps `f` over `items` on up to [`Suite::jobs`] threads, returning
    /// results in input order — the building block every experiment grid
    /// uses to fan out per-workload work deterministically.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        parallel_map(self.jobs, items, f)
    }

    /// The memoised retirement trace of `kind` under `input` (simulating
    /// at most once per key).
    ///
    /// # Panics
    ///
    /// Panics if the underlying simulation faults or a spilled trace is
    /// unreadable; the message carries the offending trace key.
    pub fn trace(&self, kind: WorkloadKind, input: InputSet) -> Arc<Trace> {
        self.traces
            .get(kind, input, self.limits)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn profile_once(&self, kind: WorkloadKind, input: &InputSet) -> ProfileImage {
        let _span = vp_obs::span("profile");
        let workload = Workload::new(kind);
        let program = workload.program(input);
        let mut collector = ProfileCollector::new(format!("{}/{input}", workload.name()));
        if input.is_reference() || self.traces.spill_dir().is_some() {
            // Reference traces have many consumers (profilers, predictor
            // configurations, ILP models) and training traces become
            // reusable across processes once a spill directory exists —
            // worth memoising either way.
            self.traces
                .replay_into(kind, *input, self.limits, &program, &mut collector)
                .unwrap_or_else(|e| panic!("{e}"));
        } else {
            // A training trace is consumed exactly once (its profile image
            // is what gets memoised), so recording it would cost memory
            // for nothing: simulate straight into the collector.
            run(&program, &mut collector, self.limits)
                .unwrap_or_else(|e| panic!("{} faulted while profiling: {e}", workload.name()));
        }
        collector.into_image()
    }

    /// Profile images of the training runs (phase 2), one per input.
    pub fn train_images(&self, kind: WorkloadKind) -> Vec<ProfileImage> {
        self.train_images.get_or_compute(kind, || {
            let inputs = InputSet::train_set(self.train_runs);
            self.par_map(&inputs, |input| self.profile_once(kind, input))
        })
    }

    /// The intersected-and-summed training profile the compiler consumes.
    pub fn merged_image(&self, kind: WorkloadKind) -> ProfileImage {
        let images = self.train_images(kind);
        let _span = vp_obs::span("merge");
        merge::intersect_and_sum(&images).image
    }

    /// A profile image of the held-out reference run (used by the
    /// Section 2 characterisation tables/figures).
    pub fn reference_image(&self, kind: WorkloadKind) -> ProfileImage {
        self.reference_images
            .get_or_compute(kind, || self.profile_once(kind, &InputSet::reference()))
    }

    /// For FP workloads: `(init, computation)` phase images of the
    /// reference run.
    ///
    /// # Panics
    ///
    /// Panics if the workload has no phase split (only `mgrid` does).
    pub fn reference_phase_images(&self, kind: WorkloadKind) -> (ProfileImage, ProfileImage) {
        self.phase_images.get_or_compute(kind, || {
            let w = Workload::new(kind);
            let split = w
                .phase_split()
                .unwrap_or_else(|| panic!("{kind} has no phase split"));
            let program = w.program(&InputSet::reference());
            let mut collector = ProfileCollector::with_phase_split(w.name().to_owned(), split);
            self.traces
                .replay_into(
                    kind,
                    InputSet::reference(),
                    self.limits,
                    &program,
                    &mut collector,
                )
                .unwrap_or_else(|e| panic!("{e}"));
            collector.into_phase_images()
        })
    }

    /// The phase-3 annotated binary (trained on the training inputs) plus
    /// the annotation report, for one accuracy threshold.
    pub fn annotated(&self, kind: WorkloadKind, threshold: f64) -> (Program, AnnotationSummary) {
        self.annotated
            .get_or_compute((kind, th_key(threshold)), || {
                let merged = self.merged_image(kind);
                let _span = vp_obs::span("annotate");
                let base = Workload::new(kind)
                    .program(&InputSet::train(0))
                    .without_directives();
                let out = annotate(&base, &merged, &ThresholdPolicy::new(threshold));
                (out.program().clone(), *out.summary())
            })
    }

    /// The reference-input program, carrying directives from the training
    /// profile when `threshold` is given (the evaluation configuration:
    /// train on training inputs, run on the reference input).
    pub fn reference_program(&self, kind: WorkloadKind, threshold: Option<f64>) -> Program {
        let fresh = Workload::new(kind).program(&InputSet::reference());
        match threshold {
            None => fresh,
            Some(th) => {
                let (tagged, _) = self.annotated(kind, th);
                fresh.with_directives(|addr, _| tagged.text()[addr.index() as usize].directive)
            }
        }
    }

    /// Runs the reference input through a predictor configuration and
    /// returns the predictor statistics. `threshold` selects the annotated
    /// binary (profile-guided classification) or the bare one (hardware
    /// classification).
    ///
    /// Directives never change execution, so every configuration replays
    /// the same memoised reference trace instead of re-simulating.
    pub fn predictor_stats(
        &self,
        kind: WorkloadKind,
        config: PredictorConfig,
        threshold: Option<f64>,
    ) -> PredictorStats {
        self.predictor_stats_matrix(kind, &[(config, threshold)])
            .pop()
            .expect("singleton matrix returns one cell")
    }

    /// [`Suite::predictor_stats`] for a whole sweep at once: every
    /// requested `(config, threshold)` cell of `kind`'s reference trace,
    /// in request order.
    ///
    /// Missing cells are computed by **one** fused [`ReplayRequest`]
    /// pass over the reference value stream — the memoised trace, or, in
    /// [`Suite::with_streaming`] mode, a live simulation feeding the
    /// kernel through a bounded channel (duplicate cells dedupe,
    /// already-memoised cells are reused) — so a 6-configuration ×
    /// 5-threshold sweep scans the stream once instead of 30 times.
    /// Results are bit-identical to per-cell [`Suite::predictor_stats`]
    /// calls in either mode.
    ///
    /// Observability is per *request*, exactly as for the singleton path:
    /// every returned cell folds its stats into the `predictor.*`
    /// counters and (with attribution enabled) records one attribution
    /// run, whether it was a memo hit or freshly computed — so
    /// attribution run totals stay in exact 1:1 agreement with the
    /// counters.
    pub fn predictor_stats_matrix(
        &self,
        kind: WorkloadKind,
        cells: &[(PredictorConfig, Option<f64>)],
    ) -> Vec<PredictorStats> {
        if cells.is_empty() {
            return Vec::new();
        }
        let results = self.sweep_cells(kind, cells);
        let mut grid = Vec::with_capacity(cells.len());
        for (&(config, threshold), result) in cells.iter().zip(&results) {
            if let Some(table) = &result.attribution {
                // Drift compares the Phase-2 training profile's promised
                // accuracy against what the reference replay observed;
                // merged_image is memoised, so this costs one lookup per
                // exported PC (outside the predict span either way).
                let top = crate::attribution::top_k().unwrap_or(0);
                let merged = self.merged_image(kind);
                crate::attribution::record(crate::attribution::run_from_table(
                    Workload::new(kind).name(),
                    &config.label(),
                    threshold,
                    table,
                    top,
                    |addr, directive| merged.get(addr).map(|p| p.profiled_accuracy(directive)),
                ));
            }
            vp_obs::gauge("predictor.occupancy.max").set_max(result.occupancy as u64);
            publish_predictor_metrics(&result.stats);
            grid.push(result.stats);
        }
        grid
    }

    /// Computes (and memoises) sweep cells for each of `kinds` without
    /// publishing any per-request observability — no `predictor.*`
    /// counters, no attribution runs. Later [`Suite::predictor_stats`] /
    /// [`Suite::predictor_stats_matrix`] requests for the primed cells
    /// become memo hits, so a driver like `repro-all` can fuse the whole
    /// paper sweep into one matrix pass per trace up front while every
    /// experiment still accounts its own requests exactly as before.
    pub fn prime_matrix(&self, kinds: &[WorkloadKind], cells: &[(PredictorConfig, Option<f64>)]) {
        if cells.is_empty() {
            return;
        }
        self.par_map(kinds, |&kind| {
            let _ = self.sweep_cells(kind, cells);
        });
    }

    /// Batch get-or-compute over the sweep memo: claims every cell of the
    /// request that nobody has computed or claimed, computes the claimed
    /// set with one fused matrix pass, and waits for cells claimed by
    /// other threads. Panic-safe: a claimer that dies releases its claims
    /// and waiters re-claim.
    fn sweep_cells(
        &self,
        kind: WorkloadKind,
        cells: &[(PredictorConfig, Option<f64>)],
    ) -> Vec<CellResult> {
        let keys: Vec<CellKey> = cells
            .iter()
            .map(|&(config, th)| (kind, config, th.map(th_key)))
            .collect();
        let mut results: Vec<Option<CellResult>> = vec![None; cells.len()];
        loop {
            // Under the lock: harvest finished cells, then claim every
            // remaining cell that is neither done nor running. Wait only
            // when something is missing and there is nothing to claim.
            let mut claimed: Vec<usize> = Vec::new();
            {
                let mut state = self.sweep.state.lock().expect("sweep memo poisoned");
                loop {
                    claimed.clear();
                    let mut all_done = true;
                    let mut claiming: HashSet<CellKey> = HashSet::new();
                    for (i, key) in keys.iter().enumerate() {
                        if results[i].is_some() {
                            continue;
                        }
                        if let Some(v) = state.done.get(key) {
                            results[i] = Some(v.clone());
                            continue;
                        }
                        all_done = false;
                        if claiming.contains(key) {
                            continue;
                        }
                        if state.running.insert(*key) {
                            claiming.insert(*key);
                            claimed.push(i);
                        }
                    }
                    if all_done {
                        return results.into_iter().map(|r| r.expect("filled")).collect();
                    }
                    if !claimed.is_empty() {
                        break;
                    }
                    state = self
                        .sweep
                        .available
                        .wait(state)
                        .expect("sweep memo poisoned");
                }
            }
            let guard = SweepRunningGuard {
                memo: &self.sweep,
                keys: claimed.iter().map(|&i| keys[i]).collect(),
            };
            let plan_cells: Vec<(PredictorConfig, Option<f64>)> =
                claimed.iter().map(|&i| cells[i]).collect();
            let computed = self.compute_matrix(kind, &plan_cells);
            let mut state = self.sweep.state.lock().expect("sweep memo poisoned");
            for (&i, result) in claimed.iter().zip(&computed) {
                state.done.insert(keys[i], result.clone());
                results[i] = Some(result.clone());
            }
            drop(state);
            drop(guard);
        }
    }

    /// One fused matrix pass over `kind`'s reference trace for `cells`
    /// (assumed distinct). Quiet: publishes nothing per cell — callers
    /// account requests themselves.
    fn compute_matrix(
        &self,
        kind: WorkloadKind,
        cells: &[(PredictorConfig, Option<f64>)],
    ) -> Vec<CellResult> {
        // Resolve each distinct threshold's annotated program into a
        // directive table of the plan (annotation/merge cost lands in
        // their own spans, outside `predict`).
        let mut plan = SweepPlan::new();
        let mut table_of: HashMap<Option<u32>, usize> = HashMap::new();
        let mut plan_tables = Vec::with_capacity(cells.len());
        for &(_, threshold) in cells {
            let key = threshold.map(th_key);
            let table = match table_of.get(&key) {
                Some(&t) => t,
                None => {
                    let program = self.reference_program(kind, threshold);
                    let t = plan.add_directives(&program);
                    table_of.insert(key, t);
                    t
                }
            };
            plan_tables.push(table);
        }
        for (&(config, _), &table) in cells.iter().zip(&plan_tables) {
            plan.add_cell(config, table);
        }
        {
            let mut state = self.sweep.state.lock().expect("sweep memo poisoned");
            if state.swept.insert(kind) {
                vp_obs::counter("replay.matrix_traces").add(1);
            }
        }
        let replay_panic = |source| -> ! {
            panic!(
                "{}",
                TraceError::Replay {
                    key: TraceKey::new(kind, InputSet::reference(), self.limits),
                    source,
                }
            )
        };
        // The attributed kernel is a separate code path inside the
        // request so that with attribution off the hot loop runs the
        // exact batched instruction stream (observation-only contract:
        // byte-identical stdout, negligible wall-clock delta).
        let attribution = crate::attribution::enabled();
        let response = if let Some(pool) = self.streaming {
            // Streaming: simulate the bare reference program (directive
            // annotations never influence execution — the plan's tables
            // carry them) and predict concurrently; no resident trace.
            let program = self.reference_program(kind, None);
            let _span = vp_obs::span("predict");
            let shards = crate::replay::auto_shards(self.jobs, usize::MAX);
            ReplayRequest::stream(&program, self.limits)
                .plan(plan)
                .attribution(attribution)
                .shards(shards)
                .block_pool(pool)
                .run()
                .unwrap_or_else(|source| replay_panic(source))
        } else {
            // Materialise (or fetch) the memoised trace outside the
            // predict phase: capture cost is accounted to its own
            // `capture` span.
            let trace = self.trace(kind, InputSet::reference());
            let _span = vp_obs::span("predict");
            let shards = crate::replay::auto_shards(self.jobs, trace.len());
            ReplayRequest::batch(&trace)
                .plan(plan)
                .attribution(attribution)
                .shards(shards)
                .jobs(self.jobs)
                .run()
                .unwrap_or_else(|source| replay_panic(source))
        };
        response
            .cells
            .into_iter()
            .map(|cell| CellResult {
                stats: cell.outcome.stats,
                occupancy: cell.outcome.occupancy,
                attribution: cell.attribution.map(Arc::new),
            })
            .collect()
    }

    /// Replays the reference input through the abstract ILP machine.
    pub fn ilp(&self, kind: WorkloadKind, config: IlpConfig, threshold: Option<f64>) -> IlpResult {
        let program = self.reference_program(kind, threshold);
        let mut analyzer = IlpAnalyzer::new(config);
        let _span = vp_obs::span("ilp");
        self.traces
            .replay_into(
                kind,
                InputSet::reference(),
                self.limits,
                &program,
                &mut analyzer,
            )
            .unwrap_or_else(|e| panic!("{e}"));
        analyzer.finish()
    }
}

/// Folds one run's predictor statistics into the process-wide
/// observability counters (table pressure + per-classification hit rates)
/// and marks allocation bursts in the event stream (an instant event per
/// run carrying that run's allocation count, so the Chrome trace shows
/// *which* predictor runs churned the table).
fn publish_predictor_metrics(stats: &PredictorStats) {
    if stats.allocations > 0 {
        vp_obs::events::instant("predictor.alloc_burst", stats.allocations);
    }
    vp_obs::counter("predictor.accesses").add(stats.accesses);
    vp_obs::counter("predictor.hits").add(stats.hits);
    vp_obs::counter("predictor.raw_correct").add(stats.raw_correct);
    vp_obs::counter("predictor.speculated").add(stats.speculated);
    vp_obs::counter("predictor.speculated_correct").add(stats.speculated_correct);
    vp_obs::counter("predictor.allocations").add(stats.allocations);
    vp_obs::counter("predictor.evictions").add(stats.evictions);
    vp_obs::counter("predictor.set_conflicts").add(stats.set_conflicts);
    vp_obs::counter("predictor.stride.accesses").add(stats.stride_accesses);
    vp_obs::counter("predictor.stride.correct").add(stats.stride_correct);
    vp_obs::counter("predictor.last_value.accesses").add(stats.last_value_accesses);
    vp_obs::counter("predictor.last_value.correct").add(stats.last_value_correct);
    vp_obs::counter("predictor.unclassified.accesses").add(stats.unclassified_accesses);
    vp_obs::counter("predictor.unclassified.correct").add(stats.unclassified_correct);
}

impl Default for Suite {
    fn default() -> Self {
        Suite::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_images_are_memoised() {
        let s = Suite::with_train_runs(2);
        let a = s.train_images(WorkloadKind::Compress);
        let b = s.train_images(WorkloadKind::Compress);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        // Training profiles are simulated straight into the collector
        // (their single consumer): nothing is recorded without a spill
        // directory asking for cross-process reuse.
        assert_eq!(s.trace_stats().requests, 0);
    }

    #[test]
    fn annotated_threshold_monotonicity() {
        let s = Suite::with_train_runs(2);
        let (_, strict) = s.annotated(WorkloadKind::Ijpeg, 0.9);
        let (_, lax) = s.annotated(WorkloadKind::Ijpeg, 0.5);
        assert!(lax.tagged() >= strict.tagged());
    }

    #[test]
    fn reference_program_carries_directives_only_when_asked() {
        let s = Suite::with_train_runs(2);
        let bare = s.reference_program(WorkloadKind::M88ksim, None);
        let tagged = s.reference_program(WorkloadKind::M88ksim, Some(0.9));
        assert_eq!(bare.directive_counts().1 + bare.directive_counts().2, 0);
        let (_, lv, st) = tagged.directive_counts();
        assert!(lv + st > 0, "m88ksim must have predictable instructions");
        // Same text modulo directives, reference data.
        assert_eq!(bare.len(), tagged.len());
        assert_eq!(bare.data(), tagged.data());
    }

    #[test]
    fn mgrid_phase_images_are_disjoint() {
        let s = Suite::with_train_runs(1);
        let (init, comp) = s.reference_phase_images(WorkloadKind::Mgrid);
        assert!(!init.is_empty() && !comp.is_empty());
        for (addr, _) in init.iter() {
            assert!(comp.get(addr).is_none(), "{addr} in both phases");
        }
    }

    #[test]
    fn reference_trace_is_simulated_once_across_consumers() {
        let s = Suite::with_train_runs(1);
        let kind = WorkloadKind::Compress;
        let _ = s.reference_image(kind);
        let _ = s.predictor_stats(kind, PredictorConfig::spec_table_stride_fsm(), None);
        let _ = s.predictor_stats(
            kind,
            PredictorConfig::spec_table_stride_profile(),
            Some(0.9),
        );
        let _ = s.ilp(kind, IlpConfig::paper_vp_fsm(), None);
        let stats = s.trace_stats();
        // The reference input is simulated exactly once; every further
        // consumer (predictor configurations, the ILP machine) replays
        // the memoised trace from memory.
        assert_eq!(stats.captures, 1);
        assert!(stats.memory_hits >= 3, "{stats:?}");
    }

    #[test]
    fn streaming_suite_matches_batch_suite() {
        let batch = Suite::with_train_runs(1);
        let streamed = Suite::with_train_runs(1).with_jobs(2).with_streaming(4);
        let kind = WorkloadKind::Compress;
        let cells = [
            (PredictorConfig::spec_table_stride_fsm(), None),
            (PredictorConfig::spec_table_stride_profile(), Some(0.9)),
        ];
        assert_eq!(
            batch.predictor_stats_matrix(kind, &cells),
            streamed.predictor_stats_matrix(kind, &cells),
        );
        // Streaming sweeps never materialise the reference trace.
        assert_eq!(streamed.trace_stats().captures, 0);
    }

    #[test]
    fn parallel_suite_matches_serial_suite() {
        let serial = Suite::with_train_runs(2);
        let threaded = Suite::with_train_runs(2).with_jobs(4);
        let kind = WorkloadKind::Ijpeg;
        assert_eq!(serial.train_images(kind), threaded.train_images(kind));
        assert_eq!(
            serial.predictor_stats(kind, PredictorConfig::spec_table_stride_fsm(), None),
            threaded.predictor_stats(kind, PredictorConfig::spec_table_stride_fsm(), None),
        );
    }
}
