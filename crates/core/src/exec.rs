//! A dependency-free parallel map over experiment grids.
//!
//! The evaluation fans out over a `workload x input x threshold` grid of
//! independent simulations. [`parallel_map`] runs such a grid on a small
//! pool of scoped threads (`std::thread::scope`; no external crates) while
//! keeping the output **deterministic**: results are re-ordered by input
//! index before they are returned, so a run with `jobs = 4` produces output
//! byte-identical to a serial run.
//!
//! Work distribution is a single shared atomic cursor (work stealing by
//! index), which keeps the schedule balanced regardless of how uneven the
//! per-item cost is; determinism comes from the re-ordering step, never
//! from the schedule.
//!
//! Each worker thread *adopts* the spawning thread's `vp_obs` span path,
//! so wall-clock recorded inside workers aggregates under the same
//! hierarchical phase as a serial run would produce — the observability
//! layer sees one `suite/profile` phase no matter how many threads
//! executed it.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

thread_local! {
    /// Set for the lifetime of a [`parallel_map`] worker thread.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is a [`parallel_map`] worker.
///
/// Nested fan-out (e.g. sharded predictor replay inside a per-workload
/// grid) consults this to degrade to a single shard instead of
/// oversubscribing the machine with `jobs²` threads; results are
/// unaffected because sharded replay is bit-identical at any shard count.
#[must_use]
pub fn in_worker() -> bool {
    IN_WORKER.with(Cell::get)
}

/// Marks the current thread as a worker for [`in_worker`]. The streaming
/// replay consumers (`crate::replay::stream`) call this on their threads
/// so code running inside them degrades nested fan-out exactly as it
/// would inside a [`parallel_map`] worker. The flag dies with the thread,
/// so it needs no reset.
pub(crate) fn mark_worker_thread() {
    IN_WORKER.with(|w| w.set(true));
}

/// Maps `f` over `items` on up to `jobs` threads, returning results in
/// input order.
///
/// `jobs <= 1` (or a single-item slice) degrades to a plain serial map on
/// the calling thread with no pool at all, so the serial path stays free
/// of synchronisation. Panics inside `f` are propagated to the caller
/// after all workers have stopped.
///
/// # Examples
///
/// ```
/// use provp_core::exec::parallel_map;
/// let squares = parallel_map(4, &[1, 2, 3, 4, 5], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// // Deterministic: identical to the serial result.
/// assert_eq!(squares, parallel_map(1, &[1, 2, 3, 4, 5], |&x| x * x));
/// ```
///
/// # Panics
///
/// Re-raises the first panic observed in a worker thread.
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs == 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let parent_span = vp_obs::span::current_path();
    let parts: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                let parent_span = parent_span.clone();
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    // Mark the thread so nested parallelism can detect it
                    // and stay serial (the thread dies with the scope, so
                    // the flag needs no reset).
                    IN_WORKER.with(|w| w.set(true));
                    // Timing recorded by this worker lands under the
                    // spawning thread's span hierarchy.
                    let _adopted = vp_obs::span::adopt(parent_span);
                    // Raw begin/end events (not spans: no new manifest
                    // phase rows) so the Chrome trace shows each worker
                    // thread's active interval on its own track.
                    let _worker = vp_obs::events::scope("worker");
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        out.push((i, f(item)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(part) => part,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut indexed: Vec<(usize, R)> = parts.into_iter().flatten().collect();
    indexed.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Picks a default worker count: the machine's available parallelism,
/// capped at 8 (the experiment grids rarely have more than 9 independent
/// rows in flight).
#[must_use]
pub fn default_jobs() -> usize {
    thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let serial = parallel_map(1, &items, |&x| x * 3 + 1);
        for jobs in [2, 4, 13] {
            assert_eq!(parallel_map(jobs, &items, |&x| x * 3 + 1), serial);
        }
    }

    #[test]
    fn handles_empty_and_oversubscribed() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(4, &empty, |&x| x).is_empty());
        assert_eq!(parallel_map(64, &[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_is_still_ordered() {
        // Make early items slow so late items finish first.
        let items: Vec<u64> = (0..16).collect();
        let out = parallel_map(4, &items, |&x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        parallel_map(2, &[1, 2, 3, 4], |&x| {
            assert!(x < 3, "boom");
            x
        });
    }

    #[test]
    fn worker_threads_are_marked() {
        assert!(!in_worker(), "caller thread is not a worker");
        let flags = parallel_map(4, &[0u8; 16], |_| in_worker());
        assert!(flags.iter().all(|&f| f), "all items ran on worker threads");
        // Serial degradation runs on the caller: no worker mark.
        let serial = parallel_map(1, &[0u8; 4], |_| in_worker());
        assert!(serial.iter().all(|&f| !f));
    }

    #[test]
    fn default_jobs_is_sane() {
        let j = default_jobs();
        assert!((1..=8).contains(&j));
    }
}
