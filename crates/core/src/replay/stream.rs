//! Streaming bounded-memory replay: simulate and predict concurrently.
//!
//! The batch path materialises a whole [`vp_sim::Trace`] before the fused
//! replay kernel touches it, so peak RSS grows with trace length even
//! though the paper's Phase-2 pass is conceptually a stream (the tracer
//! feeds the predictor one retired instruction at a time). This module
//! removes that coupling: a **producer** thread runs the simulation with
//! a [`ValueBlockTracer`] that packs destination writes into
//! [`vp_sim::VALUE_BLOCK`]-event columnar blocks, and `shards`
//! **consumer** threads replay those blocks through the same push-based
//! fused kernel the batch path uses ([`super::MatrixScanner`]).
//!
//! ## Bounded channel, fixed block pool
//!
//! Blocks travel through a hand-rolled broadcast channel backed by a
//! **fixed pool** of buffer pairs (`--block-pool=N`, default
//! [`DEFAULT_BLOCK_POOL`]): each submitted block is reference-counted out
//! to every attached consumer, and when the last consumer drops it the
//! buffers return to the free list for the producer to refill. When the
//! free list is empty the producer blocks inside [`Tracer::retire`] — the
//! simulation itself stalls until the slowest consumer catches up. There
//! is no unbounded queueing anywhere: live memory is `pool + 1` blocks
//! plus each consumer's [`MATRIX_BLOCK`]-event scratch, independent of
//! trace length.
//!
//! ## Bit-identical results
//!
//! Each consumer filters the broadcast stream down to its PC shard with
//! the same joint-modulus key the batch path uses, preserving per-shard
//! event order; the kernel re-accumulates its own
//! [`MATRIX_BLOCK`]-aligned chunks, so delivery block boundaries never
//! influence results. Streaming output is therefore bit-identical to
//! batch replay at any shard / block-pool combination — property-tested
//! here and in `tests/stream_replay.rs`, and fuzzed continuously by the
//! vp-verify oracle's streaming ≡ batch stage.
//!
//! ## Failure safety
//!
//! Producer and consumers guard each other with RAII: a consumer that
//! errors or panics detaches and drains its queue (so the producer can
//! never stall forever on a dead consumer), and the producer closes the
//! channel on exit — normal or panicked — so consumers always drain and
//! terminate.
//!
//! ## Observability
//!
//! Runs under a `"stream"` span and publishes `stream.blocks` (blocks
//! emitted), `stream.stalls` (submissions that found the pool empty) and
//! `stream.producer_wait_ms` (total time the simulation spent blocked on
//! backpressure), alongside the same `replay.*` counters the batch
//! engine feeds.
//!
//! [`Tracer::retire`]: vp_sim::Tracer::retire
//! [`MATRIX_BLOCK`]: super::MATRIX_BLOCK

use std::collections::VecDeque;
use std::io;
use std::mem;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Weak};
use std::thread;
use std::time::{Duration, Instant};

use vp_isa::{InstrAddr, Program};
use vp_predictor::{AttributionTable, PredictorStats};
use vp_sim::{RunLimits, ValueBlockSink, ValueBlockTracer};

use super::{
    dedupe_cells, joint_shard_modulus, matrix_scan, matrix_scan_attributed, ReplayOutcome,
    SweepPlan,
};

/// Default number of block-buffer pairs circulating between the producer
/// and the consumers. Eight blocks absorb ordinary consumer jitter
/// without letting the producer run far ahead.
pub const DEFAULT_BLOCK_POOL: usize = 8;

/// Smallest usable pool: one block in flight plus one being refilled.
/// Below this the producer and consumers would strictly alternate.
pub const MIN_BLOCK_POOL: usize = 2;

/// One filled block in flight. Holds a weak back-pointer to its channel
/// so that dropping the last reference returns the buffers to the pool.
struct BlockMsg {
    addrs: Vec<InstrAddr>,
    values: Vec<u64>,
    home: Weak<Channel>,
}

impl Drop for BlockMsg {
    fn drop(&mut self) {
        if let Some(channel) = self.home.upgrade() {
            let mut addrs = mem::take(&mut self.addrs);
            let mut values = mem::take(&mut self.values);
            addrs.clear();
            values.clear();
            {
                let mut state = channel.lock_state();
                state.free.push((addrs, values));
            }
            channel.space.notify_all();
        }
    }
}

struct ChannelState {
    /// Recycled empty buffer pairs the producer may refill.
    free: Vec<(Vec<InstrAddr>, Vec<u64>)>,
    /// Per-consumer queues of in-flight blocks (broadcast: every attached
    /// consumer sees every block).
    queues: Vec<VecDeque<Arc<BlockMsg>>>,
    /// Consumers that have detached (finished early, errored, panicked);
    /// the producer stops queueing to them.
    detached: Vec<bool>,
    /// Set once the producer is done (or died); consumers drain and stop.
    closed: bool,
}

/// The bounded broadcast channel between one producer and `consumers`
/// shard consumers, backed by a fixed pool of `pool` buffer pairs.
struct Channel {
    state: Mutex<ChannelState>,
    /// Signalled when a buffer pair returns to the free list.
    space: Condvar,
    /// Signalled when a block is queued or the channel closes.
    data: Condvar,
}

impl Channel {
    fn new(consumers: usize, pool: usize) -> Arc<Channel> {
        // The producer's tracer owns one pair from the start, so the free
        // list begins with `pool - 1`: total circulating pairs == pool.
        let free = (1..pool)
            .map(|_| {
                (
                    Vec::with_capacity(vp_sim::VALUE_BLOCK),
                    Vec::with_capacity(vp_sim::VALUE_BLOCK),
                )
            })
            .collect();
        Arc::new(Channel {
            state: Mutex::new(ChannelState {
                free,
                queues: (0..consumers).map(|_| VecDeque::new()).collect(),
                detached: vec![false; consumers],
                closed: false,
            }),
            space: Condvar::new(),
            data: Condvar::new(),
        })
    }

    /// Locks the state; a poisoned lock is impossible by construction (no
    /// code panics while holding it), but recover anyway so a consumer
    /// panic can never wedge the producer behind a poisoned mutex.
    fn lock_state(&self) -> MutexGuard<'_, ChannelState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Blocks until consumer `index` has a block or the channel closed.
    fn recv(&self, index: usize) -> Option<Arc<BlockMsg>> {
        let mut state = self.lock_state();
        loop {
            if let Some(msg) = state.queues[index].pop_front() {
                return Some(msg);
            }
            if state.closed {
                return None;
            }
            state = self
                .data
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// The producer half: a [`ValueBlockSink`] that broadcasts each full
/// block into the channel and blocks for a recycled pair when the pool
/// runs dry (the backpressure stall).
struct StreamSink {
    channel: Arc<Channel>,
    blocks: u64,
    stalls: u64,
    waited: Duration,
}

impl StreamSink {
    fn new(channel: Arc<Channel>) -> Self {
        StreamSink {
            channel,
            blocks: 0,
            stalls: 0,
            waited: Duration::ZERO,
        }
    }
}

impl ValueBlockSink for StreamSink {
    fn submit(&mut self, addrs: Vec<InstrAddr>, values: Vec<u64>) -> (Vec<InstrAddr>, Vec<u64>) {
        self.blocks += 1;
        let msg = Arc::new(BlockMsg {
            addrs,
            values,
            home: Arc::downgrade(&self.channel),
        });
        {
            let mut guard = self.channel.lock_state();
            let state = &mut *guard;
            for (queue, &detached) in state.queues.iter_mut().zip(&state.detached) {
                if !detached {
                    queue.push_back(Arc::clone(&msg));
                }
            }
        }
        self.channel.data.notify_all();
        // Drop our reference *outside* the lock: if every consumer is
        // already detached we are the last owner, and `BlockMsg::drop`
        // re-locks the channel to recycle the buffers.
        drop(msg);

        let mut state = self.channel.lock_state();
        if state.free.is_empty() {
            self.stalls += 1;
            let started = Instant::now();
            while state.free.is_empty() {
                state = self
                    .channel
                    .space
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            self.waited += started.elapsed();
        }
        state.free.pop().expect("free pair after wait")
    }
}

/// Detaches consumer `index` on drop — normal exit, error, or panic —
/// draining its queue so the producer can never stall on it again. The
/// queued messages are dropped *outside* the lock (their `Drop` re-locks
/// the channel to recycle buffers).
struct DetachGuard<'c> {
    channel: &'c Channel,
    index: usize,
}

impl Drop for DetachGuard<'_> {
    fn drop(&mut self) {
        let drained = {
            let mut state = self.channel.lock_state();
            state.detached[self.index] = true;
            mem::take(&mut state.queues[self.index])
        };
        drop(drained);
    }
}

/// Closes the channel on drop so consumers drain and terminate even if
/// the producer's simulation errored or panicked.
struct CloseGuard<'c> {
    channel: &'c Channel,
}

impl Drop for CloseGuard<'_> {
    fn drop(&mut self) {
        self.channel.lock_state().closed = true;
        self.channel.data.notify_all();
    }
}

/// Iterator over the value events belonging to one consumer's PC shard:
/// pulls broadcast blocks from the channel and filters them by the joint
/// shard key, preserving per-shard event order exactly as the batch
/// path's [`vp_sim::TraceColumns::shard_by_pc`] view does.
struct ShardEvents<'c> {
    channel: &'c Channel,
    index: usize,
    shards: u64,
    modulus: Option<u64>,
    block: Option<(Arc<BlockMsg>, usize)>,
}

impl Iterator for ShardEvents<'_> {
    type Item = (InstrAddr, u64);

    fn next(&mut self) -> Option<(InstrAddr, u64)> {
        loop {
            if let Some((msg, pos)) = &mut self.block {
                while *pos < msg.addrs.len() {
                    let addr = msg.addrs[*pos];
                    let value = msg.values[*pos];
                    *pos += 1;
                    let key = match self.modulus {
                        Some(g) => u64::from(addr.index()) % g,
                        None => u64::from(addr.index()),
                    };
                    if key % self.shards == self.index as u64 {
                        return Some((addr, value));
                    }
                }
                // Exhausted: release the block (may recycle its buffers).
                self.block = None;
            }
            match self.channel.recv(self.index) {
                Some(msg) => self.block = Some((msg, 0)),
                None => return None,
            }
        }
    }
}

/// What the producer reports back besides success/failure.
struct ProducerStats {
    blocks: u64,
    stalls: u64,
    waited: Duration,
}

/// Spawns the producer (simulation) and `shards` consumers, runs `scan`
/// over each consumer's filtered event stream, and returns the per-shard
/// results in shard order.
fn run_streamed<T, F>(
    program: &Program,
    limits: RunLimits,
    shards: usize,
    pool: usize,
    modulus: Option<u64>,
    scan: F,
) -> io::Result<Vec<T>>
where
    T: Send,
    F: Fn(ShardEvents<'_>) -> io::Result<T> + Sync,
{
    let shards = shards.max(1);
    let pool = pool.max(MIN_BLOCK_POOL);
    let channel = Channel::new(shards, pool);
    let parent_span = vp_obs::span::current_path();

    let (producer, consumers) = thread::scope(|scope| {
        let channel = &channel;
        let scan = &scan;
        let consumer_handles: Vec<_> = (0..shards)
            .map(|index| {
                let parent_span = parent_span.clone();
                scope.spawn(move || {
                    crate::exec::mark_worker_thread();
                    let _adopted = vp_obs::span::adopt(parent_span);
                    let _worker = vp_obs::events::scope("worker");
                    let _detach = DetachGuard { channel, index };
                    scan(ShardEvents {
                        channel,
                        index,
                        shards: shards as u64,
                        modulus,
                        block: None,
                    })
                })
            })
            .collect();

        let producer_handle = scope.spawn(move || {
            let _adopted = vp_obs::span::adopt(parent_span.clone());
            let _worker = vp_obs::events::scope("producer");
            let _close = CloseGuard { channel };
            let mut tracer = ValueBlockTracer::new(StreamSink::new(Arc::clone(channel)));
            let outcome = vp_sim::run(program, &mut tracer, limits);
            let sink = tracer.finish();
            outcome.map(|_| ProducerStats {
                blocks: sink.blocks,
                stalls: sink.stalls,
                waited: sink.waited,
            })
        });

        let producer = match producer_handle.join() {
            Ok(result) => result,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        let consumers: Vec<io::Result<T>> = consumer_handles
            .into_iter()
            .map(|handle| match handle.join() {
                Ok(result) => result,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect();
        (producer, consumers)
    });

    let stats = producer.map_err(io::Error::other)?;
    vp_obs::counter("stream.blocks").add(stats.blocks);
    vp_obs::counter("stream.stalls").add(stats.stalls);
    vp_obs::counter("stream.producer_wait_ms").add(stats.waited.as_millis() as u64);
    vp_obs::counter("replay.shards").add(shards as u64);
    consumers.into_iter().collect()
}

/// The streaming fused engine behind [`super::ReplayRequest::run`]
/// (plain variant): simulate `program` once, replay every plan cell
/// concurrently, never materialise the trace.
pub(crate) fn stream_matrix(
    program: &Program,
    limits: RunLimits,
    plan: &SweepPlan,
    shards: usize,
    pool: usize,
) -> io::Result<Vec<ReplayOutcome>> {
    let _span = vp_obs::span("stream");
    let (slots, slot_of) = dedupe_cells(plan.cells());
    vp_obs::counter("replay.matrix_passes").add(1);
    vp_obs::counter("replay.fused_cells").add(slots.len() as u64);
    let shards = shards.max(1);
    let modulus = joint_shard_modulus(&slots);
    let tables = plan.tables();

    let parts = run_streamed(program, limits, shards, pool, modulus, |events| {
        matrix_scan(events, tables, &slots)
    })?;

    let mut merged = vec![(PredictorStats::new(), 0usize); slots.len()];
    for per_slot in parts {
        for (acc, part) in merged.iter_mut().zip(per_slot) {
            acc.0.merge(&part.0);
            acc.1 += part.1;
        }
    }
    Ok(slot_of
        .iter()
        .map(|&s| ReplayOutcome {
            stats: merged[s].0,
            occupancy: merged[s].1,
            shards,
        })
        .collect())
}

/// The streaming fused engine (attributed variant).
pub(crate) fn stream_matrix_attributed(
    program: &Program,
    limits: RunLimits,
    plan: &SweepPlan,
    shards: usize,
    pool: usize,
) -> io::Result<Vec<(ReplayOutcome, AttributionTable)>> {
    let _span = vp_obs::span("stream");
    let (slots, slot_of) = dedupe_cells(plan.cells());
    vp_obs::counter("replay.matrix_passes").add(1);
    vp_obs::counter("replay.fused_cells").add(slots.len() as u64);
    let shards = shards.max(1);
    let modulus = joint_shard_modulus(&slots);
    let tables = plan.tables();

    let parts = run_streamed(program, limits, shards, pool, modulus, |events| {
        matrix_scan_attributed(events, tables, &slots)
    })?;

    let mut merged: Vec<(PredictorStats, usize, AttributionTable)> = slots
        .iter()
        .map(|_| (PredictorStats::new(), 0usize, AttributionTable::new()))
        .collect();
    for per_slot in parts {
        for (acc, (stats, occupancy, table)) in merged.iter_mut().zip(per_slot) {
            acc.0.merge(&stats);
            acc.1 += occupancy;
            acc.2.merge(&table);
        }
    }
    Ok(slot_of
        .iter()
        .map(|&s| {
            let (stats, occupancy, ref table) = merged[s];
            (
                ReplayOutcome {
                    stats,
                    occupancy,
                    shards,
                },
                table.clone(),
            )
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::ReplayRequest;
    use vp_isa::asm::assemble;
    use vp_predictor::PredictorConfig;
    use vp_sim::Trace;

    fn sample() -> Program {
        assemble(
            "li r1, 0\nli r2, 3000\n\
             top: addi.st r1, r1, 1\nadd r3, r1, r1\nbne r1, r2, top\nhalt\n",
        )
        .unwrap()
    }

    #[test]
    fn streaming_matches_batch_across_pools_and_shards() {
        let p = sample();
        let limits = RunLimits::default();
        let trace = Trace::capture(&p, limits).unwrap();
        let cfg = PredictorConfig::spec_table_stride_fsm();
        let batch = ReplayRequest::batch(&trace)
            .single(&p, cfg)
            .run()
            .unwrap()
            .into_single();
        for shards in [1usize, 3, 4] {
            for pool in [MIN_BLOCK_POOL, DEFAULT_BLOCK_POOL] {
                let streamed = ReplayRequest::stream(&p, limits)
                    .single(&p, cfg)
                    .shards(shards)
                    .block_pool(pool)
                    .run()
                    .unwrap()
                    .into_single();
                assert_eq!(
                    streamed.outcome.stats, batch.outcome.stats,
                    "diverged at {shards} shards / pool {pool}"
                );
                assert_eq!(streamed.outcome.occupancy, batch.outcome.occupancy);
                assert_eq!(streamed.outcome.shards, shards);
            }
        }
    }

    /// A deliberately slow consumer must stall the producer (bounded
    /// pool, no unbounded queueing) and still observe every event in
    /// order — the starvation/backpressure stress test.
    #[test]
    fn slow_consumer_applies_backpressure_without_loss() {
        let channel = Channel::new(1, MIN_BLOCK_POOL);
        let blocks = 16usize;
        let per_block = 4usize;
        let (stats, seen) = thread::scope(|scope| {
            let consumer = {
                let channel = Arc::clone(&channel);
                scope.spawn(move || {
                    let _detach = DetachGuard {
                        channel: &channel,
                        index: 0,
                    };
                    let mut seen: Vec<(InstrAddr, u64)> = Vec::new();
                    while let Some(msg) = channel.recv(0) {
                        // Slow consumer: hold the block while the
                        // producer races ahead into the pool limit.
                        thread::sleep(Duration::from_millis(2));
                        seen.extend(msg.addrs.iter().copied().zip(msg.values.iter().copied()));
                    }
                    seen
                })
            };
            let producer = {
                let channel = Arc::clone(&channel);
                scope.spawn(move || {
                    let _close = CloseGuard { channel: &channel };
                    let mut sink = StreamSink::new(Arc::clone(&channel));
                    let (mut addrs, mut values) = (Vec::new(), Vec::new());
                    for b in 0..blocks {
                        addrs.clear();
                        values.clear();
                        for e in 0..per_block {
                            addrs.push(InstrAddr::new((b * per_block + e) as u32));
                            values.push((b * per_block + e) as u64);
                        }
                        (addrs, values) = sink.submit(addrs, values);
                    }
                    ProducerStats {
                        blocks: sink.blocks,
                        stalls: sink.stalls,
                        waited: sink.waited,
                    }
                })
            };
            (producer.join().unwrap(), consumer.join().unwrap())
        });
        assert_eq!(stats.blocks, blocks as u64);
        assert!(
            stats.stalls > 0,
            "a 2-block pool against a sleeping consumer must stall"
        );
        assert!(stats.waited > Duration::ZERO);
        let expected: Vec<(InstrAddr, u64)> = (0..blocks * per_block)
            .map(|i| (InstrAddr::new(i as u32), i as u64))
            .collect();
        assert_eq!(seen, expected, "every event delivered, in order");
    }

    /// A consumer that dies early must not wedge the producer: the
    /// detach guard drains its queue and hands the buffers back.
    #[test]
    fn detached_consumer_never_blocks_the_producer() {
        let channel = Channel::new(1, MIN_BLOCK_POOL);
        thread::scope(|scope| {
            {
                let channel = Arc::clone(&channel);
                scope.spawn(move || {
                    let _detach = DetachGuard {
                        channel: &channel,
                        index: 0,
                    };
                    // Take one block, then bail (simulates an error path).
                    let _ = channel.recv(0);
                });
            }
            let channel = Arc::clone(&channel);
            let producer = scope.spawn(move || {
                let _close = CloseGuard { channel: &channel };
                let mut sink = StreamSink::new(Arc::clone(&channel));
                let (mut addrs, mut values) = (Vec::new(), Vec::new());
                // Far more blocks than the pool holds: would deadlock if
                // the dead consumer's queue pinned buffers.
                for i in 0..64u32 {
                    addrs.clear();
                    values.clear();
                    addrs.push(InstrAddr::new(i));
                    values.push(u64::from(i));
                    (addrs, values) = sink.submit(addrs, values);
                }
                sink.blocks
            });
            assert_eq!(producer.join().unwrap(), 64);
        });
    }

    #[test]
    fn budget_exhausted_streams_match_batch() {
        // An endless loop truncated by the instruction budget: the
        // streamed event prefix must equal the captured one.
        let p = assemble("li r1, 0\ntop: addi r1, r1, 1\nbeq r0, r0, top\nhalt\n").unwrap();
        let limits = RunLimits::with_max(10_000);
        let cfg = PredictorConfig::spec_table_stride_fsm();
        let streamed = ReplayRequest::stream(&p, limits)
            .single(&p, cfg)
            .run()
            .unwrap()
            .into_single();
        let trace = Trace::capture(&p, limits).unwrap();
        let batch = ReplayRequest::batch(&trace)
            .single(&p, cfg)
            .run()
            .unwrap()
            .into_single();
        assert_eq!(streamed.outcome.stats, batch.outcome.stats);
    }

    #[test]
    fn foreign_program_errors_do_not_hang_the_stream() {
        // The plan's directive table comes from a one-instruction
        // program, but the simulated program touches more PCs: every
        // consumer errors on the first out-of-range event. The stream
        // must surface the error, not deadlock.
        let p = sample();
        let other = assemble("halt\n").unwrap();
        let err = ReplayRequest::stream(&p, RunLimits::default())
            .single(&other, PredictorConfig::spec_table_stride_fsm())
            .shards(2)
            .block_pool(MIN_BLOCK_POOL)
            .run()
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
