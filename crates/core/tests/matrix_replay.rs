//! Property tests for the fused sweep-matrix replay: for arbitrary
//! traces, cell sets, shard counts and job counts, every cell of
//! [`provp_core::replay_matrix`]'s grid must be **bit-identical** to an
//! independent per-cell [`provp_core::replay_predictor`] run — including
//! plans with duplicate cells and multiple directive-annotation tables.
//!
//! The generators mirror `sharded_replay.rs`: value streams mixing
//! repeats, constant strides and noise so every classifier gets driven
//! through its transition graph, and programs whose directives vary per
//! static instruction so directive-routed cells do not degenerate.

// These suites deliberately pin the deprecated pre-ReplayRequest entry
// points: they are kept as thin wrappers and must stay bit-identical to
// the builder until removal (see DESIGN.md deprecation policy).
#![allow(deprecated)]

use provp_core::{
    replay_matrix, replay_matrix_attributed, replay_predictor, replay_predictor_attributed, Suite,
    SweepPlan,
};
use vp_isa::asm::assemble;
use vp_isa::{InstrAddr, Program, Reg, RegClass};
use vp_predictor::{ClassifierKind, PredictorConfig, TableGeometry};
use vp_rng::{prop, Rng};
use vp_sim::{Trace, TraceEvent};
use vp_workloads::WorkloadKind;

/// A program of `n` value producers whose directives cycle
/// none → stride → last-value per static instruction, plus a `halt`.
fn program_with(n: u32) -> Program {
    let mut src = String::new();
    for i in 0..n {
        let suffix = match i % 3 {
            0 => "",
            1 => ".st",
            _ => ".lv",
        };
        src.push_str(&format!("addi{suffix} r1, r1, 1\n"));
    }
    src.push_str("halt\n");
    assemble(&src).expect("synthetic program assembles")
}

/// `len` destination-writing events over `n_static` static addresses,
/// each value a repeat, a constant-stride step or fresh noise.
fn arb_events(rng: &mut Rng, n_static: u32, len: usize) -> Vec<TraceEvent> {
    let mut last = vec![0u64; n_static as usize];
    (0..len)
        .map(|_| {
            let a = rng.gen_range(0..n_static);
            let value = match rng.gen_range(0..4u32) {
                0 => last[a as usize],
                1 | 2 => last[a as usize].wrapping_add(8),
                _ => rng.gen_u64(),
            };
            last[a as usize] = value;
            TraceEvent {
                addr: InstrAddr::new(a),
                dest: Some((RegClass::Int, Reg::new(rng.gen_range(0..32u8)), value)),
                mem: None,
                stored: None,
                taken: None,
                next_pc: InstrAddr::new((a + 1) % n_static.max(1)),
            }
        })
        .collect()
}

fn arb_geometry(rng: &mut Rng) -> TableGeometry {
    let ways = 1usize << rng.gen_range(0..3u32); // 1, 2 or 4 ways
    let sets = rng.gen_range(2..33usize); // incl. non-power-of-two set counts
    TableGeometry::new(sets * ways, ways)
}

fn arb_config(rng: &mut Rng) -> PredictorConfig {
    let classifier = match rng.gen_range(0..3u32) {
        0 => ClassifierKind::two_bit_counter(),
        1 => ClassifierKind::Directive,
        _ => ClassifierKind::Always,
    };
    match rng.gen_range(0..6u32) {
        0 => PredictorConfig::InfiniteStride { classifier },
        1 => PredictorConfig::InfiniteLastValue { classifier },
        2 => PredictorConfig::TableStride {
            geometry: arb_geometry(rng),
            classifier,
        },
        3 => PredictorConfig::TableLastValue {
            geometry: arb_geometry(rng),
            classifier,
        },
        4 => PredictorConfig::TableTwoDelta {
            geometry: arb_geometry(rng),
            classifier,
        },
        _ => PredictorConfig::Hybrid {
            stride: arb_geometry(rng),
            last_value: arb_geometry(rng),
        },
    }
}

/// A fixed panel spanning every configuration shape (for the
/// deterministic tests).
fn panel() -> Vec<PredictorConfig> {
    let fsm = ClassifierKind::two_bit_counter();
    vec![
        PredictorConfig::spec_table_stride_fsm(),
        PredictorConfig::spec_table_stride_profile(),
        PredictorConfig::InfiniteStride { classifier: fsm },
        PredictorConfig::InfiniteLastValue {
            classifier: ClassifierKind::Always,
        },
        PredictorConfig::TableTwoDelta {
            geometry: TableGeometry::new(12, 2),
            classifier: ClassifierKind::Directive,
        },
        PredictorConfig::Hybrid {
            stride: TableGeometry::new(4, 2),
            last_value: TableGeometry::new(8, 2),
        },
    ]
}

/// A deterministic mixed trace + the tagged and stripped programs.
fn fixture() -> (Trace, Program, Program) {
    let mut rng = Rng::seed_from_u64(7);
    let program = program_with(60);
    let stripped = program.without_directives();
    let trace = Trace::from_events(arb_events(&mut rng, 60, 4_000));
    (trace, program, stripped)
}

#[test]
fn empty_plan_yields_an_empty_grid() {
    let (trace, program, _) = fixture();
    let mut plan = SweepPlan::new();
    plan.add_directives(&program);
    assert!(plan.is_empty());
    let grid = replay_matrix(&trace, &plan, 4, 2).expect("matrix");
    assert!(grid.is_empty());
    let grid = replay_matrix_attributed(&trace, &plan, 4, 2).expect("matrix");
    assert!(grid.is_empty());
}

#[test]
fn singleton_plan_matches_replay_predictor() {
    let (trace, program, _) = fixture();
    for config in panel() {
        let mut plan = SweepPlan::new();
        let table = plan.add_directives(&program);
        plan.add_cell(config, table);
        let fused = replay_matrix(&trace, &plan, 1, 1).expect("matrix");
        let cell = replay_predictor(&trace, &program, &config, 1, 1).expect("replay");
        assert_eq!(fused.len(), 1);
        assert_eq!(fused[0].stats, cell.stats, "{}", config.label());
        assert_eq!(fused[0].occupancy, cell.occupancy, "{}", config.label());
    }
}

#[test]
fn duplicate_cells_all_receive_the_shared_outcome() {
    let (trace, program, _) = fixture();
    let config = PredictorConfig::spec_table_stride_fsm();
    let mut plan = SweepPlan::new();
    let table = plan.add_directives(&program);
    for _ in 0..3 {
        plan.add_cell(config, table);
    }
    // Registering an identical annotation again reuses the same table,
    // so these cells dedupe with the three above as well.
    let again = plan.add_directives(&program);
    assert_eq!(again, table, "identical annotation tables must collapse");
    plan.add_cell(config, again);
    let expected = replay_predictor(&trace, &program, &config, 1, 1).expect("replay");
    let fused = replay_matrix(&trace, &plan, 2, 2).expect("matrix");
    assert_eq!(fused.len(), 4, "every requested cell gets an outcome");
    for out in &fused {
        assert_eq!(out.stats, expected.stats);
        assert_eq!(out.occupancy, expected.occupancy);
    }
}

#[test]
fn mixed_plan_is_shard_and_job_invariant() {
    let (trace, program, stripped) = fixture();
    let mut plan = SweepPlan::new();
    let tagged = plan.add_directives(&program);
    let bare = plan.add_directives(&stripped);
    assert_ne!(tagged, bare, "distinct annotations keep distinct tables");
    // (config, table, per-cell reference program) across both tables.
    let mut cells: Vec<(PredictorConfig, usize, &Program)> = Vec::new();
    for config in panel() {
        cells.push((config, tagged, &program));
        cells.push((config, bare, &stripped));
    }
    for &(config, table, _) in &cells {
        plan.add_cell(config, table);
    }
    let expected: Vec<_> = cells
        .iter()
        .map(|(config, _, p)| replay_predictor(&trace, p, config, 1, 1).expect("replay"))
        .collect();
    for shards in [1usize, 2, 4, 8] {
        for jobs in [1usize, 4] {
            let fused = replay_matrix(&trace, &plan, shards, jobs).expect("matrix");
            assert_eq!(fused.len(), cells.len());
            for (i, (out, exp)) in fused.iter().zip(&expected).enumerate() {
                assert_eq!(
                    out.stats,
                    exp.stats,
                    "cell {i} ({}) diverged at {shards} shards / {jobs} jobs",
                    cells[i].0.label()
                );
                assert_eq!(out.occupancy, exp.occupancy, "cell {i}");
            }
        }
    }
}

#[test]
fn attributed_matrix_matches_attributed_per_cell_replay() {
    let (trace, program, stripped) = fixture();
    let mut plan = SweepPlan::new();
    let tagged = plan.add_directives(&program);
    let bare = plan.add_directives(&stripped);
    let cells: Vec<(PredictorConfig, usize, &Program)> = vec![
        (PredictorConfig::spec_table_stride_fsm(), tagged, &program),
        (
            PredictorConfig::spec_table_stride_profile(),
            tagged,
            &program,
        ),
        (
            PredictorConfig::spec_table_stride_profile(),
            bare,
            &stripped,
        ),
    ];
    for &(config, table, _) in &cells {
        plan.add_cell(config, table);
    }
    for shards in [1usize, 3] {
        let fused = replay_matrix_attributed(&trace, &plan, shards, 2).expect("matrix");
        assert_eq!(fused.len(), cells.len());
        for (i, ((out, table), (config, _, p))) in fused.iter().zip(&cells).enumerate() {
            let (exp_out, exp_table) =
                replay_predictor_attributed(&trace, p, config, 1, 1).expect("replay");
            assert_eq!(out.stats, exp_out.stats, "cell {i} at {shards} shards");
            assert_eq!(out.occupancy, exp_out.occupancy, "cell {i}");
            assert_eq!(*table, exp_table, "cell {i} attribution table");
            table
                .reconcile(&out.stats)
                .expect("attribution totals reconcile with the fused stats");
        }
    }
}

#[test]
fn prop_fused_matrix_is_bit_identical_to_per_cell_replay() {
    prop::forall("fused matrix == per-cell replays", |rng| {
        let n_static = rng.gen_range(4..120u32);
        let len = rng.gen_range(50..1200usize);
        let events = arb_events(rng, n_static, len);
        let n_cells = rng.gen_range(1..7usize);
        let configs: Vec<PredictorConfig> = (0..n_cells).map(|_| arb_config(rng)).collect();
        // Duplicate a random cell half the time to keep dedup honest.
        let dup = (rng.gen_range(0..2u32) == 0).then(|| rng.gen_range(0..n_cells));
        let shards = rng.gen_range(1..9usize);
        let jobs = rng.gen_range(1..5usize);
        (n_static, events, configs, dup, shards, jobs)
    })
    .cases(32)
    .check(|(n_static, events, configs, dup, shards, jobs)| {
        let program = program_with(*n_static);
        let stripped = program.without_directives();
        let trace = Trace::from_events(events.clone());
        let mut plan = SweepPlan::new();
        let tagged = plan.add_directives(&program);
        let bare = plan.add_directives(&stripped);
        // Alternate cells between the two annotation tables.
        let mut cells: Vec<(PredictorConfig, usize, &Program)> = configs
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                if i % 2 == 0 {
                    (c, tagged, &program)
                } else {
                    (c, bare, &stripped)
                }
            })
            .collect();
        if let Some(i) = dup {
            cells.push(cells[*i]);
        }
        for &(config, table, _) in &cells {
            plan.add_cell(config, table);
        }
        let fused = replay_matrix(&trace, &plan, *shards, *jobs).expect("matrix");
        assert_eq!(fused.len(), cells.len());
        for (i, (out, (config, _, p))) in fused.iter().zip(&cells).enumerate() {
            let exp = replay_predictor(&trace, p, config, 1, 1).expect("replay");
            assert_eq!(
                out.stats,
                exp.stats,
                "cell {i} ({}) diverged at {shards} shards / {jobs} jobs",
                config.label()
            );
            assert_eq!(out.occupancy, exp.occupancy, "cell {i}");
        }
    });
}

#[test]
fn suite_matrix_matches_per_cell_requests_and_is_job_invariant() {
    let kind = WorkloadKind::Compress;
    let cells = [
        (PredictorConfig::spec_table_stride_fsm(), None),
        (PredictorConfig::spec_table_stride_profile(), Some(0.9)),
        (PredictorConfig::spec_table_stride_profile(), Some(0.7)),
        // A duplicate request-cell: answered like its twin.
        (PredictorConfig::spec_table_stride_profile(), Some(0.9)),
    ];
    let suite = Suite::with_train_runs(2);
    let grid = suite.predictor_stats_matrix(kind, &cells);
    assert_eq!(grid.len(), cells.len());
    assert_eq!(grid[1], grid[3], "duplicate request-cells share a result");
    for (i, &(config, threshold)) in cells.iter().enumerate() {
        // The memoised per-cell path must agree with the fused grid.
        assert_eq!(
            suite.predictor_stats(kind, config, threshold),
            grid[i],
            "cell {i}"
        );
    }
    // A parallel suite computes the identical grid.
    let parallel = Suite::with_train_runs(2).with_jobs(4);
    assert_eq!(parallel.predictor_stats_matrix(kind, &cells), grid);
    // The empty request stays empty.
    assert!(suite.predictor_stats_matrix(kind, &[]).is_empty());
}
