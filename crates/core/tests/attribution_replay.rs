//! Property tests for the attributed predictor replay: for arbitrary
//! traces, predictor configurations and shard/job counts, the per-PC
//! [`vp_predictor::AttributionTable`] must be **bit-identical** between
//! `jobs=1` and `jobs=8` (and any shard refinement in between), the
//! attributed replay must leave [`vp_predictor::PredictorStats`]
//! untouched (observation-only), and the table's totals must reconcile
//! *exactly* with the stats — every access accounted, every raw miss
//! charged to exactly one cause.
//!
//! The generators mirror `sharded_replay.rs`: value streams mixing
//! repeats, constant strides and noise across all six predictor
//! configuration families, with directives varying per static
//! instruction so the directive-routed causes (`class-mismatch`,
//! `uncovered`) are exercised too.

// These suites deliberately pin the deprecated pre-ReplayRequest entry
// points: they are kept as thin wrappers and must stay bit-identical to
// the builder until removal (see DESIGN.md deprecation policy).
#![allow(deprecated)]

use provp_core::{replay_predictor, replay_predictor_attributed};
use vp_isa::asm::assemble;
use vp_isa::{InstrAddr, Program, Reg, RegClass};
use vp_predictor::{ClassifierKind, PredictorConfig, TableGeometry};
use vp_rng::{prop, Rng};
use vp_sim::{Trace, TraceEvent};

/// A program of `n` value producers whose directives cycle
/// none → stride → last-value per static instruction, plus a `halt`.
fn program_with(n: u32) -> Program {
    let mut src = String::new();
    for i in 0..n {
        let suffix = match i % 3 {
            0 => "",
            1 => ".st",
            _ => ".lv",
        };
        src.push_str(&format!("addi{suffix} r1, r1, 1\n"));
    }
    src.push_str("halt\n");
    assemble(&src).expect("synthetic program assembles")
}

/// `len` destination-writing events over `n_static` static addresses,
/// each value a repeat, a constant-stride step or fresh noise.
fn arb_events(rng: &mut Rng, n_static: u32, len: usize) -> Vec<TraceEvent> {
    let mut last = vec![0u64; n_static as usize];
    (0..len)
        .map(|_| {
            let a = rng.gen_range(0..n_static);
            let value = match rng.gen_range(0..4u32) {
                0 => last[a as usize],
                1 | 2 => last[a as usize].wrapping_add(8),
                _ => rng.gen_u64(),
            };
            last[a as usize] = value;
            TraceEvent {
                addr: InstrAddr::new(a),
                dest: Some((RegClass::Int, Reg::new(rng.gen_range(0..32u8)), value)),
                mem: None,
                stored: None,
                taken: None,
                next_pc: InstrAddr::new((a + 1) % n_static.max(1)),
            }
        })
        .collect()
}

fn arb_geometry(rng: &mut Rng) -> TableGeometry {
    let ways = 1usize << rng.gen_range(0..3u32);
    let sets = rng.gen_range(2..33usize);
    TableGeometry::new(sets * ways, ways)
}

/// One configuration from each of the six families, with an arbitrary
/// classifier and geometry.
fn config_families(rng: &mut Rng) -> Vec<PredictorConfig> {
    let mut classifier = || match rng.gen_range(0..3u32) {
        0 => ClassifierKind::two_bit_counter(),
        1 => ClassifierKind::Directive,
        _ => ClassifierKind::Always,
    };
    let c0 = classifier();
    let c1 = classifier();
    let c2 = classifier();
    let c3 = classifier();
    let c4 = classifier();
    vec![
        PredictorConfig::InfiniteStride { classifier: c0 },
        PredictorConfig::InfiniteLastValue { classifier: c1 },
        PredictorConfig::TableStride {
            geometry: arb_geometry(rng),
            classifier: c2,
        },
        PredictorConfig::TableLastValue {
            geometry: arb_geometry(rng),
            classifier: c3,
        },
        PredictorConfig::TableTwoDelta {
            geometry: arb_geometry(rng),
            classifier: c4,
        },
        PredictorConfig::Hybrid {
            stride: arb_geometry(rng),
            last_value: arb_geometry(rng),
        },
    ]
}

#[test]
fn prop_attribution_is_job_count_invariant_and_reconciles() {
    prop::forall("attribution jobs=1 == jobs=8, totals reconcile", |rng| {
        let n_static = rng.gen_range(4..120u32);
        let len = rng.gen_range(50..1000usize);
        let events = arb_events(rng, n_static, len);
        let configs = config_families(rng);
        (n_static, events, configs)
    })
    .cases(12)
    .check(|(n_static, events, configs)| {
        let program = program_with(*n_static);
        let trace = Trace::from_events(events.clone());
        for config in configs {
            // Baseline: unattributed sequential replay.
            let plain = replay_predictor(&trace, &program, config, 1, 1).expect("plain replay");
            // jobs=1: one shard, one worker.
            let (seq, seq_table) = replay_predictor_attributed(&trace, &program, config, 1, 1)
                .expect("sequential attributed replay");
            assert_eq!(
                seq.stats,
                plain.stats,
                "{}: attribution perturbed the replay",
                config.label()
            );
            seq_table
                .reconcile(&seq.stats)
                .unwrap_or_else(|e| panic!("{}: {e}", config.label()));
            // jobs=8 over every shard refinement: bit-identical tables.
            for shards in [2usize, 3, 5, 8] {
                let (par, par_table) =
                    replay_predictor_attributed(&trace, &program, config, shards, 8)
                        .expect("sharded attributed replay");
                assert_eq!(par.stats, seq.stats, "{}", config.label());
                assert_eq!(
                    par_table,
                    seq_table,
                    "{}: table diverged at {shards} shards / 8 jobs",
                    config.label()
                );
            }
        }
    });
}

/// The attribution cause partition is exhaustive and exclusive for any
/// input: summed cause counts equal the raw miss count per PC, not just
/// in aggregate.
#[test]
fn prop_per_pc_causes_partition_the_misses() {
    prop::forall("per-PC causes partition raw misses", |rng| {
        let n_static = rng.gen_range(4..80u32);
        let len = rng.gen_range(50..600usize);
        let events = arb_events(rng, n_static, len);
        let configs = config_families(rng);
        (n_static, events, configs)
    })
    .cases(12)
    .check(|(n_static, events, configs)| {
        let program = program_with(*n_static);
        let trace = Trace::from_events(events.clone());
        for config in configs {
            let (_, table) = replay_predictor_attributed(&trace, &program, config, 1, 1)
                .expect("attributed replay");
            for (addr, pc) in table.entries() {
                let misses = pc.accesses - pc.raw_correct;
                let charged: u64 = pc.causes.iter().sum();
                assert_eq!(
                    charged,
                    misses,
                    "{} @{addr}: {charged} charged causes vs {misses} raw misses",
                    config.label()
                );
            }
        }
    });
}
