//! Property tests for the bounded-memory streaming replay engine: for
//! arbitrary loop-kernel programs, the streamed
//! [`provp_core::ReplayRequest`] grid (stats, occupancy, attribution
//! tables) must be **bit-identical** to the batch grid over the captured
//! trace, across worker counts {1, 4} × block pools {2, 8} × all six
//! predictor configuration families — the delivery block boundaries, the
//! producer/consumer interleaving and the pool size may change the
//! schedule, never the result.

use provp_core::{ReplayRequest, SweepPlan};
use vp_isa::asm::assemble;
use vp_isa::Program;
use vp_predictor::{ClassifierKind, PredictorConfig, TableGeometry};
use vp_rng::{prop, Rng};
use vp_sim::{RunLimits, Trace};

/// The six predictor configuration families under both paper baselines:
/// the fixed panel every jobs × pool combination is checked against.
fn six_configs() -> Vec<PredictorConfig> {
    vec![
        PredictorConfig::spec_table_stride_fsm(),
        PredictorConfig::spec_table_stride_profile(),
        PredictorConfig::InfiniteStride {
            classifier: ClassifierKind::two_bit_counter(),
        },
        PredictorConfig::InfiniteLastValue {
            classifier: ClassifierKind::Always,
        },
        PredictorConfig::TableTwoDelta {
            geometry: TableGeometry::new(12, 2),
            classifier: ClassifierKind::Directive,
        },
        PredictorConfig::Hybrid {
            stride: TableGeometry::new(8, 2),
            last_value: TableGeometry::new(12, 2),
        },
    ]
}

/// A random loop kernel: `producers` static value-writing instructions
/// (directives cycling none → stride → last-value, value patterns mixing
/// strides, repeats and loop-carried noise) executed `iters` times, so
/// the streamed run emits several thousand value events over a block
/// boundary or two.
fn kernel(rng: &mut Rng) -> Program {
    let producers = rng.gen_range(3..12u32);
    let iters = rng.gen_range(200..1200u32);
    let mut src = format!("li r1, 0\nli r2, {iters}\ntop:\n");
    for i in 0..producers {
        let reg = 3 + (i % 6); // r3..r8
        let suffix = match i % 3 {
            0 => "",
            1 => ".st",
            _ => ".lv",
        };
        match rng.gen_range(0..3u32) {
            // Constant stride.
            0 => src.push_str(&format!(
                "addi{suffix} r{reg}, r{reg}, {}\n",
                rng.gen_range(1..16u32)
            )),
            // Repeat of a loop-invariant.
            1 => src.push_str(&format!("add{suffix} r{reg}, r2, r0\n")),
            // Loop-carried mix (pseudo-noise).
            _ => src.push_str(&format!("add{suffix} r{reg}, r{reg}, r1\n")),
        }
    }
    src.push_str("addi r1, r1, 1\nbne r1, r2, top\nhalt\n");
    assemble(&src).expect("synthetic kernel assembles")
}

#[test]
fn prop_streaming_is_bit_identical_to_batch() {
    prop::forall("streamed replay == batch replay", kernel)
        .cases(10)
        .check(|program| {
            let limits = RunLimits::default();
            let trace = Trace::capture(program, limits).expect("capture");
            let mut plan = SweepPlan::new();
            let table = plan.add_directives(program);
            for config in six_configs() {
                plan.add_cell(config, table);
            }
            let batch = ReplayRequest::batch(&trace)
                .plan(plan.clone())
                .run()
                .expect("batch replay")
                .outcomes();
            for jobs in [1usize, 4] {
                for pool in [2usize, 8] {
                    let streamed = ReplayRequest::stream(program, limits)
                        .plan(plan.clone())
                        .shards(jobs)
                        .block_pool(pool)
                        .run()
                        .expect("streamed replay")
                        .outcomes();
                    assert_eq!(streamed.len(), batch.len());
                    for (cell, (s, b)) in streamed.iter().zip(&batch).enumerate() {
                        assert_eq!(
                            s.stats, b.stats,
                            "cell {cell} stats diverged at {jobs} jobs / pool {pool}"
                        );
                        assert_eq!(
                            s.occupancy, b.occupancy,
                            "cell {cell} occupancy diverged at {jobs} jobs / pool {pool}"
                        );
                    }
                }
            }
        });
}

#[test]
fn prop_streamed_attribution_tables_match_batch() {
    prop::forall("streamed attribution == batch attribution", kernel)
        .cases(6)
        .check(|program| {
            let limits = RunLimits::default();
            let trace = Trace::capture(program, limits).expect("capture");
            let mut plan = SweepPlan::new();
            let table = plan.add_directives(program);
            for config in six_configs() {
                plan.add_cell(config, table);
            }
            let batch = ReplayRequest::batch(&trace)
                .plan(plan.clone())
                .attribution(true)
                .shards(4)
                .jobs(4)
                .run()
                .expect("batch attributed replay");
            for pool in [2usize, 8] {
                let streamed = ReplayRequest::stream(program, limits)
                    .plan(plan.clone())
                    .attribution(true)
                    .shards(4)
                    .block_pool(pool)
                    .run()
                    .expect("streamed attributed replay");
                for (cell, (s, b)) in streamed.cells.iter().zip(&batch.cells).enumerate() {
                    assert_eq!(
                        s.outcome.stats, b.outcome.stats,
                        "cell {cell} stats diverged at pool {pool}"
                    );
                    assert_eq!(
                        s.attribution, b.attribution,
                        "cell {cell} attribution table diverged at pool {pool}"
                    );
                    // Attribution totals reconcile with the stats in
                    // streaming mode too (every access accounted).
                    s.attribution
                        .as_ref()
                        .expect("attribution requested")
                        .reconcile(&s.outcome.stats)
                        .unwrap_or_else(|e| panic!("cell {cell} fails to reconcile: {e}"));
                }
            }
        });
}

/// Duplicate cells dedupe to one predictor-bank slot in streaming mode
/// exactly as in batch mode, and each duplicate receives the shared
/// slot's result.
#[test]
fn streamed_duplicate_cells_share_one_slot() {
    let program = assemble(
        "li r1, 0\nli r2, 500\n\
         top: addi.st r3, r3, 4\nadd.lv r4, r2, r0\naddi r1, r1, 1\n\
         bne r1, r2, top\nhalt\n",
    )
    .expect("kernel assembles");
    let limits = RunLimits::default();
    let cfg = PredictorConfig::spec_table_stride_fsm();
    let mut plan = SweepPlan::new();
    let table = plan.add_directives(&program);
    plan.add_cell(cfg, table);
    plan.add_cell(cfg, table); // duplicate
    plan.add_cell(PredictorConfig::spec_table_stride_profile(), table);
    let streamed = ReplayRequest::stream(&program, limits)
        .plan(plan)
        .shards(3)
        .run()
        .expect("streamed replay")
        .outcomes();
    assert_eq!(streamed.len(), 3);
    assert_eq!(streamed[0].stats, streamed[1].stats);
    assert_eq!(streamed[0].occupancy, streamed[1].occupancy);
}
