//! Property tests for the PC-sharded parallel predictor replay: for
//! arbitrary traces, predictor configurations, shard counts and job
//! counts, the sharded replay's merged [`vp_predictor::PredictorStats`]
//! must be **bit-identical** to a sequential replay's.
//!
//! The generator deliberately produces value streams that are a mixture
//! of repeats, constant strides and noise so every classifier state
//! machine (2-bit counters, directives, always-predict) gets exercised
//! through its full transition graph, and programs whose directives vary
//! per static instruction so the directive-routed configurations do not
//! degenerate.

// These suites deliberately pin the deprecated pre-ReplayRequest entry
// points: they are kept as thin wrappers and must stay bit-identical to
// the builder until removal (see DESIGN.md deprecation policy).
#![allow(deprecated)]

use provp_core::replay_predictor;
use vp_isa::asm::assemble;
use vp_isa::{InstrAddr, Program, Reg, RegClass};
use vp_predictor::{ClassifierKind, PredictorConfig, TableGeometry};
use vp_rng::{prop, Rng};
use vp_sim::{Trace, TraceEvent};

/// A program of `n` value producers whose directives cycle
/// none → stride → last-value per static instruction, plus a `halt`.
fn program_with(n: u32) -> Program {
    let mut src = String::new();
    for i in 0..n {
        let suffix = match i % 3 {
            0 => "",
            1 => ".st",
            _ => ".lv",
        };
        src.push_str(&format!("addi{suffix} r1, r1, 1\n"));
    }
    src.push_str("halt\n");
    assemble(&src).expect("synthetic program assembles")
}

/// `len` destination-writing events over `n_static` static addresses,
/// each value a repeat, a constant-stride step or fresh noise.
fn arb_events(rng: &mut Rng, n_static: u32, len: usize) -> Vec<TraceEvent> {
    let mut last = vec![0u64; n_static as usize];
    (0..len)
        .map(|_| {
            let a = rng.gen_range(0..n_static);
            let value = match rng.gen_range(0..4u32) {
                0 => last[a as usize],
                1 | 2 => last[a as usize].wrapping_add(8),
                _ => rng.gen_u64(),
            };
            last[a as usize] = value;
            TraceEvent {
                addr: InstrAddr::new(a),
                dest: Some((RegClass::Int, Reg::new(rng.gen_range(0..32u8)), value)),
                mem: None,
                stored: None,
                taken: None,
                next_pc: InstrAddr::new((a + 1) % n_static.max(1)),
            }
        })
        .collect()
}

fn arb_geometry(rng: &mut Rng) -> TableGeometry {
    let ways = 1usize << rng.gen_range(0..3u32); // 1, 2 or 4 ways
    let sets = rng.gen_range(2..33usize); // incl. non-power-of-two set counts
    TableGeometry::new(sets * ways, ways)
}

fn arb_config(rng: &mut Rng) -> PredictorConfig {
    let classifier = match rng.gen_range(0..3u32) {
        0 => ClassifierKind::two_bit_counter(),
        1 => ClassifierKind::Directive,
        _ => ClassifierKind::Always,
    };
    match rng.gen_range(0..6u32) {
        0 => PredictorConfig::InfiniteStride { classifier },
        1 => PredictorConfig::InfiniteLastValue { classifier },
        2 => PredictorConfig::TableStride {
            geometry: arb_geometry(rng),
            classifier,
        },
        3 => PredictorConfig::TableLastValue {
            geometry: arb_geometry(rng),
            classifier,
        },
        4 => PredictorConfig::TableTwoDelta {
            geometry: arb_geometry(rng),
            classifier,
        },
        _ => PredictorConfig::Hybrid {
            stride: arb_geometry(rng),
            last_value: arb_geometry(rng),
        },
    }
}

#[test]
fn prop_sharded_replay_is_bit_identical_to_sequential() {
    prop::forall("sharded replay == sequential replay", |rng| {
        let n_static = rng.gen_range(4..160u32);
        let len = rng.gen_range(50..1500usize);
        let events = arb_events(rng, n_static, len);
        let config = arb_config(rng);
        let shards = rng.gen_range(2..9usize);
        let jobs = rng.gen_range(1..5usize);
        (n_static, events, config, shards, jobs)
    })
    .cases(48)
    .check(|(n_static, events, config, shards, jobs)| {
        let program = program_with(*n_static);
        let trace = Trace::from_events(events.clone());
        let seq = replay_predictor(&trace, &program, config, 1, 1).expect("sequential replay");
        let par =
            replay_predictor(&trace, &program, config, *shards, *jobs).expect("sharded replay");
        assert_eq!(
            par.stats,
            seq.stats,
            "{} diverged at {shards} shards / {jobs} jobs",
            config.label()
        );
        assert_eq!(par.occupancy, seq.occupancy, "{}", config.label());
        assert_eq!(par.shards, *shards);
    });
}

/// Merging per-shard statistics is order-independent: replaying the same
/// trace at different shard counts (different partition refinements of
/// the same state-partition relation) yields the same totals.
#[test]
fn prop_merge_is_shard_count_invariant() {
    prop::forall("merge totals invariant across shard counts", |rng| {
        let n_static = rng.gen_range(4..100u32);
        let len = rng.gen_range(50..800usize);
        let events = arb_events(rng, n_static, len);
        let config = arb_config(rng);
        (n_static, events, config)
    })
    .cases(24)
    .check(|(n_static, events, config)| {
        let program = program_with(*n_static);
        let trace = Trace::from_events(events.clone());
        let outcomes: Vec<_> = [1usize, 2, 3, 5, 8]
            .iter()
            .map(|&shards| replay_predictor(&trace, &program, config, shards, 2).expect("replay"))
            .collect();
        for pair in outcomes.windows(2) {
            assert_eq!(pair[0].stats, pair[1].stats, "{}", config.label());
            assert_eq!(pair[0].occupancy, pair[1].occupancy, "{}", config.label());
        }
    });
}
