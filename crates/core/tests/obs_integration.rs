//! Integration tests for the observability layer where it meets the
//! core pipeline: span aggregation across `parallel_map` workers, and
//! consistency of `TraceStoreStats` snapshots under concurrency.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use provp_core::{parallel_map, TraceStore};
use vp_obs::{Registry, Sampler};
use vp_sim::RunLimits;
use vp_workloads::{InputSet, WorkloadKind};

/// Spans opened inside `parallel_map` workers aggregate under the same
/// hierarchical path as the spawning thread's open spans, no matter how
/// many threads executed them.
#[test]
fn spans_nest_across_parallel_map_workers() {
    let items: Vec<u32> = (0..24).collect();
    {
        let _outer = vp_obs::span("obs_it_outer");
        let _ = parallel_map(4, &items, |&x| {
            let _inner = vp_obs::span("obs_it_inner");
            x * 2
        });
    }
    let snap = vp_obs::global().snapshot();
    let inner = snap
        .spans
        .get("obs_it_outer/obs_it_inner")
        .expect("worker spans must aggregate under the spawning thread's path");
    assert_eq!(inner.count, items.len() as u64);
    let outer = snap.spans.get("obs_it_outer").expect("outer span recorded");
    assert_eq!(outer.count, 1);
    // No orphaned top-level "obs_it_inner" rows from worker threads.
    assert!(
        !snap.spans.contains_key("obs_it_inner"),
        "worker spans must not detach from the parent path"
    );
}

/// A serial map (jobs = 1) produces the same span paths as a threaded one.
#[test]
fn serial_and_threaded_span_paths_agree() {
    let items: Vec<u32> = (0..6).collect();
    {
        let _outer = vp_obs::span("obs_it_serial");
        let _ = parallel_map(1, &items, |&x| {
            let _inner = vp_obs::span("obs_it_leaf");
            x
        });
    }
    {
        let _outer = vp_obs::span("obs_it_threaded");
        let _ = parallel_map(3, &items, |&x| {
            let _inner = vp_obs::span("obs_it_leaf");
            x
        });
    }
    let snap = vp_obs::global().snapshot();
    let serial = snap.spans.get("obs_it_serial/obs_it_leaf").unwrap();
    let threaded = snap.spans.get("obs_it_threaded/obs_it_leaf").unwrap();
    assert_eq!(serial.count, threaded.count);
}

/// Every mid-run snapshot of the trace-store statistics is internally
/// consistent: each request has been classified as exactly one of
/// memory-hit or miss by the time it is counted, so
/// `memory_hits + misses == requests` holds in *every* observable state,
/// and in particular `hits + misses` can never undercount `requests`.
#[test]
fn concurrent_stats_snapshots_never_lose_requests() {
    let store = Arc::new(TraceStore::new());
    let done = Arc::new(AtomicBool::new(false));

    let sampler = {
        let store = Arc::clone(&store);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut samples = 0u32;
            let mut last_requests = 0u64;
            while !done.load(Ordering::Relaxed) {
                let s = store.stats();
                assert!(
                    s.memory_hits + s.misses >= s.requests,
                    "snapshot lost classified requests: {s:?}"
                );
                assert_eq!(
                    s.memory_hits + s.misses,
                    s.requests,
                    "request counted without a hit/miss classification: {s:?}"
                );
                assert!(
                    s.requests >= last_requests,
                    "requests went backwards: {s:?}"
                );
                last_requests = s.requests;
                samples += 1;
                thread::yield_now();
            }
            samples
        })
    };

    thread::scope(|scope| {
        for _ in 0..4 {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for round in 0..3 {
                    for i in 0..2 {
                        let _ = store
                            .get(
                                WorkloadKind::Compress,
                                InputSet::train(i),
                                RunLimits::default(),
                            )
                            .unwrap();
                        let _ = round;
                    }
                }
            });
        }
    });

    done.store(true, Ordering::Relaxed);
    let samples = sampler.join().unwrap();
    assert!(samples > 0, "sampler must observe at least one snapshot");

    let end = store.stats();
    // 4 threads x 3 rounds x 2 keys = 24 requests, 2 unique simulations.
    assert_eq!(end.requests, 24);
    assert_eq!(end.captures, 2);
    assert_eq!(end.memory_hits + end.misses, end.requests);
}

/// The real [`Sampler`] + pre-sample-hook pipeline preserves the trace
/// store's balance invariant in *every* emitted sample: the hook
/// publishes an internally-consistent `TraceStore::stats` block (one
/// lock, one snapshot) into the sampled registry right before each
/// copy, so `memory_hits + misses == requests` holds mid-run, not just
/// at end of run. This is the exact wiring the bench harness uses for
/// `--sample-ms`.
#[test]
fn sampler_hook_keeps_trace_store_invariant_in_every_sample() {
    let registry: &'static Registry = Box::leak(Box::new(Registry::new()));
    let store = Arc::new(TraceStore::new());

    let sampler = {
        let store = Arc::clone(&store);
        let requests = registry.counter_cell("trace_store.requests");
        let hits = registry.counter_cell("trace_store.memory_hits");
        let misses = registry.counter_cell("trace_store.misses");
        Sampler::start_with_hook(Duration::from_millis(1), registry, move || {
            // One consistent snapshot, published idempotently: stats are
            // monotone, so fetch_max republishes without double counting.
            let s = store.stats();
            requests.fetch_max(s.requests, Ordering::Relaxed);
            hits.fetch_max(s.memory_hits, Ordering::Relaxed);
            misses.fetch_max(s.misses, Ordering::Relaxed);
        })
    };

    thread::scope(|scope| {
        for _ in 0..4 {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for round in 0..3 {
                    for i in 0..2 {
                        let _ = store
                            .get(
                                WorkloadKind::Compress,
                                InputSet::train(i),
                                RunLimits::default(),
                            )
                            .unwrap();
                        let _ = round;
                    }
                    thread::sleep(Duration::from_millis(1));
                }
            });
        }
    });

    let samples = sampler.stop();
    assert!(samples.len() >= 2, "series must hold >= 2 points");
    let counter = |s: &vp_obs::Sample, k: &str| s.counters.get(k).copied().unwrap_or(0);
    for s in &samples {
        assert_eq!(
            counter(s, "trace_store.memory_hits") + counter(s, "trace_store.misses"),
            counter(s, "trace_store.requests"),
            "sample at t={}ms lost the balance invariant: {s:?}",
            s.t_ms
        );
    }
    // The final sample (taken at `stop`, after all workers joined) must
    // reflect the complete run.
    let last = samples.last().unwrap();
    assert_eq!(counter(last, "trace_store.requests"), 24);
    // And the series itself is monotone per key, as fetch_max promises.
    for pair in samples.windows(2) {
        for key in ["trace_store.requests", "trace_store.memory_hits"] {
            assert!(
                counter(&pair[0], key) <= counter(&pair[1], key),
                "{key} went backwards across samples"
            );
        }
    }
}
