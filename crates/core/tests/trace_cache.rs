//! Unit tests for the trace store: cache hits must be indistinguishable
//! from fresh simulation, the LRU byte budget must evict, and disk spill
//! must round-trip across store instances.

use std::sync::Arc;
use std::thread;

use provp_core::TraceStore;
use vp_profile::ProfileCollector;
use vp_sim::{run, RunLimits};
use vp_workloads::{InputSet, Workload, WorkloadKind};

fn fresh_profile(kind: WorkloadKind, input: InputSet) -> vp_profile::ProfileImage {
    let w = Workload::new(kind);
    let program = w.program(&input);
    let mut c = ProfileCollector::new("fresh");
    run(&program, &mut c, RunLimits::default()).unwrap();
    c.into_image()
}

fn replayed_profile(
    store: &TraceStore,
    kind: WorkloadKind,
    input: InputSet,
) -> vp_profile::ProfileImage {
    let w = Workload::new(kind);
    let program = w.program(&input);
    let trace = store.get(kind, input, RunLimits::default()).unwrap();
    let mut c = ProfileCollector::new("fresh");
    trace.replay(&program, &mut c).unwrap();
    c.into_image()
}

#[test]
fn cache_hit_replay_equals_fresh_simulation() {
    let store = TraceStore::new();
    let kind = WorkloadKind::Compress;
    let input = InputSet::reference();

    let fresh = fresh_profile(kind, input);
    let miss = replayed_profile(&store, kind, input);
    let hit = replayed_profile(&store, kind, input);

    assert_eq!(
        fresh, miss,
        "first (capturing) replay must match simulation"
    );
    assert_eq!(fresh, hit, "cache-hit replay must match simulation");
    let stats = store.stats();
    assert_eq!(stats.captures, 1);
    assert_eq!(stats.memory_hits, 1);
    assert_eq!(stats.disk_hits, 0);
}

#[test]
fn lru_evicts_oldest_when_over_budget() {
    // A budget way below one trace's size: at most one resident entry,
    // and every insertion beyond the first evicts the previous one.
    let store = TraceStore::with_max_bytes(1);
    let limits = RunLimits::default();
    let a = (WorkloadKind::Compress, InputSet::train(0));
    let b = (WorkloadKind::Compress, InputSet::train(1));

    store.get(a.0, a.1, limits).unwrap();
    assert_eq!(store.resident(), 1);
    store.get(b.0, b.1, limits).unwrap();
    assert_eq!(store.resident(), 1, "budget of 1 byte keeps a single trace");
    let stats = store.stats();
    assert_eq!(stats.captures, 2);
    assert_eq!(stats.evictions, 1);

    // `a` was evicted: requesting it again re-captures.
    store.get(a.0, a.1, limits).unwrap();
    assert_eq!(store.stats().captures, 3);
    // ... while `b`'s eviction means the LRU held the newest entry.
    assert_eq!(store.stats().evictions, 2);
}

#[test]
fn lru_keeps_recently_used_entries_under_budget() {
    // Budget large enough for everything: no evictions at all.
    let store = TraceStore::new();
    let limits = RunLimits::default();
    for i in 0..3 {
        store
            .get(WorkloadKind::Compress, InputSet::train(i), limits)
            .unwrap();
    }
    assert_eq!(store.resident(), 3);
    assert_eq!(store.stats().evictions, 0);
    assert!(store.resident_bytes() > 0);
}

#[test]
fn disk_spill_round_trips_across_stores() {
    let dir = std::env::temp_dir().join(format!("provp-trace-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let kind = WorkloadKind::Ijpeg;
    let input = InputSet::reference();
    let limits = RunLimits::default();

    let first = TraceStore::new().with_spill_dir(&dir);
    let captured = first.get(kind, input, limits).unwrap();
    assert_eq!(first.stats().captures, 1);
    let spilled = dir.join(provp_core::TraceKey::new(kind, input, limits).file_name());
    assert!(spilled.is_file(), "trace must be spilled to {spilled:?}");

    // A brand-new store (fresh process, conceptually) loads from disk.
    let second = TraceStore::new().with_spill_dir(&dir);
    let loaded = second.get(kind, input, limits).unwrap();
    assert_eq!(*captured, *loaded, "disk round-trip must be lossless");
    let stats = second.stats();
    assert_eq!(stats.captures, 0, "no re-simulation with a warm disk cache");
    assert_eq!(stats.disk_hits, 1);

    // A corrupt spill file falls back to simulation instead of failing.
    std::fs::write(&spilled, b"garbage").unwrap();
    let third = TraceStore::new().with_spill_dir(&dir);
    let recaptured = third.get(kind, input, limits).unwrap();
    assert_eq!(*captured, *recaptured);
    assert_eq!(third.stats().captures, 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_requests_simulate_once() {
    let store = Arc::new(TraceStore::new());
    let kind = WorkloadKind::Compress;
    let input = InputSet::reference();
    let traces: Vec<_> = thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                s.spawn(move || store.get(kind, input, RunLimits::default()).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(store.stats().captures, 1, "in-flight dedup must hold");
    for t in &traces[1..] {
        assert_eq!(**t, *traces[0]);
    }
}
