//! Property tests spanning the assembler, disassembler and binary encoder:
//! any well-formed program survives both text and binary round-trips.

use vp_isa::asm::{assemble, disassemble};
use vp_isa::encode::{decode_text, encode_text};
use vp_isa::{Directive, Instr, Opcode, Program, Reg};
use vp_rng::{prop, Rng};

fn arb_instr(rng: &mut Rng) -> Instr {
    let op = *rng.choose(Opcode::ALL).unwrap();
    let instr = Instr {
        op,
        rd: Reg::new(rng.gen_range(0..32u8)),
        rs1: Reg::new(rng.gen_range(1..32u8)),
        rs2: Reg::new(rng.gen_range(0..32u8)),
        imm: rng.gen_range(-5000..5000i64),
        directive: Directive::None,
    }
    .canonical();
    // Directives are only legal on value producers; branch offsets must
    // stay numeric-renderable (they always are).
    if instr.writes_dest() {
        instr.with_directive(Directive::decode(rng.gen_range(0..3u8)).unwrap())
    } else {
        instr
    }
}

fn arb_program(rng: &mut Rng) -> Program {
    let text: Vec<Instr> = (0..rng.gen_range(1..60usize))
        .map(|_| arb_instr(rng))
        .collect();
    let data: Vec<u64> = (0..rng.gen_range(0..16usize))
        .map(|_| rng.gen_u64())
        .collect();
    Program::new("prop", text, data)
}

/// dis(asm) is the identity on text and data.
#[test]
fn prop_text_round_trip() {
    prop::forall("disassemble/assemble round-trips", arb_program).check(|program| {
        let source = disassemble(program);
        let round = assemble(&source).unwrap_or_else(|e| panic!("{e}\n{source}"));
        assert_eq!(round.text(), program.text());
        assert_eq!(round.data(), program.data());
    });
}

/// decode(encode) is the identity, and encoding is injective on canonical
/// instructions.
#[test]
fn prop_binary_round_trip_and_injective() {
    prop::forall("encode/decode round-trips and is injective", arb_program).check(|program| {
        let words = encode_text(program.text()).unwrap();
        let decoded = decode_text(&words).unwrap();
        assert_eq!(&decoded[..], program.text());
        for (i, a) in program.text().iter().enumerate() {
            for (j, b) in program.text().iter().enumerate() {
                if words[i] == words[j] {
                    assert_eq!(a, b, "distinct instrs {i},{j} share an encoding");
                }
            }
        }
    });
}

/// Directive stripping commutes with both round-trips.
#[test]
fn prop_directives_orthogonal_to_roundtrip() {
    prop::forall("directive stripping commutes with round-trips", arb_program).check(|program| {
        let stripped = program.without_directives();
        let via_text = assemble(&disassemble(&stripped)).unwrap();
        assert_eq!(via_text.text(), stripped.text());
        let (none, lv, st) = via_text.directive_counts();
        assert_eq!(lv + st, 0);
        assert_eq!(none, stripped.len());
    });
}
