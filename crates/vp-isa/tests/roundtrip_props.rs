//! Property tests spanning the assembler, disassembler and binary encoder:
//! any well-formed program survives both text and binary round-trips.

use proptest::prelude::*;
use vp_isa::asm::{assemble, disassemble};
use vp_isa::encode::{decode_text, encode_text};
use vp_isa::{Directive, Instr, Opcode, Program, Reg};

fn arb_instr() -> impl Strategy<Value = Instr> {
    let ops = prop::sample::select(Opcode::ALL.to_vec());
    (ops, 0u8..32, 1u8..32, 0u8..32, -5000i64..5000, 0u8..3).prop_map(
        |(op, rd, rs1, rs2, imm, dir)| {
            let instr = Instr {
                op,
                rd: Reg::new(rd),
                rs1: Reg::new(rs1),
                rs2: Reg::new(rs2),
                imm,
                directive: Directive::None,
            }
            .canonical();
            // Directives are only legal on value producers; branch offsets
            // must stay numeric-renderable (they always are).
            if instr.writes_dest() {
                instr.with_directive(Directive::decode(dir).unwrap())
            } else {
                instr
            }
        },
    )
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        prop::collection::vec(arb_instr(), 1..60),
        prop::collection::vec(any::<u64>(), 0..16),
    )
        .prop_map(|(text, data)| Program::new("prop", text, data))
}

proptest! {
    /// dis(asm) is the identity on text and data.
    #[test]
    fn prop_text_round_trip(program in arb_program()) {
        let source = disassemble(&program);
        let round = assemble(&source).unwrap_or_else(|e| panic!("{e}\n{source}"));
        prop_assert_eq!(round.text(), program.text());
        prop_assert_eq!(round.data(), program.data());
    }

    /// decode(encode) is the identity, and encoding is injective on
    /// canonical instructions.
    #[test]
    fn prop_binary_round_trip_and_injective(program in arb_program()) {
        let words = encode_text(program.text()).unwrap();
        let decoded = decode_text(&words).unwrap();
        prop_assert_eq!(&decoded[..], program.text());
        for (i, a) in program.text().iter().enumerate() {
            for (j, b) in program.text().iter().enumerate() {
                if words[i] == words[j] {
                    prop_assert_eq!(a, b, "distinct instrs {},{} share an encoding", i, j);
                }
            }
        }
    }

    /// Directive stripping commutes with both round-trips.
    #[test]
    fn prop_directives_orthogonal_to_roundtrip(program in arb_program()) {
        let stripped = program.without_directives();
        let via_text = assemble(&disassemble(&stripped)).unwrap();
        prop_assert_eq!(via_text.text(), stripped.text());
        let (none, lv, st) = via_text.directive_counts();
        prop_assert_eq!(lv + st, 0);
        prop_assert_eq!(none, stripped.len());
    }
}
