//! A small text assembler and disassembler.
//!
//! The syntax is what [`crate::Program`]'s `Display` impl prints, so
//! `assemble(program.to_string())` round-trips. It exists for tests,
//! examples and for inspecting the workload generators' output; workloads
//! themselves are built with [`crate::ProgramBuilder`].
//!
//! ```text
//! ; comments run to end of line (also '#')
//! .name loop_kernel
//! .data 1 2 3 0x10 -5        ; 64-bit words at address 0
//! .zero 8                    ; eight zero words
//! .f64 3.25 -1.0             ; doubles stored as raw bits
//!         li   r1, 0
//! top:    addi.st r1, r1, 1  ; '.st'/'.lv' suffix = value-pred directive
//!         ld   r2, 0(r1)
//!         bne  r1, r3, top   ; branch targets: label or numeric offset
//!         halt
//! ```
//!
//! # Examples
//!
//! ```
//! let p = vp_isa::asm::assemble("li r1, 7\nhalt\n").unwrap();
//! assert_eq!(p.len(), 2);
//! let round = vp_isa::asm::assemble(&p.to_string()).unwrap();
//! assert_eq!(round.text(), p.text());
//! ```

use std::collections::HashMap;

use crate::opcode::Format;
use crate::{Directive, Instr, IsaError, Opcode, Program, Reg};

/// Assembles source text into a [`Program`].
///
/// # Errors
///
/// [`IsaError::Parse`] with a 1-based line number on any syntax error, and
/// [`IsaError::UnboundLabel`] for references to labels that are never
/// defined. Unlike [`crate::ProgramBuilder::build`], a missing `halt` is
/// *not* an error here: the assembler is also used for fragments.
pub fn assemble(src: &str) -> Result<Program, IsaError> {
    Assembler::default().run(src)
}

/// Renders a program in assembler syntax. Equivalent to `program.to_string()`.
#[must_use]
pub fn disassemble(program: &Program) -> String {
    program.to_string()
}

#[derive(Default)]
struct Assembler {
    name: String,
    text: Vec<Instr>,
    data: Vec<u64>,
    labels: HashMap<String, u32>,
    // (site, label-name, source-line)
    fixups: Vec<(u32, String, usize)>,
}

impl Assembler {
    fn run(mut self, src: &str) -> Result<Program, IsaError> {
        self.name = "asm".to_owned();
        for (lineno, raw) in src.lines().enumerate() {
            let lineno = lineno + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            self.line(line, lineno)?;
        }
        for (site, label, line) in std::mem::take(&mut self.fixups) {
            let target = *self.labels.get(&label).ok_or(IsaError::Parse {
                line,
                message: format!("undefined label `{label}`"),
            })?;
            self.text[site as usize].imm = i64::from(target) - i64::from(site);
        }
        Ok(Program::new(self.name, self.text, self.data))
    }

    fn line(&mut self, mut line: &str, lineno: usize) -> Result<(), IsaError> {
        // Leading `label:` (possibly followed by an instruction).
        if let Some(colon) = line.find(':') {
            let (head, rest) = line.split_at(colon);
            if is_ident(head.trim()) {
                let label = head.trim().to_owned();
                if self
                    .labels
                    .insert(label.clone(), self.text.len() as u32)
                    .is_some()
                {
                    return Err(err(lineno, format!("label `{label}` defined twice")));
                }
                line = rest[1..].trim();
                if line.is_empty() {
                    return Ok(());
                }
            }
        }
        if let Some(rest) = line.strip_prefix('.') {
            return self.dot_directive(rest, lineno);
        }
        self.instruction(line, lineno)
    }

    fn dot_directive(&mut self, rest: &str, lineno: usize) -> Result<(), IsaError> {
        let mut parts = rest.split_whitespace();
        let kind = parts.next().unwrap_or("");
        match kind {
            "name" => {
                self.name = parts
                    .next()
                    .ok_or_else(|| err(lineno, ".name needs an identifier".into()))?
                    .to_owned();
                Ok(())
            }
            "data" => {
                for tok in parts {
                    self.data.push(parse_word(tok, lineno)?);
                }
                Ok(())
            }
            "zero" => {
                let n: usize = parts
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(lineno, ".zero needs a count".into()))?;
                self.data.extend(std::iter::repeat_n(0, n));
                Ok(())
            }
            "f64" => {
                for tok in parts {
                    let v: f64 = tok
                        .parse()
                        .map_err(|_| err(lineno, format!("bad f64 literal `{tok}`")))?;
                    self.data.push(v.to_bits());
                }
                Ok(())
            }
            other => Err(err(lineno, format!("unknown directive `.{other}`"))),
        }
    }

    fn instruction(&mut self, line: &str, lineno: usize) -> Result<(), IsaError> {
        let (head, operands) = match line.find(char::is_whitespace) {
            Some(i) => (&line[..i], line[i..].trim()),
            None => (line, ""),
        };
        let (mnemonic, directive) = split_directive(head);
        let op = Opcode::from_mnemonic(mnemonic)
            .ok_or_else(|| err(lineno, format!("unknown mnemonic `{mnemonic}`")))?;
        if directive.is_predictable() && !op.writes_dest() {
            return Err(err(
                lineno,
                format!("`{mnemonic}` cannot carry a value-prediction directive"),
            ));
        }
        let ops: Vec<&str> = if operands.is_empty() {
            Vec::new()
        } else {
            operands.split(',').map(str::trim).collect()
        };
        let site = self.text.len() as u32;
        let instr = match op.format() {
            Format::R3 => {
                let [a, b, c] = expect::<3>(&ops, lineno)?;
                Instr::alu_rr(op, reg(a, lineno)?, reg(b, lineno)?, reg(c, lineno)?)
            }
            Format::R2Imm => {
                let [a, b, c] = expect::<3>(&ops, lineno)?;
                Instr::alu_ri(op, reg(a, lineno)?, reg(b, lineno)?, imm(c, lineno)?)
            }
            Format::R2 => {
                let [a, b] = expect::<2>(&ops, lineno)?;
                Instr::unary(op, reg(a, lineno)?, reg(b, lineno)?)
            }
            Format::RdImm => {
                let [a, b] = expect::<2>(&ops, lineno)?;
                let rd = reg(a, lineno)?;
                if op == Opcode::Jal && is_ident(b) {
                    self.fixups.push((site, b.to_owned(), lineno));
                    Instr::rd_imm(op, rd, 0)
                } else {
                    Instr::rd_imm(op, rd, imm(b, lineno)?)
                }
            }
            Format::Mem | Format::MemStore => {
                let [a, b] = expect::<2>(&ops, lineno)?;
                let r = reg(a, lineno)?;
                let (off, base) = mem_operand(b, lineno)?;
                if op.format() == Format::Mem {
                    Instr::load(op, r, base, off)
                } else {
                    Instr::store(op, r, base, off)
                }
            }
            Format::BranchFmt => {
                let [a, b, c] = expect::<3>(&ops, lineno)?;
                let (r1, r2) = (reg(a, lineno)?, reg(b, lineno)?);
                if is_ident(c) {
                    self.fixups.push((site, c.to_owned(), lineno));
                    Instr::branch(op, r1, r2, 0)
                } else {
                    Instr::branch(op, r1, r2, imm(c, lineno)?)
                }
            }
            Format::NoOperands => {
                let [] = expect::<0>(&ops, lineno)?;
                Instr::new(op, Reg::ZERO, Reg::ZERO, Reg::ZERO, 0)
            }
        };
        self.text.push(instr.with_directive(directive));
        Ok(())
    }
}

fn err(line: usize, message: String) -> IsaError {
    IsaError::Parse { line, message }
}

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(i) => &line[..i],
        None => line,
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        // A bare register name is not a label.
        && parse_reg(s).is_none()
}

fn split_directive(head: &str) -> (&str, Directive) {
    // Careful: `cvt.i.f` contains dots; match known suffixes only.
    if let Some(m) = head.strip_suffix(".lv") {
        (m, Directive::LastValue)
    } else if let Some(m) = head.strip_suffix(".st") {
        (m, Directive::Stride)
    } else {
        (head, Directive::None)
    }
}

fn parse_reg(tok: &str) -> Option<Reg> {
    let rest = tok.strip_prefix(['r', 'f'])?;
    let idx: u8 = rest.parse().ok()?;
    Reg::try_new(idx)
}

fn reg(tok: &str, line: usize) -> Result<Reg, IsaError> {
    parse_reg(tok).ok_or_else(|| err(line, format!("expected register, found `{tok}`")))
}

fn imm(tok: &str, line: usize) -> Result<i64, IsaError> {
    let parsed = if let Some(hex) = tok.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).ok()
    } else if let Some(hex) = tok.strip_prefix("-0x") {
        i64::from_str_radix(hex, 16).ok().map(|v| -v)
    } else {
        tok.parse().ok()
    };
    parsed.ok_or_else(|| err(line, format!("expected immediate, found `{tok}`")))
}

fn parse_word(tok: &str, line: usize) -> Result<u64, IsaError> {
    if let Some(hex) = tok.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|_| err(line, format!("bad data word `{tok}`")))
    } else if tok.starts_with('-') {
        tok.parse::<i64>()
            .map(|v| v as u64)
            .map_err(|_| err(line, format!("bad data word `{tok}`")))
    } else {
        tok.parse()
            .map_err(|_| err(line, format!("bad data word `{tok}`")))
    }
}

fn mem_operand(tok: &str, line: usize) -> Result<(i64, Reg), IsaError> {
    let open = tok
        .find('(')
        .ok_or_else(|| err(line, format!("expected `imm(reg)`, found `{tok}`")))?;
    let close = tok
        .rfind(')')
        .filter(|&c| c > open)
        .ok_or_else(|| err(line, format!("unclosed `(` in `{tok}`")))?;
    let off = if open == 0 {
        0
    } else {
        imm(&tok[..open], line)?
    };
    let base = reg(&tok[open + 1..close], line)?;
    Ok((off, base))
}

fn expect<'a, const N: usize>(ops: &[&'a str], line: usize) -> Result<[&'a str; N], IsaError> {
    <[&'a str; N]>::try_from(ops.to_vec()).map_err(|_| {
        err(
            line,
            format!("expected {N} operand(s), found {}", ops.len()),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_every_operand_format() {
        let src = "\
.name demo
.data 5 0x10 -1
.zero 2
.f64 2.5
start:
  li   r1, 0
  add  r2, r1, r1
  addi r2, r2, 7
  mv   r3, r2
  ld   r4, 3(r2)
  sd   r4, (r2)
  fld  f5, 1(r0)
  fsd  f5, 0(r0)
  fadd f6, f5, f5
  fneg f7, f6
  cvt.i.f f8, r2
  cvt.f.i r9, f8
  beq  r1, r0, start
  jal  r31, start
  jalr r0, r31, 0
  halt
";
        let p = assemble(src).unwrap();
        assert_eq!(p.name(), "demo");
        assert_eq!(p.data().len(), 6);
        assert_eq!(p.data()[2], (-1i64) as u64);
        assert_eq!(p.data()[5], 2.5f64.to_bits());
        assert_eq!(p.len(), 16);
        // Backward label from beq at index 12 to start at 0: -12.
        assert_eq!(p.text()[12].imm, -12);
        assert_eq!(p.text()[13].imm, -13);
    }

    #[test]
    fn directive_suffixes_parse() {
        let p = assemble("addi.st r1, r1, 1\nld.lv r2, (r1)\nhalt\n").unwrap();
        assert_eq!(p.text()[0].directive, Directive::Stride);
        assert_eq!(p.text()[1].directive, Directive::LastValue);
        assert_eq!(p.text()[2].directive, Directive::None);
    }

    #[test]
    fn directive_on_non_producer_is_rejected() {
        let e = assemble("sd.st r1, (r2)\n").unwrap_err();
        assert!(matches!(e, IsaError::Parse { line: 1, .. }), "{e}");
    }

    #[test]
    fn undefined_label_is_reported_with_line() {
        let e = assemble("beq r0, r0, nowhere\n").unwrap_err();
        match e {
            IsaError::Parse { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains("nowhere"));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn duplicate_label_is_rejected() {
        let e = assemble("x:\nx:\nhalt\n").unwrap_err();
        assert!(matches!(e, IsaError::Parse { line: 2, .. }));
    }

    #[test]
    fn wrong_operand_count_is_rejected() {
        assert!(assemble("add r1, r2\n").is_err());
        assert!(assemble("halt r1\n").is_err());
        assert!(assemble("li r1\n").is_err());
    }

    #[test]
    fn numeric_branch_offsets_are_accepted() {
        let p = assemble("bne r1, r2, -3\n").unwrap();
        assert_eq!(p.text()[0].imm, -3);
    }

    #[test]
    fn display_round_trips_through_assembler() {
        let src = "\
.data 9 8 7
  li r1, 3
top:
  addi.st r1, r1, -1
  ld.lv r2, 1(r1)
  fadd f3, f3, f3
  bne r1, r0, top
  sd r2, (r0)
  halt
";
        let p = assemble(src).unwrap();
        let round = assemble(&p.to_string()).unwrap();
        assert_eq!(round.text(), p.text());
        assert_eq!(round.data(), p.data());
    }

    #[test]
    fn label_and_instruction_on_one_line() {
        let p = assemble("top: addi r1, r1, 1\nbne r1, r0, top\nhalt\n").unwrap();
        assert_eq!(p.text()[1].imm, -1);
    }
}
