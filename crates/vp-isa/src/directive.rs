//! Value-prediction opcode directives.
//!
//! Section 3.2 of the paper: the phase-3 compiler "only inserts directives in
//! the opcode of instructions … The inserted directives act as hints about
//! the value predictability of instructions that are supplied to the
//! hardware." Two directive kinds exist — `stride` and `last-value` — and the
//! absence of both means the instruction is *not recommended* for value
//! prediction.

use std::fmt;

/// A per-instruction value-predictability hint carried in the opcode.
///
/// The default ([`Directive::None`]) marks the instruction as unlikely to be
/// correctly predicted; the hardware must not allocate it in a prediction
/// table. The two tagged forms both admit the instruction and additionally
/// steer it to the matching side of a hybrid predictor.
///
/// # Examples
///
/// ```
/// use vp_isa::Directive;
/// assert!(!Directive::None.is_predictable());
/// assert!(Directive::Stride.is_predictable());
/// assert_eq!(Directive::LastValue.to_string(), "lv");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Directive {
    /// No hint: the instruction is not recommended for value prediction.
    #[default]
    None,
    /// The instruction tends to repeat its most recently produced value.
    LastValue,
    /// The instruction tends to produce values separated by a constant,
    /// non-zero stride.
    Stride,
}

impl Directive {
    /// All directive values, in encoding order.
    pub const ALL: [Directive; 3] = [Directive::None, Directive::LastValue, Directive::Stride];

    /// Whether the directive recommends the instruction for value prediction.
    #[must_use]
    pub fn is_predictable(self) -> bool {
        self != Directive::None
    }

    /// The 2-bit field used in the binary instruction encoding.
    #[must_use]
    pub fn encode(self) -> u8 {
        match self {
            Directive::None => 0,
            Directive::LastValue => 1,
            Directive::Stride => 2,
        }
    }

    /// Decodes the 2-bit encoding field.
    ///
    /// Returns `None` for the reserved pattern `3` (and anything wider than
    /// two bits).
    #[must_use]
    pub fn decode(bits: u8) -> Option<Self> {
        match bits {
            0 => Some(Directive::None),
            1 => Some(Directive::LastValue),
            2 => Some(Directive::Stride),
            _ => None,
        }
    }

    /// The assembly-syntax suffix for this directive (empty for
    /// [`Directive::None`]).
    ///
    /// The text assembler writes a `stride`-tagged `add` as `add.st` and a
    /// `last-value`-tagged one as `add.lv`.
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            Directive::None => "",
            Directive::LastValue => ".lv",
            Directive::Stride => ".st",
        }
    }
}

impl fmt::Display for Directive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Directive::None => "none",
            Directive::LastValue => "lv",
            Directive::Stride => "st",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        for d in Directive::ALL {
            assert_eq!(Directive::decode(d.encode()), Some(d));
        }
    }

    #[test]
    fn decode_rejects_reserved_pattern() {
        assert_eq!(Directive::decode(3), None);
        assert_eq!(Directive::decode(255), None);
    }

    #[test]
    fn predictability() {
        assert!(!Directive::None.is_predictable());
        assert!(Directive::LastValue.is_predictable());
        assert!(Directive::Stride.is_predictable());
    }

    #[test]
    fn default_is_none() {
        assert_eq!(Directive::default(), Directive::None);
    }

    #[test]
    fn suffixes_are_distinct() {
        assert_eq!(Directive::None.suffix(), "");
        assert_eq!(Directive::LastValue.suffix(), ".lv");
        assert_eq!(Directive::Stride.suffix(), ".st");
    }
}
