//! Architectural register names.
//!
//! The machine has 32 integer registers and 32 floating-point registers.
//! A [`Reg`] is a bare index 0..=31; whether it names an integer or an FP
//! register is decided by the opcode that uses it (see
//! [`crate::Opcode::dest_class`]). Integer register 0 is hardwired to zero,
//! as on MIPS/RISC-V: writes to it are discarded and reads always return 0.

use std::fmt;

/// Number of registers in each register file.
pub const NUM_REGS: usize = 32;

/// An architectural register index (0..=31).
///
/// The register *class* (integer or floating-point) is a property of the
/// instruction, not of the index — exactly like the shared 5-bit register
/// fields of a classic RISC encoding.
///
/// # Examples
///
/// ```
/// use vp_isa::Reg;
/// let r5 = Reg::new(5);
/// assert_eq!(r5.index(), 5);
/// assert_eq!(r5.to_string(), "r5");
/// assert!(Reg::ZERO.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero integer register `r0`.
    pub const ZERO: Reg = Reg(0);

    /// Creates a register from an index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_REGS,
            "register index {index} out of range (0..{NUM_REGS})"
        );
        Reg(index)
    }

    /// Fallible constructor; returns `None` if `index >= 32`.
    #[must_use]
    pub fn try_new(index: u8) -> Option<Self> {
        ((index as usize) < NUM_REGS).then_some(Reg(index))
    }

    /// The raw index, 0..=31.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hardwired-zero register `r0`.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<Reg> for usize {
    fn from(r: Reg) -> usize {
        r.0 as usize
    }
}

/// Iterator over every register index, `r0` through `r31`.
///
/// ```
/// assert_eq!(vp_isa::reg::all().count(), 32);
/// ```
pub fn all() -> impl Iterator<Item = Reg> {
    (0..NUM_REGS as u8).map(Reg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        for i in 0..32 {
            assert_eq!(Reg::new(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn try_new_boundary() {
        assert_eq!(Reg::try_new(31), Some(Reg::new(31)));
        assert_eq!(Reg::try_new(32), None);
    }

    #[test]
    fn zero_register_identity() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::new(1).is_zero());
        assert_eq!(Reg::default(), Reg::ZERO);
    }

    #[test]
    fn display_format() {
        assert_eq!(Reg::new(17).to_string(), "r17");
    }

    #[test]
    fn all_yields_each_register_once() {
        let regs: Vec<Reg> = all().collect();
        assert_eq!(regs.len(), NUM_REGS);
        assert_eq!(regs[0], Reg::ZERO);
        assert_eq!(regs[31], Reg::new(31));
    }
}
