//! Error types for program construction, assembly and encoding.

use std::error::Error;
use std::fmt;

use crate::InstrAddr;

/// Errors produced while building, assembling, encoding or decoding programs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// A label was referenced but never bound to an address.
    UnboundLabel {
        /// Index of the offending label.
        label: usize,
        /// Site of the reference.
        at: InstrAddr,
    },
    /// A label was bound twice.
    RebindLabel {
        /// Index of the offending label.
        label: usize,
    },
    /// An immediate operand does not fit the 32-bit encoded field.
    ImmOutOfRange {
        /// The out-of-range value.
        value: i64,
    },
    /// A binary word failed to decode.
    BadEncoding {
        /// The word that failed to decode.
        word: u64,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A text-assembly parse error.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Human-readable message.
        message: String,
    },
    /// The program has no `halt` on any path (detected: no halt at all).
    MissingHalt,
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::UnboundLabel { label, at } => {
                write!(f, "label L{label} referenced at {at} was never bound")
            }
            IsaError::RebindLabel { label } => write!(f, "label L{label} bound more than once"),
            IsaError::ImmOutOfRange { value } => {
                write!(f, "immediate {value} does not fit the 32-bit encoded field")
            }
            IsaError::BadEncoding { word, reason } => {
                write!(f, "cannot decode word {word:#018x}: {reason}")
            }
            IsaError::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
            IsaError::MissingHalt => write!(f, "program contains no halt instruction"),
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = IsaError::UnboundLabel {
            label: 3,
            at: InstrAddr::new(7),
        };
        assert!(e.to_string().contains("L3"));
        assert!(e.to_string().contains("@7"));
        let e = IsaError::ImmOutOfRange { value: 1 << 40 };
        assert!(e.to_string().contains("32-bit"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IsaError>();
    }
}
