//! Instructions and static instruction addresses.

use std::fmt;

use crate::opcode::Format;
use crate::{Directive, Opcode, Reg, RegClass};

/// The static address of an instruction: its index in the program text.
///
/// Profile images are keyed by `InstrAddr`, mirroring the paper's profile
/// file whose rows are `(instruction address, prediction accuracy, stride
/// efficiency ratio)`.
///
/// ```
/// use vp_isa::InstrAddr;
/// let a = InstrAddr::new(7);
/// assert_eq!(a.index(), 7);
/// assert_eq!(a.next(), InstrAddr::new(8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct InstrAddr(u32);

impl InstrAddr {
    /// Creates an instruction address from a text index.
    #[must_use]
    pub fn new(index: u32) -> Self {
        InstrAddr(index)
    }

    /// The raw text index.
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }

    /// The address of the sequentially following instruction.
    #[must_use]
    pub fn next(self) -> Self {
        InstrAddr(self.0 + 1)
    }

    /// Applies a signed branch offset.
    ///
    /// Returns `None` on under/overflow, which the simulator reports as a
    /// control-flow fault.
    #[must_use]
    pub fn offset(self, delta: i32) -> Option<Self> {
        let idx = i64::from(self.0) + i64::from(delta);
        u32::try_from(idx).ok().map(InstrAddr)
    }
}

impl fmt::Display for InstrAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl From<InstrAddr> for usize {
    fn from(a: InstrAddr) -> usize {
        a.0 as usize
    }
}

/// A decoded instruction.
///
/// Operand fields that the opcode's [`Format`] does not use are ignored by
/// the semantics and canonicalised to zero by the encoder; two instructions
/// that differ only in unused fields behave identically.
///
/// # Examples
///
/// ```
/// use vp_isa::{Instr, Opcode, Reg, Directive};
/// let i = Instr::alu_ri(Opcode::Addi, Reg::new(3), Reg::new(3), 1)
///     .with_directive(Directive::Stride);
/// assert!(i.writes_dest());
/// assert_eq!(i.directive, Directive::Stride);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instr {
    /// Operation code.
    pub op: Opcode,
    /// Destination register (when the format has one).
    pub rd: Reg,
    /// First source register (when the format has one).
    pub rs1: Reg,
    /// Second source register (when the format has one).
    pub rs2: Reg,
    /// Immediate operand (branch offsets are PC-relative instruction counts).
    pub imm: i64,
    /// Value-prediction directive carried in the opcode.
    pub directive: Directive,
}

impl Instr {
    /// Creates an instruction with every operand field given explicitly and
    /// no directive.
    #[must_use]
    pub fn new(op: Opcode, rd: Reg, rs1: Reg, rs2: Reg, imm: i64) -> Self {
        Instr {
            op,
            rd,
            rs1,
            rs2,
            imm,
            directive: Directive::None,
        }
    }

    /// `op rd, rs1, rs2` (register-register ALU / FP arithmetic).
    #[must_use]
    pub fn alu_rr(op: Opcode, rd: Reg, rs1: Reg, rs2: Reg) -> Self {
        debug_assert_eq!(op.format(), Format::R3);
        Instr::new(op, rd, rs1, rs2, 0)
    }

    /// `op rd, rs1, imm` (register-immediate ALU, `jalr`).
    #[must_use]
    pub fn alu_ri(op: Opcode, rd: Reg, rs1: Reg, imm: i64) -> Self {
        debug_assert_eq!(op.format(), Format::R2Imm);
        Instr::new(op, rd, rs1, Reg::ZERO, imm)
    }

    /// `op rd, rs1` (moves, conversions, negation).
    #[must_use]
    pub fn unary(op: Opcode, rd: Reg, rs1: Reg) -> Self {
        debug_assert_eq!(op.format(), Format::R2);
        Instr::new(op, rd, rs1, Reg::ZERO, 0)
    }

    /// `li rd, imm` / `jal rd, target`.
    #[must_use]
    pub fn rd_imm(op: Opcode, rd: Reg, imm: i64) -> Self {
        debug_assert_eq!(op.format(), Format::RdImm);
        Instr::new(op, rd, Reg::ZERO, Reg::ZERO, imm)
    }

    /// `ld/fld rd, imm(rs1)`.
    #[must_use]
    pub fn load(op: Opcode, rd: Reg, base: Reg, imm: i64) -> Self {
        debug_assert_eq!(op.format(), Format::Mem);
        Instr::new(op, rd, base, Reg::ZERO, imm)
    }

    /// `sd/fsd rs2, imm(rs1)`.
    #[must_use]
    pub fn store(op: Opcode, value: Reg, base: Reg, imm: i64) -> Self {
        debug_assert_eq!(op.format(), Format::MemStore);
        Instr::new(op, Reg::ZERO, base, value, imm)
    }

    /// `beq/bne/... rs1, rs2, offset` with a PC-relative offset.
    #[must_use]
    pub fn branch(op: Opcode, rs1: Reg, rs2: Reg, offset: i64) -> Self {
        debug_assert_eq!(op.format(), Format::BranchFmt);
        Instr::new(op, Reg::ZERO, rs1, rs2, offset)
    }

    /// A `nop`.
    #[must_use]
    pub fn nop() -> Self {
        Instr::new(Opcode::Nop, Reg::ZERO, Reg::ZERO, Reg::ZERO, 0)
    }

    /// A `halt`.
    #[must_use]
    pub fn halt() -> Self {
        Instr::new(Opcode::Halt, Reg::ZERO, Reg::ZERO, Reg::ZERO, 0)
    }

    /// Returns a copy carrying the given value-prediction directive.
    #[must_use]
    pub fn with_directive(mut self, directive: Directive) -> Self {
        self.directive = directive;
        self
    }

    /// The destination register and its class, if this instruction produces
    /// an architecturally visible value.
    ///
    /// Writes to the hardwired integer zero register are discarded, so an
    /// integer-destination instruction with `rd == r0` returns `None` — such
    /// an instruction is *not* a value-prediction candidate.
    #[must_use]
    pub fn dest(&self) -> Option<(RegClass, Reg)> {
        let class = self.op.dest_class()?;
        if class == RegClass::Int && self.rd.is_zero() {
            return None;
        }
        Some((class, self.rd))
    }

    /// Whether this instruction produces an architecturally visible value —
    /// the paper's criterion for value-prediction candidacy.
    #[must_use]
    pub fn writes_dest(&self) -> bool {
        self.dest().is_some()
    }

    /// Source registers actually read by this instruction, with classes.
    ///
    /// At most two. Reads of the integer zero register are still reported
    /// (they carry no dependency; the ILP analyser filters them).
    #[must_use]
    pub fn sources(&self) -> [Option<(RegClass, Reg)>; 2] {
        [
            self.op.src1_class().map(|c| (c, self.rs1)),
            self.op.src2_class().map(|c| (c, self.rs2)),
        ]
    }

    /// Canonicalises unused operand fields to zero.
    ///
    /// The binary encoder emits canonical instructions; the assembler and
    /// builder already produce them. Useful when comparing instructions for
    /// semantic equality.
    #[must_use]
    pub fn canonical(mut self) -> Self {
        match self.op.format() {
            Format::R3 => self.imm = 0,
            Format::R2Imm => self.rs2 = Reg::ZERO,
            Format::R2 => {
                self.rs2 = Reg::ZERO;
                self.imm = 0;
            }
            Format::RdImm => {
                self.rs1 = Reg::ZERO;
                self.rs2 = Reg::ZERO;
            }
            Format::Mem => self.rs2 = Reg::ZERO,
            Format::MemStore | Format::BranchFmt => self.rd = Reg::ZERO,
            Format::NoOperands => {
                self.rd = Reg::ZERO;
                self.rs1 = Reg::ZERO;
                self.rs2 = Reg::ZERO;
                self.imm = 0;
            }
        }
        self
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.op.mnemonic();
        let d = self.directive.suffix();
        match self.op.format() {
            Format::R3 => write!(f, "{m}{d} {}, {}, {}", self.rd, self.rs1, self.rs2),
            Format::R2Imm => write!(f, "{m}{d} {}, {}, {}", self.rd, self.rs1, self.imm),
            Format::R2 => write!(f, "{m}{d} {}, {}", self.rd, self.rs1),
            Format::RdImm => write!(f, "{m}{d} {}, {}", self.rd, self.imm),
            Format::Mem => write!(f, "{m}{d} {}, {}({})", self.rd, self.imm, self.rs1),
            Format::MemStore => write!(f, "{m} {}, {}({})", self.rs2, self.imm, self.rs1),
            Format::BranchFmt => write!(f, "{m} {}, {}, {}", self.rs1, self.rs2, self.imm),
            Format::NoOperands => write!(f, "{m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_next_and_offset() {
        let a = InstrAddr::new(10);
        assert_eq!(a.next().index(), 11);
        assert_eq!(a.offset(-10), Some(InstrAddr::new(0)));
        assert_eq!(a.offset(-11), None);
        assert_eq!(a.offset(5), Some(InstrAddr::new(15)));
    }

    #[test]
    fn dest_of_zero_reg_int_write_is_discarded() {
        let i = Instr::alu_rr(Opcode::Add, Reg::ZERO, Reg::new(1), Reg::new(2));
        assert_eq!(i.dest(), None);
        assert!(!i.writes_dest());
    }

    #[test]
    fn fp_zero_register_is_a_real_register() {
        // Only the *integer* r0 is hardwired; f0 is ordinary.
        let i = Instr::alu_rr(Opcode::Fadd, Reg::ZERO, Reg::new(1), Reg::new(2));
        assert_eq!(i.dest(), Some((RegClass::Fp, Reg::ZERO)));
    }

    #[test]
    fn sources_match_format() {
        let ld = Instr::load(Opcode::Ld, Reg::new(4), Reg::new(2), 8);
        let srcs = ld.sources();
        assert_eq!(srcs[0], Some((RegClass::Int, Reg::new(2))));
        assert_eq!(srcs[1], None);

        let sd = Instr::store(Opcode::Fsd, Reg::new(7), Reg::new(2), 0);
        let srcs = sd.sources();
        assert_eq!(srcs[0], Some((RegClass::Int, Reg::new(2))));
        assert_eq!(srcs[1], Some((RegClass::Fp, Reg::new(7))));
    }

    #[test]
    fn canonical_zeroes_unused_fields() {
        let messy = Instr {
            imm: 99,
            ..Instr::alu_rr(Opcode::Add, Reg::new(1), Reg::new(2), Reg::new(3))
        };
        assert_eq!(messy.canonical().imm, 0);
        let messy = Instr {
            rd: Reg::new(9),
            ..Instr::branch(Opcode::Beq, Reg::new(1), Reg::new(2), -4)
        };
        assert_eq!(messy.canonical().rd, Reg::ZERO);
    }

    #[test]
    fn display_covers_each_format() {
        assert_eq!(
            Instr::alu_rr(Opcode::Add, Reg::new(1), Reg::new(2), Reg::new(3)).to_string(),
            "add r1, r2, r3"
        );
        assert_eq!(
            Instr::alu_ri(Opcode::Addi, Reg::new(1), Reg::new(1), -2).to_string(),
            "addi r1, r1, -2"
        );
        assert_eq!(
            Instr::load(Opcode::Ld, Reg::new(4), Reg::new(5), 16).to_string(),
            "ld r4, 16(r5)"
        );
        assert_eq!(
            Instr::store(Opcode::Sd, Reg::new(4), Reg::new(5), 0).to_string(),
            "sd r4, 0(r5)"
        );
        assert_eq!(
            Instr::branch(Opcode::Bne, Reg::new(1), Reg::new(0), -3).to_string(),
            "bne r1, r0, -3"
        );
        assert_eq!(Instr::halt().to_string(), "halt");
        assert_eq!(
            Instr::alu_ri(Opcode::Addi, Reg::new(3), Reg::new(3), 1)
                .with_directive(Directive::Stride)
                .to_string(),
            "addi.st r3, r3, 1"
        );
    }
}
