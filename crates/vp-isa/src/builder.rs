//! An ergonomic program builder with forward-reference labels.
//!
//! Workload generators in `vp-workloads` construct their programs through
//! [`ProgramBuilder`], which plays the role of the paper's phase-1 compiler
//! back end: it emits straight-line RISC code with resolved branch offsets
//! and a data image.

use std::collections::HashMap;

use crate::{Instr, InstrAddr, IsaError, Opcode, Program, Reg};

/// A forward-referenceable branch target.
///
/// Create with [`ProgramBuilder::new_label`], bind with
/// [`ProgramBuilder::bind`], reference from branch/jump emitters. Unbound
/// labels are reported by [`ProgramBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Incremental builder for [`Program`]s.
///
/// # Examples
///
/// A count-down loop:
///
/// ```
/// use vp_isa::{ProgramBuilder, Reg, Opcode};
///
/// let mut b = ProgramBuilder::new();
/// let i = Reg::new(1);
/// b.li(i, 10);
/// let top = b.bind_new_label();
/// b.alu_ri(Opcode::Addi, i, i, -1);
/// b.br(Opcode::Bne, i, Reg::ZERO, top);
/// b.halt();
/// let p = b.build().unwrap();
/// assert_eq!(p.len(), 4);
/// // The backward branch offset resolved to -1.
/// assert_eq!(p.text()[2].imm, -1);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    text: Vec<Instr>,
    data: Vec<u64>,
    bound: HashMap<usize, InstrAddr>,
    // (site, label) pairs whose imm must become `label - site`.
    fixups: Vec<(InstrAddr, usize)>,
    next_label: usize,
}

impl ProgramBuilder {
    /// Creates an empty builder with the default program name `"anon"`.
    #[must_use]
    pub fn new() -> Self {
        ProgramBuilder {
            name: "anon".to_owned(),
            ..Default::default()
        }
    }

    /// Creates an empty builder with a program name.
    #[must_use]
    pub fn named(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Address the next emitted instruction will receive.
    #[must_use]
    pub fn here(&self) -> InstrAddr {
        InstrAddr::new(self.text.len() as u32)
    }

    /// Emits a raw instruction and returns its address.
    pub fn emit(&mut self, instr: Instr) -> InstrAddr {
        let at = self.here();
        self.text.push(instr);
        at
    }

    // ----- labels ---------------------------------------------------------

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound (a builder bug, not an input
    /// error).
    pub fn bind(&mut self, label: Label) {
        let prev = self.bound.insert(label.0, self.here());
        assert!(prev.is_none(), "label L{} bound more than once", label.0);
    }

    /// Convenience: creates a label and binds it here.
    pub fn bind_new_label(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    // ----- data segment ---------------------------------------------------

    /// Appends one word to the data image; returns its word address.
    pub fn data_word(&mut self, w: u64) -> u64 {
        self.data.push(w);
        (self.data.len() - 1) as u64
    }

    /// Appends a block of words; returns the base word address.
    pub fn data_block(&mut self, words: impl IntoIterator<Item = u64>) -> u64 {
        let base = self.data.len() as u64;
        self.data.extend(words);
        base
    }

    /// Appends `len` zero words; returns the base word address.
    pub fn data_zeroed(&mut self, len: usize) -> u64 {
        self.data_block(std::iter::repeat_n(0, len))
    }

    /// Appends a block of doubles (stored as raw bits); returns the base.
    pub fn data_f64(&mut self, values: impl IntoIterator<Item = f64>) -> u64 {
        self.data_block(values.into_iter().map(f64::to_bits))
    }

    /// Current length of the data image in words.
    #[must_use]
    pub fn data_len(&self) -> usize {
        self.data.len()
    }

    // ----- instruction emitters --------------------------------------------

    /// `li rd, imm`
    pub fn li(&mut self, rd: Reg, imm: i64) -> InstrAddr {
        self.emit(Instr::rd_imm(Opcode::Li, rd, imm))
    }

    /// `mv rd, rs`
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> InstrAddr {
        self.emit(Instr::unary(Opcode::Mv, rd, rs))
    }

    /// Register-register ALU / FP arithmetic: `op rd, rs1, rs2`.
    pub fn alu_rr(&mut self, op: Opcode, rd: Reg, rs1: Reg, rs2: Reg) -> InstrAddr {
        self.emit(Instr::alu_rr(op, rd, rs1, rs2))
    }

    /// Register-immediate ALU: `op rd, rs1, imm`.
    pub fn alu_ri(&mut self, op: Opcode, rd: Reg, rs1: Reg, imm: i64) -> InstrAddr {
        self.emit(Instr::alu_ri(op, rd, rs1, imm))
    }

    /// Unary register ops (`mv`, `fneg`, `fmv`, conversions).
    pub fn unary(&mut self, op: Opcode, rd: Reg, rs: Reg) -> InstrAddr {
        self.emit(Instr::unary(op, rd, rs))
    }

    /// `ld rd, imm(base)`
    pub fn ld(&mut self, rd: Reg, base: Reg, imm: i64) -> InstrAddr {
        self.emit(Instr::load(Opcode::Ld, rd, base, imm))
    }

    /// `sd value, imm(base)`
    pub fn sd(&mut self, value: Reg, base: Reg, imm: i64) -> InstrAddr {
        self.emit(Instr::store(Opcode::Sd, value, base, imm))
    }

    /// `fld rd, imm(base)`
    pub fn fld(&mut self, rd: Reg, base: Reg, imm: i64) -> InstrAddr {
        self.emit(Instr::load(Opcode::Fld, rd, base, imm))
    }

    /// `fsd value, imm(base)`
    pub fn fsd(&mut self, value: Reg, base: Reg, imm: i64) -> InstrAddr {
        self.emit(Instr::store(Opcode::Fsd, value, base, imm))
    }

    /// Conditional branch to a label: `op rs1, rs2, label`.
    pub fn br(&mut self, op: Opcode, rs1: Reg, rs2: Reg, target: Label) -> InstrAddr {
        debug_assert!(op.is_branch(), "{op} is not a branch");
        let at = self.emit(Instr::branch(op, rs1, rs2, 0));
        self.fixups.push((at, target.0));
        at
    }

    /// `jal rd, label`
    pub fn jal(&mut self, rd: Reg, target: Label) -> InstrAddr {
        let at = self.emit(Instr::rd_imm(Opcode::Jal, rd, 0));
        self.fixups.push((at, target.0));
        at
    }

    /// `jalr rd, rs1, imm` — indirect jump to the address in `rs1 + imm`.
    pub fn jalr(&mut self, rd: Reg, rs1: Reg, imm: i64) -> InstrAddr {
        self.emit(Instr::alu_ri(Opcode::Jalr, rd, rs1, imm))
    }

    /// `nop`
    pub fn nop(&mut self) -> InstrAddr {
        self.emit(Instr::nop())
    }

    /// `halt`
    pub fn halt(&mut self) -> InstrAddr {
        self.emit(Instr::halt())
    }

    // ----- finalisation -----------------------------------------------------

    /// Resolves label fixups and produces the program.
    ///
    /// # Errors
    ///
    /// - [`IsaError::UnboundLabel`] if a referenced label was never bound.
    /// - [`IsaError::MissingHalt`] if the program contains no `halt`
    ///   instruction anywhere (such a program cannot terminate).
    pub fn build(mut self) -> Result<Program, IsaError> {
        for &(site, label) in &self.fixups {
            let target = *self
                .bound
                .get(&label)
                .ok_or(IsaError::UnboundLabel { label, at: site })?;
            let delta = i64::from(target.index()) - i64::from(site.index());
            self.text[site.index() as usize].imm = delta;
        }
        if !self.text.iter().any(|i| i.op == Opcode::Halt) {
            return Err(IsaError::MissingHalt);
        }
        Ok(Program::new(self.name, self.text, self.data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new();
        let end = b.new_label();
        let r1 = Reg::new(1);
        b.li(r1, 3);
        let top = b.bind_new_label(); // @1
        b.alu_ri(Opcode::Addi, r1, r1, -1); // @1
        b.br(Opcode::Beq, r1, Reg::ZERO, end); // @2 -> @4 : +2
        b.br(Opcode::Bne, r1, Reg::ZERO, top); // @3 -> @1 : -2
        b.bind(end);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.text()[2].imm, 2);
        assert_eq!(p.text()[3].imm, -2);
    }

    #[test]
    fn unbound_label_is_reported() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.br(Opcode::Beq, Reg::ZERO, Reg::ZERO, l);
        b.halt();
        match b.build() {
            Err(IsaError::UnboundLabel { at, .. }) => assert_eq!(at, InstrAddr::new(0)),
            other => panic!("expected UnboundLabel, got {other:?}"),
        }
    }

    #[test]
    fn missing_halt_is_reported() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::new(1), 1);
        assert_eq!(b.build().unwrap_err(), IsaError::MissingHalt);
    }

    #[test]
    fn data_helpers_return_addresses() {
        let mut b = ProgramBuilder::new();
        assert_eq!(b.data_word(42), 0);
        assert_eq!(b.data_block([1, 2, 3]), 1);
        assert_eq!(b.data_zeroed(2), 4);
        assert_eq!(b.data_f64([1.5]), 6);
        assert_eq!(b.data_len(), 7);
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.data()[6], 1.5f64.to_bits());
    }

    #[test]
    #[should_panic(expected = "bound more than once")]
    fn rebinding_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn jal_fixup_resolves() {
        let mut b = ProgramBuilder::new();
        let f = b.new_label();
        b.jal(Reg::new(31), f); // @0 -> @2 : +2
        b.halt(); // @1
        b.bind(f);
        b.halt(); // @2
        let p = b.build().unwrap();
        assert_eq!(p.text()[0].imm, 2);
    }
}
