//! Executable programs: a text segment, an initial data image and a name.

use std::fmt;

use crate::{Directive, Instr, InstrAddr};

/// An executable program.
///
/// - The **text** segment is a vector of instructions addressed by
///   [`InstrAddr`] (instruction index, starting at 0, which is also the entry
///   point).
/// - The **data** image is a vector of 64-bit words loaded at memory address
///   0 before execution. The machine's memory is *word*-addressed.
///
/// Programs are immutable once built; the phase-3 annotation pass produces a
/// new program via [`Program::with_directives`], mirroring the paper's
/// compiler which "only inserts directives in the opcode of instructions"
/// without moving any code.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    name: String,
    text: Vec<Instr>,
    data: Vec<u64>,
}

impl Program {
    /// Creates a program from raw segments.
    #[must_use]
    pub fn new(name: impl Into<String>, text: Vec<Instr>, data: Vec<u64>) -> Self {
        Program {
            name: name.into(),
            text,
            data,
        }
    }

    /// The program name (used to label experiment output).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The text segment.
    #[must_use]
    pub fn text(&self) -> &[Instr] {
        &self.text
    }

    /// The initial data image, loaded at word address 0.
    #[must_use]
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    /// Fetches the instruction at `addr`, if in range.
    #[must_use]
    pub fn fetch(&self, addr: InstrAddr) -> Option<&Instr> {
        self.text.get(addr.index() as usize)
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether the text segment is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Iterates over `(address, instruction)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (InstrAddr, &Instr)> {
        self.text
            .iter()
            .enumerate()
            .map(|(i, ins)| (InstrAddr::new(i as u32), ins))
    }

    /// Iterates over the static instructions that produce a register value —
    /// the value-prediction candidates the profile image describes.
    pub fn value_producers(&self) -> impl Iterator<Item = (InstrAddr, &Instr)> {
        self.iter().filter(|(_, ins)| ins.writes_dest())
    }

    /// Returns a copy of this program whose instructions carry the
    /// directives given by `assign`.
    ///
    /// `assign` is consulted for every *value-producing* static instruction;
    /// other instructions keep [`Directive::None`]. This is the mechanical
    /// half of the paper's phase 3.
    #[must_use]
    pub fn with_directives(&self, mut assign: impl FnMut(InstrAddr, &Instr) -> Directive) -> Self {
        let text = self
            .text
            .iter()
            .enumerate()
            .map(|(i, ins)| {
                if ins.writes_dest() {
                    ins.with_directive(assign(InstrAddr::new(i as u32), ins))
                } else {
                    ins.with_directive(Directive::None)
                }
            })
            .collect();
        Program {
            name: self.name.clone(),
            text,
            data: self.data.clone(),
        }
    }

    /// Strips every directive, returning the phase-1 (unannotated) binary.
    #[must_use]
    pub fn without_directives(&self) -> Self {
        self.with_directives(|_, _| Directive::None)
    }

    /// Returns the addresses of instructions whose static control flow is
    /// ill-formed: PC-relative branch/jump targets outside the text
    /// segment, or a fallthrough off the end of text by a non-control
    /// instruction (including the final instruction when it is not `halt`
    /// or an unconditional jump).
    ///
    /// An empty result means every statically-known successor stays inside
    /// the program, so the only possible [`Jalr`](crate::Opcode::Jalr)
    /// faults are data-dependent. Program generators and trace shrinkers
    /// use this to produce (and preserve) well-formed control flow without
    /// re-running the simulator.
    #[must_use]
    pub fn control_flow_violations(&self) -> Vec<InstrAddr> {
        let len = self.text.len();
        let in_text = |addr: Option<InstrAddr>| addr.is_some_and(|a| (a.index() as usize) < len);
        let mut bad = Vec::new();
        for (addr, ins) in self.iter() {
            let target_ok = match ins.op {
                op if op.is_branch() || op == crate::Opcode::Jal => i32::try_from(ins.imm)
                    .ok()
                    .is_some_and(|d| in_text(addr.offset(d))),
                // Jalr targets are register values; unverifiable statically.
                _ => true,
            };
            // Everything except halt and jal falls through (conditional
            // branches fall through when not taken; jalr never does, but
            // its dynamic target is unverifiable anyway, so require the
            // static successor too).
            let fallthrough_ok = match ins.op {
                crate::Opcode::Halt | crate::Opcode::Jal => true,
                _ => (addr.index() as usize) + 1 < len,
            };
            if !target_ok || !fallthrough_ok {
                bad.push(addr);
            }
        }
        bad
    }

    /// Counts instructions carrying each directive: `(none, last_value,
    /// stride)`.
    #[must_use]
    pub fn directive_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for ins in &self.text {
            match ins.directive {
                Directive::None => counts.0 += 1,
                Directive::LastValue => counts.1 += 1,
                Directive::Stride => counts.2 += 1,
            }
        }
        counts
    }
}

impl fmt::Display for Program {
    /// Renders the program in (dis)assembler syntax accepted by
    /// [`crate::asm::assemble`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; program: {}", self.name)?;
        if !self.data.is_empty() {
            write!(f, ".data")?;
            for w in &self.data {
                write!(f, " {w}")?;
            }
            writeln!(f)?;
        }
        for (addr, ins) in self.iter() {
            writeln!(f, "  {ins:<32} ; {addr}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Opcode, Reg};

    fn sample() -> Program {
        Program::new(
            "sample",
            vec![
                Instr::rd_imm(Opcode::Li, Reg::new(1), 5),
                Instr::alu_rr(Opcode::Add, Reg::new(2), Reg::new(1), Reg::new(1)),
                Instr::store(Opcode::Sd, Reg::new(2), Reg::ZERO, 0),
                Instr::halt(),
            ],
            vec![1, 2, 3],
        )
    }

    #[test]
    fn fetch_in_and_out_of_range() {
        let p = sample();
        assert!(p.fetch(InstrAddr::new(0)).is_some());
        assert!(p.fetch(InstrAddr::new(4)).is_none());
    }

    #[test]
    fn value_producers_excludes_stores_and_halt() {
        let p = sample();
        let producers: Vec<_> = p.value_producers().map(|(a, _)| a.index()).collect();
        assert_eq!(producers, vec![0, 1]);
    }

    #[test]
    fn with_directives_tags_only_producers() {
        let p = sample();
        let tagged = p.with_directives(|_, _| Directive::Stride);
        assert_eq!(tagged.directive_counts(), (2, 0, 2));
        // The store and halt keep Directive::None.
        assert_eq!(tagged.text()[2].directive, Directive::None);
        assert_eq!(tagged.text()[3].directive, Directive::None);
    }

    #[test]
    fn without_directives_round_trips() {
        let p = sample();
        let tagged = p.with_directives(|_, _| Directive::LastValue);
        assert_eq!(tagged.without_directives(), p);
    }

    #[test]
    fn control_flow_validation_flags_escapes() {
        // Well-formed: a backward branch and a final halt.
        let good = Program::new(
            "good",
            vec![
                Instr::rd_imm(Opcode::Li, Reg::new(1), 2),
                Instr::alu_ri(Opcode::Addi, Reg::new(1), Reg::new(1), -1),
                Instr::branch(Opcode::Bne, Reg::new(1), Reg::ZERO, -1),
                Instr::halt(),
            ],
            vec![],
        );
        assert!(good.control_flow_violations().is_empty());

        // A branch past the end of text.
        let escaping_branch = Program::new(
            "bad-branch",
            vec![
                Instr::branch(Opcode::Beq, Reg::ZERO, Reg::ZERO, 10),
                Instr::halt(),
            ],
            vec![],
        );
        assert_eq!(
            escaping_branch.control_flow_violations(),
            vec![InstrAddr::new(0)]
        );

        // A final instruction that falls off the end of text.
        let no_halt = Program::new(
            "bad-tail",
            vec![Instr::rd_imm(Opcode::Li, Reg::new(1), 1)],
            vec![],
        );
        assert_eq!(no_halt.control_flow_violations(), vec![InstrAddr::new(0)]);

        // A jal with an in-range target is fine even in the last slot.
        let jal_tail = Program::new(
            "jal-tail",
            vec![Instr::halt(), Instr::rd_imm(Opcode::Jal, Reg::new(1), -1)],
            vec![],
        );
        assert!(jal_tail.control_flow_violations().is_empty());
    }

    #[test]
    fn display_includes_data_and_text() {
        let rendered = sample().to_string();
        assert!(rendered.contains(".data 1 2 3"));
        assert!(rendered.contains("li r1, 5"));
        assert!(rendered.contains("halt"));
    }
}
