//! Binary instruction encoding.
//!
//! Every instruction packs into one 64-bit word:
//!
//! ```text
//!  63        32 31    28 27  26 25   20 19   14 13    8 7      0
//! +------------+--------+------+-------+-------+-------+--------+
//! |   imm:i32  | resv=0 | dir  |  rs2  |  rs1  |  rd   | opcode |
//! +------------+--------+------+-------+-------+-------+--------+
//! ```
//!
//! The two `dir` bits are the **value-prediction directive** field — the
//! architectural mechanism of the paper's phase 3, analogous to the PowerPC
//! 601's branch-hint opcode bits. A phase-3 "recompile" therefore changes
//! only these two bits of each tagged word; `text_delta` in this module
//! verifies exactly that.
//!
//! Encoding canonicalises unused operand fields to zero
//! ([`crate::Instr::canonical`]), so decode∘encode is the identity on
//! canonical instructions.

use crate::{Directive, Instr, IsaError, Opcode, Program, Reg};

const OPCODE_SHIFT: u32 = 0;
const RD_SHIFT: u32 = 8;
const RS1_SHIFT: u32 = 14;
const RS2_SHIFT: u32 = 20;
const DIR_SHIFT: u32 = 26;
const RESERVED_SHIFT: u32 = 28;
const IMM_SHIFT: u32 = 32;

const REG_MASK: u64 = 0x3f;
const DIR_MASK: u64 = 0x3;
const RESERVED_MASK: u64 = 0xf;

/// Encodes one instruction into a 64-bit word.
///
/// The instruction is canonicalised first, so unused operand fields never
/// leak into the encoding.
///
/// # Errors
///
/// [`IsaError::ImmOutOfRange`] if the immediate does not fit in 32 signed
/// bits.
pub fn encode(instr: &Instr) -> Result<u64, IsaError> {
    let instr = instr.canonical();
    let imm32 =
        i32::try_from(instr.imm).map_err(|_| IsaError::ImmOutOfRange { value: instr.imm })?;
    let word = u64::from(instr.op as u8) << OPCODE_SHIFT
        | u64::from(instr.rd.index()) << RD_SHIFT
        | u64::from(instr.rs1.index()) << RS1_SHIFT
        | u64::from(instr.rs2.index()) << RS2_SHIFT
        | u64::from(instr.directive.encode()) << DIR_SHIFT
        | u64::from(imm32 as u32) << IMM_SHIFT;
    Ok(word)
}

/// Decodes one 64-bit word into an instruction.
///
/// # Errors
///
/// [`IsaError::BadEncoding`] when the opcode byte is unknown, a register
/// field exceeds 31, the directive field holds the reserved pattern, or the
/// reserved bits are non-zero.
pub fn decode(word: u64) -> Result<Instr, IsaError> {
    let bad = |reason| IsaError::BadEncoding { word, reason };
    let op = Opcode::from_u8((word >> OPCODE_SHIFT) as u8).ok_or_else(|| bad("unknown opcode"))?;
    let reg = |shift: u32, what: &'static str| -> Result<Reg, IsaError> {
        Reg::try_new(((word >> shift) & REG_MASK) as u8)
            .ok_or(IsaError::BadEncoding { word, reason: what })
    };
    let rd = reg(RD_SHIFT, "rd field out of range")?;
    let rs1 = reg(RS1_SHIFT, "rs1 field out of range")?;
    let rs2 = reg(RS2_SHIFT, "rs2 field out of range")?;
    let directive = Directive::decode(((word >> DIR_SHIFT) & DIR_MASK) as u8)
        .ok_or_else(|| bad("reserved directive pattern"))?;
    if (word >> RESERVED_SHIFT) & RESERVED_MASK != 0 {
        return Err(bad("reserved bits set"));
    }
    let imm = i64::from((word >> IMM_SHIFT) as u32 as i32);
    Ok(Instr {
        op,
        rd,
        rs1,
        rs2,
        imm,
        directive,
    }
    .canonical())
}

/// Encodes a whole text segment.
///
/// # Errors
///
/// Propagates the first per-instruction encoding error.
pub fn encode_text(text: &[Instr]) -> Result<Vec<u64>, IsaError> {
    text.iter().map(encode).collect()
}

/// Decodes a whole text segment.
///
/// # Errors
///
/// Propagates the first per-word decoding error.
pub fn decode_text(words: &[u64]) -> Result<Vec<Instr>, IsaError> {
    words.iter().map(|&w| decode(w)).collect()
}

/// Describes one word that differs between two equal-length binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordDelta {
    /// Text index of the differing word.
    pub index: usize,
    /// XOR of the two encodings.
    pub xor: u64,
    /// Whether the difference is confined to the 2-bit directive field.
    pub directive_only: bool,
}

/// Diffs two programs' encoded text segments.
///
/// Used to demonstrate (and test) that the phase-3 annotation pass rewrites
/// *only* directive bits: every returned delta from a directive pass has
/// `directive_only == true`.
///
/// # Errors
///
/// Propagates encoding errors from either program. Returns
/// [`IsaError::BadEncoding`] if the text lengths differ (the pass must not
/// move code).
pub fn text_delta(before: &Program, after: &Program) -> Result<Vec<WordDelta>, IsaError> {
    if before.len() != after.len() {
        return Err(IsaError::BadEncoding {
            word: 0,
            reason: "text segments differ in length",
        });
    }
    let a = encode_text(before.text())?;
    let b = encode_text(after.text())?;
    Ok(a.iter()
        .zip(&b)
        .enumerate()
        .filter(|(_, (x, y))| x != y)
        .map(|(index, (x, y))| {
            let xor = x ^ y;
            WordDelta {
                index,
                xor,
                directive_only: xor & !(DIR_MASK << DIR_SHIFT) == 0,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_rng::{prop, Rng};

    #[test]
    fn encode_decode_identity_on_samples() {
        let samples = [
            Instr::alu_rr(Opcode::Add, Reg::new(1), Reg::new(2), Reg::new(3)),
            Instr::alu_ri(Opcode::Addi, Reg::new(31), Reg::new(30), -123456),
            Instr::rd_imm(Opcode::Li, Reg::new(9), i64::from(i32::MIN)),
            Instr::load(Opcode::Fld, Reg::new(0), Reg::new(7), 88),
            Instr::store(Opcode::Sd, Reg::new(3), Reg::new(4), -8),
            Instr::branch(Opcode::Bgeu, Reg::new(11), Reg::new(12), -2048),
            Instr::halt(),
            Instr::alu_ri(Opcode::Addi, Reg::new(3), Reg::new(3), 1)
                .with_directive(Directive::Stride),
            Instr::unary(Opcode::CvtIf, Reg::new(5), Reg::new(6))
                .with_directive(Directive::LastValue),
        ];
        for ins in samples {
            let word = encode(&ins).unwrap();
            assert_eq!(decode(word).unwrap(), ins.canonical(), "instr {ins}");
        }
    }

    #[test]
    fn imm_out_of_range_is_rejected() {
        let ins = Instr::rd_imm(Opcode::Li, Reg::new(1), i64::from(i32::MAX) + 1);
        assert_eq!(
            encode(&ins),
            Err(IsaError::ImmOutOfRange {
                value: i64::from(i32::MAX) + 1
            })
        );
    }

    #[test]
    fn decode_rejects_malformed_words() {
        // Unknown opcode byte.
        assert!(matches!(decode(0xff), Err(IsaError::BadEncoding { .. })));
        // Reserved directive pattern (3).
        let word = encode(&Instr::nop()).unwrap() | (3 << DIR_SHIFT);
        assert!(matches!(decode(word), Err(IsaError::BadEncoding { .. })));
        // Reserved bits set.
        let word = encode(&Instr::nop()).unwrap() | (1 << RESERVED_SHIFT);
        assert!(matches!(decode(word), Err(IsaError::BadEncoding { .. })));
        // Register field out of range (rd = 32).
        let word = encode(&Instr::nop()).unwrap() | (32 << RD_SHIFT);
        assert!(matches!(decode(word), Err(IsaError::BadEncoding { .. })));
    }

    #[test]
    fn directive_pass_changes_only_directive_bits() {
        use crate::ProgramBuilder;
        let mut b = ProgramBuilder::new();
        let r = Reg::new(1);
        b.li(r, 0);
        let top = b.bind_new_label();
        b.alu_ri(Opcode::Addi, r, r, 1);
        b.ld(Reg::new(2), r, 0);
        b.br(Opcode::Bne, r, Reg::ZERO, top);
        b.halt();
        let before = b.build().unwrap();
        let after = before.with_directives(|_, _| Directive::Stride);
        let deltas = text_delta(&before, &after).unwrap();
        assert!(!deltas.is_empty());
        assert!(deltas.iter().all(|d| d.directive_only), "{deltas:?}");
    }

    fn arb_instr(rng: &mut Rng) -> Instr {
        Instr {
            op: *rng.choose(Opcode::ALL).unwrap(),
            rd: Reg::new(rng.gen_range(0..32u8)),
            rs1: Reg::new(rng.gen_range(0..32u8)),
            rs2: Reg::new(rng.gen_range(0..32u8)),
            imm: i64::from(rng.gen_range(i32::MIN..=i32::MAX)),
            directive: Directive::decode(rng.gen_range(0..3u8)).unwrap(),
        }
        .canonical()
    }

    #[test]
    fn prop_encode_decode_round_trip() {
        prop::forall("encode/decode round-trips", arb_instr).check(|ins| {
            let word = encode(ins).unwrap();
            assert_eq!(decode(word).unwrap(), *ins);
        });
    }

    #[test]
    fn prop_text_round_trip() {
        prop::forall("encode_text/decode_text round-trips", |rng| {
            (0..rng.gen_range(0..64usize))
                .map(|_| arb_instr(rng))
                .collect::<Vec<Instr>>()
        })
        .check(|instrs| {
            let words = encode_text(instrs).unwrap();
            assert_eq!(&decode_text(&words).unwrap(), instrs);
        });
    }
}
