#![warn(missing_docs)]

//! # vp-isa — a RISC instruction set with value-prediction directive bits
//!
//! This crate defines the instruction set used throughout the `provp`
//! workspace: a small 64-bit load/store RISC architecture whose encoding
//! reserves two **value-prediction directive** bits per instruction, in the
//! spirit of the PowerPC 601 branch-hint bits the paper points to as the
//! enabling mechanism ([`Directive`]).
//!
//! The paper (Gabbay & Mendelson, MICRO-30 1997) profiles SPARC binaries
//! produced by `gcc -O2` and traced under SHADE. Everything the methodology
//! needs from the ISA is provided here:
//!
//! - a deterministic semantics executed by `vp-sim`,
//! - a notion of *value-producing instruction* (one that writes a destination
//!   register — see [`Opcode::writes_dest`]), the candidates for value
//!   prediction,
//! - statically addressable instructions ([`InstrAddr`]) so a profile image
//!   can name them,
//! - spare opcode bits so a compiler pass can tag instructions as
//!   `stride` / `last-value` predictable without moving any code.
//!
//! ## Example
//!
//! Build the skeleton of the paper's running example
//! (`for (x=0; x<N; x++) A[x]=B[x]+C[x];`) with the [`ProgramBuilder`]:
//!
//! ```
//! use vp_isa::{ProgramBuilder, Reg, Opcode};
//!
//! let mut b = ProgramBuilder::new();
//! let (x, n) = (Reg::new(1), Reg::new(2));
//! b.li(x, 0);
//! b.li(n, 16);
//! let top = b.bind_new_label();
//! b.alu_ri(Opcode::Addi, x, x, 1);
//! b.br(Opcode::Bne, x, n, top);
//! b.halt();
//! let program = b.build().unwrap();
//! assert_eq!(program.text().len(), 5);
//! ```

pub mod asm;
pub mod builder;
pub mod directive;
pub mod encode;
pub mod error;
pub mod instr;
pub mod opcode;
pub mod program;
pub mod reg;

pub use builder::{Label, ProgramBuilder};
pub use directive::Directive;
pub use error::IsaError;
pub use instr::{Instr, InstrAddr};
pub use opcode::{OpCategory, Opcode, RegClass};
pub use program::Program;
pub use reg::Reg;
