//! Opcodes, operand formats and instruction categories.
//!
//! The opcode set is a conventional 64-bit load/store RISC: integer ALU
//! (register-register and register-immediate), loads/stores for both register
//! files, IEEE-754 double arithmetic, compare-and-branch, and jump-and-link.
//! Each opcode knows its operand [`Format`] (used by the assembler and the
//! binary encoder), its [`OpCategory`] (used by the profiler to produce the
//! paper's Table 2.1 breakdown), and the register class of each operand.

use std::fmt;

/// Register class of an operand: the integer file or the floating-point file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegClass {
    /// General-purpose 64-bit integer registers (`r0` hardwired to zero).
    Int,
    /// IEEE-754 double-precision registers (stored as raw `u64` bits).
    Fp,
}

/// Coarse instruction category.
///
/// The profiler buckets value-prediction statistics by these categories to
/// reproduce the paper's Table 2.1 split (integer ALU vs. loads vs. FP
/// computation vs. FP loads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpCategory {
    /// Integer computation writing an integer register.
    IntAlu,
    /// Load from memory into an integer register.
    IntLoad,
    /// Floating-point computation (including FP compares and conversions).
    FpAlu,
    /// Load from memory into a floating-point register.
    FpLoad,
    /// Store to memory (no destination register).
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump (and-link).
    Jump,
    /// `nop` / `halt`.
    System,
}

/// Operand encoding format of an opcode.
///
/// Drives both the text assembler syntax and the binary encoding layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// `op rd, rs1, rs2`
    R3,
    /// `op rd, rs1, imm`
    R2Imm,
    /// `op rd, rs1`
    R2,
    /// `op rd, imm`
    RdImm,
    /// `op rd, imm(rs1)` — loads.
    Mem,
    /// `op rs2, imm(rs1)` — stores.
    MemStore,
    /// `op rs1, rs2, target` — conditional branches (PC-relative immediate).
    BranchFmt,
    /// `op` — no operands.
    NoOperands,
}

macro_rules! opcodes {
    ($( $variant:ident = $code:literal, $mnemonic:literal, $cat:ident, $fmt:ident ; )+) => {
        /// An operation code.
        ///
        /// Discriminants are stable and form the 8-bit opcode field of the
        /// binary encoding (see [`crate::encode`]).
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u8)]
        pub enum Opcode {
            $(
                #[doc = concat!("`", $mnemonic, "`")]
                $variant = $code,
            )+
        }

        impl Opcode {
            /// Every opcode, in discriminant order.
            pub const ALL: &'static [Opcode] = &[ $(Opcode::$variant,)+ ];

            /// The assembler mnemonic.
            #[must_use]
            pub fn mnemonic(self) -> &'static str {
                match self {
                    $(Opcode::$variant => $mnemonic,)+
                }
            }

            /// The coarse category used for statistics bucketing.
            #[must_use]
            pub fn category(self) -> OpCategory {
                match self {
                    $(Opcode::$variant => OpCategory::$cat,)+
                }
            }

            /// The operand format.
            #[must_use]
            pub fn format(self) -> Format {
                match self {
                    $(Opcode::$variant => Format::$fmt,)+
                }
            }

            /// Decodes an 8-bit opcode field.
            #[must_use]
            pub fn from_u8(code: u8) -> Option<Opcode> {
                match code {
                    $($code => Some(Opcode::$variant),)+
                    _ => None,
                }
            }

            /// Looks an opcode up by its assembler mnemonic.
            #[must_use]
            pub fn from_mnemonic(m: &str) -> Option<Opcode> {
                match m {
                    $($mnemonic => Some(Opcode::$variant),)+
                    _ => None,
                }
            }
        }
    };
}

opcodes! {
    // Integer register-register ALU.
    Add  = 0x00, "add",  IntAlu, R3;
    Sub  = 0x01, "sub",  IntAlu, R3;
    Mul  = 0x02, "mul",  IntAlu, R3;
    Div  = 0x03, "div",  IntAlu, R3;
    Rem  = 0x04, "rem",  IntAlu, R3;
    And  = 0x05, "and",  IntAlu, R3;
    Or   = 0x06, "or",   IntAlu, R3;
    Xor  = 0x07, "xor",  IntAlu, R3;
    Sll  = 0x08, "sll",  IntAlu, R3;
    Srl  = 0x09, "srl",  IntAlu, R3;
    Sra  = 0x0a, "sra",  IntAlu, R3;
    Slt  = 0x0b, "slt",  IntAlu, R3;
    Sltu = 0x0c, "sltu", IntAlu, R3;

    // Integer register-immediate ALU.
    Addi = 0x10, "addi", IntAlu, R2Imm;
    Andi = 0x11, "andi", IntAlu, R2Imm;
    Ori  = 0x12, "ori",  IntAlu, R2Imm;
    Xori = 0x13, "xori", IntAlu, R2Imm;
    Slli = 0x14, "slli", IntAlu, R2Imm;
    Srli = 0x15, "srli", IntAlu, R2Imm;
    Srai = 0x16, "srai", IntAlu, R2Imm;
    Slti = 0x17, "slti", IntAlu, R2Imm;
    Muli = 0x18, "muli", IntAlu, R2Imm;

    // Constants and moves.
    Li   = 0x20, "li",   IntAlu, RdImm;
    Mv   = 0x21, "mv",   IntAlu, R2;

    // Memory.
    Ld   = 0x28, "ld",   IntLoad, Mem;
    Sd   = 0x29, "sd",   Store,   MemStore;
    Fld  = 0x2a, "fld",  FpLoad,  Mem;
    Fsd  = 0x2b, "fsd",  Store,   MemStore;

    // Floating point (double precision).
    Fadd = 0x30, "fadd", FpAlu, R3;
    Fsub = 0x31, "fsub", FpAlu, R3;
    Fmul = 0x32, "fmul", FpAlu, R3;
    Fdiv = 0x33, "fdiv", FpAlu, R3;
    Fmin = 0x34, "fmin", FpAlu, R3;
    Fmax = 0x35, "fmax", FpAlu, R3;
    Fneg = 0x36, "fneg", FpAlu, R2;
    Fmv  = 0x37, "fmv",  FpAlu, R2;
    CvtIf = 0x38, "cvt.i.f", FpAlu, R2;
    CvtFi = 0x39, "cvt.f.i", FpAlu, R2;
    Feq  = 0x3a, "feq",  FpAlu, R3;
    Flt  = 0x3b, "flt",  FpAlu, R3;
    Fle  = 0x3c, "fle",  FpAlu, R3;

    // Control flow.
    Beq  = 0x40, "beq",  Branch, BranchFmt;
    Bne  = 0x41, "bne",  Branch, BranchFmt;
    Blt  = 0x42, "blt",  Branch, BranchFmt;
    Bge  = 0x43, "bge",  Branch, BranchFmt;
    Bltu = 0x44, "bltu", Branch, BranchFmt;
    Bgeu = 0x45, "bgeu", Branch, BranchFmt;
    Jal  = 0x46, "jal",  Jump,   RdImm;
    Jalr = 0x47, "jalr", Jump,   R2Imm;

    // System.
    Nop  = 0x50, "nop",  System, NoOperands;
    Halt = 0x51, "halt", System, NoOperands;
}

impl Opcode {
    /// Whether the instruction writes a destination register at all.
    ///
    /// This is the gate for *value-prediction candidacy*: the paper considers
    /// "instructions which write a computed value to a destination register".
    /// Stores, branches, `nop` and `halt` do not.
    #[must_use]
    pub fn writes_dest(self) -> bool {
        self.dest_class().is_some()
    }

    /// Register class of the destination operand, if any.
    #[must_use]
    pub fn dest_class(self) -> Option<RegClass> {
        use OpCategory::*;
        match self.category() {
            IntAlu | IntLoad => Some(RegClass::Int),
            FpAlu => match self {
                // FP compares and fp->int conversion write an integer register.
                Opcode::Feq | Opcode::Flt | Opcode::Fle | Opcode::CvtFi => Some(RegClass::Int),
                _ => Some(RegClass::Fp),
            },
            FpLoad => Some(RegClass::Fp),
            Jump => Some(RegClass::Int),
            Store | Branch | System => None,
        }
    }

    /// Register class of the first source operand, if the format has one.
    #[must_use]
    pub fn src1_class(self) -> Option<RegClass> {
        match self.format() {
            Format::RdImm | Format::NoOperands => None,
            // Address base registers are always integer.
            Format::Mem | Format::MemStore | Format::R2Imm => Some(RegClass::Int),
            Format::BranchFmt => Some(RegClass::Int),
            Format::R3 | Format::R2 => match self.category() {
                OpCategory::FpAlu => match self {
                    // int -> fp conversion reads an integer source.
                    Opcode::CvtIf => Some(RegClass::Int),
                    _ => Some(RegClass::Fp),
                },
                _ => Some(RegClass::Int),
            },
        }
    }

    /// Register class of the second source operand, if the format has one.
    #[must_use]
    pub fn src2_class(self) -> Option<RegClass> {
        match self.format() {
            Format::R3 => match self.category() {
                OpCategory::FpAlu => Some(RegClass::Fp),
                _ => Some(RegClass::Int),
            },
            // The stored value: integer for `sd`, FP for `fsd`.
            Format::MemStore => match self {
                Opcode::Fsd => Some(RegClass::Fp),
                _ => Some(RegClass::Int),
            },
            Format::BranchFmt => Some(RegClass::Int),
            _ => None,
        }
    }

    /// Whether this opcode is a conditional branch.
    #[must_use]
    pub fn is_branch(self) -> bool {
        self.category() == OpCategory::Branch
    }

    /// Whether this opcode reads memory.
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(self.category(), OpCategory::IntLoad | OpCategory::FpLoad)
    }

    /// Whether this opcode writes memory.
    #[must_use]
    pub fn is_store(self) -> bool {
        self.category() == OpCategory::Store
    }

    /// Whether this opcode can redirect control flow.
    #[must_use]
    pub fn is_control(self) -> bool {
        matches!(self.category(), OpCategory::Branch | OpCategory::Jump) || self == Opcode::Halt
    }

    /// Whether the operand format carries an immediate field.
    #[must_use]
    pub fn has_imm(self) -> bool {
        !matches!(self.format(), Format::R3 | Format::R2 | Format::NoOperands)
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn discriminants_round_trip_through_from_u8() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_u8(op as u8), Some(op));
        }
    }

    #[test]
    fn from_u8_rejects_unknown() {
        assert_eq!(Opcode::from_u8(0xff), None);
        assert_eq!(Opcode::from_u8(0x0d), None);
    }

    #[test]
    fn mnemonics_are_unique() {
        let set: HashSet<&str> = Opcode::ALL.iter().map(|o| o.mnemonic()).collect();
        assert_eq!(set.len(), Opcode::ALL.len());
    }

    #[test]
    fn mnemonic_lookup_round_trips() {
        for &op in Opcode::ALL {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Opcode::from_mnemonic("bogus"), None);
    }

    #[test]
    fn value_producers_have_dest_class() {
        assert_eq!(Opcode::Add.dest_class(), Some(RegClass::Int));
        assert_eq!(Opcode::Ld.dest_class(), Some(RegClass::Int));
        assert_eq!(Opcode::Fld.dest_class(), Some(RegClass::Fp));
        assert_eq!(Opcode::Fadd.dest_class(), Some(RegClass::Fp));
        assert_eq!(Opcode::Jal.dest_class(), Some(RegClass::Int));
    }

    #[test]
    fn non_producers_have_no_dest() {
        for op in [
            Opcode::Sd,
            Opcode::Fsd,
            Opcode::Beq,
            Opcode::Nop,
            Opcode::Halt,
        ] {
            assert!(!op.writes_dest(), "{op} must not write a destination");
        }
    }

    #[test]
    fn fp_compares_write_integer_registers() {
        for op in [Opcode::Feq, Opcode::Flt, Opcode::Fle, Opcode::CvtFi] {
            assert_eq!(op.dest_class(), Some(RegClass::Int));
        }
        assert_eq!(Opcode::CvtIf.dest_class(), Some(RegClass::Fp));
        assert_eq!(Opcode::CvtIf.src1_class(), Some(RegClass::Int));
    }

    #[test]
    fn store_value_classes() {
        assert_eq!(Opcode::Sd.src2_class(), Some(RegClass::Int));
        assert_eq!(Opcode::Fsd.src2_class(), Some(RegClass::Fp));
        // Base address registers are integer for both.
        assert_eq!(Opcode::Sd.src1_class(), Some(RegClass::Int));
        assert_eq!(Opcode::Fsd.src1_class(), Some(RegClass::Int));
    }

    #[test]
    fn control_flow_predicates() {
        assert!(Opcode::Beq.is_branch());
        assert!(Opcode::Jal.is_control());
        assert!(Opcode::Halt.is_control());
        assert!(!Opcode::Add.is_control());
    }

    #[test]
    fn imm_presence_matches_format() {
        assert!(Opcode::Addi.has_imm());
        assert!(Opcode::Ld.has_imm());
        assert!(Opcode::Beq.has_imm());
        assert!(!Opcode::Add.has_imm());
        assert!(!Opcode::Halt.has_imm());
    }
}
