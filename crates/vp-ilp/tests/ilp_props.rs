//! Property tests for the abstract ILP machine: structural bounds that
//! must hold for *any* program.

use proptest::prelude::*;
use vp_ilp::{IlpAnalyzer, IlpConfig};
use vp_isa::{Instr, Opcode, Program, Reg};
use vp_predictor::{ClassifierKind, PredictorConfig, TableGeometry};
use vp_sim::{run, RunLimits};

/// Random straight-line ALU/memory programs (no control flow, so dynamic
/// length == static length and every instruction retires once).
fn arb_linear_program() -> impl Strategy<Value = Program> {
    let alu = prop::sample::select(vec![
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Xor,
        Opcode::And,
        Opcode::Sltu,
    ]);
    let instr = (alu, 1u8..8, 1u8..8, 1u8..8).prop_map(|(op, rd, rs1, rs2)| {
        Instr::alu_rr(op, Reg::new(rd), Reg::new(rs1), Reg::new(rs2))
    });
    prop::collection::vec(instr, 1..120).prop_map(|mut text| {
        text.push(Instr::halt());
        Program::new("prop", text, vec![1, 2, 3, 4])
    })
}

fn analyse(program: &Program, config: IlpConfig) -> vp_ilp::IlpResult {
    let mut a = IlpAnalyzer::new(config);
    run(program, &mut a, RunLimits::default()).unwrap();
    a.finish()
}

proptest! {
    /// With unit latency: the schedule can never take longer than fully
    /// serial execution, nor finish faster than the window allows.
    #[test]
    fn prop_cycles_bounded_by_serial_and_window(program in arb_linear_program()) {
        for window in [1usize, 4, 40] {
            let r = analyse(&program, IlpConfig::paper_no_vp().with_window(window));
            prop_assert!(r.cycles <= r.instructions, "window {window}: {r}");
            let floor = r.instructions.div_ceil(window as u64);
            prop_assert!(r.cycles >= floor, "window {window}: {r} vs floor {floor}");
            prop_assert!(r.ilp() <= window as f64 + 1e-9);
        }
    }

    /// A window-1 machine is exactly serial.
    #[test]
    fn prop_window_one_is_serial(program in arb_linear_program()) {
        let r = analyse(&program, IlpConfig::paper_no_vp().with_window(1));
        prop_assert_eq!(r.cycles, r.instructions);
    }

    /// Growing the window never slows the machine down.
    #[test]
    fn prop_window_monotone(program in arb_linear_program()) {
        let mut prev = u64::MAX;
        for window in [1usize, 2, 8, 40] {
            let r = analyse(&program, IlpConfig::paper_no_vp().with_window(window));
            prop_assert!(r.cycles <= prev, "window {window} got slower");
            prev = r.cycles;
        }
    }

    /// Penalty-free value prediction can only help (speculating wrong with
    /// zero penalty is equivalent to not speculating).
    #[test]
    fn prop_free_value_prediction_never_hurts(program in arb_linear_program()) {
        let base = analyse(&program, IlpConfig::paper_no_vp());
        let vp = analyse(
            &program,
            IlpConfig {
                penalty: 0,
                predictor: Some(PredictorConfig::TableStride {
                    geometry: TableGeometry::SPEC_512_2WAY,
                    classifier: ClassifierKind::Always,
                }),
                ..IlpConfig::paper_no_vp()
            },
        );
        prop_assert!(vp.cycles <= base.cycles, "vp {} vs base {}", vp.cycles, base.cycles);
    }
}
