//! Property tests for the abstract ILP machine: structural bounds that
//! must hold for *any* program.

use vp_ilp::{IlpAnalyzer, IlpConfig};
use vp_isa::{Instr, Opcode, Program, Reg};
use vp_predictor::{ClassifierKind, PredictorConfig, TableGeometry};
use vp_rng::{prop, Rng};
use vp_sim::{run, RunLimits};

const ALU_OPS: [Opcode; 6] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::Xor,
    Opcode::And,
    Opcode::Sltu,
];

/// Random straight-line ALU programs (no control flow, so dynamic length
/// == static length and every instruction retires once).
fn arb_linear_program(rng: &mut Rng) -> Program {
    let len = rng.gen_range(1..120usize);
    let mut text: Vec<Instr> = (0..len)
        .map(|_| {
            let op = *rng.choose(&ALU_OPS).unwrap();
            Instr::alu_rr(
                op,
                Reg::new(rng.gen_range(1..8u8)),
                Reg::new(rng.gen_range(1..8u8)),
                Reg::new(rng.gen_range(1..8u8)),
            )
        })
        .collect();
    text.push(Instr::halt());
    Program::new("prop", text, vec![1, 2, 3, 4])
}

fn analyse(program: &Program, config: IlpConfig) -> vp_ilp::IlpResult {
    let mut a = IlpAnalyzer::new(config);
    run(program, &mut a, RunLimits::default()).unwrap();
    a.finish()
}

/// With unit latency: the schedule can never take longer than fully serial
/// execution, nor finish faster than the window allows.
#[test]
fn prop_cycles_bounded_by_serial_and_window() {
    prop::forall(
        "ILP cycles bounded by serial and window",
        arb_linear_program,
    )
    .check(|program| {
        for window in [1usize, 4, 40] {
            let r = analyse(program, IlpConfig::paper_no_vp().with_window(window));
            assert!(r.cycles <= r.instructions, "window {window}: {r}");
            let floor = r.instructions.div_ceil(window as u64);
            assert!(r.cycles >= floor, "window {window}: {r} vs floor {floor}");
            assert!(r.ilp() <= window as f64 + 1e-9);
        }
    });
}

/// A window-1 machine is exactly serial.
#[test]
fn prop_window_one_is_serial() {
    prop::forall("window-1 ILP machine is serial", arb_linear_program).check(|program| {
        let r = analyse(program, IlpConfig::paper_no_vp().with_window(1));
        assert_eq!(r.cycles, r.instructions);
    });
}

/// Growing the window never slows the machine down.
#[test]
fn prop_window_monotone() {
    prop::forall("ILP monotone in window size", arb_linear_program).check(|program| {
        let mut prev = u64::MAX;
        for window in [1usize, 2, 8, 40] {
            let r = analyse(program, IlpConfig::paper_no_vp().with_window(window));
            assert!(r.cycles <= prev, "window {window} got slower");
            prev = r.cycles;
        }
    });
}

/// Penalty-free value prediction can only help (speculating wrong with
/// zero penalty is equivalent to not speculating).
#[test]
fn prop_free_value_prediction_never_hurts() {
    prop::forall("free value prediction never hurts", arb_linear_program).check(|program| {
        let base = analyse(program, IlpConfig::paper_no_vp());
        let vp = analyse(
            program,
            IlpConfig {
                penalty: 0,
                predictor: Some(PredictorConfig::TableStride {
                    geometry: TableGeometry::SPEC_512_2WAY,
                    classifier: ClassifierKind::Always,
                }),
                ..IlpConfig::paper_no_vp()
            },
        );
        assert!(
            vp.cycles <= base.cycles,
            "vp {} vs base {}",
            vp.cycles,
            base.cycles
        );
    });
}
