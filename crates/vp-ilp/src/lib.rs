#![warn(missing_docs)]

//! # vp-ilp — the paper's abstract ILP machine
//!
//! Section 5.3 evaluates classification mechanisms on "an abstract machine
//! with a finite instruction window of 40 entries, unlimited number of
//! execution units and a perfect branch prediction mechanism", charging one
//! clock cycle on a value misprediction. This crate implements that machine
//! as a dataflow-limit analysis over the `vp-sim` retirement trace:
//!
//! - instructions dispatch in trace order, constrained only by window
//!   occupancy (slot *i* frees when the instruction 40 slots earlier
//!   completes);
//! - an instruction issues when its register sources — and, for loads, the
//!   most recent store to the same word — are ready; every operation has
//!   unit latency;
//! - perfect branch prediction means the trace itself is the fetch stream
//!   (control dependencies never stall dispatch);
//! - with value prediction, a *used and correct* prediction makes the
//!   destination available at dispatch (true-data dependence collapsed); a
//!   *used and wrong* prediction delays it one penalty cycle past
//!   completion.
//!
//! The resulting ILP (instructions / cycles) reproduces Table 5.2's
//! comparisons between no-VP, VP + saturating counters, and VP + profiling
//! at each threshold.
//!
//! ## Example
//!
//! ```
//! use vp_isa::asm::assemble;
//! use vp_sim::{run, RunLimits};
//! use vp_ilp::{IlpAnalyzer, IlpConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A serial dependence chain: ILP is 1 without value prediction.
//! let p = assemble("li r1, 0\nli r2, 1000\ntop: addi r1, r1, 1\nbne r1, r2, top\nhalt\n")?;
//! let mut ilp = IlpAnalyzer::new(IlpConfig::paper_no_vp());
//! run(&p, &mut ilp, RunLimits::default())?;
//! let r = ilp.finish();
//! assert!(r.ilp() < 2.5);
//! # Ok(())
//! # }
//! ```

pub mod analyzer;
pub mod branch;
pub mod config;
pub mod critical;
pub mod result;
pub mod window;

pub use analyzer::IlpAnalyzer;
pub use branch::{BranchConfig, BranchPredictor};
pub use config::IlpConfig;
pub use critical::{CriticalPathAnalyzer, CriticalityReport};
pub use result::IlpResult;
pub use window::SlidingWindow;
