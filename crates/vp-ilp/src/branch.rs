//! Branch prediction for the abstract machine.
//!
//! The paper deliberately assumes *perfect* branch prediction "to explore
//! the pure potential of the examined mechanisms without being constrained
//! by individual machine limitations". This module lets the assumption be
//! relaxed: a front end with a real (bimodal or gshare) direction predictor
//! stalls dispatch after every mispredicted conditional branch, which
//! squeezes the window and dampens what value prediction can deliver — an
//! ablation quantifying how much of Table 5.2 survives on a less idealised
//! machine.

use vp_isa::InstrAddr;

/// Direction-predictor configuration for the abstract machine's front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchConfig {
    /// The paper's assumption: every branch is predicted correctly.
    Perfect,
    /// A per-PC table of 2-bit counters.
    Bimodal {
        /// Number of counters (a power of two is conventional but any
        /// positive size works; indexing is modulo).
        entries: usize,
    },
    /// Global-history XOR PC indexing into 2-bit counters.
    Gshare {
        /// Number of counters.
        entries: usize,
        /// Bits of global branch history.
        history_bits: u32,
    },
}

impl BranchConfig {
    /// A conventional 4K-entry bimodal predictor.
    #[must_use]
    pub fn bimodal_4k() -> Self {
        BranchConfig::Bimodal { entries: 4096 }
    }

    /// A conventional 4K-entry gshare with 12 bits of history.
    #[must_use]
    pub fn gshare_4k() -> Self {
        BranchConfig::Gshare {
            entries: 4096,
            history_bits: 12,
        }
    }
}

/// A branch direction predictor instance.
///
/// # Examples
///
/// ```
/// use vp_ilp::branch::{BranchConfig, BranchPredictor};
/// use vp_isa::InstrAddr;
///
/// let mut bp = BranchPredictor::new(BranchConfig::bimodal_4k());
/// let pc = InstrAddr::new(7);
/// // Train a always-taken branch; it converges to "taken".
/// for _ in 0..4 {
///     let _ = bp.predict_and_update(pc, true);
/// }
/// assert!(bp.predict_and_update(pc, true));
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    config: BranchConfig,
    counters: Vec<u8>,
    history: u64,
}

impl BranchPredictor {
    /// Creates a predictor; counters start weakly not-taken (state 1).
    ///
    /// # Panics
    ///
    /// Panics if a table configuration has zero entries.
    #[must_use]
    pub fn new(config: BranchConfig) -> Self {
        let entries = match config {
            BranchConfig::Perfect => 0,
            BranchConfig::Bimodal { entries } | BranchConfig::Gshare { entries, .. } => {
                assert!(entries > 0, "branch predictor table must be non-empty");
                entries
            }
        };
        BranchPredictor {
            config,
            counters: vec![1; entries],
            history: 0,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> BranchConfig {
        self.config
    }

    fn index(&self, pc: InstrAddr) -> usize {
        match self.config {
            BranchConfig::Perfect => 0,
            BranchConfig::Bimodal { entries } => pc.index() as usize % entries,
            BranchConfig::Gshare {
                entries,
                history_bits,
            } => {
                let h = self.history & ((1u64 << history_bits) - 1);
                (u64::from(pc.index()) ^ h) as usize % entries
            }
        }
    }

    /// Predicts the branch at `pc`, then trains with the actual `taken`
    /// outcome. Returns whether the prediction was **correct**.
    pub fn predict_and_update(&mut self, pc: InstrAddr, taken: bool) -> bool {
        if self.config == BranchConfig::Perfect {
            return true;
        }
        let idx = self.index(pc);
        let predicted = self.counters[idx] >= 2;
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        if matches!(self.config, BranchConfig::Gshare { .. }) {
            self.history = (self.history << 1) | u64::from(taken);
        }
        predicted == taken
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accuracy(config: BranchConfig, stream: impl Iterator<Item = (u32, bool)>) -> f64 {
        let mut bp = BranchPredictor::new(config);
        let (mut correct, mut total) = (0u64, 0u64);
        for (pc, taken) in stream {
            correct += u64::from(bp.predict_and_update(InstrAddr::new(pc), taken));
            total += 1;
        }
        correct as f64 / total as f64
    }

    #[test]
    fn perfect_is_always_right() {
        let stream = (0..100u32).map(|i| (i % 7, i % 3 == 0));
        assert_eq!(accuracy(BranchConfig::Perfect, stream), 1.0);
    }

    #[test]
    fn bimodal_learns_biased_branches() {
        // A loop-back branch taken 99 times then not taken once.
        let stream = (0..100u32).map(|i| (5, i < 99));
        let acc = accuracy(BranchConfig::Bimodal { entries: 16 }, stream);
        assert!(acc > 0.95, "{acc}");
    }

    #[test]
    fn gshare_learns_alternating_patterns_bimodal_cannot() {
        // Strictly alternating T/N at one PC: bimodal oscillates near 50%,
        // gshare keys off the history and converges.
        let stream = |_| (0..400u32).map(|i| (9, i % 2 == 0));
        let bim = accuracy(BranchConfig::Bimodal { entries: 64 }, stream(()));
        let gsh = accuracy(
            BranchConfig::Gshare {
                entries: 64,
                history_bits: 4,
            },
            stream(()),
        );
        assert!(bim < 0.75, "bimodal {bim}");
        assert!(gsh > 0.9, "gshare {gsh}");
    }

    #[test]
    fn distinct_pcs_do_not_interfere_in_bimodal() {
        let mut bp = BranchPredictor::new(BranchConfig::Bimodal { entries: 1024 });
        for _ in 0..8 {
            bp.predict_and_update(InstrAddr::new(1), true);
            bp.predict_and_update(InstrAddr::new(2), false);
        }
        assert!(bp.predict_and_update(InstrAddr::new(1), true));
        assert!(bp.predict_and_update(InstrAddr::new(2), false));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_entries_panics() {
        let _ = BranchPredictor::new(BranchConfig::Bimodal { entries: 0 });
    }
}
