//! The finite instruction window.

use std::collections::VecDeque;

/// A sliding window over instruction completion times.
///
/// Models a `capacity`-entry instruction window in a limit study:
/// instruction *i* cannot dispatch until instruction *i − capacity* has
/// completed, i.e. the dispatch lower bound is the completion cycle of the
/// instruction whose slot is being reused.
///
/// # Examples
///
/// ```
/// use vp_ilp::SlidingWindow;
/// let mut w = SlidingWindow::new(2);
/// assert_eq!(w.dispatch_bound(), 0); // empty window: no constraint
/// w.push_completion(10);
/// w.push_completion(20);
/// assert_eq!(w.dispatch_bound(), 10); // next instr reuses slot of the 1st
/// ```
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    capacity: usize,
    completions: VecDeque<u64>,
}

impl SlidingWindow {
    /// A window with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        SlidingWindow {
            capacity,
            completions: VecDeque::with_capacity(capacity),
        }
    }

    /// The window capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The earliest cycle at which the next instruction may dispatch, given
    /// window occupancy alone.
    #[must_use]
    pub fn dispatch_bound(&self) -> u64 {
        if self.completions.len() < self.capacity {
            0
        } else {
            *self.completions.front().expect("window is full")
        }
    }

    /// Records the completion cycle of the instruction just dispatched,
    /// sliding the window forward.
    pub fn push_completion(&mut self, completion: u64) {
        if self.completions.len() == self.capacity {
            self.completions.pop_front();
        }
        self.completions.push_back(completion);
    }

    /// Empties the window.
    pub fn clear(&mut self) {
        self.completions.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_constraint_until_full() {
        let mut w = SlidingWindow::new(3);
        w.push_completion(5);
        w.push_completion(6);
        assert_eq!(w.dispatch_bound(), 0);
        w.push_completion(7);
        assert_eq!(w.dispatch_bound(), 5);
    }

    #[test]
    fn window_slides_in_order() {
        let mut w = SlidingWindow::new(2);
        w.push_completion(10);
        w.push_completion(4); // out-of-order completion is fine
        assert_eq!(w.dispatch_bound(), 10);
        w.push_completion(12);
        assert_eq!(w.dispatch_bound(), 4);
    }

    #[test]
    fn size_one_window_serialises() {
        let mut w = SlidingWindow::new(1);
        w.push_completion(3);
        assert_eq!(w.dispatch_bound(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = SlidingWindow::new(0);
    }
}
