//! Critical-path analysis: *which* instructions bind the schedule.
//!
//! The paper's conclusions name this as ongoing work: "the effect of the
//! profiling information on the scheduling of instructions within a basic
//! block and the analysis of the critical path". This module performs that
//! analysis on the abstract machine: for every dynamic instruction it
//! determines the *binding constraint* of its issue — the window, a
//! register operand, or a memory dependence — and charges the constraint
//! to the static instruction that produced it.
//!
//! Joining the result against a profile image answers the question Table
//! 5.2 leaves implicit: a workload gains from value prediction exactly to
//! the extent that its critical producers are value-predictable.

use std::collections::HashMap;

use vp_isa::{InstrAddr, Reg, RegClass};
use vp_sim::{Retirement, Tracer};

use crate::SlidingWindow;

/// What bound an instruction's issue time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Constraint {
    /// Nothing bound it (all operands ready at dispatch, empty window).
    Free,
    /// The finite instruction window (fetch could not run further ahead).
    Window,
    /// A register operand produced by the given static instruction.
    Producer(InstrAddr),
    /// A store-to-load memory dependence on the given static store.
    Memory(InstrAddr),
}

/// Accumulated criticality statistics.
#[derive(Debug, Clone, Default)]
pub struct CriticalityReport {
    /// Dynamic instructions analysed.
    pub instructions: u64,
    /// Issues bound by the window (or free).
    pub structural: u64,
    /// Issues bound per producing static instruction (register or memory).
    pub by_producer: HashMap<InstrAddr, u64>,
}

impl CriticalityReport {
    /// Issues bound by a data dependence (any producer).
    #[must_use]
    pub fn data_bound(&self) -> u64 {
        self.by_producer.values().sum()
    }

    /// The producers ranked by how often they bound an issue, descending.
    #[must_use]
    pub fn ranked(&self) -> Vec<(InstrAddr, u64)> {
        let mut v: Vec<(InstrAddr, u64)> = self.by_producer.iter().map(|(&a, &n)| (a, n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The fraction of data-bound issues charged to producers accepted by
    /// `predictable` — with a profile-image closure this is "how much of
    /// the critical path is value-predictable".
    #[must_use]
    pub fn predictable_fraction(&self, mut predictable: impl FnMut(InstrAddr) -> bool) -> f64 {
        let data = self.data_bound();
        if data == 0 {
            return 0.0;
        }
        let hits: u64 = self
            .by_producer
            .iter()
            .filter(|(&a, _)| predictable(a))
            .map(|(_, &n)| n)
            .sum();
        hits as f64 / data as f64
    }
}

/// A tracer running the §5.3 dataflow schedule (no value prediction) while
/// attributing every issue's binding constraint.
///
/// # Examples
///
/// ```
/// use vp_isa::asm::assemble;
/// use vp_sim::{run, RunLimits};
/// use vp_ilp::critical::CriticalPathAnalyzer;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble("li r1, 0\nli r2, 500\ntop: addi r1, r1, 1\nbne r1, r2, top\nhalt\n")?;
/// let mut a = CriticalPathAnalyzer::new(40);
/// run(&p, &mut a, RunLimits::default())?;
/// let report = a.finish();
/// // The loop-index increment at @2 binds almost every issue.
/// assert_eq!(report.ranked()[0].0, vp_isa::InstrAddr::new(2));
/// # Ok(())
/// # }
/// ```
pub struct CriticalPathAnalyzer {
    window: SlidingWindow,
    int_ready: [(u64, Option<InstrAddr>); vp_isa::reg::NUM_REGS],
    fp_ready: [(u64, Option<InstrAddr>); vp_isa::reg::NUM_REGS],
    mem_ready: HashMap<u64, (u64, InstrAddr)>,
    report: CriticalityReport,
}

impl CriticalPathAnalyzer {
    /// Creates an analyzer with the given window size.
    #[must_use]
    pub fn new(window: usize) -> Self {
        CriticalPathAnalyzer {
            window: SlidingWindow::new(window),
            int_ready: [(0, None); vp_isa::reg::NUM_REGS],
            fp_ready: [(0, None); vp_isa::reg::NUM_REGS],
            mem_ready: HashMap::new(),
            report: CriticalityReport::default(),
        }
    }

    /// Finishes, returning the criticality report.
    #[must_use]
    pub fn finish(self) -> CriticalityReport {
        self.report
    }

    fn reg_state(&self, class: RegClass, reg: Reg) -> (u64, Option<InstrAddr>) {
        match class {
            RegClass::Int if reg.is_zero() => (0, None),
            RegClass::Int => self.int_ready[usize::from(reg)],
            RegClass::Fp => self.fp_ready[usize::from(reg)],
        }
    }
}

impl Tracer for CriticalPathAnalyzer {
    fn retire(&mut self, ev: &Retirement<'_>) {
        self.report.instructions += 1;
        let dispatch = self.window.dispatch_bound();

        // Find the binding constraint: the latest-ready input.
        let mut bound_at = dispatch;
        let mut constraint = if dispatch == 0 {
            Constraint::Free
        } else {
            Constraint::Window
        };
        for src in ev.instr.sources().into_iter().flatten() {
            let (ready, producer) = self.reg_state(src.0, src.1);
            if ready > bound_at {
                bound_at = ready;
                constraint = match producer {
                    Some(addr) => Constraint::Producer(addr),
                    None => Constraint::Free,
                };
            }
        }
        if let Some(mem) = ev.mem {
            if !mem.store {
                if let Some(&(ready, store)) = self.mem_ready.get(&mem.addr) {
                    if ready > bound_at {
                        bound_at = ready;
                        constraint = Constraint::Memory(store);
                    }
                }
            }
        }
        match constraint {
            Constraint::Producer(addr) | Constraint::Memory(addr) => {
                *self.report.by_producer.entry(addr).or_insert(0) += 1;
            }
            Constraint::Window | Constraint::Free => self.report.structural += 1,
        }

        let completion = bound_at + 1;
        if let Some((class, reg, _)) = ev.dest {
            match class {
                RegClass::Int if reg.is_zero() => {}
                RegClass::Int => self.int_ready[usize::from(reg)] = (completion, Some(ev.addr)),
                RegClass::Fp => self.fp_ready[usize::from(reg)] = (completion, Some(ev.addr)),
            }
        }
        if let Some(mem) = ev.mem {
            if mem.store {
                self.mem_ready.insert(mem.addr, (completion, ev.addr));
            }
        }
        self.window.push_completion(completion);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::asm::assemble;
    use vp_sim::{run, RunLimits};

    fn analyse(src: &str) -> CriticalityReport {
        let p = assemble(src).unwrap();
        let mut a = CriticalPathAnalyzer::new(40);
        run(&p, &mut a, RunLimits::default()).unwrap();
        a.finish()
    }

    #[test]
    fn serial_chain_charges_its_producer() {
        let r = analyse("li r1, 0\nli r2, 1000\ntop: addi r1, r1, 1\nbne r1, r2, top\nhalt\n");
        let ranked = r.ranked();
        assert_eq!(ranked[0].0, InstrAddr::new(2), "{ranked:?}");
        // The addi binds both its own next iteration and the bne.
        assert!(ranked[0].1 > 1500);
    }

    #[test]
    fn memory_dependences_charge_the_store() {
        let r = analyse(
            "li r1, 0\nli r2, 400\ntop: sd r1, 100(r0)\nld r3, 100(r0)\naddi r1, r1, 1\nbne r1, r2, top\nhalt\n",
        );
        // The load at @3 is bound by the store at @2.
        assert!(
            r.by_producer.get(&InstrAddr::new(2)).copied().unwrap_or(0) >= 399,
            "{r:?}"
        );
    }

    #[test]
    fn independent_code_is_structurally_bound() {
        let mut src = String::new();
        for i in 0..200 {
            src.push_str(&format!("li r{}, {i}\n", 1 + i % 31));
        }
        src.push_str("halt\n");
        let r = analyse(&src);
        assert_eq!(r.data_bound(), 0);
        assert_eq!(r.structural, r.instructions);
    }

    #[test]
    fn predictable_fraction_uses_the_filter() {
        let r = analyse("li r1, 0\nli r2, 500\ntop: addi r1, r1, 1\nbne r1, r2, top\nhalt\n");
        assert!(r.predictable_fraction(|a| a == InstrAddr::new(2)) > 0.99);
        assert_eq!(r.predictable_fraction(|_| false), 0.0);
    }
}
