//! The trace-driven dataflow analysis.

use std::collections::HashMap;

use vp_isa::{Reg, RegClass};
use vp_predictor::ValuePredictor;
use vp_sim::{Retirement, Tracer};

use crate::{IlpConfig, IlpResult, SlidingWindow};

const LATENCY: u64 = 1;

/// Replays a retirement trace through the abstract machine, computing the
/// schedule each instruction would get on the paper's §5.3 machine.
///
/// Use as a `vp-sim` [`Tracer`]; call [`IlpAnalyzer::finish`] afterwards.
///
/// # Examples
///
/// Independent instructions dispatch together (unlimited execution units):
///
/// ```
/// use vp_isa::asm::assemble;
/// use vp_sim::{run, RunLimits};
/// use vp_ilp::{IlpAnalyzer, IlpConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = assemble("li r1, 1\nli r2, 2\nli r3, 3\nli r4, 4\nhalt\n")?;
/// let mut a = IlpAnalyzer::new(IlpConfig::paper_no_vp());
/// run(&p, &mut a, RunLimits::default())?;
/// assert!(a.finish().ilp() >= 4.0);
/// # Ok(())
/// # }
/// ```
pub struct IlpAnalyzer {
    config: IlpConfig,
    predictor: Option<Box<dyn ValuePredictor>>,
    branch: crate::branch::BranchPredictor,
    window: SlidingWindow,
    int_ready: [u64; vp_isa::reg::NUM_REGS],
    fp_ready: [u64; vp_isa::reg::NUM_REGS],
    mem_ready: HashMap<u64, u64>,
    fetch_stall_until: u64,
    branch_mispredictions: u64,
    instructions: u64,
    last_completion: u64,
}

impl IlpAnalyzer {
    /// Creates an analyzer for the given machine configuration.
    #[must_use]
    pub fn new(config: IlpConfig) -> Self {
        let predictor = config.predictor.as_ref().map(|c| c.build());
        let window = SlidingWindow::new(config.window);
        let branch = crate::branch::BranchPredictor::new(config.branch);
        IlpAnalyzer {
            config,
            predictor,
            branch,
            window,
            int_ready: [0; vp_isa::reg::NUM_REGS],
            fp_ready: [0; vp_isa::reg::NUM_REGS],
            mem_ready: HashMap::new(),
            fetch_stall_until: 0,
            branch_mispredictions: 0,
            instructions: 0,
            last_completion: 0,
        }
    }

    /// Conditional branches mispredicted by the configured front end
    /// (always 0 with the paper's perfect branch prediction).
    #[must_use]
    pub fn branch_mispredictions(&self) -> u64 {
        self.branch_mispredictions
    }

    /// Finishes the analysis and returns the result.
    #[must_use]
    pub fn finish(self) -> IlpResult {
        IlpResult {
            instructions: self.instructions,
            cycles: self.last_completion,
            predictor: self.predictor.map(|p| *p.stats()),
        }
    }

    fn reg_ready(&self, class: RegClass, reg: Reg) -> u64 {
        match class {
            // The hardwired zero register is always ready.
            RegClass::Int if reg.is_zero() => 0,
            RegClass::Int => self.int_ready[usize::from(reg)],
            RegClass::Fp => self.fp_ready[usize::from(reg)],
        }
    }

    fn set_reg_ready(&mut self, class: RegClass, reg: Reg, cycle: u64) {
        match class {
            RegClass::Int if reg.is_zero() => {}
            RegClass::Int => self.int_ready[usize::from(reg)] = cycle,
            RegClass::Fp => self.fp_ready[usize::from(reg)] = cycle,
        }
    }
}

impl Tracer for IlpAnalyzer {
    fn retire(&mut self, ev: &Retirement<'_>) {
        self.instructions += 1;

        // 1. Dispatch: bounded by window occupancy and — when the perfect
        //    front end is relaxed — by pending branch-misprediction
        //    redirects.
        let dispatch = self.window.dispatch_bound().max(self.fetch_stall_until);

        // 2. Issue: operands ready. Loads additionally wait for the latest
        //    store to the same word (true memory dependence).
        let mut operands = dispatch;
        for src in ev.instr.sources().into_iter().flatten() {
            operands = operands.max(self.reg_ready(src.0, src.1));
        }
        if let Some(mem) = ev.mem {
            if !mem.store {
                if let Some(&t) = self.mem_ready.get(&mem.addr) {
                    operands = operands.max(t);
                }
            }
        }
        let completion = operands + LATENCY;

        // 3. Value prediction: collapse the output dependence if the
        //    predictor supplied a value the classifier trusted.
        if let Some((class, reg, actual)) = ev.dest {
            let ready = match &mut self.predictor {
                Some(p) => {
                    let access = p.access(ev.addr, ev.instr.directive, actual);
                    if access.speculated_correct() {
                        // Dependents read the predicted value as soon as this
                        // instruction occupies the window.
                        dispatch
                    } else if access.speculated_incorrect() {
                        completion + self.config.penalty
                    } else {
                        completion
                    }
                }
                None => completion,
            };
            self.set_reg_ready(class, reg, ready);
        }

        // 4. Memory effect.
        if let Some(mem) = ev.mem {
            if mem.store {
                self.mem_ready.insert(mem.addr, completion);
            }
        }

        // 5. Branch resolution: a mispredicted conditional branch redirects
        //    fetch once it resolves, stalling every younger dispatch.
        if let Some(taken) = ev.taken {
            if !self.branch.predict_and_update(ev.addr, taken) {
                self.branch_mispredictions += 1;
                self.fetch_stall_until = self
                    .fetch_stall_until
                    .max(completion + self.config.branch_penalty);
            }
        }

        self.window.push_completion(completion);
        self.last_completion = self.last_completion.max(completion);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::asm::assemble;
    use vp_sim::{run, RunLimits};

    fn ilp_of(src: &str, config: IlpConfig) -> IlpResult {
        let p = assemble(src).unwrap();
        let mut a = IlpAnalyzer::new(config);
        run(&p, &mut a, RunLimits::default()).unwrap();
        a.finish()
    }

    /// A 1000-iteration serial accumulator chain: every addi depends on the
    /// previous one.
    const SERIAL_CHAIN: &str = "li r1, 0\nli r2, 1000\nli r3, 0\n\
top: addi r3, r3, 7\naddi r1, r1, 1\nbne r1, r2, top\nhalt\n";

    #[test]
    fn dataflow_limit_of_a_serial_chain() {
        let r = ilp_of(SERIAL_CHAIN, IlpConfig::paper_no_vp());
        // Two independent chains (r3 accumulator, r1 index) + branch:
        // 3 instructions per iteration, critical path 1 cycle per iteration.
        let ilp = r.ilp();
        assert!(ilp > 2.5 && ilp <= 3.5, "ilp = {ilp}");
    }

    #[test]
    fn window_bounds_parallelism() {
        // 400 fully independent li instructions: with unlimited execution
        // units, ILP is capped purely by the window size.
        let mut wide = String::new();
        for i in 0..400 {
            wide.push_str(&format!("li r{}, {i}\n", 1 + i % 31));
        }
        wide.push_str("halt\n");
        let big = ilp_of(&wide, IlpConfig::paper_no_vp()).ilp();
        let small = ilp_of(&wide, IlpConfig::paper_no_vp().with_window(4)).ilp();
        assert!(
            big > 3.0 * small,
            "larger window must expose more ILP ({big} vs {small})"
        );
        assert!(small <= 4.0 + 1e-9);
        assert!(big <= 40.0 + 1e-9);
    }

    #[test]
    fn value_prediction_exceeds_the_dataflow_limit() {
        // The r3 accumulator chain is perfectly stride-predictable; VP must
        // collapse it. This is the paper's headline claim.
        let base = ilp_of(SERIAL_CHAIN, IlpConfig::paper_no_vp());
        let vp = ilp_of(SERIAL_CHAIN, IlpConfig::paper_vp_fsm());
        assert!(
            vp.ilp() > base.ilp() * 1.5,
            "vp {} must clearly beat base {}",
            vp.ilp(),
            base.ilp()
        );
        let stats = vp.predictor.unwrap();
        assert!(stats.speculated_correct > 0);
    }

    #[test]
    fn store_to_load_dependence_is_honoured() {
        // A pointer-chase through memory written immediately before: the
        // load must wait for the store.
        let chase = "li r1, 0\nli r2, 500\n\
top: sd r1, 100(r1)\nld r3, 100(r1)\naddi r1, r1, 1\nbne r1, r2, top\nhalt\n";
        let r = ilp_of(chase, IlpConfig::paper_no_vp());
        // store(c) -> load(c+1) is a 2-cycle chain per iteration, but the
        // index chain is 1/iter; ILP must reflect the memory serialisation:
        // 4 instrs per iter, ~1 cycle/iter critical path via index + window.
        assert!(r.ilp() < 5.0);
        // Sanity: dropping the store-load pair should raise ILP per cycle.
    }

    #[test]
    fn misprediction_penalty_hurts() {
        // An unpredictable chain (quadratic values) with an always-predict
        // classifier: every speculation is wrong and costs penalty cycles.
        let quad = "li r1, 0\nli r2, 1000\nli r3, 0\nli r4, 0\n\
top: addi r3, r3, 2\nadd r4, r4, r3\nmul r5, r4, r4\nadd r6, r5, r4\naddi r1, r1, 1\nbne r1, r2, top\nhalt\n";
        use vp_predictor::{ClassifierKind, PredictorConfig, TableGeometry};
        let always = IlpConfig {
            penalty: 8,
            predictor: Some(PredictorConfig::TableStride {
                geometry: TableGeometry::SPEC_512_2WAY,
                classifier: ClassifierKind::Always,
            }),
            ..IlpConfig::paper_no_vp()
        };
        let base = ilp_of(quad, IlpConfig::paper_no_vp());
        let hurt = ilp_of(quad, always.clone());
        let gentle = ilp_of(
            quad,
            IlpConfig {
                penalty: 0,
                ..always
            },
        );
        assert!(
            hurt.ilp() < gentle.ilp(),
            "penalty must cost cycles ({} vs {})",
            hurt.ilp(),
            gentle.ilp()
        );
        // With a zero penalty, speculating everything can't be worse than
        // no VP on this code.
        assert!(gentle.ilp() >= base.ilp() * 0.99);
    }

    #[test]
    fn real_branch_prediction_costs_cycles_on_irregular_branches() {
        use crate::BranchConfig;
        // Data-dependent branches on pseudo-random values: a real predictor
        // must miss some of them.
        let irregular = "li r1, 0\nli r2, 2000\nli r3, 12345\n\
top: muli r3, r3, 1103515245\naddi r3, r3, 12345\nsrli r4, r3, 16\nandi r4, r4, 1\n\
beq r4, r0, even\naddi r5, r5, 1\neven: addi r1, r1, 1\nbne r1, r2, top\nhalt\n";
        let perfect = ilp_of(irregular, IlpConfig::paper_no_vp());
        let p = assemble(irregular).unwrap();
        let mut real =
            IlpAnalyzer::new(IlpConfig::paper_no_vp().with_branch(BranchConfig::bimodal_4k(), 8));
        run(&p, &mut real, RunLimits::default()).unwrap();
        let mispredictions = real.branch_mispredictions();
        let real = real.finish();
        assert!(
            mispredictions > 100,
            "irregular branch must miss ({mispredictions})"
        );
        assert!(
            real.ilp() < 0.8 * perfect.ilp(),
            "redirect stalls must cost ILP: {} vs perfect {}",
            real.ilp(),
            perfect.ilp()
        );
        // The loop-back branch itself is almost perfectly biased, so the
        // misprediction count stays well below the branch count.
        assert!(mispredictions < 2_500);
    }

    #[test]
    fn biased_branches_are_nearly_free_even_with_a_real_predictor() {
        use crate::BranchConfig;
        let loopy = "li r1, 0\nli r2, 2000\ntop: addi r1, r1, 1\nbne r1, r2, top\nhalt\n";
        let perfect = ilp_of(loopy, IlpConfig::paper_no_vp());
        let p = assemble(loopy).unwrap();
        let mut real =
            IlpAnalyzer::new(IlpConfig::paper_no_vp().with_branch(BranchConfig::gshare_4k(), 8));
        run(&p, &mut real, RunLimits::default()).unwrap();
        // Warm-up only: one miss per fresh gshare history pattern.
        assert!(
            real.branch_mispredictions() < 20,
            "{}",
            real.branch_mispredictions()
        );
        let real = real.finish();
        assert!(
            real.ilp() > 0.9 * perfect.ilp(),
            "{} vs perfect {}",
            real.ilp(),
            perfect.ilp()
        );
    }

    #[test]
    fn empty_trace_finishes_cleanly() {
        let a = IlpAnalyzer::new(IlpConfig::paper_no_vp());
        let r = a.finish();
        assert_eq!(r.instructions, 0);
        assert_eq!(r.ilp(), 0.0);
    }
}
