//! Abstract-machine configuration.

use vp_predictor::PredictorConfig;

use crate::branch::BranchConfig;

/// Configuration of the abstract ILP machine.
///
/// [`IlpConfig::paper_no_vp`] and the `paper_vp_*` constructors produce
/// exactly the §5.3 machines.
#[derive(Debug, Clone)]
pub struct IlpConfig {
    /// Instruction-window size in entries (the paper uses 40).
    pub window: usize,
    /// Extra cycles charged to dependents of a used-but-wrong prediction
    /// (the paper uses 1).
    pub penalty: u64,
    /// The value predictor + classifier, or `None` for the no-VP baseline.
    pub predictor: Option<PredictorConfig>,
    /// Branch prediction front end (the paper's machine uses
    /// [`BranchConfig::Perfect`]).
    pub branch: BranchConfig,
    /// Dispatch-stall cycles charged after a mispredicted branch (only
    /// relevant with a non-perfect [`IlpConfig::branch`]).
    pub branch_penalty: u64,
}

impl IlpConfig {
    /// The paper's window size.
    pub const PAPER_WINDOW: usize = 40;

    /// The §5.3 baseline: no value prediction at all.
    #[must_use]
    pub fn paper_no_vp() -> Self {
        IlpConfig {
            window: Self::PAPER_WINDOW,
            penalty: 1,
            predictor: None,
            branch: BranchConfig::Perfect,
            branch_penalty: 0,
        }
    }

    /// The §5.3 "VP + SC" machine: value prediction with the 512-entry
    /// 2-way stride table and saturating-counter classification.
    #[must_use]
    pub fn paper_vp_fsm() -> Self {
        IlpConfig {
            predictor: Some(PredictorConfig::spec_table_stride_fsm()),
            ..Self::paper_no_vp()
        }
    }

    /// The §5.3 "VP + Prof." machine: the same table, admission and use
    /// controlled by opcode directives (run it on a phase-3 annotated
    /// binary).
    #[must_use]
    pub fn paper_vp_profile() -> Self {
        IlpConfig {
            predictor: Some(PredictorConfig::spec_table_stride_profile()),
            ..Self::paper_no_vp()
        }
    }

    /// Replaces the perfect front end with a real branch predictor that
    /// stalls dispatch `penalty` cycles per misprediction.
    #[must_use]
    pub fn with_branch(mut self, branch: BranchConfig, penalty: u64) -> Self {
        self.branch = branch;
        self.branch_penalty = penalty;
        self
    }

    /// Overrides the window size.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window > 0, "window must be non-empty");
        self.window = window;
        self
    }

    /// Overrides the misprediction penalty.
    #[must_use]
    pub fn with_penalty(mut self, penalty: u64) -> Self {
        self.penalty = penalty;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machines_match_section_5_3() {
        let base = IlpConfig::paper_no_vp();
        assert_eq!(base.window, 40);
        assert_eq!(base.penalty, 1);
        assert!(base.predictor.is_none());
        assert!(IlpConfig::paper_vp_fsm().predictor.is_some());
        assert!(IlpConfig::paper_vp_profile().predictor.is_some());
    }

    #[test]
    fn builders_override() {
        let c = IlpConfig::paper_no_vp().with_window(8).with_penalty(3);
        assert_eq!((c.window, c.penalty), (8, 3));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_window_panics() {
        let _ = IlpConfig::paper_no_vp().with_window(0);
    }
}
