//! ILP measurement results.

use std::fmt;

use vp_predictor::PredictorStats;

/// Outcome of replaying one trace through the abstract machine.
#[derive(Debug, Clone, Default)]
pub struct IlpResult {
    /// Instructions analysed.
    pub instructions: u64,
    /// Cycles the abstract machine needed (max completion cycle).
    pub cycles: u64,
    /// Predictor statistics, when value prediction was enabled.
    pub predictor: Option<PredictorStats>,
}

impl IlpResult {
    /// Instruction-level parallelism: instructions per cycle.
    ///
    /// Returns 0 for an empty trace.
    #[must_use]
    pub fn ilp(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Percentage ILP increase of `self` over a `baseline` run
    /// (the quantity Table 5.2 reports).
    ///
    /// # Panics
    ///
    /// Panics if the baseline analysed zero instructions.
    #[must_use]
    pub fn ilp_increase_over(&self, baseline: &IlpResult) -> f64 {
        let base = baseline.ilp();
        assert!(base > 0.0, "baseline ILP must be positive");
        100.0 * (self.ilp() / base - 1.0)
    }
}

impl fmt::Display for IlpResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instrs / {} cycles = {:.3} ILP",
            self.instructions,
            self.cycles,
            self.ilp()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ilp_is_instructions_per_cycle() {
        let r = IlpResult {
            instructions: 100,
            cycles: 25,
            predictor: None,
        };
        assert!((r.ilp() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_reads_zero() {
        assert_eq!(IlpResult::default().ilp(), 0.0);
    }

    #[test]
    fn increase_is_percentage() {
        let base = IlpResult {
            instructions: 100,
            cycles: 50,
            predictor: None,
        };
        let vp = IlpResult {
            instructions: 100,
            cycles: 40,
            predictor: None,
        };
        assert!((vp.ilp_increase_over(&base) - 25.0).abs() < 1e-9);
    }
}
