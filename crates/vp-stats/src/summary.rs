//! Small numeric helpers shared by experiment reports.

/// Arithmetic mean; 0 for an empty slice.
///
/// ```
/// assert_eq!(vp_stats::summary::mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(vp_stats::summary::mean(&[]), 0.0);
/// ```
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean of positive values; 0 for an empty slice.
///
/// Benchmark-suite aggregates conventionally use the geometric mean.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
#[must_use]
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Population standard deviation; 0 for fewer than two values.
#[must_use]
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Minimum and maximum; `None` for an empty slice.
#[must_use]
pub fn min_max(values: &[f64]) -> Option<(f64, f64)> {
    values.iter().fold(None, |acc, &v| match acc {
        None => Some((v, v)),
        Some((lo, hi)) => Some((lo.min(v), hi.max(v))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_constants() {
        assert_eq!(mean(&[5.0; 8]), 5.0);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_zero() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn std_dev_of_constants_is_zero() {
        assert_eq!(std_dev(&[3.0, 3.0, 3.0]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_handles_empty_and_order() {
        assert_eq!(min_max(&[]), None);
        assert_eq!(min_max(&[3.0, -1.0, 2.0]), Some((-1.0, 3.0)));
    }
}
