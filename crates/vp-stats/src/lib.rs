#![warn(missing_docs)]

//! # vp-stats — the paper's metrics, histograms and report rendering
//!
//! Shared measurement utilities:
//!
//! - [`metrics`] — the Section 4 similarity metrics: the per-coordinate
//!   **maximum-distance** metric `M(V)max` (equation 4.1) and
//!   **average-distance** metric `M(V)average` (equation 4.2) over a set of
//!   profile vectors;
//! - [`histogram`] — decile histograms over `[0, 100]` percentages, the
//!   presentation device of Figures 2.2, 2.3 and 4.1–4.3;
//! - [`table`] — plain-text table rendering used by every `repro-*` binary;
//! - [`summary`] — small numeric helpers (means, extrema).
//!
//! ## Example
//!
//! ```
//! use vp_stats::metrics::{max_distance, average_distance};
//! use vp_stats::histogram::DecileHistogram;
//!
//! let runs = vec![vec![99.0, 5.0], vec![97.0, 8.0], vec![98.0, 4.0]];
//! let m = max_distance(&runs);
//! assert!(m.iter().all(|&d| d <= 4.0));       // runs agree closely...
//! let h = DecileHistogram::from_values(&m);
//! assert!(h.low_mass(1) > 0.99);              // ...so M(V)max mass is in [0,10]
//! let avg = average_distance(&runs);
//! assert!(avg[0] < m[0] + 1e-12);
//! ```

pub mod histogram;
pub mod metrics;
pub mod summary;
pub mod table;

pub use histogram::DecileHistogram;
pub use table::TextTable;
