//! Plain-text table rendering for experiment reports.

use std::fmt;

/// A simple aligned text table.
///
/// Every `repro-*` binary prints its paper table/figure through this type so
/// output formatting is uniform and diff-able.
///
/// # Examples
///
/// ```
/// use vp_stats::TextTable;
/// let mut t = TextTable::new(["bench", "ILP"]);
/// t.row(["go", "1.10"]);
/// t.row(["mgrid", "2.59"]);
/// let s = t.to_string();
/// assert!(s.contains("bench"));
/// assert!(s.lines().count() >= 4); // header + rule + 2 rows
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                // First column left-aligned, the rest right-aligned
                // (labels left, numbers right).
                if i == 0 {
                    write!(f, "{cell:<w$}")?;
                } else {
                    write!(f, "{cell:>w$}")?;
                }
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

/// Formats a `[0, 1]` ratio as a percentage with one decimal, e.g. `"93.7%"`.
#[must_use]
pub fn percent(ratio: f64) -> String {
    format!("{:.1}%", 100.0 * ratio)
}

/// Formats a signed percentage delta, e.g. `"+12.3%"` / `"-4.0%"`.
#[must_use]
pub fn signed_percent(value: f64) -> String {
    format!("{value:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer-name", "123456"]);
        let rendered = t.to_string();
        let lines: Vec<&str> = rendered.lines().collect();
        // All lines equal width (trailing alignment).
        assert_eq!(lines[0].len(), lines[1].len());
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(0.937), "93.7%");
        assert_eq!(percent(0.0), "0.0%");
        assert_eq!(signed_percent(12.34), "+12.3%");
        assert_eq!(signed_percent(-4.0), "-4.0%");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.to_string().lines().count(), 2);
    }
}
