//! The Section 4 vector-similarity metrics.
//!
//! Given `n` profile vectors `V = {V1 … Vn}` (one per training run, each
//! coordinate the prediction accuracy of one static instruction, in
//! percent), the paper measures their resemblance coordinate-wise:
//!
//! - **maximum distance** (equation 4.1): coordinate `i` of `M(V)max` is the
//!   largest `|v_a,i − v_b,i|` over all run pairs `(a, b)`;
//! - **average distance** (equation 4.2): the arithmetic mean of the same
//!   pairwise distances.
//!
//! Small coordinates mean the instruction behaves the same under every
//! input — the property that makes profiling trustworthy.

/// Computes `M(V)max` (equation 4.1) for a set of aligned vectors.
///
/// # Panics
///
/// Panics if fewer than two vectors are supplied or their dimensions
/// disagree.
#[must_use]
pub fn max_distance(vectors: &[Vec<f64>]) -> Vec<f64> {
    pairwise(vectors, |distances| {
        distances.iter().copied().fold(0.0_f64, f64::max)
    })
}

/// Computes `M(V)average` (equation 4.2) for a set of aligned vectors.
///
/// # Panics
///
/// Panics if fewer than two vectors are supplied or their dimensions
/// disagree.
#[must_use]
pub fn average_distance(vectors: &[Vec<f64>]) -> Vec<f64> {
    pairwise(vectors, |distances| {
        distances.iter().sum::<f64>() / distances.len() as f64
    })
}

/// Shared pairwise machinery: for each coordinate, collects the
/// `n·(n−1)/2` pairwise absolute differences and reduces them with `fold`.
#[allow(clippy::needless_range_loop)] // `i` indexes into all n vectors at once
fn pairwise(vectors: &[Vec<f64>], fold: impl Fn(&[f64]) -> f64) -> Vec<f64> {
    let n = vectors.len();
    assert!(n >= 2, "similarity metrics need at least two runs, got {n}");
    let k = vectors[0].len();
    for (j, v) in vectors.iter().enumerate() {
        assert_eq!(
            v.len(),
            k,
            "vector {j} has dimension {} (expected {k})",
            v.len()
        );
    }
    let mut out = Vec::with_capacity(k);
    let mut distances = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..k {
        distances.clear();
        for a in 0..n {
            for b in (a + 1)..n {
                distances.push((vectors[a][i] - vectors[b][i]).abs());
            }
        }
        out.push(fold(&distances));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_rng::prop;

    #[test]
    fn identical_runs_have_zero_distance() {
        let v = vec![vec![10.0, 90.0, 45.0]; 4];
        assert_eq!(max_distance(&v), vec![0.0, 0.0, 0.0]);
        assert_eq!(average_distance(&v), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn hand_computed_three_run_example() {
        // Coordinate values across runs: 0, 6, 10.
        // Pairwise distances: |0-6|=6, |0-10|=10, |6-10|=4.
        let v = vec![vec![0.0], vec![6.0], vec![10.0]];
        assert_eq!(max_distance(&v), vec![10.0]);
        let avg = average_distance(&v)[0];
        assert!((avg - 20.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn two_runs_reduce_to_plain_difference() {
        let v = vec![vec![30.0, 80.0], vec![50.0, 70.0]];
        assert_eq!(max_distance(&v), vec![20.0, 10.0]);
        assert_eq!(average_distance(&v), vec![20.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "at least two runs")]
    fn one_run_panics() {
        let _ = max_distance(&[vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn mismatched_dimensions_panic() {
        let _ = average_distance(&[vec![1.0, 2.0], vec![1.0]]);
    }

    fn arb_runs(rng: &mut vp_rng::Rng, dims: usize, lo: usize, hi: usize) -> Vec<Vec<f64>> {
        (0..rng.gen_range(lo..hi))
            .map(|_| (0..dims).map(|_| rng.gen_f64() * 100.0).collect())
            .collect()
    }

    /// The average distance never exceeds the maximum distance, and both
    /// are bounded by the coordinate range.
    #[test]
    fn prop_average_below_max() {
        prop::forall("average distance below max distance", |rng| {
            arb_runs(rng, 5, 2, 6)
        })
        .check(|runs| {
            let mx = max_distance(runs);
            let avg = average_distance(runs);
            for i in 0..5 {
                assert!(avg[i] <= mx[i] + 1e-9);
                assert!(mx[i] <= 100.0);
                assert!(avg[i] >= 0.0);
            }
        });
    }

    /// Metrics are permutation-invariant over runs.
    #[test]
    fn prop_run_order_irrelevant() {
        prop::forall("distance metrics ignore run order", |rng| {
            arb_runs(rng, 3, 3, 5)
        })
        .check(|runs| {
            let before = (max_distance(runs), average_distance(runs));
            let mut reversed = runs.clone();
            reversed.reverse();
            let after = (max_distance(&reversed), average_distance(&reversed));
            for i in 0..3 {
                assert!((before.0[i] - after.0[i]).abs() < 1e-9);
                assert!((before.1[i] - after.1[i]).abs() < 1e-9);
            }
        });
    }
}
