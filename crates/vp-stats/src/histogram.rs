//! Decile histograms over percentage values.

use std::fmt;

/// Number of bins: the paper's intervals `[0,10], (10,20], …, (90,100]`.
pub const BINS: usize = 10;

/// A histogram over `[0, 100]` with the paper's ten intervals.
///
/// Used for Figure 2.2 (instructions by prediction accuracy), Figure 2.3
/// (instructions by stride efficiency ratio) and Figures 4.1–4.3 (metric
/// coordinates).
///
/// # Examples
///
/// ```
/// use vp_stats::DecileHistogram;
/// let h = DecileHistogram::from_values(&[0.0, 5.0, 10.0, 10.1, 95.0]);
/// assert_eq!(h.count(0), 3);  // 0, 5 and 10 land in [0,10]
/// assert_eq!(h.count(1), 1);  // 10.1 lands in (10,20]
/// assert_eq!(h.count(9), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecileHistogram {
    counts: [u64; BINS],
}

impl DecileHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        DecileHistogram::default()
    }

    /// Builds a histogram from values in `[0, 100]`.
    ///
    /// Values are clamped to the range (floating-point ratios occasionally
    /// land at `100.00000001`).
    #[must_use]
    pub fn from_values(values: &[f64]) -> Self {
        let mut h = DecileHistogram::new();
        for &v in values {
            h.add(v);
        }
        h
    }

    /// Adds one value.
    pub fn add(&mut self, value: f64) {
        self.counts[Self::bin_of(value)] += 1;
    }

    /// The bin a value lands in: `[0,10]` is bin 0, `(10,20]` bin 1, …
    #[must_use]
    pub fn bin_of(value: f64) -> usize {
        let v = value.clamp(0.0, 100.0);
        if v <= 10.0 {
            0
        } else {
            ((v / 10.0).ceil() as usize - 1).min(BINS - 1)
        }
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 10`.
    #[must_use]
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All bin counts.
    #[must_use]
    pub fn counts(&self) -> [u64; BINS] {
        self.counts
    }

    /// Total samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of mass in bin `i`, in `[0, 1]` (0 for an empty histogram).
    #[must_use]
    pub fn fraction(&self, i: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / total as f64
        }
    }

    /// Fraction of mass in the lowest `n` bins — the quantity the paper
    /// eyeballs in Figures 4.1–4.3 ("most of the coordinates are spread
    /// across the lower intervals").
    #[must_use]
    pub fn low_mass(&self, n: usize) -> f64 {
        (0..n.min(BINS)).map(|i| self.fraction(i)).sum()
    }

    /// Fraction of mass in the highest `n` bins (e.g. the >90% accuracy
    /// population of Figure 2.2).
    #[must_use]
    pub fn high_mass(&self, n: usize) -> f64 {
        ((BINS - n.min(BINS))..BINS).map(|i| self.fraction(i)).sum()
    }

    /// The label of bin `i`, paper-style.
    #[must_use]
    pub fn label(i: usize) -> String {
        if i == 0 {
            "[0,10]".to_owned()
        } else {
            format!("({},{}]", i * 10, (i + 1) * 10)
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &DecileHistogram) {
        for i in 0..BINS {
            self.counts[i] += other.counts[i];
        }
    }
}

impl fmt::Display for DecileHistogram {
    /// Renders an ASCII bar chart, one row per bin.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total().max(1);
        for i in 0..BINS {
            let frac = self.counts[i] as f64 / total as f64;
            let bar = "#".repeat((frac * 50.0).round() as usize);
            writeln!(f, "{:>9} {:>6.1}% |{}", Self::label(i), 100.0 * frac, bar)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_rng::prop;

    #[test]
    fn interval_boundaries_match_paper() {
        // [0,10] closed on both ends, then half-open-below.
        assert_eq!(DecileHistogram::bin_of(0.0), 0);
        assert_eq!(DecileHistogram::bin_of(10.0), 0);
        assert_eq!(DecileHistogram::bin_of(10.000001), 1);
        assert_eq!(DecileHistogram::bin_of(20.0), 1);
        assert_eq!(DecileHistogram::bin_of(90.0), 8);
        assert_eq!(DecileHistogram::bin_of(90.1), 9);
        assert_eq!(DecileHistogram::bin_of(100.0), 9);
    }

    #[test]
    fn clamping_of_out_of_range_values() {
        assert_eq!(DecileHistogram::bin_of(-5.0), 0);
        assert_eq!(DecileHistogram::bin_of(140.0), 9);
    }

    #[test]
    fn low_and_high_mass() {
        let h = DecileHistogram::from_values(&[1.0, 2.0, 3.0, 95.0]);
        assert!((h.low_mass(1) - 0.75).abs() < 1e-12);
        assert!((h.high_mass(1) - 0.25).abs() < 1e-12);
        assert!((h.low_mass(10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_fractions_are_zero() {
        let h = DecileHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.fraction(0), 0.0);
        assert_eq!(h.low_mass(10), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = DecileHistogram::from_values(&[5.0]);
        let b = DecileHistogram::from_values(&[95.0, 96.0]);
        a.merge(&b);
        assert_eq!(a.count(0), 1);
        assert_eq!(a.count(9), 2);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn labels_are_paper_style() {
        assert_eq!(DecileHistogram::label(0), "[0,10]");
        assert_eq!(DecileHistogram::label(9), "(90,100]");
    }

    #[test]
    fn display_renders_ten_rows() {
        let h = DecileHistogram::from_values(&[50.0]);
        assert_eq!(h.to_string().lines().count(), 10);
    }

    #[test]
    fn prop_every_value_lands_in_exactly_one_bin() {
        prop::forall("each value lands in exactly one bin", |rng| {
            rng.gen_f64() * 100.0
        })
        .check(|&v| {
            let h = DecileHistogram::from_values(&[v]);
            assert_eq!(h.total(), 1);
            let bin = DecileHistogram::bin_of(v);
            assert_eq!(h.count(bin), 1);
        });
    }

    #[test]
    fn prop_mass_partitions() {
        prop::forall("bin fractions partition unity", |rng| {
            (0..rng.gen_range(1..100usize))
                .map(|_| rng.gen_f64() * 100.0)
                .collect::<Vec<f64>>()
        })
        .check(|values| {
            let h = DecileHistogram::from_values(values);
            assert_eq!(h.total() as usize, values.len());
            let sum: f64 = (0..BINS).map(|i| h.fraction(i)).sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!((h.low_mass(3) + h.high_mass(7) - 1.0).abs() < 1e-9);
        });
    }
}
