#![warn(missing_docs)]

//! # vp-rng — deterministic randomness without external dependencies
//!
//! The workspace must build with no network access (the paper-reproduction
//! environment has no crates-io mirror), so this crate supplies the two
//! things `rand` and `proptest` were used for:
//!
//! 1. [`Rng`] — a small, fast, *stable* pseudo-random generator
//!    (xoshiro256\*\* seeded through SplitMix64). Workload generators derive
//!    all input data from it, so its output sequence is part of the
//!    experiment contract: changing it changes every golden output.
//! 2. [`prop`] — a miniature property-testing harness (`forall`-style) used
//!    by the differential and invariant test suites.
//!
//! ## Example
//!
//! ```
//! use vp_rng::Rng;
//! let mut rng = Rng::seed_from_u64(42);
//! let a = rng.gen_range(10..20u64);
//! assert!((10..20).contains(&a));
//! let mut rng2 = Rng::seed_from_u64(42);
//! assert_eq!(rng2.gen_range(10..20u64), a); // fully deterministic
//! ```

pub mod prop;

use std::ops::{Range, RangeInclusive};

/// A deterministic xoshiro256\*\* generator.
///
/// The sequence produced for a given seed is **frozen**: experiment golden
/// outputs depend on it. Do not change the algorithm without regenerating
/// every checked-in snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step — used to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion, as
    /// recommended by the xoshiro authors).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next raw 64-bit output (xoshiro256\*\*).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `u64` (alias of [`Rng::next_u64`], mirroring `rand`'s
    /// `gen::<u64>()`).
    #[inline]
    pub fn gen_u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high bits → [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform value below `n` without modulo bias (rejection sampling).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sampling range");
        // Zone rejection: accept only draws below the largest multiple of n.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// Uniform sample from an integer range, `rand`-style:
    /// `rng.gen_range(0..64u64)` or `rng.gen_range(5..=9i64)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<T, R: UniformRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniformly chosen element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len() as u64) as usize])
        }
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

/// Integer range types [`Rng::gen_range`] can sample from (the type
/// parameter lets integer literals infer their width from context, as with
/// `rand`).
pub trait UniformRange<T> {
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_uniform {
    ($($ty:ty),*) => {$(
        impl UniformRange<$ty> for Range<$ty> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl UniformRange<$ty> for RangeInclusive<$ty> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $ty
            }
        }
    )*};
}

impl_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_is_frozen() {
        // Golden values: the workload generators (and therefore every
        // experiment snapshot) depend on this exact sequence.
        let mut rng = Rng::seed_from_u64(0);
        assert_eq!(rng.next_u64(), 11091344671253066420);
        assert_eq!(rng.next_u64(), 13793997310169335082);
        let mut rng = Rng::seed_from_u64(0xdead_beef);
        let first = rng.next_u64();
        let mut again = Rng::seed_from_u64(0xdead_beef);
        assert_eq!(again.next_u64(), first);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..2000 {
            assert!((5..50u64).contains(&rng.gen_range(5..50u64)));
            assert!((-3..=3i64).contains(&rng.gen_range(-3..=3i64)));
            assert!(rng.gen_range(9..=9u32) == 9);
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.below(8) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        assert_ne!(v, (0..100).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = Rng::seed_from_u64(5);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*rng.choose(&items).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(rng.choose::<u8>(&[]).is_none());
    }
}
