//! A miniature property-testing harness.
//!
//! Replaces the `proptest` dependency (unavailable offline) for the
//! differential and invariant suites: generate `cases` random values from a
//! seeded [`Rng`], run the property on each, and on failure report the case
//! number, the seed that reproduces it, and the generated value.
//!
//! No shrinking — failures print the exact generated value, which for this
//! workspace's small generators is enough to reproduce and debug.
//!
//! # Examples
//!
//! ```
//! use vp_rng::prop;
//!
//! prop::forall("addition commutes", |rng| {
//!     (rng.gen_range(0..1000u64), rng.gen_range(0..1000u64))
//! })
//! .check(|&(a, b)| assert_eq!(a + b, b + a));
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::Rng;

/// Default number of cases per property (override with
/// [`Property::cases`] or the `VP_PROP_CASES` environment variable).
pub const DEFAULT_CASES: u32 = 96;

/// Base seed of case 0; case `i` uses `BASE_SEED + i`.
pub const BASE_SEED: u64 = 0x5eed_cafe_0000_0000;

/// A named property under test: a generator plus (via [`Property::check`])
/// an assertion.
pub struct Property<G> {
    name: &'static str,
    generate: G,
    cases: u32,
    base_seed: u64,
}

/// Starts a property: `gen` derives one arbitrary test case from an [`Rng`].
pub fn forall<T, G: Fn(&mut Rng) -> T>(name: &'static str, generate: G) -> Property<G> {
    let cases = std::env::var("VP_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES);
    Property {
        name,
        generate,
        cases,
        base_seed: BASE_SEED,
    }
}

impl<G> Property<G> {
    /// Overrides the number of generated cases (e.g. fewer for expensive
    /// simulation-backed properties).
    #[must_use]
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Overrides the base seed (case `i` is generated from `seed + i`).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Runs the property on every generated case; panics (re-raising the
    /// case's own panic) after printing a reproduction header on failure.
    ///
    /// # Panics
    ///
    /// Re-raises the first failing case's panic.
    pub fn check<T: std::fmt::Debug>(self, property: impl Fn(&T))
    where
        G: Fn(&mut Rng) -> T,
    {
        for case in 0..self.cases {
            let seed = self.base_seed.wrapping_add(u64::from(case));
            let mut rng = Rng::seed_from_u64(seed);
            let value = (self.generate)(&mut rng);
            let result = catch_unwind(AssertUnwindSafe(|| property(&value)));
            if let Err(panic) = result {
                eprintln!(
                    "property `{}` failed at case {case}/{} (seed {seed:#x})\n\
                     generated value: {value:?}",
                    self.name, self.cases
                );
                resume_unwind(panic);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u32;
        forall("counting", |rng| rng.gen_range(0..10u64))
            .cases(25)
            .check(|v| {
                assert!(*v < 10);
                // Interior mutability not needed: check takes Fn, but we can
                // observe via a cell.
                let _ = v;
            });
        // Count via a fresh run with a capturing closure over a Cell.
        let counter = std::cell::Cell::new(0u32);
        forall("counting2", |rng| rng.gen_u64())
            .cases(25)
            .check(|_| {
                counter.set(counter.get() + 1);
            });
        seen += counter.get();
        assert_eq!(seen, 25);
    }

    #[test]
    fn failing_property_reports_and_panics() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            forall("always fails", |rng| rng.gen_range(0..4u64))
                .cases(3)
                .check(|v| assert!(*v > 100, "generated {v}"));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn cases_are_deterministic() {
        let collect = || {
            let values = std::cell::RefCell::new(Vec::new());
            forall("det", |rng| rng.gen_u64()).cases(10).check(|v| {
                values.borrow_mut().push(*v);
            });
            values.into_inner()
        };
        assert_eq!(collect(), collect());
    }
}
