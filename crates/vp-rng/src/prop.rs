//! A miniature property-testing harness.
//!
//! Replaces the `proptest` dependency (unavailable offline) for the
//! differential and invariant suites: generate `cases` random values from a
//! seeded [`Rng`], run the property on each, and on failure report the case
//! number, a copy-pasteable single-case repro command, and the generated
//! value.
//!
//! Failures found by [`Property::check_shrinking`] are additionally
//! minimized through the [`Shrink`] trait (integer halving, vector
//! bisection/removal) before being reported, so the printed counterexample
//! is usually far smaller than the generated one.
//!
//! # Examples
//!
//! ```
//! use vp_rng::prop;
//!
//! prop::forall("addition commutes", |rng| {
//!     (rng.gen_range(0..1000u64), rng.gen_range(0..1000u64))
//! })
//! .check(|&(a, b)| assert_eq!(a + b, b + a));
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::Rng;

/// Default number of cases per property (override with
/// [`Property::cases`] or the `VP_PROP_CASES` environment variable).
pub const DEFAULT_CASES: u32 = 96;

/// Base seed of case 0; case `i` uses `BASE_SEED + i`. Override with
/// [`Property::seed`] or the `VP_PROP_BASE_SEED` environment variable
/// (decimal or `0x`-prefixed hex).
pub const BASE_SEED: u64 = 0x5eed_cafe_0000_0000;

/// Maximum number of candidate evaluations one shrink run may spend.
const MAX_SHRINK_EVALS: u32 = 4096;

/// Produces structurally smaller candidate values for counterexample
/// minimization.
///
/// `shrink` returns candidates that are *strictly simpler* than `self`
/// (ordered simplest-first is best but not required); the harness keeps a
/// candidate only if the property still fails on it, so implementations
/// never need to preserve failure themselves. An empty vector means fully
/// shrunk.
pub trait Shrink: Sized {
    /// Candidate simplifications of `self`.
    fn shrink(&self) -> Vec<Self>;
}

macro_rules! impl_shrink_unsigned {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    if v > 1 {
                        out.push(v / 2);
                    }
                    out.push(v - 1);
                    out.dedup();
                }
                out
            }
        }
    )*};
}

macro_rules! impl_shrink_signed {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    if v < 0 {
                        // A positive value of the same magnitude is simpler.
                        if let Some(p) = v.checked_neg() {
                            out.push(p);
                        }
                    }
                    out.push(v / 2);
                    out.push(v - v.signum());
                    out.dedup();
                }
                out
            }
        }
    )*};
}

impl_shrink_unsigned!(u8, u16, u32, u64, usize);
impl_shrink_signed!(i8, i16, i32, i64, isize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let n = self.len();
        let mut out = Vec::new();
        if n == 0 {
            return out;
        }
        // Aggressive first: drop half the elements at a time.
        if n > 1 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n - n / 2..].to_vec());
        } else {
            out.push(Vec::new());
        }
        // Then drop single elements.
        for i in 0..n {
            let mut v = self.clone();
            v.remove(i);
            out.push(v);
        }
        // Finally shrink elements in place.
        for i in 0..n {
            for candidate in self[i].shrink() {
                let mut v = self.clone();
                v[i] = candidate;
                out.push(v);
            }
        }
        out
    }
}

impl<A: Shrink + Clone, B: Shrink + Clone> Shrink for (A, B) {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        for a in self.0.shrink() {
            out.push((a, self.1.clone()));
        }
        for b in self.1.shrink() {
            out.push((self.0.clone(), b));
        }
        out
    }
}

/// A named property under test: a generator plus (via [`Property::check`])
/// an assertion.
pub struct Property<G> {
    name: &'static str,
    generate: G,
    cases: u32,
    base_seed: u64,
}

/// Parses `VP_PROP_BASE_SEED`-style values: decimal, or `0x`-prefixed hex
/// (underscore separators allowed).
fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim().replace('_', "");
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Starts a property: `gen` derives one arbitrary test case from an [`Rng`].
pub fn forall<T, G: Fn(&mut Rng) -> T>(name: &'static str, generate: G) -> Property<G> {
    let cases = std::env::var("VP_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES);
    let base_seed = std::env::var("VP_PROP_BASE_SEED")
        .ok()
        .and_then(|v| parse_seed(&v))
        .unwrap_or(BASE_SEED);
    Property {
        name,
        generate,
        cases,
        base_seed,
    }
}

impl<G> Property<G> {
    /// Overrides the number of generated cases (e.g. fewer for expensive
    /// simulation-backed properties).
    #[must_use]
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Overrides the base seed (case `i` is generated from `seed + i`).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Prints the failure report: where it failed, the (possibly shrunk)
    /// counterexample, and a copy-pasteable command that replays exactly the
    /// failing case.
    fn report_failure<T: std::fmt::Debug>(&self, case: u32, seed: u64, value: &T) {
        // A `cargo test` filter derived from the property name: most suites
        // name the enclosing test after the property.
        let filter: String = self
            .name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        eprintln!(
            "property `{}` failed at case {case}/{} (seed {seed:#x})\n\
             counterexample: {value:?}\n\
             repro (this case only):\n\
             \x20   VP_PROP_CASES=1 VP_PROP_BASE_SEED={seed:#x} cargo test {filter}",
            self.name, self.cases
        );
    }

    /// Runs the property on every generated case; panics (re-raising the
    /// case's own panic) after printing a reproduction header on failure.
    ///
    /// # Panics
    ///
    /// Re-raises the first failing case's panic.
    pub fn check<T: std::fmt::Debug>(self, property: impl Fn(&T))
    where
        G: Fn(&mut Rng) -> T,
    {
        for case in 0..self.cases {
            let seed = self.base_seed.wrapping_add(u64::from(case));
            let mut rng = Rng::seed_from_u64(seed);
            let value = (self.generate)(&mut rng);
            let result = catch_unwind(AssertUnwindSafe(|| property(&value)));
            if let Err(panic) = result {
                self.report_failure(case, seed, &value);
                resume_unwind(panic);
            }
        }
    }

    /// Like [`Property::check`], but minimizes the failing value through
    /// [`Shrink`] before reporting, so the printed counterexample is the
    /// smallest one (reachable by greedy shrinking) that still fails.
    ///
    /// # Panics
    ///
    /// Re-raises the panic produced by the *shrunk* counterexample.
    pub fn check_shrinking<T: std::fmt::Debug + Shrink + Clone>(self, property: impl Fn(&T))
    where
        G: Fn(&mut Rng) -> T,
    {
        for case in 0..self.cases {
            let seed = self.base_seed.wrapping_add(u64::from(case));
            let mut rng = Rng::seed_from_u64(seed);
            let value = (self.generate)(&mut rng);
            if catch_unwind(AssertUnwindSafe(|| property(&value))).is_ok() {
                continue;
            }
            let (shrunk, steps) = shrink_to_minimal(value, &property);
            eprintln!("shrunk failing case in {steps} step(s)");
            self.report_failure(case, seed, &shrunk);
            // Re-run the minimal case outside catch_unwind so the panic the
            // test harness reports belongs to the printed counterexample.
            property(&shrunk);
            unreachable!("shrunk counterexample no longer fails");
        }
    }
}

/// Greedily minimizes `value` under `property`, keeping any candidate that
/// still fails. Returns the minimal value and the number of accepted steps.
fn shrink_to_minimal<T: Shrink>(mut value: T, property: &impl Fn(&T)) -> (T, u32) {
    // Candidate probes that *pass* would spam the default panic message for
    // every rejected candidate; silence the hook while probing.
    let saved_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut accepted = 0u32;
    let mut evals = 0u32;
    'outer: loop {
        for candidate in value.shrink() {
            if evals >= MAX_SHRINK_EVALS {
                break 'outer;
            }
            evals += 1;
            if catch_unwind(AssertUnwindSafe(|| property(&candidate))).is_err() {
                value = candidate;
                accepted += 1;
                continue 'outer;
            }
        }
        break;
    }
    std::panic::set_hook(saved_hook);
    (value, accepted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u32;
        forall("counting", |rng| rng.gen_range(0..10u64))
            .cases(25)
            .check(|v| {
                assert!(*v < 10);
                // Interior mutability not needed: check takes Fn, but we can
                // observe via a cell.
                let _ = v;
            });
        // Count via a fresh run with a capturing closure over a Cell.
        let counter = std::cell::Cell::new(0u32);
        forall("counting2", |rng| rng.gen_u64())
            .cases(25)
            .check(|_| {
                counter.set(counter.get() + 1);
            });
        seen += counter.get();
        assert_eq!(seen, 25);
    }

    #[test]
    fn failing_property_reports_and_panics() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            forall("always fails", |rng| rng.gen_range(0..4u64))
                .cases(3)
                .check(|v| assert!(*v > 100, "generated {v}"));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn cases_are_deterministic() {
        let collect = || {
            let values = std::cell::RefCell::new(Vec::new());
            forall("det", |rng| rng.gen_u64()).cases(10).check(|v| {
                values.borrow_mut().push(*v);
            });
            values.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn integer_shrinking_halves_toward_zero() {
        let candidates = 100u64.shrink();
        assert!(candidates.contains(&0));
        assert!(candidates.contains(&50));
        assert!(candidates.contains(&99));
        assert!(0u64.shrink().is_empty());
        assert_eq!((-8i64).shrink().first(), Some(&0));
        assert!((-8i64).shrink().contains(&8));
    }

    #[test]
    fn vec_shrinking_bisects_and_removes() {
        let v = vec![10u64, 20, 30, 40];
        let candidates = v.shrink();
        // Halving produces both halves.
        assert!(candidates.contains(&vec![10, 20]));
        assert!(candidates.contains(&vec![30, 40]));
        // Single-element removal.
        assert!(candidates.contains(&vec![10, 30, 40]));
        // Element-wise shrinking.
        assert!(candidates.contains(&vec![0, 20, 30, 40]));
        assert!(Vec::<u64>::new().shrink().is_empty());
    }

    #[test]
    fn shrink_to_minimal_finds_boundary() {
        // Property "v < 57" fails for any v >= 57; the minimal failing value
        // is exactly 57.
        let (minimal, steps) = shrink_to_minimal(1_000_000u64, &|v: &u64| assert!(*v < 57));
        assert_eq!(minimal, 57);
        assert!(steps > 0);
    }

    #[test]
    fn shrinking_check_minimizes_vec_counterexamples() {
        // Any vec containing an element >= 100 fails; minimal failing vec is
        // the single element [100].
        let result = catch_unwind(AssertUnwindSafe(|| {
            forall("no big elements", |rng| {
                (0..20)
                    .map(|_| rng.gen_range(0..500u64))
                    .collect::<Vec<_>>()
            })
            .cases(10)
            .check_shrinking(|v: &Vec<u64>| assert!(v.iter().all(|&x| x < 100)));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn seed_parsing_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("123"), Some(123));
        assert_eq!(parse_seed("0x10"), Some(16));
        assert_eq!(
            parse_seed("0x5eed_cafe_0000_0001"),
            Some(0x5eed_cafe_0000_0001)
        );
        assert_eq!(parse_seed("zzz"), None);
    }
}
