//! Golden pins for the phase-3 annotation pass across the paper's
//! threshold sweep (90%…50%), plus the re-annotation idempotence
//! property.
//!
//! The workload is built so its value producers land in distinct
//! stride-accuracy tiers: a loop counter (~98%), quotient producers whose
//! output changes every 16 / 8 / 6 / 4 iterations (~87% / 75% / 66% /
//! 50%), a constant reload (100% with zero stride → last-value) and a
//! noisy geometric sequence (never predictable). Each threshold therefore
//! admits a strictly larger set of producers, and the goldens pin both
//! the per-instruction directive vector and the summary counts.

use vp_compiler::{annotate, ThresholdPolicy};
use vp_isa::asm::assemble;
use vp_isa::{Directive, Program};
use vp_profile::{ProfileCollector, ProfileImage};
use vp_rng::prop;
use vp_sim::{run, RunLimits};

/// A 64-iteration loop whose producers span the accuracy spectrum.
fn tiered_workload() -> Program {
    assemble(
        "\
.name tiered
.data 42
  li   r1, 0          ; @0  loop counter seed
  li   r2, 64         ; @1  trip count
  li   r3, 16         ; @2  divisor: output changes every 16 iters
  li   r4, 8          ; @3  divisor: every 8
  li   r5, 6          ; @4  divisor: every 6
  li   r6, 4          ; @5  divisor: every 4
  li   r9, 1          ; @6  geometric seed
top:
  addi r1, r1, 1      ; @7  perfect stride (+1)
  div  r10, r1, r3    ; @8  ~87.5% tier
  div  r11, r1, r4    ; @9  ~75% tier
  div  r12, r1, r5    ; @10 ~66% tier
  div  r13, r1, r6    ; @11 ~50% tier
  ld   r14, (r0)      ; @12 constant reload: zero-stride last-value
  muli r9, r9, 7      ; @13 noisy: never predictable
  bne  r1, r2, top    ; @14
  halt                ; @15
",
    )
    .expect("workload must assemble")
}

fn profile(program: &Program) -> ProfileImage {
    let mut collector = ProfileCollector::new("train");
    run(program, &mut collector, RunLimits::default()).expect("training run must complete");
    collector.into_image()
}

/// Renders the directive vector: one char per instruction —
/// `.` untagged, `S` stride, `L` last-value.
fn directive_string(program: &Program) -> String {
    program
        .text()
        .iter()
        .map(|ins| match ins.directive {
            Directive::None => '.',
            Directive::Stride => 'S',
            Directive::LastValue => 'L',
        })
        .collect()
}

#[test]
fn paper_threshold_sweep_matches_goldens() {
    let program = tiered_workload();
    let image = profile(&program);

    // (threshold, directive vector, stride tags, last-value tags).
    let goldens: &[(f64, &str, usize, usize)] = &[
        (0.9, ".......S....L...", 1, 1),
        (0.8, ".......SL...L...", 1, 2),
        (0.7, ".......SLL..L...", 1, 3),
        (0.6, ".......SLLL.L...", 1, 4),
        (0.5, ".......SLLLLL...", 1, 5),
    ];
    assert_eq!(
        ThresholdPolicy::PAPER_SWEEP.as_slice(),
        goldens
            .iter()
            .map(|(t, ..)| *t)
            .collect::<Vec<_>>()
            .as_slice(),
        "goldens must cover exactly the paper's sweep"
    );

    let mut previous_tagged = usize::MAX;
    for (threshold, want, want_stride, want_lv) in goldens {
        let annotated = annotate(&program, &image, &ThresholdPolicy::new(*threshold));
        let got = directive_string(annotated.program());
        let summary = annotated.summary();
        assert_eq!(
            &got, want,
            "directive vector changed at threshold {threshold}"
        );
        assert_eq!(summary.stride_tagged, *want_stride, "at {threshold}");
        assert_eq!(summary.last_value_tagged, *want_lv, "at {threshold}");
        // Lowering the threshold can only admit more producers.
        assert!(
            previous_tagged == usize::MAX || summary.tagged() >= previous_tagged,
            "sweep must be monotone"
        );
        previous_tagged = summary.tagged();
    }
}

#[test]
fn reannotation_is_idempotent_across_random_policies() {
    let program = tiered_workload();
    let image = profile(&program);

    prop::forall("reannotation is idempotent", |rng| {
        (
            rng.gen_range(0u8..=100),
            rng.gen_range(0u8..=100),
            rng.gen_range(0u64..=100),
        )
    })
    .check(|&(accuracy, stride_ratio, min_execs)| {
        let policy = ThresholdPolicy::new(f64::from(accuracy) / 100.0)
            .with_stride_ratio_threshold(f64::from(stride_ratio) / 100.0)
            .with_min_execs(min_execs);

        let once = annotate(&program, &image, &policy);
        let twice = annotate(once.program(), &image, &policy);
        assert_eq!(
            directive_string(twice.program()),
            directive_string(once.program()),
            "directives drifted under re-annotation with {policy}"
        );
        assert_eq!(
            twice.summary(),
            once.summary(),
            "summary drifted under re-annotation with {policy}"
        );
    });
}

#[test]
fn annotation_only_touches_directive_bits() {
    let program = tiered_workload();
    let image = profile(&program);
    for threshold in ThresholdPolicy::PAPER_SWEEP {
        let annotated = annotate(&program, &image, &ThresholdPolicy::new(threshold));
        let stripped = annotated.program().with_directives(|_, _| Directive::None);
        let original = program.with_directives(|_, _| Directive::None);
        assert_eq!(
            stripped.text(),
            original.text(),
            "annotation at {threshold} must not rewrite instructions"
        );
    }
}
