//! The annotation pass itself.

use std::fmt;

use vp_isa::{Directive, Program};
use vp_profile::ProfileImage;

use crate::ThresholdPolicy;

/// Counts of what the pass did, per directive outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnnotationSummary {
    /// Value producers tagged `stride`.
    pub stride_tagged: usize,
    /// Value producers tagged `last-value`.
    pub last_value_tagged: usize,
    /// Value producers left untagged because their profiled accuracy was
    /// below the threshold (or they failed the execution floor).
    pub below_threshold: usize,
    /// Value producers never observed in the training runs.
    pub unprofiled: usize,
    /// Dynamic training executions of tagged instructions.
    pub tagged_execs: u64,
    /// Dynamic training executions of all profiled value producers.
    pub total_execs: u64,
}

impl AnnotationSummary {
    /// Total tagged instructions.
    #[must_use]
    pub fn tagged(&self) -> usize {
        self.stride_tagged + self.last_value_tagged
    }

    /// Total static value producers considered.
    #[must_use]
    pub fn producers(&self) -> usize {
        self.tagged() + self.below_threshold + self.unprofiled
    }

    /// The *dynamic candidate fraction*: the share of dynamic
    /// value-producing executions that remain prediction-table allocation
    /// candidates after tagging (estimated from the training profile).
    ///
    /// The hardware-only classifier admits every producer, so this is
    /// directly comparable to the paper's Table 5.1 ("the fraction of
    /// potential candidates to be allocated relative to those in the
    /// saturated counters").
    #[must_use]
    pub fn dynamic_candidate_fraction(&self) -> f64 {
        if self.total_execs == 0 {
            0.0
        } else {
            self.tagged_execs as f64 / self.total_execs as f64
        }
    }
}

impl fmt::Display for AnnotationSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} stride + {} last-value tagged of {} producers ({} below threshold, {} unprofiled); dynamic candidate fraction {:.1}%",
            self.stride_tagged,
            self.last_value_tagged,
            self.producers(),
            self.below_threshold,
            self.unprofiled,
            100.0 * self.dynamic_candidate_fraction()
        )
    }
}

/// An annotated binary plus the pass report.
#[derive(Debug, Clone)]
pub struct Annotated {
    program: Program,
    summary: AnnotationSummary,
    policy: ThresholdPolicy,
}

impl Annotated {
    /// The phase-3 binary (directive bits set, nothing else changed).
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Consumes self, returning the annotated program.
    #[must_use]
    pub fn into_program(self) -> Program {
        self.program
    }

    /// What the pass did.
    #[must_use]
    pub fn summary(&self) -> &AnnotationSummary {
        &self.summary
    }

    /// The policy the pass ran with.
    #[must_use]
    pub fn policy(&self) -> ThresholdPolicy {
        self.policy
    }
}

/// Runs the phase-3 pass: tags every value-producing instruction of
/// `program` according to `image` and `policy`.
///
/// The output program is identical to the input except for directive bits —
/// a property checked by `vp_isa::encode::text_delta` in this crate's tests.
#[must_use]
pub fn annotate(program: &Program, image: &ProfileImage, policy: &ThresholdPolicy) -> Annotated {
    let mut summary = AnnotationSummary::default();
    let annotated = program.with_directives(|addr, _| match image.get(addr) {
        None => {
            summary.unprofiled += 1;
            Directive::None
        }
        Some(rec) => {
            summary.total_execs += rec.execs;
            if rec.execs >= policy.min_execs().max(1)
                && rec.stride_accuracy() >= policy.accuracy_threshold()
            {
                summary.tagged_execs += rec.execs;
                if rec.stride_efficiency_ratio() > policy.stride_ratio_threshold() {
                    summary.stride_tagged += 1;
                    Directive::Stride
                } else {
                    summary.last_value_tagged += 1;
                    Directive::LastValue
                }
            } else {
                summary.below_threshold += 1;
                Directive::None
            }
        }
    });
    Annotated {
        program: annotated,
        summary,
        policy: *policy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::asm::assemble;
    use vp_isa::encode::text_delta;
    use vp_isa::InstrAddr;
    use vp_profile::{InstrProfile, VpCategory};

    /// The paper's running example: the A[x] = B[x] + C[x] loop of §3.2.
    fn paper_example() -> Program {
        assemble(
            "\
.name paper_example
.zero 48
  li   r1, 0          ; i (B index)
  li   r2, 16         ; j (C index)
  li   r3, 32         ; k (A index)
  li   r4, 48         ; loop bound on i
top:
  ld   r5, (r1)       ; load B[i]            @4
  ld   r6, (r2)       ; load C[j]            @5
  addi r2, r2, 1      ; increment j          @6
  add  r7, r5, r6     ; A[k] = B[i] + C[j]   @7
  sd   r7, (r3)       ; store A[k]           @8
  addi r3, r3, 1      ; increment k          @9
  addi r1, r1, 1      ; increment i          @10
  bne  r1, r4, top
  halt
",
        )
        .unwrap()
    }

    fn synthetic_image(program: &Program) -> ProfileImage {
        // Hand-built profile shaped like the paper's Table 3.1: the three
        // index increments are ~100% stride-predictable; loads and the sum
        // are poorly predictable.
        let mut img = ProfileImage::new("synthetic");
        let rows: &[(u32, u64, u64, u64)] = &[
            (4, 16, 2, 0),    // ld B[i]: 12.5% accuracy
            (5, 16, 6, 1),    // ld C[j]: 37.5%
            (6, 16, 15, 15),  // addi j:  93.75%, stride
            (7, 16, 3, 0),    // add sum: 18.75%
            (9, 16, 15, 15),  // addi k
            (10, 16, 15, 15), // addi i
        ];
        for &(addr, execs, correct, nonzero) in rows {
            img.insert(
                InstrAddr::new(addr),
                InstrProfile {
                    category: VpCategory::IntAlu,
                    execs,
                    stride_correct: correct,
                    nonzero_stride_correct: nonzero,
                    last_value_correct: 0,
                },
            );
        }
        let _ = program;
        img
    }

    #[test]
    fn reproduces_the_papers_example_tagging() {
        let program = paper_example();
        let image = synthetic_image(&program);
        let out = annotate(&program, &image, &ThresholdPolicy::new(0.9));
        let text = out.program().text();
        // "the compiler would modify the opcodes of the add operations in
        // addresses 3, 7, and 9 and insert ... the stride directive. All
        // other instructions are unaffected." (our addresses 6, 9, 10)
        assert_eq!(text[6].directive, Directive::Stride);
        assert_eq!(text[9].directive, Directive::Stride);
        assert_eq!(text[10].directive, Directive::Stride);
        for addr in [4usize, 5, 7, 8, 11] {
            assert_eq!(text[addr].directive, Directive::None, "@{addr}");
        }
        assert_eq!(out.summary().stride_tagged, 3);
        assert_eq!(out.summary().below_threshold, 3);
    }

    #[test]
    fn lowering_the_threshold_admits_more() {
        let program = paper_example();
        let image = synthetic_image(&program);
        let mut last = 0;
        for th in ThresholdPolicy::PAPER_SWEEP {
            let out = annotate(&program, &image, &ThresholdPolicy::new(th));
            assert!(
                out.summary().tagged() >= last,
                "tagging must widen as th drops"
            );
            last = out.summary().tagged();
        }
        // At 10% even the C[j] load qualifies.
        let out = annotate(&program, &image, &ThresholdPolicy::new(0.1));
        assert_eq!(out.program().text()[5].directive, Directive::LastValue);
    }

    #[test]
    fn pass_changes_only_directive_bits() {
        let program = paper_example();
        let image = synthetic_image(&program);
        let out = annotate(&program, &image, &ThresholdPolicy::new(0.5));
        let deltas = text_delta(&program, out.program()).unwrap();
        assert!(!deltas.is_empty());
        assert!(deltas.iter().all(|d| d.directive_only));
        // And the data segment is untouched.
        assert_eq!(program.data(), out.program().data());
    }

    #[test]
    fn stride_ratio_picks_directive_kind() {
        let program = assemble("li r1, 1\nhalt\n").unwrap();
        let mut image = ProfileImage::new("t");
        image.insert(
            InstrAddr::new(0),
            InstrProfile {
                category: VpCategory::IntAlu,
                execs: 100,
                stride_correct: 95,
                nonzero_stride_correct: 10, // mostly zero-stride repeats
                last_value_correct: 90,
            },
        );
        let out = annotate(&program, &image, &ThresholdPolicy::new(0.9));
        assert_eq!(out.program().text()[0].directive, Directive::LastValue);
        assert_eq!(out.summary().last_value_tagged, 1);
    }

    #[test]
    fn unprofiled_producers_stay_untagged() {
        let program = assemble("li r1, 1\nli r2, 2\nhalt\n").unwrap();
        let image = ProfileImage::new("empty");
        let out = annotate(&program, &image, &ThresholdPolicy::new(0.5));
        assert_eq!(out.summary().unprofiled, 2);
        assert_eq!(out.summary().tagged(), 0);
    }

    #[test]
    fn min_execs_floor_blocks_rare_instructions() {
        let program = assemble("li r1, 1\nhalt\n").unwrap();
        let mut image = ProfileImage::new("t");
        image.insert(
            InstrAddr::new(0),
            InstrProfile {
                category: VpCategory::IntAlu,
                execs: 3,
                stride_correct: 3,
                nonzero_stride_correct: 3,
                last_value_correct: 0,
            },
        );
        let strict = ThresholdPolicy::new(0.9).with_min_execs(10);
        assert_eq!(annotate(&program, &image, &strict).summary().tagged(), 0);
        let lax = ThresholdPolicy::new(0.9);
        assert_eq!(annotate(&program, &image, &lax).summary().tagged(), 1);
    }

    #[test]
    fn dynamic_candidate_fraction_reflects_tagged_execs() {
        let program = paper_example();
        let image = synthetic_image(&program);
        let out = annotate(&program, &image, &ThresholdPolicy::new(0.9));
        // 3 of 6 producers tagged, all with equal exec counts.
        assert!((out.summary().dynamic_candidate_fraction() - 0.5).abs() < 1e-12);
    }
}
