#![warn(missing_docs)]

//! # vp-compiler — the phase-3 directive annotation pass
//!
//! The paper's final phase: "the compiler only inserts directives in the
//! opcode of instructions. It does not perform instruction scheduling or any
//! form of code movement." Given a phase-1 binary and a phase-2
//! [`vp_profile::ProfileImage`], this crate re-emits the binary with
//! [`vp_isa::Directive`] bits chosen by a user-controlled
//! [`ThresholdPolicy`]:
//!
//! - instructions whose profiled prediction accuracy is **at or above** the
//!   accuracy threshold are tagged;
//! - the *kind* of tag follows the stride efficiency ratio — above the
//!   stride threshold (the paper's heuristic uses 50%) means `stride`,
//!   otherwise `last-value`;
//! - everything else (including instructions never seen in training) stays
//!   untagged and will never be allocated in the prediction table.
//!
//! ## Example
//!
//! ```
//! use vp_isa::asm::assemble;
//! use vp_sim::{run, RunLimits};
//! use vp_profile::ProfileCollector;
//! use vp_compiler::{annotate, ThresholdPolicy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble("li r1, 0\nli r2, 100\ntop: addi r1, r1, 1\nbne r1, r2, top\nhalt\n")?;
//! let mut c = ProfileCollector::new("train");
//! run(&program, &mut c, RunLimits::default())?;
//! let image = c.into_image();
//!
//! let annotated = annotate(&program, &image, &ThresholdPolicy::new(0.9));
//! // The loop-index increment becomes `addi.st`.
//! assert_eq!(annotated.program().text()[2].directive, vp_isa::Directive::Stride);
//! assert_eq!(annotated.summary().stride_tagged, 1);
//! # Ok(())
//! # }
//! ```

pub mod annotate;
pub mod policy;

pub use annotate::{annotate, Annotated, AnnotationSummary};
pub use policy::ThresholdPolicy;
