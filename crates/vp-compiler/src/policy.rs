//! The user-supplied classification thresholds.

use std::fmt;

/// Thresholds steering the annotation pass.
///
/// The paper's §3.2: "the compiler can determine which instructions are
/// inserted with the special directives according to the profile image file
/// and a threshold value supplied by the user", with a second (typically
/// 50%) threshold on the stride efficiency ratio selecting between the
/// `stride` and `last-value` directive kinds.
///
/// # Examples
///
/// ```
/// use vp_compiler::ThresholdPolicy;
/// let p = ThresholdPolicy::new(0.9);
/// assert_eq!(p.accuracy_threshold(), 0.9);
/// assert_eq!(p.stride_ratio_threshold(), 0.5);
/// let strict = ThresholdPolicy::new(0.8).with_min_execs(100);
/// assert_eq!(strict.min_execs(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdPolicy {
    accuracy_threshold: f64,
    stride_ratio_threshold: f64,
    min_execs: u64,
}

impl ThresholdPolicy {
    /// The threshold sweep the paper evaluates: 90%, 80%, 70%, 60%, 50%.
    pub const PAPER_SWEEP: [f64; 5] = [0.9, 0.8, 0.7, 0.6, 0.5];

    /// Creates a policy with the given accuracy threshold (in `[0, 1]`),
    /// the paper's 50% stride-ratio heuristic and no execution floor.
    ///
    /// # Panics
    ///
    /// Panics if `accuracy_threshold` is outside `[0, 1]` or NaN.
    #[must_use]
    pub fn new(accuracy_threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&accuracy_threshold),
            "accuracy threshold {accuracy_threshold} outside [0, 1]"
        );
        ThresholdPolicy {
            accuracy_threshold,
            stride_ratio_threshold: 0.5,
            min_execs: 0,
        }
    }

    /// Overrides the stride-ratio threshold used to pick the directive kind.
    ///
    /// # Panics
    ///
    /// Panics if outside `[0, 1]` or NaN.
    #[must_use]
    pub fn with_stride_ratio_threshold(mut self, t: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&t),
            "stride ratio threshold {t} outside [0, 1]"
        );
        self.stride_ratio_threshold = t;
        self
    }

    /// Requires at least `min_execs` training executions before an
    /// instruction may be tagged.
    #[must_use]
    pub fn with_min_execs(mut self, min_execs: u64) -> Self {
        self.min_execs = min_execs;
        self
    }

    /// The accuracy threshold, in `[0, 1]`.
    #[must_use]
    pub fn accuracy_threshold(&self) -> f64 {
        self.accuracy_threshold
    }

    /// The stride-ratio threshold, in `[0, 1]`.
    #[must_use]
    pub fn stride_ratio_threshold(&self) -> f64 {
        self.stride_ratio_threshold
    }

    /// The training-execution floor.
    #[must_use]
    pub fn min_execs(&self) -> u64 {
        self.min_execs
    }
}

impl fmt::Display for ThresholdPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "th={:.0}%", 100.0 * self.accuracy_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sweep_is_descending() {
        assert!(ThresholdPolicy::PAPER_SWEEP.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_accuracy_panics() {
        let _ = ThresholdPolicy::new(1.5);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_stride_ratio_panics() {
        let _ = ThresholdPolicy::new(0.9).with_stride_ratio_threshold(-0.1);
    }

    #[test]
    fn display_shows_percent() {
        assert_eq!(ThresholdPolicy::new(0.7).to_string(), "th=70%");
    }
}
