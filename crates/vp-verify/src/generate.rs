//! Random well-formed program generation over the vp-isa instruction set.
//!
//! The generator is seeded (via [`vp_rng::Rng`]) and deterministic: the
//! same seed and configuration always produce the same program. Output is
//! biased toward the shapes the paper's workloads exhibit — counted loops,
//! stride address arithmetic walking a data region, data-dependent loads,
//! and directive-tagged value producers — because those are the paths the
//! predictor stack actually exercises.
//!
//! # Well-formedness invariant
//!
//! Every generated program satisfies
//! [`Program::control_flow_violations`]`().is_empty()` *and* halts within a
//! statically bounded instruction budget:
//!
//! - loops are counted (`li rC, trip … addi rC, rC, -1; bne rC, r0, top`)
//!   with the counter registers `r1..r3` reserved — loop bodies never
//!   write them;
//! - forward skip branches and `jal`s land only on *atom* boundaries, so
//!   they can never jump into the middle of a multi-instruction idiom
//!   (the `li`/`jalr` pair, the masked data-dependent load) nor skip a
//!   loop-counter decrement;
//! - `jalr` targets are materialised as absolute addresses of the very
//!   next atom, so indirect jumps are exercised without ever leaving text.
//!
//! The generator builds each segment as a list of atoms (1–2 instruction
//! groups) and resolves branch offsets in a final flattening pass.

use vp_isa::{Directive, Instr, Opcode, Program, Reg};
use vp_rng::Rng;

/// Register conventions used by generated programs (documented so shrunk
/// repros stay readable):
/// `r1..=r3` loop counters, `r4..=r7` stride pointers, `r8..=r15` integer
/// scratch, `r16` data-dependent address temp, `r17..=r19` jump links and
/// targets, `f0..=f7` floating-point scratch.
const LOOP_COUNTERS: [u8; 3] = [1, 2, 3];
const POINTERS: [u8; 4] = [4, 5, 6, 7];
const INT_SCRATCH: [u8; 8] = [8, 9, 10, 11, 12, 13, 14, 15];
const ADDR_TEMP: u8 = 16;
const JAL_LINK: u8 = 17;
const JALR_LINK: u8 = 18;
const JALR_TARGET: u8 = 19;
const FP_SCRATCH: [u8; 8] = [0, 1, 2, 3, 4, 5, 6, 7];

/// Tuning knobs for [`gen_program`].
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum number of sequential counted loops.
    pub max_loops: usize,
    /// Maximum atoms per loop body.
    pub max_body: usize,
    /// Maximum loop trip count.
    pub max_trip: u64,
    /// Maximum atoms in the straight-line epilogue segment.
    pub straight: usize,
    /// Words in the initial data image (must be a power of two: it is
    /// used as an address mask for data-dependent loads).
    pub data_words: usize,
    /// Probability that a value producer carries a predictability
    /// directive.
    pub directive_prob: f64,
    /// When set, the generator is steered toward emitting this opcode
    /// (coverage-guided fuzzing sets the least-covered one).
    pub focus: Option<Opcode>,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_loops: 3,
            max_body: 10,
            max_trip: 8,
            straight: 8,
            data_words: 64,
            directive_prob: 0.3,
            focus: None,
        }
    }
}

/// A 1–2 instruction group whose boundary is a legal branch target.
enum Atom {
    /// Straight-line instructions (no control flow).
    Plain(Vec<Instr>),
    /// A conditional forward branch to the start of `target_atom`
    /// (`atoms.len()` means the segment's end boundary).
    Branch {
        op: Opcode,
        rs1: Reg,
        rs2: Reg,
        target_atom: usize,
    },
    /// `jal rd, +1`: link and fall through to the next atom.
    JalNext { rd: Reg },
    /// `li r19, <abs addr after pair>; jalr r18, r19, 0`.
    JalrNext,
}

impl Atom {
    fn len(&self) -> u32 {
        match self {
            Atom::Plain(v) => v.len() as u32,
            Atom::Branch { .. } | Atom::JalNext { .. } => 1,
            Atom::JalrNext => 2,
        }
    }
}

/// Generates a random well-formed program.
///
/// # Examples
///
/// ```
/// use vp_rng::Rng;
/// use vp_verify::{gen_program, GenConfig};
/// let mut rng = Rng::seed_from_u64(7);
/// let p = gen_program(&mut rng, &GenConfig::default(), "demo");
/// assert!(p.control_flow_violations().is_empty());
/// ```
pub fn gen_program(rng: &mut Rng, cfg: &GenConfig, name: &str) -> Program {
    assert!(
        cfg.data_words.is_power_of_two(),
        "data_words must be a power of two (used as an address mask)"
    );
    let data: Vec<u64> = (0..cfg.data_words)
        .map(|_| rng.gen_range(0..1024u64))
        .collect();

    let mut text = Vec::new();
    emit_prologue(rng, cfg, &mut text);

    let loops = rng.gen_range(1..=cfg.max_loops.max(1));
    for _ in 0..loops {
        let counter = Reg::new(*rng.choose(&LOOP_COUNTERS).unwrap());
        let trip = rng.gen_range(1..=cfg.max_trip.max(1)) as i64;
        text.push(Instr::rd_imm(Opcode::Li, counter, trip));
        let body_len = rng.gen_range(1..=cfg.max_body.max(1));
        let body = gen_atoms(rng, cfg, body_len);
        let top = text.len() as u32;
        flatten(&body, &mut text);
        text.push(Instr::alu_ri(Opcode::Addi, counter, counter, -1));
        let back = i64::from(top) - text.len() as i64;
        text.push(Instr::branch(Opcode::Bne, counter, Reg::ZERO, back));
    }

    let straight_len = rng.gen_range(1..=cfg.straight.max(1));
    let straight = gen_atoms(rng, cfg, straight_len);
    flatten(&straight, &mut text);
    text.push(Instr::halt());

    let program = Program::new(name, text, data);
    let tagged = program.with_directives(|_, _| {
        if rng.gen_bool(cfg.directive_prob) {
            if rng.gen_bool(0.5) {
                Directive::Stride
            } else {
                Directive::LastValue
            }
        } else {
            Directive::None
        }
    });
    debug_assert!(tagged.control_flow_violations().is_empty());
    tagged
}

/// Pointer and scratch initialisation: every register a body might *read*
/// gets a defined small value, and stride pointers start inside the data
/// region.
fn emit_prologue(rng: &mut Rng, cfg: &GenConfig, text: &mut Vec<Instr>) {
    let mask = cfg.data_words as i64 - 1;
    for &p in &POINTERS {
        text.push(Instr::rd_imm(
            Opcode::Li,
            Reg::new(p),
            rng.gen_range(0..=mask),
        ));
    }
    for &s in &INT_SCRATCH {
        text.push(Instr::rd_imm(
            Opcode::Li,
            Reg::new(s),
            rng.gen_range(-64..=64i64),
        ));
    }
    // Seed a few FP registers from the data image (f64-reinterpreted
    // integers are perfectly good fuzz values).
    for f in 0..3u8 {
        text.push(Instr::load(
            Opcode::Fld,
            Reg::new(FP_SCRATCH[usize::from(f)]),
            Reg::ZERO,
            rng.gen_range(0..=mask),
        ));
    }
}

/// Generates `n` atoms of segment body.
fn gen_atoms(rng: &mut Rng, cfg: &GenConfig, n: usize) -> Vec<Atom> {
    let mut atoms = Vec::with_capacity(n);
    for i in 0..n {
        // Coverage steering: when a focus opcode is set, force it often.
        if let Some(op) = cfg.focus {
            if rng.gen_bool(0.4) {
                if let Some(atom) = atom_for(rng, cfg, op, i, n) {
                    atoms.push(atom);
                    continue;
                }
            }
        }
        atoms.push(random_atom(rng, cfg, i, n));
    }
    atoms
}

fn int_scratch(rng: &mut Rng) -> Reg {
    Reg::new(*rng.choose(&INT_SCRATCH).unwrap())
}

fn fp_scratch(rng: &mut Rng) -> Reg {
    Reg::new(*rng.choose(&FP_SCRATCH).unwrap())
}

fn pointer(rng: &mut Rng) -> Reg {
    Reg::new(*rng.choose(&POINTERS).unwrap())
}

/// A random atom at position `i` of `n` in its segment.
fn random_atom(rng: &mut Rng, cfg: &GenConfig, i: usize, n: usize) -> Atom {
    // Weighted shape choice; weights favour the ALU/memory mix of the
    // paper's integer workloads with a meaningful FP and control tail.
    match rng.gen_range(0..100u32) {
        0..=29 => Atom::Plain(vec![int_alu(rng)]),
        30..=44 => Atom::Plain(vec![fp_op(rng)]),
        45..=59 => Atom::Plain(vec![mem_op(rng, cfg)]),
        60..=69 => Atom::Plain(vec![pointer_advance(rng)]),
        70..=79 => Atom::Plain(data_dependent_load(rng, cfg)),
        80..=89 if i + 1 < n || n > 0 => forward_branch(rng, i, n),
        90..=93 => Atom::JalNext {
            rd: Reg::new(JAL_LINK),
        },
        94..=95 => Atom::JalrNext,
        _ => Atom::Plain(vec![constant_or_move(rng)]),
    }
}

/// An atom exercising a *specific* opcode (coverage steering); `None` when
/// the opcode cannot be emitted safely in a generated body (only `Halt`).
fn atom_for(rng: &mut Rng, cfg: &GenConfig, op: Opcode, i: usize, n: usize) -> Option<Atom> {
    use Opcode::*;
    let a = match op {
        Add | Sub | Mul | Div | Rem | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu => {
            Atom::Plain(vec![Instr::alu_rr(
                op,
                int_scratch(rng),
                int_scratch(rng),
                int_scratch(rng),
            )])
        }
        Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti | Muli => {
            Atom::Plain(vec![Instr::alu_ri(
                op,
                int_scratch(rng),
                int_scratch(rng),
                rng.gen_range(-16..=16i64),
            )])
        }
        Li => Atom::Plain(vec![Instr::rd_imm(
            Li,
            int_scratch(rng),
            rng.gen_range(-256..=256i64),
        )]),
        Mv => Atom::Plain(vec![Instr::unary(Mv, int_scratch(rng), int_scratch(rng))]),
        Ld | Fld | Sd | Fsd => Atom::Plain(vec![mem_specific(rng, cfg, op)]),
        Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax => Atom::Plain(vec![Instr::alu_rr(
            op,
            fp_scratch(rng),
            fp_scratch(rng),
            fp_scratch(rng),
        )]),
        Fneg | Fmv => Atom::Plain(vec![Instr::unary(op, fp_scratch(rng), fp_scratch(rng))]),
        CvtIf => Atom::Plain(vec![Instr::unary(CvtIf, fp_scratch(rng), int_scratch(rng))]),
        CvtFi => Atom::Plain(vec![Instr::unary(CvtFi, int_scratch(rng), fp_scratch(rng))]),
        Feq | Flt | Fle => Atom::Plain(vec![Instr::alu_rr(
            op,
            int_scratch(rng),
            fp_scratch(rng),
            fp_scratch(rng),
        )]),
        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            if let Atom::Branch {
                rs1,
                rs2,
                target_atom,
                ..
            } = forward_branch(rng, i, n)
            {
                Atom::Branch {
                    op,
                    rs1,
                    rs2,
                    target_atom,
                }
            } else {
                unreachable!("forward_branch always returns a Branch atom")
            }
        }
        Jal => Atom::JalNext {
            rd: Reg::new(JAL_LINK),
        },
        Jalr => Atom::JalrNext,
        Nop => Atom::Plain(vec![Instr::nop()]),
        Halt => return None,
    };
    Some(a)
}

fn int_alu(rng: &mut Rng) -> Instr {
    use Opcode::*;
    const RR: [Opcode; 13] = [
        Add, Sub, Mul, Div, Rem, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu,
    ];
    const RI: [Opcode; 9] = [Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti, Muli];
    if rng.gen_bool(0.5) {
        Instr::alu_rr(
            *rng.choose(&RR).unwrap(),
            int_scratch(rng),
            int_scratch(rng),
            int_scratch(rng),
        )
    } else {
        Instr::alu_ri(
            *rng.choose(&RI).unwrap(),
            int_scratch(rng),
            int_scratch(rng),
            rng.gen_range(-16..=16i64),
        )
    }
}

fn fp_op(rng: &mut Rng) -> Instr {
    use Opcode::*;
    const FRR: [Opcode; 6] = [Fadd, Fsub, Fmul, Fdiv, Fmin, Fmax];
    match rng.gen_range(0..4u32) {
        0 | 1 => Instr::alu_rr(
            *rng.choose(&FRR).unwrap(),
            fp_scratch(rng),
            fp_scratch(rng),
            fp_scratch(rng),
        ),
        2 => {
            let cmp = [Feq, Flt, Fle];
            Instr::alu_rr(
                *rng.choose(&cmp).unwrap(),
                int_scratch(rng),
                fp_scratch(rng),
                fp_scratch(rng),
            )
        }
        _ => {
            let un = [Fneg, Fmv, CvtIf, CvtFi];
            match *rng.choose(&un).unwrap() {
                CvtIf => Instr::unary(CvtIf, fp_scratch(rng), int_scratch(rng)),
                CvtFi => Instr::unary(CvtFi, int_scratch(rng), fp_scratch(rng)),
                op => Instr::unary(op, fp_scratch(rng), fp_scratch(rng)),
            }
        }
    }
}

fn mem_op(rng: &mut Rng, cfg: &GenConfig) -> Instr {
    use Opcode::*;
    let op = *rng.choose(&[Ld, Fld, Sd, Fsd]).unwrap();
    mem_specific(rng, cfg, op)
}

fn mem_specific(rng: &mut Rng, cfg: &GenConfig, op: Opcode) -> Instr {
    use Opcode::*;
    let base = pointer(rng);
    let off = rng.gen_range(0..cfg.data_words as i64);
    match op {
        Ld => Instr::load(Ld, int_scratch(rng), base, off),
        Fld => Instr::load(Fld, fp_scratch(rng), base, off),
        Sd => Instr::store(Sd, int_scratch(rng), base, off),
        Fsd => Instr::store(Fsd, fp_scratch(rng), base, off),
        _ => unreachable!("mem_specific called with non-memory opcode"),
    }
}

/// `addi rP, rP, stride`: the strided address walk the paper's predictors
/// are built for.
fn pointer_advance(rng: &mut Rng) -> Instr {
    let p = pointer(rng);
    let stride = rng.gen_range(1..=8i64);
    Instr::alu_ri(Opcode::Addi, p, p, stride)
}

/// `andi r16, rS, mask; ld rD, 0(r16)`: a load whose address depends on
/// computed data, masked into the data region.
fn data_dependent_load(rng: &mut Rng, cfg: &GenConfig) -> Vec<Instr> {
    let mask = cfg.data_words as i64 - 1;
    let temp = Reg::new(ADDR_TEMP);
    vec![
        Instr::alu_ri(Opcode::Andi, temp, int_scratch(rng), mask),
        Instr::load(Opcode::Ld, int_scratch(rng), temp, 0),
    ]
}

fn constant_or_move(rng: &mut Rng) -> Instr {
    if rng.gen_bool(0.5) {
        Instr::rd_imm(Opcode::Li, int_scratch(rng), rng.gen_range(-256..=256i64))
    } else {
        Instr::unary(Opcode::Mv, int_scratch(rng), int_scratch(rng))
    }
}

/// A conditional branch skipping forward to a later atom boundary (the
/// segment end included).
fn forward_branch(rng: &mut Rng, i: usize, n: usize) -> Atom {
    use Opcode::*;
    let op = *rng.choose(&[Beq, Bne, Blt, Bge, Bltu, Bgeu]).unwrap();
    let target_atom = rng.gen_range(i + 1..=n);
    Atom::Branch {
        op,
        rs1: int_scratch(rng),
        rs2: int_scratch(rng),
        target_atom,
    }
}

/// Flattens atoms into `text`, resolving branch offsets to atom-boundary
/// instruction indices and `jalr` absolute targets.
fn flatten(atoms: &[Atom], text: &mut Vec<Instr>) {
    let base = text.len() as u32;
    // Instruction start index of each atom, plus the end boundary.
    let mut starts = Vec::with_capacity(atoms.len() + 1);
    let mut at = base;
    for atom in atoms {
        starts.push(at);
        at += atom.len();
    }
    starts.push(at);

    for (idx, atom) in atoms.iter().enumerate() {
        match atom {
            Atom::Plain(instrs) => text.extend(instrs.iter().copied()),
            Atom::Branch {
                op,
                rs1,
                rs2,
                target_atom,
            } => {
                let here = starts[idx];
                let offset = i64::from(starts[*target_atom]) - i64::from(here);
                text.push(Instr::branch(*op, *rs1, *rs2, offset));
            }
            Atom::JalNext { rd } => text.push(Instr::rd_imm(Opcode::Jal, *rd, 1)),
            Atom::JalrNext => {
                let after = i64::from(starts[idx]) + 2;
                text.push(Instr::rd_imm(Opcode::Li, Reg::new(JALR_TARGET), after));
                text.push(Instr::alu_ri(
                    Opcode::Jalr,
                    Reg::new(JALR_LINK),
                    Reg::new(JALR_TARGET),
                    0,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_sim::{run, NullTracer, RunLimits, RunStatus};

    #[test]
    fn generated_programs_are_well_formed_and_halt() {
        let cfg = GenConfig::default();
        for seed in 0..200u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let p = gen_program(&mut rng, &cfg, "gen");
            assert!(
                p.control_flow_violations().is_empty(),
                "seed {seed}: ill-formed control flow:\n{p}"
            );
            let summary = run(&p, &mut NullTracer, RunLimits::with_max(100_000))
                .unwrap_or_else(|e| panic!("seed {seed}: fault {e}\n{p}"));
            assert_eq!(
                summary.status(),
                RunStatus::Halted,
                "seed {seed}: did not halt\n{p}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = gen_program(&mut Rng::seed_from_u64(42), &cfg, "a");
        let b = gen_program(&mut Rng::seed_from_u64(42), &cfg, "a");
        assert_eq!(a, b);
    }

    #[test]
    fn focus_steers_opcode_frequency() {
        let mut cfg = GenConfig {
            max_loops: 2,
            max_body: 16,
            ..GenConfig::default()
        };
        cfg.focus = Some(Opcode::Rem);
        let mut with_focus = 0usize;
        for seed in 0..50u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let p = gen_program(&mut rng, &cfg, "f");
            with_focus += p.text().iter().filter(|i| i.op == Opcode::Rem).count();
        }
        assert!(with_focus > 25, "focus produced only {with_focus} rem ops");
    }

    #[test]
    fn generated_programs_round_trip_through_the_assembler() {
        let cfg = GenConfig::default();
        let mut rng = Rng::seed_from_u64(9);
        let p = gen_program(&mut rng, &cfg, "rt");
        let back = vp_isa::asm::assemble(&p.to_string()).unwrap();
        assert_eq!(back.text(), p.text());
        assert_eq!(back.data(), p.data());
    }
}
