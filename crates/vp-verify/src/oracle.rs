//! The differential oracle: one fuzzed program, every optimised layer of
//! the stack checked against its reference model.
//!
//! A single [`run_case`] performs, in order:
//!
//! 1. **Simulation differential** — the optimised [`vp_sim`] machine (with
//!    the columnar [`TraceRecorder`] attached) against the row-oriented
//!    [`ref_run`](crate::refsim::ref_run) interpreter: identical run
//!    status, retired-instruction count, retirement event stream, final
//!    register files and final memory.
//! 2. **Serialisation oracle** — the captured columnar trace must survive
//!    a `write_to`/`read_from` round trip bit-identically (the `provptr3`
//!    encoder and its checksum are on this path).
//! 3. **Predictor differential** — for a panel of predictor
//!    configurations, the naive [`ref_predict`](crate::refpred::ref_predict)
//!    models against (a) the real predictor fed directly, (b) a
//!    sequential [`ReplayRequest`] replay, and (c) a PC-sharded parallel
//!    one: identical [`PredictorStats`] and occupancy.
//! 4. **Attribution oracle** — the attributed replay
//!    ([`ReplayRequest::attribution`]) must leave the stats untouched
//!    (observation-only), produce a bit-identical per-PC
//!    [`vp_predictor::AttributionTable`] at any shard/job count, and its
//!    totals must reconcile *exactly* with the [`PredictorStats`]
//!    (every access accounted, every raw miss charged to one cause).
//! 5. **Matrix oracle** — the fused sweep ([`ReplayRequest`] over the
//!    whole plan) over every oracle configuration (with a duplicate cell
//!    and a second, directive-stripped annotation table in the plan)
//!    must return, at any shard count, exactly the grid that per-cell
//!    replays produce.
//! 6. **Streaming oracle** — the bounded-memory streaming engine
//!    ([`ReplayRequest::stream`]), which re-simulates the program and
//!    predicts concurrently without a resident trace, must reproduce the
//!    batch grid bit-identically at every tested shard × block-pool
//!    combination, including attribution tables.
//!
//! Any mismatch is returned as a typed [`Divergence`]; `Ok` carries the
//! captured trace so the fuzz loop can fold it into coverage.

use std::error::Error;
use std::fmt;

use provp_core::{ReplayRequest, SweepPlan};
use vp_isa::{Directive, InstrAddr, Program, Reg, RegClass};
use vp_predictor::{ClassifierKind, PredictorConfig, PredictorStats, TableGeometry};
use vp_sim::record::{first_divergence, TraceDivergence, TraceRecorder};
use vp_sim::{runner, Machine, RunLimits, Trace};

use crate::refpred::ref_predict;
use crate::refsim::ref_run;

/// A mismatch between the optimised stack and its reference model.
#[derive(Debug)]
pub enum Divergence {
    /// Run status / fault / retired-count mismatch.
    Status {
        /// Optimised outcome rendered for humans.
        optimized: String,
        /// Reference outcome rendered for humans.
        reference: String,
    },
    /// The retirement event streams differ.
    Events(Box<TraceDivergence>),
    /// A final register differs (`class` is "int" or "fp").
    Register {
        /// Register file ("int" or "fp").
        class: &'static str,
        /// Register index.
        index: u8,
        /// Optimised final value (raw bits for fp).
        optimized: u64,
        /// Reference final value.
        reference: u64,
    },
    /// A final memory word differs.
    Memory {
        /// Word address.
        addr: u64,
        /// Optimised value.
        optimized: u64,
        /// Reference value.
        reference: u64,
    },
    /// The trace did not survive a serialisation round trip.
    Serialization {
        /// What went wrong, rendered for humans.
        detail: String,
        /// The underlying codec error, when one exists (pure value
        /// mismatches have none); exposed through
        /// [`std::error::Error::source`].
        source: Option<Box<dyn Error + Send + Sync>>,
    },
    /// A predictor's statistics or occupancy differ from the reference
    /// model.
    Predictor {
        /// `PredictorConfig::label()` of the diverging configuration.
        label: String,
        /// Which path diverged: "direct", "replay" or "sharded-replay".
        mode: &'static str,
        /// Human-readable field-level detail.
        detail: String,
    },
    /// The per-PC attribution layer broke its contract: the attributed
    /// replay perturbed the stats, the table differs across shard
    /// counts, or its totals fail to reconcile with [`PredictorStats`].
    Attribution {
        /// `PredictorConfig::label()` of the diverging configuration.
        label: String,
        /// Human-readable detail.
        detail: String,
    },
    /// The fused sweep matrix diverged from per-cell replays.
    Matrix {
        /// `PredictorConfig::label()` of the diverging cell's
        /// configuration, with its plan position and annotation table.
        label: String,
        /// Shard count the fused replay ran at.
        shards: usize,
        /// Human-readable detail.
        detail: String,
    },
    /// The streaming replay engine diverged from batch replay.
    Stream {
        /// `PredictorConfig::label()` of the diverging cell's
        /// configuration, with its plan position — or "whole plan".
        label: String,
        /// Shard (consumer) count the streamed replay ran at.
        shards: usize,
        /// Block-pool size the streamed replay ran with.
        pool: usize,
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Status {
                optimized,
                reference,
            } => write!(
                f,
                "run status diverges: optimized {optimized}, reference {reference}"
            ),
            Divergence::Events(d) => write!(f, "{d}"),
            Divergence::Register {
                class,
                index,
                optimized,
                reference,
            } => write!(
                f,
                "{class} register {index} diverges: optimized {optimized:#x}, reference {reference:#x}"
            ),
            Divergence::Memory {
                addr,
                optimized,
                reference,
            } => write!(
                f,
                "memory word {addr:#x} diverges: optimized {optimized:#x}, reference {reference:#x}"
            ),
            Divergence::Serialization { detail, .. } => {
                write!(f, "trace serialisation diverges: {detail}")
            }
            Divergence::Predictor {
                label,
                mode,
                detail,
            } => write!(f, "predictor `{label}` ({mode}) diverges: {detail}"),
            Divergence::Attribution { label, detail } => {
                write!(f, "attribution for `{label}` diverges: {detail}")
            }
            Divergence::Matrix {
                label,
                shards,
                detail,
            } => write!(
                f,
                "fused matrix cell `{label}` ({shards} shards) diverges: {detail}"
            ),
            Divergence::Stream {
                label,
                shards,
                pool,
                detail,
            } => write!(
                f,
                "streamed replay of `{label}` ({shards} shards, pool {pool}) diverges: {detail}"
            ),
        }
    }
}

impl Error for Divergence {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Divergence::Events(d) => Some(&**d),
            Divergence::Serialization {
                source: Some(e), ..
            } => Some(&**e as &(dyn Error + 'static)),
            _ => None,
        }
    }
}

/// The predictor configurations every fuzz case is checked under: both
/// paper baselines, infinite tables under both classification mechanisms,
/// a small thrash-prone table, a non-power-of-two geometry (modulo set
/// indexing), and the directive-routed hybrid.
#[must_use]
pub fn oracle_configs() -> Vec<PredictorConfig> {
    vec![
        PredictorConfig::spec_table_stride_fsm(),
        PredictorConfig::spec_table_stride_profile(),
        PredictorConfig::InfiniteStride {
            classifier: ClassifierKind::two_bit_counter(),
        },
        PredictorConfig::InfiniteLastValue {
            classifier: ClassifierKind::Always,
        },
        PredictorConfig::TableLastValue {
            geometry: TableGeometry::new(8, 2),
            classifier: ClassifierKind::two_bit_counter(),
        },
        PredictorConfig::TableTwoDelta {
            geometry: TableGeometry::new(12, 2),
            classifier: ClassifierKind::Directive,
        },
        PredictorConfig::Hybrid {
            stride: TableGeometry::new(4, 2),
            last_value: TableGeometry::new(8, 2),
        },
    ]
}

/// Runs the full differential oracle on one program.
///
/// # Errors
///
/// Returns the first [`Divergence`] found; `Ok` carries the captured
/// trace.
pub fn run_case(program: &Program, max_instructions: u64) -> Result<Trace, Divergence> {
    let limits = RunLimits::with_max(max_instructions);

    // --- 1. simulation differential ---
    let mut machine = Machine::for_program(program);
    let mut recorder = TraceRecorder::new();
    let optimized = runner::run_on(&mut machine, program, &mut recorder, limits);
    let reference = ref_run(program, max_instructions);

    let status_matches = match (&optimized, &reference.status) {
        (Ok(s), Ok(r)) => s.status() == *r && s.instructions() == reference.retired,
        (Err(a), Err(b)) => a == b,
        _ => false,
    };
    if !status_matches {
        return Err(Divergence::Status {
            optimized: match &optimized {
                Ok(s) => format!("{:?} after {} instructions", s.status(), s.instructions()),
                Err(e) => format!("fault: {e}"),
            },
            reference: match &reference.status {
                Ok(r) => format!("{:?} after {} instructions", r, reference.retired),
                Err(e) => format!("fault: {e}"),
            },
        });
    }

    let cols = recorder.into_columns();
    if let Some(d) = first_divergence(reference.events.iter().cloned(), cols.iter()) {
        return Err(Divergence::Events(Box::new(d)));
    }

    for r in 0..32u8 {
        let opt = machine.read_reg(RegClass::Int, Reg::new(r));
        let reference_value = reference.int_regs[usize::from(r)];
        if opt != reference_value {
            return Err(Divergence::Register {
                class: "int",
                index: r,
                optimized: opt,
                reference: reference_value,
            });
        }
        let opt_fp = machine.read_reg(RegClass::Fp, Reg::new(r));
        let ref_fp = reference.fp_regs[usize::from(r)];
        if opt_fp != ref_fp {
            return Err(Divergence::Register {
                class: "fp",
                index: r,
                optimized: opt_fp,
                reference: ref_fp,
            });
        }
    }

    for (&addr, &value) in &reference.memory {
        let opt = machine.memory().peek(addr);
        if opt != value {
            return Err(Divergence::Memory {
                addr,
                optimized: opt,
                reference: value,
            });
        }
    }

    // --- 2. serialisation oracle ---
    let trace = Trace::from_columns(cols);
    let mut bytes = Vec::new();
    if let Err(e) = trace.write_to(&mut bytes) {
        return Err(Divergence::Serialization {
            detail: format!("write failed: {e}"),
            source: Some(Box::new(e)),
        });
    }
    match Trace::read_from(bytes.as_slice()) {
        Ok(back) if back.columns() == trace.columns() => {}
        Ok(_) => {
            return Err(Divergence::Serialization {
                detail: "round trip decoded different columns".into(),
                source: None,
            })
        }
        Err(e) => {
            return Err(Divergence::Serialization {
                detail: format!("read failed: {e}"),
                source: Some(Box::new(e)),
            })
        }
    }

    // --- 3. predictor differential ---
    let directives: Vec<Directive> = program.text().iter().map(|i| i.directive).collect();
    let values: Vec<(InstrAddr, u64)> = trace.columns().value_events().collect();
    let expected_values = reference.events.iter().filter(|e| e.dest.is_some()).count();
    if values.len() != expected_values {
        return Err(Divergence::Serialization {
            detail: format!(
                "value_events yields {} events, reference saw {expected_values} dest writes",
                values.len()
            ),
            source: None,
        });
    }

    for config in oracle_configs() {
        let (ref_stats, ref_occ) = ref_predict(&directives, &values, &config);

        // (a) the real predictor, fed directly.
        let mut direct = config.build();
        for &(addr, value) in &values {
            let d = directives
                .get(addr.index() as usize)
                .copied()
                .unwrap_or(Directive::None);
            direct.access(addr, d, value);
        }
        check_predictor(
            &config,
            "direct",
            (*direct.stats(), direct.occupancy()),
            (ref_stats, ref_occ),
        )?;

        // (b) sequential replay, (c) PC-sharded parallel replay.
        for (mode, shards, jobs) in [("replay", 1usize, 1usize), ("sharded-replay", 3, 2)] {
            let outcome = ReplayRequest::batch(&trace)
                .single(program, config)
                .shards(shards)
                .jobs(jobs)
                .run()
                .map_err(|e| Divergence::Predictor {
                    label: config.label(),
                    mode,
                    detail: format!("replay failed: {e}"),
                })?
                .into_single()
                .outcome;
            check_predictor(
                &config,
                mode,
                (outcome.stats, outcome.occupancy),
                (ref_stats, ref_occ),
            )?;
        }

        // --- 4. attribution oracle ---
        let attr_err = |detail: String| Divergence::Attribution {
            label: config.label(),
            detail,
        };
        let attributed = |shards: usize, jobs: usize| {
            ReplayRequest::batch(&trace)
                .single(program, config)
                .attribution(true)
                .shards(shards)
                .jobs(jobs)
                .run()
                .map(|r| {
                    let cell = r.into_single();
                    (cell.outcome, cell.attribution.expect("attribution on"))
                })
        };
        let (seq_out, seq_table) =
            attributed(1, 1).map_err(|e| attr_err(format!("attributed replay failed: {e}")))?;
        // Observation-only: attribution must not perturb the replay.
        check_predictor(
            &config,
            "attributed-replay",
            (seq_out.stats, seq_out.occupancy),
            (ref_stats, ref_occ),
        )?;
        seq_table
            .reconcile(&seq_out.stats)
            .map_err(|e| attr_err(format!("totals fail to reconcile with stats: {e}")))?;
        let (par_out, par_table) = attributed(3, 2)
            .map_err(|e| attr_err(format!("sharded attributed replay failed: {e}")))?;
        if par_out.stats != seq_out.stats {
            return Err(attr_err(
                "sharded attributed replay changed the stats".into(),
            ));
        }
        if par_table != seq_table {
            return Err(attr_err(
                "per-PC table differs between 1 and 3 shards".into(),
            ));
        }
    }

    // --- 5. matrix oracle ---
    // One fused pass over every oracle configuration, with a duplicate
    // cell (exercising the dedup path) and a second annotation table
    // (the directive-stripped program), checked cell by cell against
    // independent per-cell replays at each shard count.
    let stripped = program.without_directives();
    let mut plan = SweepPlan::new();
    let tagged_table = plan.add_directives(program);
    let stripped_table = plan.add_directives(&stripped);
    let configs = oracle_configs();
    // (config, annotation table, per-cell reference program).
    let mut matrix_cells: Vec<(PredictorConfig, usize, &Program)> = configs
        .iter()
        .map(|&c| (c, tagged_table, program))
        .collect();
    matrix_cells.push((configs[0], tagged_table, program));
    matrix_cells.push((configs[0], stripped_table, &stripped));
    matrix_cells.push((configs[1], stripped_table, &stripped));
    for &(config, table, _) in &matrix_cells {
        plan.add_cell(config, table);
    }
    let expected: Vec<_> = matrix_cells
        .iter()
        .map(|(config, _, cell_program)| {
            ReplayRequest::batch(&trace)
                .single(cell_program, *config)
                .run()
                .map(|r| r.into_single().outcome)
        })
        .collect::<Result<_, _>>()
        .map_err(|e| Divergence::Matrix {
            label: "per-cell reference".into(),
            shards: 1,
            detail: format!("replay failed: {e}"),
        })?;
    let cell_label = |i: usize| {
        let (config, table, _) = &matrix_cells[i];
        format!("{} (cell {i}, table {table})", config.label())
    };
    for shards in [1usize, 3] {
        let fused = ReplayRequest::batch(&trace)
            .plan(plan.clone())
            .shards(shards)
            .jobs(2)
            .run()
            .map(|r| r.outcomes())
            .map_err(|e| Divergence::Matrix {
                label: "whole plan".into(),
                shards,
                detail: format!("fused replay failed: {e}"),
            })?;
        if fused.len() != matrix_cells.len() {
            return Err(Divergence::Matrix {
                label: "whole plan".into(),
                shards,
                detail: format!(
                    "fused replay returned {} outcomes for {} cells",
                    fused.len(),
                    matrix_cells.len()
                ),
            });
        }
        for (i, (f, e)) in fused.iter().zip(&expected).enumerate() {
            if f.stats != e.stats {
                return Err(Divergence::Matrix {
                    label: cell_label(i),
                    shards,
                    detail: format!(
                        "stats differ:\nfused {:#?}\nper-cell {:#?}",
                        f.stats, e.stats
                    ),
                });
            }
            if f.occupancy != e.occupancy {
                return Err(Divergence::Matrix {
                    label: cell_label(i),
                    shards,
                    detail: format!(
                        "occupancy differs: fused {}, per-cell {}",
                        f.occupancy, e.occupancy
                    ),
                });
            }
        }
    }

    // --- 6. streaming oracle ---
    // The bounded-memory streaming engine re-simulates the program and
    // feeds the same fused kernel through a bounded block channel; its
    // grid must be bit-identical to the batch grid at every tested shard
    // (consumer) count × block-pool size — including a pool of 2, where
    // the producer stalls on every other block. Faulting programs are
    // excluded: a streamed replay surfaces the simulator fault as an
    // error (there is no well-defined full stream), while the batch path
    // above replays the pre-fault prefix that the recorder captured.
    if optimized.is_err() {
        return Ok(trace);
    }
    for (shards, pool) in [(1usize, 2usize), (3, 2), (3, 8)] {
        let stream_err = |label: String, detail: String| Divergence::Stream {
            label,
            shards,
            pool,
            detail,
        };
        let streamed = ReplayRequest::stream(program, limits)
            .plan(plan.clone())
            .shards(shards)
            .block_pool(pool)
            .run()
            .map_err(|e| stream_err("whole plan".into(), format!("streamed replay failed: {e}")))?;
        if streamed.cells.len() != matrix_cells.len() {
            return Err(stream_err(
                "whole plan".into(),
                format!(
                    "streamed replay returned {} outcomes for {} cells",
                    streamed.cells.len(),
                    matrix_cells.len()
                ),
            ));
        }
        for (i, (s, e)) in streamed.cells.iter().zip(&expected).enumerate() {
            if s.outcome.stats != e.stats {
                return Err(stream_err(
                    cell_label(i),
                    format!(
                        "stats differ:\nstreamed {:#?}\nbatch {:#?}",
                        s.outcome.stats, e.stats
                    ),
                ));
            }
            if s.outcome.occupancy != e.occupancy {
                return Err(stream_err(
                    cell_label(i),
                    format!(
                        "occupancy differs: streamed {}, batch {}",
                        s.outcome.occupancy, e.occupancy
                    ),
                ));
            }
        }
    }
    // Attributed streaming: tables must match batch attribution exactly.
    let attributed_of = |request: ReplayRequest<'_>| {
        request
            .plan(plan.clone())
            .attribution(true)
            .shards(3)
            .jobs(2)
            .block_pool(2)
            .run()
    };
    let batch_attr =
        attributed_of(ReplayRequest::batch(&trace)).map_err(|e| Divergence::Stream {
            label: "whole plan (attributed batch)".into(),
            shards: 3,
            pool: 2,
            detail: format!("attributed batch replay failed: {e}"),
        })?;
    let stream_attr =
        attributed_of(ReplayRequest::stream(program, limits)).map_err(|e| Divergence::Stream {
            label: "whole plan (attributed)".into(),
            shards: 3,
            pool: 2,
            detail: format!("attributed streamed replay failed: {e}"),
        })?;
    for (i, (s, b)) in stream_attr.cells.iter().zip(&batch_attr.cells).enumerate() {
        let stream_err = |detail: String| Divergence::Stream {
            label: cell_label(i),
            shards: 3,
            pool: 2,
            detail,
        };
        if s.outcome.stats != b.outcome.stats {
            return Err(stream_err(
                "attributed streamed stats differ from batch".into(),
            ));
        }
        if s.attribution != b.attribution {
            return Err(stream_err(
                "attribution table differs between streamed and batch replay".into(),
            ));
        }
    }

    Ok(trace)
}

fn check_predictor(
    config: &PredictorConfig,
    mode: &'static str,
    (opt_stats, opt_occ): (PredictorStats, usize),
    (ref_stats, ref_occ): (PredictorStats, usize),
) -> Result<(), Divergence> {
    if opt_stats != ref_stats {
        return Err(Divergence::Predictor {
            label: config.label(),
            mode,
            detail: format!("stats differ:\noptimized {opt_stats:#?}\nreference {ref_stats:#?}"),
        });
    }
    if opt_occ != ref_occ {
        return Err(Divergence::Predictor {
            label: config.label(),
            mode,
            detail: format!("occupancy differs: optimized {opt_occ}, reference {ref_occ}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen_program, GenConfig};
    use vp_rng::Rng;

    #[test]
    fn hand_written_kernels_pass_the_oracle() {
        for src in [
            // The FP loop from the workload suite's shape.
            ".f64 1.5\nli r1, 0\nli r2, 12\ntop: fld f1, (r0)\nfadd f2, f2, f1\n\
             sd r1, 5(r1)\nld r3, 5(r1)\naddi r1, r1, 1\nbne r1, r2, top\nhalt\n",
            // Faulting program: both stacks must fault identically.
            "li r1, -5\njalr r0, r1, 0\nhalt\n",
            // Budget exhaustion: both stacks must stop at the same count.
            "top: addi r8, r8, 1\nbeq r0, r0, top\nhalt\n",
        ] {
            let p = vp_isa::asm::assemble(src).unwrap();
            if let Err(d) = run_case(&p, 5_000) {
                panic!("oracle diverged on hand-written kernel: {d}\n{p}");
            }
        }
    }

    #[test]
    fn fuzzed_programs_pass_the_oracle() {
        let cfg = GenConfig::default();
        for seed in 0..60u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let p = gen_program(&mut rng, &cfg, "oracle");
            if let Err(d) = run_case(&p, 100_000) {
                panic!("oracle diverged at seed {seed}: {d}\n{p}");
            }
        }
    }

    #[test]
    fn stream_divergence_renders_with_shards_and_pool() {
        let d = Divergence::Stream {
            label: "stride (cell 1, table 0)".into(),
            shards: 3,
            pool: 2,
            detail: "stats differ".into(),
        };
        let s = d.to_string();
        assert!(s.contains("3 shards"), "{s}");
        assert!(s.contains("pool 2"), "{s}");
        assert!(s.contains("stats differ"), "{s}");
    }

    #[test]
    fn serialization_divergence_chains_its_source() {
        let inner = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "short read");
        let d = Divergence::Serialization {
            detail: format!("read failed: {inner}"),
            source: Some(Box::new(inner)),
        };
        let source = d.source().expect("typed source must be exposed");
        assert!(source.to_string().contains("short read"));
        // Pure value mismatches have no cause.
        let bare = Divergence::Serialization {
            detail: "round trip decoded different columns".into(),
            source: None,
        };
        assert!(bare.source().is_none());
    }

    #[test]
    fn matrix_divergence_renders_with_cell_and_shards() {
        let d = Divergence::Matrix {
            label: "stride (cell 2, table 0)".into(),
            shards: 3,
            detail: "stats differ".into(),
        };
        let s = d.to_string();
        assert!(s.contains("cell 2"), "{s}");
        assert!(s.contains("3 shards"), "{s}");
        assert!(s.contains("stats differ"), "{s}");
    }

    /// A directive-tagged kernel keeps the matrix oracle's two annotation
    /// tables distinct (the stripped program really differs), so the
    /// multi-table fused path is exercised, not just deduped away.
    #[test]
    fn matrix_oracle_covers_distinct_annotation_tables() {
        let src = "li r1, 0\nli r2, 9\ntop: addi.st r3, r3, 4\nsd r3, 3(r1)\n\
                   ld.lv r4, 3(r1)\naddi r1, r1, 1\nbne r1, r2, top\nhalt\n";
        let p = vp_isa::asm::assemble(src).unwrap();
        assert_ne!(p, p.without_directives(), "kernel must carry directives");
        if let Err(d) = run_case(&p, 5_000) {
            panic!("oracle diverged on the tagged kernel: {d}\n{p}");
        }
    }

    /// The oracle must actually *catch* bugs: feed it a program pair where
    /// the "reference" is the real semantics and the optimised side is
    /// simulated with a deliberately corrupted trace.
    #[test]
    fn a_corrupted_event_stream_is_caught() {
        let p = vp_isa::asm::assemble("li r8, 7\naddi r8, r8, 1\nhalt\n").unwrap();
        let trace = run_case(&p, 1_000).expect("clean program must pass");
        let mut events: Vec<_> = trace.iter().collect();
        events[1].dest = events[1].dest.map(|(c, r, v)| (c, r, v ^ 1));
        let reference = crate::refsim::ref_run(&p, 1_000);
        let d = first_divergence(reference.events, events).expect("must detect the flip");
        assert_eq!(d.index, 1);
    }
}
