//! Differential oracle and coverage-guided deterministic fuzzing for the
//! provp stack.
//!
//! Every layer of the simulator/predictor pipeline is an *optimised*
//! implementation: columnar traces, sharded predictor replay, packed
//! set-associative tables, delta-encoded spill files. Each optimisation is
//! an opportunity for a silent semantic drift that no hand-written unit
//! test would catch. This crate closes that gap with three ingredients:
//!
//! 1. **A random program generator** ([`generate`]) over the vp-isa
//!    instruction set, biased toward the control/data shapes the paper
//!    cares about: loops, stride address arithmetic, data-dependent loads
//!    and directive-tagged value producers.
//! 2. **Reference implementations** ([`refsim`], [`refpred`]) that are
//!    deliberately simple — row-oriented, allocation-happy, map-based —
//!    and therefore easy to audit against the instruction semantics in
//!    `vp_sim::exec` and the predictor definitions in `vp_predictor`.
//! 3. **A differential oracle** ([`oracle`]) that runs both stacks on the
//!    same fuzzed program and demands bit-identical register files,
//!    memories, retirement event streams, serialised traces and
//!    [`vp_predictor::PredictorStats`] blocks.
//!
//! On top sit [`coverage`]-guided case scheduling (the generator is steered
//! toward opcodes the corpus has exercised least), automatic input
//! [`shrink`]ing of failing programs, and a [`corpus`] of minimised repro
//! files in assembler syntax that `cargo test` replays forever after.
//!
//! Everything is deterministic: a fuzz run is fully described by
//! `(seed, cases)`, and a failure report names the exact case seed.

pub mod corpus;
pub mod coverage;
pub mod fuzz;
pub mod generate;
pub mod oracle;
pub mod refpred;
pub mod refsim;
pub mod shrink;

pub use corpus::{load_corpus, write_repro};
pub use coverage::Coverage;
pub use fuzz::{run_fuzz, FuzzOptions, FuzzReport};
pub use generate::{gen_program, GenConfig};
pub use oracle::{run_case, Divergence};
pub use refpred::ref_predict;
pub use refsim::{ref_run, RefOutcome};
pub use shrink::shrink_program;
