//! The deterministic, coverage-guided fuzz loop.
//!
//! A fuzz run is fully described by `(seed, cases)`: case `i` derives its
//! own seed with a SplitMix64 finalizer over `seed + i`, generates a
//! program, runs the full differential [`oracle`](crate::oracle), and
//! folds the execution into the [`Coverage`] map. Every few cases the
//! generator is focused on the least-covered opcode, so the corpus
//! systematically reaches rare instructions instead of hoping for them.
//!
//! On a divergence the failing program is [shrunk](crate::shrink) (the
//! predicate being "the oracle still reports a divergence") and the
//! minimised repro is written to the corpus directory with its case seed
//! and divergence message in the header. Re-running a single case needs
//! only its reported `case_seed`.
//!
//! Observability: `fuzz.cases`, `fuzz.coverage` (distinct opcodes +
//! distinct edges) and `fuzz.divergences` counters, via [`vp_obs`].

use std::io;
use std::path::PathBuf;

use vp_isa::Program;
use vp_rng::Rng;

use crate::corpus::write_repro;
use crate::coverage::Coverage;
use crate::generate::{gen_program, GenConfig};
use crate::oracle::run_case;
use crate::shrink::shrink_program;

/// Per-case instruction budget: far above what `GenConfig::default()` can
/// produce, so budget exhaustion still gets exercised only via generated
/// long loops, not as the common case.
const CASE_BUDGET: u64 = 200_000;

/// Steer the generator toward the least-covered opcode on every third
/// case.
const FOCUS_PERIOD: u64 = 3;

/// Options for one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Number of cases to run.
    pub cases: u64,
    /// Base seed; case `i` runs with `splitmix64(seed + i)`.
    pub seed: u64,
    /// Maximum accepted shrink steps per divergence.
    pub max_shrink_steps: u32,
    /// Where to write minimised repros (`None`: report only).
    pub corpus: Option<PathBuf>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            cases: 1000,
            seed: 1,
            max_shrink_steps: 200,
            corpus: None,
        }
    }
}

/// One divergence found by a fuzz run.
#[derive(Debug)]
pub struct DivergenceRecord {
    /// Case index within the run.
    pub case: u64,
    /// The derived per-case seed (sufficient to regenerate the program).
    pub case_seed: u64,
    /// Rendered divergence message.
    pub divergence: String,
    /// Instruction count of the original failing program.
    pub original_len: usize,
    /// The minimised program.
    pub shrunk: Program,
    /// Accepted shrink steps.
    pub shrink_steps: u32,
    /// Where the repro was written, when a corpus directory was given.
    pub repro_path: Option<PathBuf>,
}

/// Summary of a fuzz run.
#[derive(Debug)]
pub struct FuzzReport {
    /// Cases executed.
    pub cases: u64,
    /// Divergences found (empty on a healthy stack).
    pub divergences: Vec<DivergenceRecord>,
    /// Distinct opcodes retired across all cases.
    pub distinct_opcodes: usize,
    /// Distinct opcode→opcode retirement edges across all cases.
    pub distinct_edges: usize,
}

/// SplitMix64 finalizer: decorrelates sequential case indices into
/// independent generator seeds.
#[must_use]
pub fn case_seed(base: u64, case: u64) -> u64 {
    let mut z = base.wrapping_add(case).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs the fuzz loop.
///
/// # Errors
///
/// Only filesystem errors (writing corpus repros) are returned as `Err`;
/// divergences are data in the report.
pub fn run_fuzz(opts: &FuzzOptions) -> io::Result<FuzzReport> {
    let mut coverage = Coverage::new();
    let mut divergences = Vec::new();

    for case in 0..opts.cases {
        let seed = case_seed(opts.seed, case);
        let mut cfg = GenConfig::default();
        if case % FOCUS_PERIOD == FOCUS_PERIOD - 1 {
            cfg.focus = coverage.least_covered();
        }
        let mut rng = Rng::seed_from_u64(seed);
        let program = gen_program(&mut rng, &cfg, &format!("fuzz-{seed:016x}"));

        match run_case(&program, CASE_BUDGET) {
            Ok(trace) => {
                let events: Vec<_> = trace.iter().collect();
                coverage.observe(&program, events.iter());
            }
            Err(divergence) => {
                let message = divergence.to_string();
                let (shrunk, shrink_steps) = shrink_program(
                    &program,
                    &mut |p| run_case(p, CASE_BUDGET).is_err(),
                    opts.max_shrink_steps,
                );
                let repro_path = match &opts.corpus {
                    Some(dir) => Some(write_repro(
                        dir,
                        &format!("div-{seed:016x}"),
                        &shrunk,
                        &format!("fuzz divergence, case {case} (seed {seed:#018x})\n{message}"),
                    )?),
                    None => None,
                };
                divergences.push(DivergenceRecord {
                    case,
                    case_seed: seed,
                    divergence: message,
                    original_len: program.text().len(),
                    shrunk,
                    shrink_steps,
                    repro_path,
                });
            }
        }
        vp_obs::counter("fuzz.cases").add(1);
    }

    let (distinct_opcodes, distinct_edges) = coverage.distinct();
    vp_obs::gauge("fuzz.coverage").set((distinct_opcodes + distinct_edges) as u64);
    vp_obs::counter("fuzz.divergences").add(divergences.len() as u64);

    Ok(FuzzReport {
        cases: opts.cases,
        divergences,
        distinct_opcodes,
        distinct_edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_run_finds_no_divergences_and_broad_coverage() {
        let report = run_fuzz(&FuzzOptions {
            cases: 30,
            seed: 0xf00d,
            max_shrink_steps: 50,
            corpus: None,
        })
        .unwrap();
        assert_eq!(report.cases, 30);
        assert!(
            report.divergences.is_empty(),
            "unexpected divergences: {:?}",
            report.divergences
        );
        // 30 varied programs must exercise a healthy slice of the ISA.
        assert!(
            report.distinct_opcodes >= 20,
            "only {} distinct opcodes covered",
            report.distinct_opcodes
        );
        assert!(report.distinct_edges > report.distinct_opcodes);
    }

    #[test]
    fn case_seeds_are_decorrelated() {
        let a = case_seed(1, 0);
        let b = case_seed(1, 1);
        let c = case_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Stability: repro commands printed in CI logs must stay valid.
        assert_eq!(case_seed(1, 0), case_seed(1, 0));
    }
}
