//! Reference predictor models: naive map-based re-implementations of the
//! infinite, table and hybrid predictors, with explicit per-set LRU lists.
//!
//! The optimised predictors pack entries into flat columnar arrays, share
//! a clock across sets and snapshot conflict counters; any of those
//! optimisations could silently change the architected behaviour. The
//! models here use `BTreeMap`s and per-set `Vec`s, written straight from
//! the documented replacement/admission/recommendation rules, and must
//! produce bit-identical [`PredictorStats`] on every fuzzed trace.
//!
//! Only passive data types are shared with the real crate
//! ([`PredictorStats`], [`Access`], [`PredictorConfig`] as the
//! *specification* of what to model); all dynamic state and update logic
//! is independent.

use std::collections::BTreeMap;

use vp_isa::{Directive, InstrAddr};
use vp_predictor::{
    Access, ClassifierKind, PredictorConfig, PredictorStats, SatCounter, TableGeometry,
};

/// Which prediction scheme a cell implements.
#[derive(Debug, Clone, Copy)]
enum Scheme {
    LastValue,
    Stride,
    TwoDelta,
}

/// A reference prediction cell: one struct covering all three schemes.
#[derive(Debug, Clone, Copy)]
struct RefCell {
    scheme: Scheme,
    last: u64,
    stride: u64,
    last_delta: u64,
}

impl RefCell {
    fn allocate(scheme: Scheme, initial: u64) -> Self {
        RefCell {
            scheme,
            last: initial,
            stride: 0,
            last_delta: 0,
        }
    }

    fn predict(&self) -> u64 {
        match self.scheme {
            Scheme::LastValue => self.last,
            Scheme::Stride | Scheme::TwoDelta => self.last.wrapping_add(self.stride),
        }
    }

    fn nonzero_stride(&self) -> bool {
        match self.scheme {
            Scheme::LastValue => false,
            Scheme::Stride | Scheme::TwoDelta => self.stride != 0,
        }
    }

    fn train(&mut self, actual: u64) {
        match self.scheme {
            Scheme::LastValue => {}
            Scheme::Stride => self.stride = actual.wrapping_sub(self.last),
            Scheme::TwoDelta => {
                let delta = actual.wrapping_sub(self.last);
                if delta == self.last_delta {
                    self.stride = delta;
                }
                self.last_delta = delta;
            }
        }
        self.last = actual;
    }
}

/// A reference two-bit saturating counter (initial 1, max 3, threshold 2).
///
/// The reference models only support the two-bit template; the constructor
/// asserts any supplied [`ClassifierKind::SatCounter`] template *is* the
/// two-bit counter, since its internal parameters are not observable.
#[derive(Debug, Clone, Copy)]
struct RefCounter {
    value: u8,
}

impl RefCounter {
    fn two_bit() -> Self {
        RefCounter { value: 1 }
    }

    fn predicts(&self) -> bool {
        self.value >= 2
    }

    fn record(&mut self, correct: bool) {
        if correct {
            self.value = (self.value + 1).min(3);
        } else {
            self.value = self.value.saturating_sub(1);
        }
    }
}

fn check_template(classifier: &ClassifierKind) {
    if let ClassifierKind::SatCounter { template } = classifier {
        assert_eq!(
            *template,
            SatCounter::two_bit(),
            "reference models only support the two-bit counter template"
        );
    }
}

fn admits(classifier: &ClassifierKind, directive: Directive) -> bool {
    match classifier {
        ClassifierKind::SatCounter { .. } | ClassifierKind::Always => true,
        ClassifierKind::Directive => directive.is_predictable(),
    }
}

/// The unbounded predictor: one map entry per static producer, allocated
/// on first sight regardless of classification.
struct RefInfinite {
    scheme: Scheme,
    classifier: ClassifierKind,
    map: BTreeMap<u64, (RefCell, RefCounter)>,
    stats: PredictorStats,
}

impl RefInfinite {
    fn new(scheme: Scheme, classifier: ClassifierKind) -> Self {
        check_template(&classifier);
        RefInfinite {
            scheme,
            classifier,
            map: BTreeMap::new(),
            stats: PredictorStats::new(),
        }
    }

    fn access(&mut self, addr: InstrAddr, directive: Directive, actual: u64) {
        let key = u64::from(addr.index());
        let mut a = Access::default();
        match self.map.get_mut(&key) {
            Some((cell, counter)) => {
                a.hit = true;
                let predicted = cell.predict();
                a.predicted = Some(predicted);
                a.correct = predicted == actual;
                a.nonzero_stride = cell.nonzero_stride();
                a.recommended = match self.classifier {
                    ClassifierKind::SatCounter { .. } => counter.predicts(),
                    ClassifierKind::Directive => directive.is_predictable(),
                    ClassifierKind::Always => true,
                };
                counter.record(a.correct);
                cell.train(actual);
            }
            None => {
                a.recommended = match self.classifier {
                    ClassifierKind::SatCounter { .. } | ClassifierKind::Always => false,
                    ClassifierKind::Directive => directive.is_predictable(),
                };
                a.allocated = true;
                self.map.insert(
                    key,
                    (
                        RefCell::allocate(self.scheme, actual),
                        RefCounter::two_bit(),
                    ),
                );
            }
        }
        self.stats.record_classified(directive, &a);
    }
}

/// One occupied way of a reference table set.
struct RefSlot {
    key: u64,
    stamp: u64,
    cell: RefCell,
    counter: RefCounter,
}

/// The finite set-associative predictor with an explicit per-set LRU list.
///
/// Mirrors the architected behaviour of the packed table: a global clock
/// bumped on *every* lookup (hit or miss) and on every insertion; hits
/// refresh the stamp; a full set evicts the slot with the oldest stamp;
/// conflicts count insertions of a new key into a non-empty set.
struct RefTable {
    scheme: Scheme,
    classifier: ClassifierKind,
    ways: usize,
    sets: Vec<Vec<RefSlot>>,
    clock: u64,
    conflicts: u64,
    stats: PredictorStats,
}

impl RefTable {
    fn new(scheme: Scheme, geometry: TableGeometry, classifier: ClassifierKind) -> Self {
        check_template(&classifier);
        RefTable {
            scheme,
            classifier,
            ways: geometry.ways(),
            sets: (0..geometry.sets()).map(|_| Vec::new()).collect(),
            clock: 0,
            conflicts: 0,
            stats: PredictorStats::new(),
        }
    }

    fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    fn access(&mut self, addr: InstrAddr, directive: Directive, actual: u64) -> Access {
        let mut a = Access::default();
        if !admits(&self.classifier, directive) {
            self.stats.record_classified(directive, &a);
            return a;
        }
        let key = u64::from(addr.index());
        let set = (key % self.sets.len() as u64) as usize;

        // Lookup always advances the clock, hit or miss.
        self.clock += 1;
        let slots = &mut self.sets[set];
        if let Some(slot) = slots.iter_mut().find(|s| s.key == key) {
            slot.stamp = self.clock;
            a.hit = true;
            let predicted = slot.cell.predict();
            a.predicted = Some(predicted);
            a.correct = predicted == actual;
            a.nonzero_stride = slot.cell.nonzero_stride();
            a.recommended = match self.classifier {
                ClassifierKind::SatCounter { .. } => slot.counter.predicts(),
                ClassifierKind::Directive | ClassifierKind::Always => true,
            };
            slot.counter.record(a.correct);
            slot.cell.train(actual);
        } else {
            a.allocated = true;
            a.recommended = matches!(self.classifier, ClassifierKind::Directive);
            // Insertion advances the clock again.
            self.clock += 1;
            let slot = RefSlot {
                key,
                stamp: self.clock,
                cell: RefCell::allocate(self.scheme, actual),
                counter: RefCounter::two_bit(),
            };
            if slots.len() < self.ways {
                if !slots.is_empty() {
                    self.conflicts += 1;
                }
                slots.push(slot);
            } else {
                let victim = slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.stamp)
                    .map(|(i, _)| i)
                    .expect("full set is non-empty");
                slots[victim] = slot;
                self.stats.evictions += 1;
                self.conflicts += 1;
            }
        }
        self.stats.record_classified(directive, &a);
        self.stats.set_conflicts = self.conflicts;
        a
    }
}

/// What a [`PredictorConfig`] resolves to in reference-model terms.
// One short-lived value exists per checked configuration; the size spread
// between variants is irrelevant here.
#[allow(clippy::large_enum_variant)]
enum RefModel {
    Infinite(RefInfinite),
    Table(RefTable),
    Hybrid {
        stride: RefTable,
        last_value: RefTable,
        stats: PredictorStats,
    },
}

impl RefModel {
    fn new(config: &PredictorConfig) -> Self {
        match config {
            PredictorConfig::InfiniteStride { classifier } => {
                RefModel::Infinite(RefInfinite::new(Scheme::Stride, *classifier))
            }
            PredictorConfig::InfiniteLastValue { classifier } => {
                RefModel::Infinite(RefInfinite::new(Scheme::LastValue, *classifier))
            }
            PredictorConfig::TableStride {
                geometry,
                classifier,
            } => RefModel::Table(RefTable::new(Scheme::Stride, *geometry, *classifier)),
            PredictorConfig::TableLastValue {
                geometry,
                classifier,
            } => RefModel::Table(RefTable::new(Scheme::LastValue, *geometry, *classifier)),
            PredictorConfig::TableTwoDelta {
                geometry,
                classifier,
            } => RefModel::Table(RefTable::new(Scheme::TwoDelta, *geometry, *classifier)),
            PredictorConfig::Hybrid { stride, last_value } => RefModel::Hybrid {
                stride: RefTable::new(Scheme::Stride, *stride, ClassifierKind::Directive),
                last_value: RefTable::new(
                    Scheme::LastValue,
                    *last_value,
                    ClassifierKind::Directive,
                ),
                stats: PredictorStats::new(),
            },
            other => panic!("no reference model for predictor config {}", other.label()),
        }
    }

    fn access(&mut self, addr: InstrAddr, directive: Directive, actual: u64) {
        match self {
            RefModel::Infinite(p) => p.access(addr, directive, actual),
            RefModel::Table(p) => {
                p.access(addr, directive, actual);
            }
            RefModel::Hybrid {
                stride,
                last_value,
                stats,
            } => {
                // Route by directive; untagged producers are invisible to
                // both sides but still recorded in the outer statistics.
                let a = match directive {
                    Directive::Stride => stride.access(addr, directive, actual),
                    Directive::LastValue => last_value.access(addr, directive, actual),
                    Directive::None => Access::default(),
                };
                stats.record_classified(directive, &a);
                // The outer block mirrors the real hybrid: set conflicts
                // are summed from the sides, evictions are *not*.
                stats.set_conflicts = stride.stats.set_conflicts + last_value.stats.set_conflicts;
            }
        }
    }

    fn stats(&self) -> PredictorStats {
        match self {
            RefModel::Infinite(p) => p.stats,
            RefModel::Table(p) => p.stats,
            RefModel::Hybrid { stats, .. } => *stats,
        }
    }

    fn occupancy(&self) -> usize {
        match self {
            RefModel::Infinite(p) => p.map.len(),
            RefModel::Table(p) => p.occupancy(),
            RefModel::Hybrid {
                stride, last_value, ..
            } => stride.occupancy() + last_value.occupancy(),
        }
    }
}

/// Feeds every `(address, value)` event through the reference model of
/// `config` and returns the final statistics and table occupancy.
///
/// `directives` is the program's per-instruction directive table (indexed
/// by static instruction address), exactly as the sharded replay consumes
/// it.
pub fn ref_predict(
    directives: &[Directive],
    values: &[(InstrAddr, u64)],
    config: &PredictorConfig,
) -> (PredictorStats, usize) {
    let mut model = RefModel::new(config);
    for &(addr, value) in values {
        let directive = directives
            .get(addr.index() as usize)
            .copied()
            .unwrap_or(Directive::None);
        model.access(addr, directive, value);
    }
    (model.stats(), model.occupancy())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic event stream with strided, constant and noisy producers
    /// heavy enough to force evictions in a tiny table.
    fn synthetic() -> (Vec<Directive>, Vec<(InstrAddr, u64)>) {
        let directives = vec![
            Directive::Stride,
            Directive::LastValue,
            Directive::None,
            Directive::Stride,
            Directive::None,
            Directive::LastValue,
            Directive::Stride,
            Directive::None,
        ];
        let mut values = Vec::new();
        for round in 0..200u64 {
            for addr in 0..8u32 {
                let v = match addr % 4 {
                    0 => 3 * round + u64::from(addr),
                    1 => 42,
                    2 => round.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    _ => round / 3,
                };
                values.push((InstrAddr::new(addr), v));
            }
        }
        (directives, values)
    }

    fn optimized(
        directives: &[Directive],
        values: &[(InstrAddr, u64)],
        config: &PredictorConfig,
    ) -> (PredictorStats, usize) {
        let mut p = config.build();
        for &(addr, value) in values {
            let d = directives
                .get(addr.index() as usize)
                .copied()
                .unwrap_or(Directive::None);
            p.access(addr, d, value);
        }
        (*p.stats(), p.occupancy())
    }

    #[test]
    fn reference_matches_optimized_on_synthetic_streams() {
        let (directives, values) = synthetic();
        let configs = [
            PredictorConfig::spec_table_stride_fsm(),
            PredictorConfig::spec_table_stride_profile(),
            PredictorConfig::InfiniteStride {
                classifier: ClassifierKind::two_bit_counter(),
            },
            PredictorConfig::InfiniteLastValue {
                classifier: ClassifierKind::Always,
            },
            PredictorConfig::TableLastValue {
                geometry: TableGeometry::new(4, 2),
                classifier: ClassifierKind::two_bit_counter(),
            },
            PredictorConfig::TableTwoDelta {
                geometry: TableGeometry::new(12, 2),
                classifier: ClassifierKind::Directive,
            },
            PredictorConfig::Hybrid {
                stride: TableGeometry::new(4, 2),
                last_value: TableGeometry::new(8, 2),
            },
        ];
        for config in &configs {
            let (ref_stats, ref_occ) = ref_predict(&directives, &values, config);
            let (opt_stats, opt_occ) = optimized(&directives, &values, config);
            assert_eq!(ref_stats, opt_stats, "stats diverge for {}", config.label());
            assert_eq!(
                ref_occ,
                opt_occ,
                "occupancy diverges for {}",
                config.label()
            );
        }
    }

    #[test]
    fn tiny_table_thrashes_identically() {
        // 6 producers competing for a 2-set × 2-way table: constant
        // evictions, the hardest LRU case.
        let directives = vec![Directive::None; 6];
        let mut values = Vec::new();
        for round in 0..100u64 {
            for addr in 0..6u32 {
                values.push((InstrAddr::new(addr), round * 7 + u64::from(addr)));
            }
        }
        let config = PredictorConfig::TableStride {
            geometry: TableGeometry::new(4, 2),
            classifier: ClassifierKind::two_bit_counter(),
        };
        let (ref_stats, ref_occ) = ref_predict(&directives, &values, &config);
        let (opt_stats, opt_occ) = optimized(&directives, &values, &config);
        assert!(ref_stats.evictions > 0, "test must exercise eviction");
        assert_eq!(ref_stats, opt_stats);
        assert_eq!(ref_occ, opt_occ);
    }
}
