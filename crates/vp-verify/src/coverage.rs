//! Coverage accounting for fuzzed executions: which opcodes retired, and
//! which opcode→opcode retirement edges occurred.
//!
//! Coverage steers the generator, not the oracle: after each case the
//! fuzz loop asks for the [least-covered](Coverage::least_covered) opcode
//! and biases the next program toward it, so rare instructions (`rem`,
//! `cvt.f.i`, `jalr`, …) don't stay rare just because the default weights
//! favour the common mix.

use std::collections::BTreeMap;

use vp_isa::{Opcode, Program};
use vp_sim::record::TraceEvent;

/// Cumulative dynamic coverage over all executed fuzz cases.
///
/// Keys are opcode discriminants (`Opcode` itself is not `Ord`); use
/// [`Coverage::least_covered`] and [`Coverage::distinct`] rather than the
/// maps directly.
#[derive(Debug, Default)]
pub struct Coverage {
    opcodes: BTreeMap<u8, u64>,
    edges: BTreeMap<(u8, u8), u64>,
}

fn code(op: Opcode) -> u8 {
    op as u8
}

impl Coverage {
    /// An empty coverage map.
    #[must_use]
    pub fn new() -> Self {
        Coverage::default()
    }

    /// Folds one execution into the map and returns its *novelty*: the
    /// number of previously unseen opcodes plus previously unseen edges.
    pub fn observe<'a>(
        &mut self,
        program: &Program,
        events: impl IntoIterator<Item = &'a TraceEvent>,
    ) -> usize {
        let mut novelty = 0;
        let mut prev: Option<u8> = None;
        for ev in events {
            let Some(ins) = program.fetch(ev.addr) else {
                continue;
            };
            let op = code(ins.op);
            let count = self.opcodes.entry(op).or_insert(0);
            if *count == 0 {
                novelty += 1;
            }
            *count += 1;
            if let Some(p) = prev {
                let edge = self.edges.entry((p, op)).or_insert(0);
                if *edge == 0 {
                    novelty += 1;
                }
                *edge += 1;
            }
            prev = Some(op);
        }
        novelty
    }

    /// The opcode with the lowest dynamic retirement count (unseen opcodes
    /// count as zero). `Halt` is excluded — every run retires exactly one,
    /// and steering toward it is useless.
    #[must_use]
    pub fn least_covered(&self) -> Option<Opcode> {
        Opcode::ALL
            .iter()
            .copied()
            .filter(|&op| op != Opcode::Halt)
            .min_by_key(|&op| self.opcodes.get(&code(op)).copied().unwrap_or(0))
    }

    /// `(distinct opcodes, distinct edges)` seen so far — the coverage
    /// figure reported by the fuzz harness.
    #[must_use]
    pub fn distinct(&self) -> (usize, usize) {
        (self.opcodes.len(), self.edges.len())
    }

    /// Dynamic retirement count for one opcode.
    #[must_use]
    pub fn count(&self, op: Opcode) -> u64 {
        self.opcodes.get(&code(op)).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_sim::{RunLimits, Trace};

    #[test]
    fn observe_counts_opcodes_and_edges() {
        let p = vp_isa::asm::assemble("li r1, 2\ntop: addi r1, r1, -1\nbne r1, r0, top\nhalt\n")
            .unwrap();
        let trace = Trace::capture(&p, RunLimits::default()).unwrap();
        let events: Vec<_> = trace.iter().collect();
        let mut cov = Coverage::new();
        let novelty = cov.observe(&p, events.iter());
        // 4 distinct opcodes + edges li->addi, addi->bne, bne->addi, bne->halt.
        assert_eq!(novelty, 4 + 4);
        assert_eq!(cov.distinct(), (4, 4));
        assert_eq!(cov.count(Opcode::Addi), 2);

        // A second identical run adds nothing new.
        assert_eq!(cov.observe(&p, events.iter()), 0);
    }

    #[test]
    fn least_covered_prefers_unseen_opcodes() {
        let p = vp_isa::asm::assemble("li r1, 1\nhalt\n").unwrap();
        let trace = Trace::capture(&p, RunLimits::default()).unwrap();
        let events: Vec<_> = trace.iter().collect();
        let mut cov = Coverage::new();
        cov.observe(&p, events.iter());
        let least = cov.least_covered().unwrap();
        assert_ne!(least, Opcode::Li);
        assert_ne!(least, Opcode::Halt);
        assert_eq!(cov.count(least), 0);
    }
}
