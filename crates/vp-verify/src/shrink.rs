//! Automatic input shrinking for failing fuzz programs.
//!
//! Given a program that makes the differential oracle diverge, greedily
//! search for a smaller program that *still* diverges: delete instructions
//! (fixing up PC-relative branch offsets so control flow stays
//! well-formed), truncate the data image, simplify immediates and strip
//! directives. Every candidate must keep
//! [`Program::control_flow_violations`] empty — a shrunk repro that
//! escapes the text segment would be reproducing a different bug.
//!
//! The predicate decides what "still fails" means; the fuzz harness passes
//! "the oracle reports any divergence", which occasionally lets a shrink
//! step slide from one divergence to another. For a repro corpus that is a
//! feature: the minimal program exhibits *a* divergence, which is what a
//! human debugs first.

use vp_isa::{Directive, Opcode, Program};

/// `r19` holds absolute `jalr` targets in generated programs (see
/// `generate`); deleting an instruction must slide those absolute
/// addresses too, or every deletion before a `jalr` pair would be vetoed
/// by the predicate for the wrong reason.
const JALR_TARGET: u8 = 19;

/// Greedily shrinks `program` while `still_fails` keeps returning `true`.
///
/// Returns the smallest program found and the number of accepted shrink
/// steps (bounded by `max_steps`).
pub fn shrink_program(
    program: &Program,
    still_fails: &mut dyn FnMut(&Program) -> bool,
    max_steps: u32,
) -> (Program, u32) {
    let mut current = program.clone();
    let mut steps = 0u32;
    while steps < max_steps {
        match first_accepted(&current, still_fails) {
            Some(next) => {
                current = next;
                steps += 1;
            }
            None => break,
        }
    }
    (current, steps)
}

/// Tries every candidate in reduction-power order and returns the first
/// one the predicate accepts.
fn first_accepted(p: &Program, still_fails: &mut dyn FnMut(&Program) -> bool) -> Option<Program> {
    candidates(p)
        .into_iter()
        .find(|c| c.control_flow_violations().is_empty() && still_fails(c))
}

fn candidates(p: &Program) -> Vec<Program> {
    let mut out = Vec::new();
    let n = p.text().len();

    // 1. Instruction deletion, most reduction first.
    for i in 0..n {
        if p.text()[i].op == Opcode::Halt && i == n - 1 {
            continue; // keep the final halt
        }
        if let Some(c) = delete_instr(p, i) {
            out.push(c);
        }
    }

    // 2. Data-image truncation: empty, then halves.
    if !p.data().is_empty() {
        out.push(with_data(p, Vec::new()));
        let half = p.data().len() / 2;
        if half > 0 {
            out.push(with_data(p, p.data()[..half].to_vec()));
        }
    }

    // 3. Immediate simplification (zero, then halving) for non-control
    //    instructions: control offsets encode structure, not magnitude.
    for (i, ins) in p.text().iter().enumerate() {
        if ins.imm == 0 || is_control(ins.op) {
            continue;
        }
        out.push(with_imm(p, i, 0));
        if ins.imm / 2 != 0 {
            out.push(with_imm(p, i, ins.imm / 2));
        }
    }

    // 4. Directive stripping.
    for (i, ins) in p.text().iter().enumerate() {
        if ins.directive != Directive::None {
            let mut text = p.text().to_vec();
            text[i] = text[i].with_directive(Directive::None);
            out.push(Program::new(p.name(), text, p.data().to_vec()));
        }
    }

    out
}

fn is_control(op: Opcode) -> bool {
    op.is_branch() || matches!(op, Opcode::Jal | Opcode::Jalr)
}

/// Removes the instruction at `removed`, re-aiming every PC-relative
/// branch/`jal` and every absolute `jalr` target (`li r19, addr`) across
/// the gap. Returns `None` when an offset cannot be preserved (e.g. a
/// branch targeting the removed slot from the removed slot itself).
fn delete_instr(p: &Program, removed: usize) -> Option<Program> {
    let old = p.text();
    let mut text = Vec::with_capacity(old.len() - 1);
    for (j, ins) in old.iter().enumerate() {
        if j == removed {
            continue;
        }
        let new_j = if j > removed { j - 1 } else { j };
        let mut ins = *ins;
        if ins.op.is_branch() || ins.op == Opcode::Jal {
            let target = i64::try_from(j).ok()? + ins.imm;
            if target < 0 {
                return None;
            }
            // A target at the removed slot re-aims at the instruction
            // that slides into it.
            let new_target = if target > removed as i64 {
                target - 1
            } else {
                target
            };
            ins.imm = new_target - new_j as i64;
        } else if ins.op == Opcode::Li && usize::from(ins.rd) == usize::from(JALR_TARGET) {
            // Absolute jalr-target convention from the generator.
            if ins.imm > removed as i64 {
                ins.imm -= 1;
            }
        }
        text.push(ins);
    }
    Some(Program::new(p.name(), text, p.data().to_vec()))
}

fn with_data(p: &Program, data: Vec<u64>) -> Program {
    Program::new(p.name(), p.text().to_vec(), data)
}

fn with_imm(p: &Program, i: usize, imm: i64) -> Program {
    let mut text = p.text().to_vec();
    text[i].imm = imm;
    Program::new(p.name(), text, p.data().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::asm::assemble;
    use vp_sim::{run, NullTracer, RunLimits, RunStatus};

    /// Shrinking against "contains a mul" melts everything else away.
    #[test]
    fn shrinks_to_the_predicate_kernel() {
        let p = assemble(
            ".data 7 8 9 10\n\
             li r8, 3\n\
             li r9, 5\n\
             add r10, r8, r9\n\
             mul r11, r8, r9\n\
             sub r12, r10, r11\n\
             li r1, 4\n\
             top: addi r1, r1, -1\n\
             bne r1, r0, top\n\
             halt\n",
        )
        .unwrap();
        let (shrunk, steps) = shrink_program(
            &p,
            &mut |c| c.text().iter().any(|i| i.op == Opcode::Mul),
            100,
        );
        assert!(steps > 0);
        // Minimal: the mul and the final halt survive; data is gone.
        assert_eq!(shrunk.text().len(), 2);
        assert_eq!(shrunk.text()[0].op, Opcode::Mul);
        assert_eq!(shrunk.text()[1].op, Opcode::Halt);
        assert!(shrunk.data().is_empty());
        assert!(shrunk.control_flow_violations().is_empty());
    }

    /// Branch offsets survive deletions: the shrunk loop still runs and
    /// halts.
    #[test]
    fn branch_fixup_preserves_executability() {
        let p = assemble(
            "li r8, 1\n\
             li r1, 3\n\
             top: addi r8, r8, 2\n\
             nop\n\
             addi r1, r1, -1\n\
             bne r1, r0, top\n\
             halt\n",
        )
        .unwrap();
        // Require the loop structure (a backward branch) to survive.
        let (shrunk, _) = shrink_program(
            &p,
            &mut |c| {
                c.text().iter().any(|i| i.op.is_branch())
                    && run(c, &mut NullTracer, RunLimits::with_max(10_000))
                        .map(|s| s.status() == RunStatus::Halted)
                        .unwrap_or(false)
            },
            100,
        );
        assert!(shrunk.text().len() < p.text().len());
        let summary = run(&shrunk, &mut NullTracer, RunLimits::with_max(10_000)).unwrap();
        assert_eq!(summary.status(), RunStatus::Halted);
    }

    #[test]
    fn directives_and_immediates_are_simplified() {
        let p = assemble("li.st r8, 5\nhalt\n").unwrap();
        let (shrunk, _) = shrink_program(
            &p,
            &mut |c| c.text().iter().any(|i| i.op == Opcode::Li),
            100,
        );
        assert_eq!(shrunk.text()[0].op, Opcode::Li);
        assert_eq!(shrunk.text()[0].imm, 0);
        assert!(shrunk.text().iter().all(|i| i.directive == Directive::None));
    }
}
