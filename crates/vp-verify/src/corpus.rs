//! Repro corpus management: minimised failing programs, written as plain
//! assembler files that `vp_isa::asm::assemble` reads back.
//!
//! When the fuzzer finds a divergence it shrinks the program and drops the
//! result here. Committed corpus files are replayed by `cargo test`
//! forever after (see `tests/corpus_replay.rs`), so a fixed bug stays
//! fixed — the corpus is the regression suite the fuzzer writes for you.
//!
//! Corpus policy: files are named `<kind>-<case seed>.s`, carry their
//! provenance in leading comment lines, and must be *committed* once the
//! underlying bug is fixed. Files for still-open bugs live in a scratch
//! directory (or a CI artifact), not in the tree.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use vp_isa::Program;

/// Writes `program` as `<dir>/<stem>.s` with `note` as a header comment.
///
/// Creates `dir` if needed. The file round-trips through the assembler:
/// [`load_corpus`] reproduces the program's text and data exactly.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_repro(dir: &Path, stem: &str, program: &Program, note: &str) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{stem}.s"));
    let mut contents = String::new();
    for line in note.lines() {
        contents.push_str("; ");
        contents.push_str(line);
        contents.push('\n');
    }
    contents.push_str(&program.to_string());
    fs::write(&path, contents)?;
    Ok(path)
}

/// Loads every `*.s` file under `dir`, in path order (deterministic
/// replay order), assembling each into a [`Program`].
///
/// A missing directory is an empty corpus, not an error.
///
/// # Errors
///
/// Propagates filesystem errors; an unparseable corpus file is reported
/// as [`io::ErrorKind::InvalidData`] naming the file.
pub fn load_corpus(dir: &Path) -> io::Result<Vec<(PathBuf, Program)>> {
    let mut paths: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "s"))
            .collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let src = fs::read_to_string(&path)?;
        let program = vp_isa::asm::assemble(&src).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("corpus file {} does not assemble: {e}", path.display()),
            )
        })?;
        out.push((path, program));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen_program, GenConfig};
    use vp_rng::Rng;

    #[test]
    fn write_then_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("vp-verify-corpus-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let mut rng = Rng::seed_from_u64(3);
        let p = gen_program(&mut rng, &GenConfig::default(), "rt");
        let path = write_repro(&dir, "case-3", &p, "two\nlines of note").unwrap();
        assert!(path.ends_with("case-3.s"));

        let loaded = load_corpus(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].1.text(), p.text());
        assert_eq!(loaded[0].1.data(), p.data());

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let dir = Path::new("/nonexistent/vp-verify-corpus");
        assert!(load_corpus(dir).unwrap().is_empty());
    }
}
