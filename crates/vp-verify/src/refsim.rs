//! A reference interpreter for the vp-isa: the differential oracle's
//! "slow but obviously right" half.
//!
//! Deliberately the opposite of `vp_sim` in engineering style: row-oriented
//! (one big match per step, no tracer plumbing), allocation-happy (memory
//! is a `BTreeMap`, the retirement trace is an owned `Vec`), and written
//! directly from the semantics prose in `vp_sim::exec` rather than from
//! its code — wrapping arithmetic goes through `i128`/`u128` widening, the
//! trap-free division/shift/NaN rules are spelled out case by case, and
//! control-flow range checks are explicit comparisons.
//!
//! The only types shared with the optimised stack are passive data
//! carriers ([`TraceEvent`], [`SimError`], [`RunStatus`]) so outcomes can
//! be compared directly.

use std::collections::BTreeMap;

use vp_isa::{Instr, InstrAddr, Opcode, Program, Reg, RegClass};
use vp_sim::record::TraceEvent;
use vp_sim::{MemAccess, RunStatus, SimError};

/// Everything the reference interpreter observed in one run.
#[derive(Debug, Clone)]
pub struct RefOutcome {
    /// Final integer register file (`r0` always 0).
    pub int_regs: Vec<u64>,
    /// Final floating-point register file (raw bits).
    pub fp_regs: Vec<u64>,
    /// Final memory contents (only words ever written or loaded from the
    /// initial image; absent words are architecturally zero).
    pub memory: BTreeMap<u64, u64>,
    /// The retirement trace, one event per retired instruction.
    pub events: Vec<TraceEvent>,
    /// How the run ended: halted / out of budget, or a simulator fault.
    pub status: Result<RunStatus, SimError>,
    /// Number of retired instructions.
    pub retired: u64,
}

struct RefMachine {
    int_regs: Vec<u64>,
    fp_regs: Vec<u64>,
    memory: BTreeMap<u64, u64>,
    pc: u32,
}

impl RefMachine {
    fn new(program: &Program) -> Self {
        let mut memory = BTreeMap::new();
        for (i, &w) in program.data().iter().enumerate() {
            if w != 0 {
                memory.insert(i as u64, w);
            }
        }
        RefMachine {
            int_regs: vec![0; 32],
            fp_regs: vec![0; 32],
            memory,
            pc: 0,
        }
    }

    fn int(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.int_regs[usize::from(r)]
        }
    }

    fn fp_bits(&self, r: Reg) -> u64 {
        self.fp_regs[usize::from(r)]
    }

    fn fp(&self, r: Reg) -> f64 {
        f64::from_bits(self.fp_bits(r))
    }

    fn mem_read(&self, addr: u64) -> u64 {
        self.memory.get(&addr).copied().unwrap_or(0)
    }

    fn mem_write(&mut self, addr: u64, value: u64) {
        self.memory.insert(addr, value);
    }
}

/// Widening wrapping helpers: same results as the optimised simulator's
/// `wrapping_*`, derived differently on purpose.
fn wadd(a: u64, b: u64) -> u64 {
    ((u128::from(a) + u128::from(b)) & u128::from(u64::MAX)) as u64
}

fn wsub(a: u64, b: u64) -> u64 {
    ((u128::from(a) + (u128::from(u64::MAX) - u128::from(b)) + 1) & u128::from(u64::MAX)) as u64
}

fn wmul(a: u64, b: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) & u128::from(u64::MAX)) as u64
}

/// Signed division with the simulator's trap-free rules: divide-by-zero
/// yields 0, and `i64::MIN / -1` yields `i64::MIN` (the wrap case).
fn sdiv(a: i64, b: i64) -> i64 {
    if b == 0 {
        0
    } else {
        (i128::from(a) / i128::from(b)) as i64
    }
}

/// Signed remainder: remainder-by-zero yields the dividend, and
/// `i64::MIN % -1` yields 0.
fn srem(a: i64, b: i64) -> i64 {
    if b == 0 {
        a
    } else {
        (i128::from(a) % i128::from(b)) as i64
    }
}

/// A PC-relative control target, with the explicit range rules: the
/// immediate must fit an `i32` and the resulting address must fit a `u32`.
fn rel_target(pc: u32, imm: i64) -> Result<u32, SimError> {
    let at = InstrAddr::new(pc);
    if imm < i64::from(i32::MIN) || imm > i64::from(i32::MAX) {
        return Err(SimError::TargetOverflow { at });
    }
    let t = i64::from(pc) + imm;
    if t < 0 || t > i64::from(u32::MAX) {
        return Err(SimError::TargetOverflow { at });
    }
    Ok(t as u32)
}

/// Runs `program` on the reference interpreter for at most
/// `max_instructions` retirements.
pub fn ref_run(program: &Program, max_instructions: u64) -> RefOutcome {
    let mut m = RefMachine::new(program);
    let mut events = Vec::new();
    let mut retired = 0u64;

    let status = loop {
        if retired >= max_instructions {
            break Ok(RunStatus::BudgetExhausted);
        }
        match ref_step(&mut m, program, &mut events) {
            Ok(halted) => {
                retired += 1;
                if halted {
                    break Ok(RunStatus::Halted);
                }
            }
            Err(e) => break Err(e),
        }
    };

    RefOutcome {
        int_regs: m.int_regs,
        fp_regs: m.fp_regs,
        memory: m.memory,
        events,
        status,
        retired,
    }
}

/// Executes one instruction; returns `Ok(true)` when a `halt` retired.
#[allow(clippy::too_many_lines)]
fn ref_step(
    m: &mut RefMachine,
    program: &Program,
    events: &mut Vec<TraceEvent>,
) -> Result<bool, SimError> {
    let pc = m.pc;
    let Some(ins) = program.fetch(InstrAddr::new(pc)) else {
        return Err(SimError::PcOutOfRange {
            pc: InstrAddr::new(pc),
            text_len: program.len(),
        });
    };

    let mut value: Option<u64> = None;
    let mut mem: Option<MemAccess> = None;
    let mut stored: Option<u64> = None;
    let mut taken: Option<bool> = None;
    let mut next = pc + 1;
    let mut halted = false;

    use Opcode::*;
    match ins.op {
        Add => value = Some(wadd(m.int(ins.rs1), m.int(ins.rs2))),
        Sub => value = Some(wsub(m.int(ins.rs1), m.int(ins.rs2))),
        Mul => value = Some(wmul(m.int(ins.rs1), m.int(ins.rs2))),
        Div => value = Some(sdiv(m.int(ins.rs1) as i64, m.int(ins.rs2) as i64) as u64),
        Rem => value = Some(srem(m.int(ins.rs1) as i64, m.int(ins.rs2) as i64) as u64),
        And => value = Some(m.int(ins.rs1) & m.int(ins.rs2)),
        Or => value = Some(m.int(ins.rs1) | m.int(ins.rs2)),
        Xor => value = Some(m.int(ins.rs1) ^ m.int(ins.rs2)),
        Sll => value = Some(m.int(ins.rs1) << (m.int(ins.rs2) % 64)),
        Srl => value = Some(m.int(ins.rs1) >> (m.int(ins.rs2) % 64)),
        Sra => value = Some(((m.int(ins.rs1) as i64) >> (m.int(ins.rs2) % 64)) as u64),
        Slt => value = Some(u64::from((m.int(ins.rs1) as i64) < (m.int(ins.rs2) as i64))),
        Sltu => value = Some(u64::from(m.int(ins.rs1) < m.int(ins.rs2))),

        Addi => value = Some(wadd(m.int(ins.rs1), ins.imm as u64)),
        Andi => value = Some(m.int(ins.rs1) & ins.imm as u64),
        Ori => value = Some(m.int(ins.rs1) | ins.imm as u64),
        Xori => value = Some(m.int(ins.rs1) ^ ins.imm as u64),
        Slli => value = Some(m.int(ins.rs1) << (ins.imm as u64 % 64)),
        Srli => value = Some(m.int(ins.rs1) >> (ins.imm as u64 % 64)),
        Srai => value = Some(((m.int(ins.rs1) as i64) >> (ins.imm as u64 % 64)) as u64),
        Slti => value = Some(u64::from((m.int(ins.rs1) as i64) < ins.imm)),
        Muli => value = Some(wmul(m.int(ins.rs1), ins.imm as u64)),

        Li => value = Some(ins.imm as u64),
        Mv => value = Some(m.int(ins.rs1)),

        Ld | Fld => {
            let addr = wadd(m.int(ins.rs1), ins.imm as u64);
            value = Some(m.mem_read(addr));
            mem = Some(MemAccess { addr, store: false });
        }
        Sd | Fsd => {
            let addr = wadd(m.int(ins.rs1), ins.imm as u64);
            let v = if ins.op == Fsd {
                m.fp_bits(ins.rs2)
            } else {
                m.int(ins.rs2)
            };
            m.mem_write(addr, v);
            mem = Some(MemAccess { addr, store: true });
            stored = Some(v);
        }

        Fadd => value = Some((m.fp(ins.rs1) + m.fp(ins.rs2)).to_bits()),
        Fsub => value = Some((m.fp(ins.rs1) - m.fp(ins.rs2)).to_bits()),
        Fmul => value = Some((m.fp(ins.rs1) * m.fp(ins.rs2)).to_bits()),
        Fdiv => value = Some((m.fp(ins.rs1) / m.fp(ins.rs2)).to_bits()),
        Fmin => value = Some(m.fp(ins.rs1).min(m.fp(ins.rs2)).to_bits()),
        Fmax => value = Some(m.fp(ins.rs1).max(m.fp(ins.rs2)).to_bits()),
        Fneg => value = Some((-m.fp(ins.rs1)).to_bits()),
        Fmv => value = Some(m.fp(ins.rs1).to_bits()),
        CvtIf => value = Some(((m.int(ins.rs1) as i64) as f64).to_bits()),
        CvtFi => {
            let v = m.fp(ins.rs1);
            value = Some(if v.is_nan() { 0 } else { (v as i64) as u64 });
        }
        Feq => value = Some(u64::from(m.fp(ins.rs1) == m.fp(ins.rs2))),
        Flt => value = Some(u64::from(m.fp(ins.rs1) < m.fp(ins.rs2))),
        Fle => value = Some(u64::from(m.fp(ins.rs1) <= m.fp(ins.rs2))),

        Beq | Bne | Blt | Bge | Bltu | Bgeu => {
            let (a, b) = (m.int(ins.rs1), m.int(ins.rs2));
            let t = match ins.op {
                Beq => a == b,
                Bne => a != b,
                Blt => (a as i64) < (b as i64),
                Bge => (a as i64) >= (b as i64),
                Bltu => a < b,
                Bgeu => a >= b,
                _ => unreachable!(),
            };
            taken = Some(t);
            if t {
                next = rel_target(pc, ins.imm)?;
            }
        }
        Jal => {
            value = Some(u64::from(pc + 1));
            next = rel_target(pc, ins.imm)?;
        }
        Jalr => {
            value = Some(u64::from(pc + 1));
            let target = wadd(m.int(ins.rs1), ins.imm as u64);
            if target > u64::from(u32::MAX) {
                return Err(SimError::TargetOverflow {
                    at: InstrAddr::new(pc),
                });
            }
            next = target as u32;
        }

        Nop => {}
        Halt => halted = true,
    }

    // Architecturally visible destination write: the opcode must have a
    // destination class, and integer writes to the hardwired zero register
    // are discarded entirely (not reported as a dest).
    let dest = match (dest_target(ins), value) {
        (Some((class, rd)), Some(v)) => {
            match class {
                RegClass::Int => m.int_regs[usize::from(rd)] = v,
                RegClass::Fp => m.fp_regs[usize::from(rd)] = v,
            }
            Some((class, rd, v))
        }
        _ => None,
    };

    m.pc = next;
    events.push(TraceEvent {
        addr: InstrAddr::new(pc),
        dest,
        mem,
        stored,
        taken,
        next_pc: InstrAddr::new(next),
    });
    Ok(halted)
}

/// The architecturally visible destination of an instruction, spelled out
/// opcode by opcode (independent of `Instr::dest`).
fn dest_target(ins: &Instr) -> Option<(RegClass, Reg)> {
    use Opcode::*;
    let class = match ins.op {
        Add | Sub | Mul | Div | Rem | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Addi
        | Andi | Ori | Xori | Slli | Srli | Srai | Slti | Muli | Li | Mv | Ld | Feq | Flt | Fle
        | CvtFi | Jal | Jalr => RegClass::Int,
        Fld | Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax | Fneg | Fmv | CvtIf => RegClass::Fp,
        Sd | Fsd | Beq | Bne | Blt | Bge | Bltu | Bgeu | Nop | Halt => return None,
    };
    if class == RegClass::Int && ins.rd.is_zero() {
        return None;
    }
    Some((class, ins.rd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vp_isa::asm::assemble;

    fn run_src(src: &str) -> RefOutcome {
        ref_run(&assemble(src).unwrap(), 10_000)
    }

    #[test]
    fn arithmetic_edge_cases_match_the_documented_semantics() {
        let out = run_src(
            "li r1, 9\n\
             div r2, r1, r0\n\
             rem r3, r1, r0\n\
             li r4, -9223372036854775808\n\
             li r5, -1\n\
             div r6, r4, r5\n\
             rem r7, r4, r5\n\
             halt\n",
        );
        assert_eq!(out.int_regs[2], 0); // div by zero
        assert_eq!(out.int_regs[3], 9); // rem by zero: dividend
        assert_eq!(out.int_regs[6], i64::MIN as u64); // MIN / -1 wraps
        assert_eq!(out.int_regs[7], 0); // MIN % -1
        assert_eq!(out.status, Ok(RunStatus::Halted));
    }

    #[test]
    fn loop_produces_one_event_per_retirement() {
        let out = run_src("li r1, 3\ntop: addi r1, r1, -1\nbne r1, r0, top\nhalt\n");
        assert_eq!(out.retired, 1 + 3 * 2 + 1);
        assert_eq!(out.events.len() as u64, out.retired);
        // The final bne is not taken.
        let last_bne = out.events.iter().rev().find(|e| e.taken.is_some()).unwrap();
        assert_eq!(last_bne.taken, Some(false));
    }

    #[test]
    fn faults_carry_the_faulting_pc_and_emit_no_event() {
        let out = run_src("nop\n"); // falls off the end of text
        assert_eq!(out.retired, 1);
        assert_eq!(out.events.len(), 1);
        assert_eq!(
            out.status,
            Err(SimError::PcOutOfRange {
                pc: InstrAddr::new(1),
                text_len: 1
            })
        );
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let out = run_src("top: beq r0, r0, top\nhalt\n");
        assert_eq!(out.status, Ok(RunStatus::BudgetExhausted));
        assert_eq!(out.retired, 10_000);
    }
}
