//! Replays the committed repro corpus through the full differential
//! oracle on every `cargo test` run.
//!
//! The corpus is the fuzzer's regression suite: each file is either a
//! seed kernel covering an ISA corner or a minimised repro of a fixed
//! divergence. A file that starts diverging again means an old bug came
//! back — the failure message names the file.

use std::path::Path;

use vp_verify::{load_corpus, run_case};

const CORPUS_BUDGET: u64 = 200_000;

#[test]
fn every_corpus_program_passes_the_oracle() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let corpus = load_corpus(&dir).expect("corpus directory must load");
    assert!(
        !corpus.is_empty(),
        "committed corpus is missing from {}",
        dir.display()
    );
    for (path, program) in &corpus {
        if let Err(d) = run_case(program, CORPUS_BUDGET) {
            panic!("corpus program {} diverges: {d}\n{program}", path.display());
        }
    }
}

#[test]
fn corpus_files_are_well_formed() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    for (path, program) in load_corpus(&dir).expect("corpus directory must load") {
        assert!(
            program.control_flow_violations().is_empty(),
            "{} has ill-formed control flow",
            path.display()
        );
    }
}
