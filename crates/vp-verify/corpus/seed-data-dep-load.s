; seed corpus: data-dependent load addresses — the value loaded decides
; the next address, defeating any stride pattern.
.data 3 5 1 7 2 6 0 4
  li r1, 0
  li r2, 12
  li r8, 0
top:
  andi r16, r8, 7
  ld r8, (r16)
  addi r1, r1, 1
  bne r1, r2, top
  halt
