; seed corpus: trap-free arithmetic edge cases — divide/remainder by
; zero, i64::MIN / -1, shift amounts beyond 63, NaN conversion.
  li r8, -9223372036854775808
  li r9, -1
  div r10, r8, r9
  rem r11, r8, r9
  div r12, r8, r0
  rem r13, r8, r0
  li r14, 65
  sll r15, r9, r14
  sra r15, r8, r14
  cvt.i.f f1, r0
  fdiv f2, f1, f1
  cvt.f.i r8, f2
  fmin f3, f2, f1
  fmax f4, f2, f1
  halt
