; seed corpus: directive-tagged producers routed through the hybrid —
; a stride-tagged counter, a last-value-tagged constant and an untagged
; noisy divide in one loop.
.data 17 0 0 0
  li r1, 0
  li r2, 20
  li r9, 1
top:
  addi.st r8, r1, 100
  ld.lv r10, (r0)
  muli r9, r9, 7
  div r11, r9, r8
  rem r12, r9, r2
  addi r1, r1, 1
  bne r1, r2, top
  halt
