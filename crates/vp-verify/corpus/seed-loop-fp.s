; seed corpus: FP accumulation loop with a store/load round trip —
; exercises fld/fadd/sd/ld, both branch outcomes, and fp dest events.
.data 4607182418800017408 4611686018427387904 4613937818241073152 0
  li r1, 0
  li r2, 10
top:
  fld f1, (r1)
  fadd f2, f2, f1
  fmul f3, f2, f2
  sd r1, 16(r1)
  ld r8, 16(r1)
  addi r1, r1, 1
  bne r1, r2, top
  cvt.f.i r9, f2
  halt
