; seed corpus: indirect control flow — jal linking plus a jalr through a
; register target, the only dynamically-resolved edge in the ISA.
  li r19, 4
  jal r17, next
next:
  jalr r18, r19, 0
  add r8, r17, r18
  mul r9, r8, r8
  halt
