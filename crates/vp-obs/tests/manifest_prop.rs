//! Property tests for the run-manifest schema: arbitrary manifests must
//! survive `to_json` → `parse` → `to_json` byte-identically (the format
//! is canonical and the float formatting shortest-roundtrip), and the
//! v1/v2/v3/v4 versioning rules must hold for any content.
//!
//! Generated integers stay below 2^53: JSON numbers are f64 (in the
//! in-tree parser and in every JavaScript consumer alike), so the
//! manifest contract only covers integer-exact round-trips inside the
//! f64-representable range. Real counters stay far below that (2^53 ns
//! is over 100 days of simulator wall clock).

use std::collections::BTreeMap;

use vp_obs::attribution::{AttributionPc, AttributionRun, AttributionTotals, CAUSE_ORDER};
use vp_obs::manifest::{HotStack, PhaseEntry, PhaseShare, ProfileSection};
use vp_obs::sampler::Sample;
use vp_obs::{RunManifest, SCHEMA_V1, SCHEMA_V2, SCHEMA_V3, SCHEMA_V4};
use vp_rng::{prop, Rng};

const KEYS: &[&str] = &[
    "sim.instructions",
    "sim.wall_ns",
    "trace_store.requests",
    "trace_store.memory_hits",
    "trace_store.misses",
    "predictor.accesses",
    "predictor.hits",
    "trace.dropped_events",
];

fn arb_map(rng: &mut Rng) -> BTreeMap<String, u64> {
    let n = rng.below(KEYS.len() as u64 + 1) as usize;
    let mut keys = KEYS.to_vec();
    rng.shuffle(&mut keys);
    keys.into_iter()
        .take(n)
        .map(|k| (k.to_owned(), rng.below(1 << 53)))
        .collect()
}

fn arb_sample(rng: &mut Rng) -> Sample {
    Sample {
        t_ms: rng.gen_f64() * 60_000.0,
        counters: arb_map(rng),
        gauges: arb_map(rng),
    }
}

fn arb_causes(rng: &mut Rng) -> BTreeMap<String, u64> {
    let mut causes = BTreeMap::new();
    for c in CAUSE_ORDER {
        if rng.below(2) == 0 {
            causes.insert(c.to_owned(), 1 + rng.below(1_000));
        }
    }
    causes
}

fn arb_attribution_pc(rng: &mut Rng) -> AttributionPc {
    let accesses = 1 + rng.below(1 << 20);
    let raw_correct = rng.below(accesses + 1);
    let speculated = rng.below(accesses + 1);
    AttributionPc {
        pc: rng.below(1 << 20),
        directive: ["none", "lv", "stride"][rng.below(3) as usize].to_owned(),
        accesses,
        hits: rng.below(accesses + 1),
        raw_correct,
        speculated,
        speculated_correct: rng.below(speculated + 1),
        causes: arb_causes(rng),
        profiled_accuracy: (rng.below(2) == 0).then(|| rng.gen_f64()),
        drift: (rng.below(2) == 0).then(|| rng.gen_f64() - 0.5),
    }
}

fn arb_attribution_run(rng: &mut Rng) -> AttributionRun {
    AttributionRun {
        workload: format!("wl-{}", rng.below(4)),
        config: format!("cfg-{}", rng.below(4)),
        threshold: (rng.below(2) == 0).then(|| rng.below(100) as f64 / 100.0),
        totals: AttributionTotals {
            pcs: rng.below(1 << 20),
            accesses: rng.below(1 << 40),
            hits: rng.below(1 << 40),
            raw_correct: rng.below(1 << 40),
            speculated: rng.below(1 << 40),
            speculated_correct: rng.below(1 << 40),
            causes: arb_causes(rng),
        },
        pcs: (0..rng.below(4)).map(|_| arb_attribution_pc(rng)).collect(),
    }
}

fn arb_profile(rng: &mut Rng) -> ProfileSection {
    let stacks = ["run", "run;profile", "run;predict", "run;predict;replay"];
    let hot_stacks = (0..rng.below(4))
        .map(|i| HotStack {
            stack: stacks[i as usize].to_owned(),
            count: rng.below(1 << 30),
            share: rng.gen_f64(),
        })
        .collect();
    let phases = (0..rng.below(4))
        .map(|i| PhaseShare {
            path: stacks[i as usize].replace(';', "/"),
            self_share: rng.gen_f64(),
            total_share: rng.gen_f64(),
        })
        .collect();
    ProfileSection {
        hz: 1 + rng.below(1_000),
        samples: rng.below(1 << 40),
        dropped: rng.below(1 << 20),
        threads: rng.below(64),
        hot_stacks,
        phases,
    }
}

fn arb_manifest(rng: &mut Rng) -> RunManifest {
    let phases = (0..rng.below(4))
        .map(|i| {
            let min = rng.gen_f64() * 10.0;
            let max = min + rng.gen_f64() * 100.0;
            PhaseEntry {
                path: format!("run/phase-{i}"),
                count: 1 + rng.below(9),
                total_ms: max * 2.0,
                min_ms: min,
                max_ms: max,
            }
        })
        .collect();
    let histograms = (0..rng.below(3))
        .map(|i| {
            let mut bins = [0u64; 10];
            for b in &mut bins {
                *b = rng.below(1_000);
            }
            (format!("hist-{i}"), bins)
        })
        .collect();
    let samples = (0..rng.below(4)).map(|_| arb_sample(rng)).collect();
    let attribution = (0..rng.below(3))
        .map(|_| arb_attribution_run(rng))
        .collect();
    RunManifest {
        bin: format!("bin-{}", rng.below(100)),
        args: (0..rng.below(3)).map(|i| format!("--arg-{i}")).collect(),
        wall_ms: rng.gen_f64() * 1e5,
        peak_rss_bytes: rng.below(1 << 53),
        phases,
        counters: arb_map(rng),
        gauges: arb_map(rng),
        histograms,
        samples,
        attribution,
        profile: (rng.below(2) == 0).then(|| arb_profile(rng)),
    }
}

#[test]
fn serialisation_is_canonical_for_arbitrary_manifests() {
    prop::forall("manifest round-trip", arb_manifest).check(|m| {
        let text = m.to_json();
        let back = RunManifest::parse(&text).expect("serialised manifest parses");
        assert_eq!(&back, m, "parse must reconstruct the manifest exactly");
        assert_eq!(
            back.to_json(),
            text,
            "re-serialisation must be byte-identical"
        );
    });
}

#[test]
fn schema_version_is_derived_from_content() {
    prop::forall("manifest versioning", arb_manifest).check(|m| {
        let text = m.to_json();
        if m.profile.is_some() {
            assert_eq!(m.schema(), SCHEMA_V4);
            assert!(text.contains(SCHEMA_V4));
        } else if !m.attribution.is_empty() {
            assert_eq!(m.schema(), SCHEMA_V3);
            assert!(text.contains(SCHEMA_V3));
            assert!(!text.contains("\"profile\""));
        } else if m.samples.is_empty() {
            assert_eq!(m.schema(), SCHEMA_V1);
            assert!(text.contains(SCHEMA_V1));
            assert!(!text.contains("\"samples\""));
            assert!(!text.contains("\"attribution\""));
            assert!(!text.contains("\"profile\""));
        } else {
            assert_eq!(m.schema(), SCHEMA_V2);
            assert!(text.contains(SCHEMA_V2));
            assert!(!text.contains("\"attribution\""));
            assert!(!text.contains("\"profile\""));
        }

        // Stripping the newer sections always yields the older document
        // form, which parses back with those sections empty (backward
        // compatibility for any content).
        let v3 = m.clone().with_profile(None);
        let v3_text = v3.to_json();
        assert!(!v3_text.contains(SCHEMA_V4));
        let back = RunManifest::parse(&v3_text).expect("v3 form parses");
        assert!(back.profile.is_none());
        assert_eq!(back, v3);

        let v2 = v3.with_attribution(Vec::new());
        let v2_text = v2.to_json();
        assert!(!v2_text.contains(SCHEMA_V3));
        let back = RunManifest::parse(&v2_text).expect("v2 form parses");
        assert!(back.attribution.is_empty());
        assert_eq!(back, v2);

        let v1 = v2.with_samples(Vec::new());
        let v1_text = v1.to_json();
        assert!(v1_text.contains(SCHEMA_V1));
        let back = RunManifest::parse(&v1_text).expect("v1 form parses");
        assert!(back.samples.is_empty());
        assert_eq!(back, v1);
    });
}
