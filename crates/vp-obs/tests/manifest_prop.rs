//! Property tests for the run-manifest schema: arbitrary manifests must
//! survive `to_json` → `parse` → `to_json` byte-identically (the format
//! is canonical and the float formatting shortest-roundtrip), and the
//! v1/v2 versioning rules must hold for any content.
//!
//! Generated integers stay below 2^53: JSON numbers are f64 (in the
//! in-tree parser and in every JavaScript consumer alike), so the
//! manifest contract only covers integer-exact round-trips inside the
//! f64-representable range. Real counters stay far below that (2^53 ns
//! is over 100 days of simulator wall clock).

use std::collections::BTreeMap;

use vp_obs::manifest::PhaseEntry;
use vp_obs::sampler::Sample;
use vp_obs::{RunManifest, SCHEMA_V1, SCHEMA_V2};
use vp_rng::{prop, Rng};

const KEYS: &[&str] = &[
    "sim.instructions",
    "sim.wall_ns",
    "trace_store.requests",
    "trace_store.memory_hits",
    "trace_store.misses",
    "predictor.accesses",
    "predictor.hits",
    "trace.dropped_events",
];

fn arb_map(rng: &mut Rng) -> BTreeMap<String, u64> {
    let n = rng.below(KEYS.len() as u64 + 1) as usize;
    let mut keys = KEYS.to_vec();
    rng.shuffle(&mut keys);
    keys.into_iter()
        .take(n)
        .map(|k| (k.to_owned(), rng.below(1 << 53)))
        .collect()
}

fn arb_sample(rng: &mut Rng) -> Sample {
    Sample {
        t_ms: rng.gen_f64() * 60_000.0,
        counters: arb_map(rng),
        gauges: arb_map(rng),
    }
}

fn arb_manifest(rng: &mut Rng) -> RunManifest {
    let phases = (0..rng.below(4))
        .map(|i| {
            let min = rng.gen_f64() * 10.0;
            let max = min + rng.gen_f64() * 100.0;
            PhaseEntry {
                path: format!("run/phase-{i}"),
                count: 1 + rng.below(9),
                total_ms: max * 2.0,
                min_ms: min,
                max_ms: max,
            }
        })
        .collect();
    let histograms = (0..rng.below(3))
        .map(|i| {
            let mut bins = [0u64; 10];
            for b in &mut bins {
                *b = rng.below(1_000);
            }
            (format!("hist-{i}"), bins)
        })
        .collect();
    let samples = (0..rng.below(4)).map(|_| arb_sample(rng)).collect();
    RunManifest {
        bin: format!("bin-{}", rng.below(100)),
        args: (0..rng.below(3)).map(|i| format!("--arg-{i}")).collect(),
        wall_ms: rng.gen_f64() * 1e5,
        peak_rss_bytes: rng.below(1 << 53),
        phases,
        counters: arb_map(rng),
        gauges: arb_map(rng),
        histograms,
        samples,
    }
}

#[test]
fn serialisation_is_canonical_for_arbitrary_manifests() {
    prop::forall("manifest round-trip", arb_manifest).check(|m| {
        let text = m.to_json();
        let back = RunManifest::parse(&text).expect("serialised manifest parses");
        assert_eq!(&back, m, "parse must reconstruct the manifest exactly");
        assert_eq!(
            back.to_json(),
            text,
            "re-serialisation must be byte-identical"
        );
    });
}

#[test]
fn schema_version_is_derived_from_samples() {
    prop::forall("manifest versioning", arb_manifest).check(|m| {
        let text = m.to_json();
        if m.samples.is_empty() {
            assert_eq!(m.schema(), SCHEMA_V1);
            assert!(text.contains(SCHEMA_V1));
            assert!(!text.contains("\"samples\""));
        } else {
            assert_eq!(m.schema(), SCHEMA_V2);
            assert!(text.contains(SCHEMA_V2));
        }

        // Stripping the samples always yields a v1 document that parses
        // back as a manifest with an empty series (v1 compatibility for
        // any content).
        let v1 = m.clone().with_samples(Vec::new());
        let v1_text = v1.to_json();
        assert!(v1_text.contains(SCHEMA_V1));
        let back = RunManifest::parse(&v1_text).expect("v1 form parses");
        assert!(back.samples.is_empty());
        assert_eq!(back, v1);
    });
}
