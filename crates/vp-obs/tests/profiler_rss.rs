//! The profiler tick samples current RSS into a max-gauge, so a
//! transient allocation peak — memory allocated and freed entirely
//! between process start and the final procfs read — is still visible
//! in the manifest. Own test binary: the assertion depends on this
//! process's memory profile staying small outside the deliberate spike.

use std::time::Duration;

use vp_obs::Profiler;

#[test]
#[cfg_attr(not(target_os = "linux"), ignore = "needs procfs")]
fn transient_allocation_is_captured_by_sampled_peak() {
    let before = vp_obs::rss::current_rss_bytes();
    assert!(before > 0, "procfs current-RSS must be readable");

    let profiler = Profiler::start(500);
    {
        // A deliberate ~64 MiB transient: touched so the pages are
        // resident, freed before the profiler stops.
        let spike: Vec<u8> = (0..64 * 1024 * 1024).map(|i| i as u8).collect();
        std::hint::black_box(&spike);
        std::thread::sleep(Duration::from_millis(120));
    }
    std::thread::sleep(Duration::from_millis(30));
    let profile = profiler.stop();
    drop(profile);

    let sampled_peak = vp_obs::gauge("rss.sampled_peak_bytes").get();
    assert!(
        sampled_peak >= before + 32 * 1024 * 1024,
        "the 64 MiB transient must be visible in the sampled peak \
         (before: {before}, sampled peak: {sampled_peak})"
    );
    // The sampled peak tracks the kernel's high-water mark (VmRSS is
    // maintained in batched per-thread counters, so allow it to read a
    // little past VmHWM rather than asserting strict ordering).
    let hwm = vp_obs::rss::peak_rss_bytes();
    assert!(
        sampled_peak <= hwm + 8 * 1024 * 1024,
        "sampled peak {sampled_peak} implausibly far above VmHWM {hwm}"
    );
}
