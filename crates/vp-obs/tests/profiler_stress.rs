//! Concurrency stress test for the profiler's span-stack mirrors.
//!
//! N workers open and close nested spans in a tight loop (through the
//! real `span()` guards, under an adopted base path, exactly like
//! `parallel_map` workers) while the profiler snapshots at high
//! frequency. The seqlock contract under test: **every sampled stack is
//! a prefix of the nesting chain the workers actually execute** — a
//! torn read (half of one update, half of another) would produce an
//! out-of-order or gap-containing stack, which the assertions below
//! would catch.
//!
//! Lives in its own integration-test binary because profiler arming is
//! process-sticky and the sampled stacks are process-global: spans
//! opened by unrelated tests in the same process would show up in the
//! folded output and break the prefix-validity assertion.

use std::time::{Duration, Instant};

use vp_obs::{flamegraph_svg, Profile, Profiler};

/// The exact nesting chain every worker executes, outermost first. The
/// base path ("stress") is adopted, the rest are real spans.
const CHAIN: [&str; 5] = ["stress", "level-a", "level-b", "level-c", "level-d"];

fn worker(deadline: Instant) {
    let _base = vp_obs::span::adopt(Some(CHAIN[0].to_owned()));
    while Instant::now() < deadline {
        let _a = vp_obs::span(CHAIN[1]);
        for _ in 0..8 {
            let _b = vp_obs::span(CHAIN[2]);
            {
                let _c = vp_obs::span(CHAIN[3]);
                let _d = vp_obs::span(CHAIN[4]);
                std::hint::black_box(0u64);
            }
        }
        std::thread::sleep(Duration::from_micros(50));
    }
}

fn assert_prefix_valid(profile: &Profile) {
    for stack in profile.folded.keys() {
        let frames: Vec<&str> = stack.split(';').collect();
        assert!(
            frames.len() <= CHAIN.len() && frames[..] == CHAIN[..frames.len()],
            "sampled stack `{stack}` is not a prefix of the executed chain {CHAIN:?} — torn snapshot"
        );
    }
}

#[test]
fn concurrent_nesting_never_tears_sampled_stacks() {
    let profiler = Profiler::start(2_000);
    let deadline = Instant::now() + Duration::from_millis(300);
    std::thread::scope(|s| {
        for _ in 0..8 {
            s.spawn(move || worker(deadline));
        }
    });
    let profile = profiler.stop();

    assert!(
        profile.samples > 50,
        "8 workers over 300 ms at 2 kHz must yield samples, got {}",
        profile.samples
    );
    assert!(profile.threads >= 2, "multiple workers must contribute");
    assert_prefix_valid(&profile);
    // The innermost frame is where the loop spends its time; it must
    // have been observed at least once.
    assert!(
        profile.folded.keys().any(|k| k.ends_with("level-d")),
        "the hot innermost span was never sampled: {:?}",
        profile.folded.keys().collect::<Vec<_>>()
    );

    // The folded form round-trips and renders deterministically — the
    // full export pipeline on real concurrent data.
    let text = profile.folded_text();
    let reparsed = Profile::parse_folded(&text).expect("folded text parses");
    assert_eq!(reparsed, profile.folded, "folded text round-trips");
    let svg_a = flamegraph_svg(&profile.folded, "stress");
    let svg_b = flamegraph_svg(&reparsed, "stress");
    assert_eq!(svg_a, svg_b, "same folded input, same SVG bytes");
    assert!(svg_a.starts_with("<svg "));
    assert!(svg_a.trim_end().ends_with("</svg>"));

    // A second profiler run over the same span topology still samples
    // cleanly (arming is sticky; re-registration must not corrupt).
    let profiler = Profiler::start(2_000);
    let deadline = Instant::now() + Duration::from_millis(100);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(move || worker(deadline));
        }
    });
    let second = profiler.stop();
    assert!(second.samples > 0);
    assert_prefix_valid(&second);
}

#[test]
fn manifest_section_from_concurrent_profile_is_consistent() {
    // Runs in the same process as the stress test (fine: both only open
    // CHAIN spans), producing a v4 section whose shares must partition.
    let profiler = Profiler::start(1_000);
    let deadline = Instant::now() + Duration::from_millis(150);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(move || worker(deadline));
        }
    });
    let profile = profiler.stop();
    let section = profile.to_section(10);
    assert_eq!(section.samples, profile.samples);
    let total: u64 = section.hot_stacks.iter().map(|h| h.count).sum();
    assert!(total <= profile.samples);
    for phase in &section.phases {
        assert!(phase.path.starts_with("stress"));
        assert!(
            phase.self_share <= phase.total_share + 1e-12,
            "self share can never exceed total share ({})",
            phase.path
        );
    }
    // The root phase's total share covers every sample.
    let root = section
        .phases
        .iter()
        .find(|p| p.path == "stress")
        .expect("root phase present");
    assert!((root.total_share - 1.0).abs() < 1e-9);
}
