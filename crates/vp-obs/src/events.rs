//! A bounded, non-blocking ring-buffer event stream.
//!
//! Where spans and counters answer "how much, in total?", the event
//! stream answers "*when*, on which thread?": every span begin/end and
//! every explicitly emitted pipeline event (trace-store captures,
//! evictions, spills, predictor allocation bursts, experiment
//! boundaries) is recorded with a monotonic timestamp and a small
//! per-process thread id, ready for export as a Chrome `trace_event`
//! document (see [`crate::chrome`]).
//!
//! ## Design constraints
//!
//! - **Observation-only**: recording is disabled by default; when
//!   disabled, [`emit`] is one relaxed atomic load and a branch.
//! - **Bounded memory**: the buffer holds a fixed number of slots and
//!   *drops the oldest* events when writers lap the capacity. The number
//!   of events lost is reported by [`EventBuf::drain`] and surfaced in
//!   the run manifest as the `trace.dropped_events` counter — a
//!   truncated trace is detectable, never silent.
//! - **Non-blocking writers**: the hot path is one `fetch_add` to claim
//!   a ticket plus one compare-exchange to claim the slot; there is no
//!   mutex anywhere in the stream. Writers never wait on each other: the
//!   pathological case (two writers a full lap apart racing for one
//!   slot) drops one event instead of blocking. Events are `Copy`
//!   (names are `&'static str`), so a slot write is a plain store.
//!
//! Event names are *static* strings by design: the Chrome trace format
//! reconstructs nesting from per-thread B/E pairing, so events carry the
//! leaf span name only — never a heap-allocated path — which keeps the
//! record `Copy` and the writer path allocation-free.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// What a single event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A duration opened (Chrome `ph: "B"`). Closed by a matching
    /// [`EventKind::End`] on the same thread.
    Begin,
    /// A duration closed (Chrome `ph: "E"`).
    End,
    /// A point-in-time marker (Chrome `ph: "i"`), e.g. one trace-store
    /// eviction.
    Instant,
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the process-wide event epoch (monotonic).
    pub ts_ns: u64,
    /// Small per-process thread id (assigned on each thread's first
    /// event; ids are dense, suitable as Chrome `tid`s).
    pub tid: u64,
    /// Begin / End / Instant.
    pub kind: EventKind,
    /// Static event name (a span name or a pipeline event key).
    pub name: &'static str,
    /// One free-form numeric argument (bytes, counts, …; 0 when unused).
    pub arg: u64,
}

/// Slot state: never written (and the reset state after a drain).
const EMPTY: u64 = u64::MAX;
/// Slot state: claimed by exactly one writer or reader; contents
/// indeterminate. Entered only by a successful compare-exchange from a
/// non-`BUSY` state, exited only by the claimant's store, so at most one
/// thread touches `data` at a time.
const BUSY: u64 = u64::MAX - 1;

struct Slot {
    /// `EMPTY`, `BUSY`, or `ticket * 2` (readable; the shift keeps real
    /// tickets clear of the sentinels).
    seq: AtomicU64,
    data: Cell<Event>,
}

// SAFETY: `data` is only accessed while holding the slot's `BUSY` claim:
// writers (`push`) and readers (`drain`) both transition `seq` to `BUSY`
// with a compare-exchange (Acquire) before touching `data` and release
// it with a store (Release). `BUSY` is only reachable from a non-`BUSY`
// state, so claims are mutually exclusive, and `Event` is `Copy`, so
// slot stores never run drop glue.
unsafe impl Sync for Slot {}

/// A bounded multi-producer event buffer that overwrites its oldest
/// entries when full. All operations take `&self`; nothing blocks.
pub struct EventBuf {
    slots: Box<[Slot]>,
    /// Tickets issued since the last drain; slot index is
    /// `ticket % capacity`, emission order is ticket order.
    cursor: AtomicU64,
}

impl EventBuf {
    /// A buffer holding at most `capacity` events (raised to 2).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> EventBuf {
        let capacity = capacity.max(2);
        let slots = (0..capacity)
            .map(|_| Slot {
                seq: AtomicU64::new(EMPTY),
                data: Cell::new(Event {
                    ts_ns: 0,
                    tid: 0,
                    kind: EventKind::Instant,
                    name: "",
                    arg: 0,
                }),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        EventBuf {
            slots,
            cursor: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records `event`, overwriting the oldest entry when the buffer is
    /// full. Never blocks: a writer that loses the (lap-distant) race
    /// for a slot drops its event instead of waiting; the loss is
    /// visible in [`EventBuf::drain`]'s dropped count.
    pub fn push(&self, event: Event) {
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let current = slot.seq.load(Ordering::Acquire);
        if current == BUSY {
            return; // another writer (or the drain) owns the slot
        }
        if slot
            .seq
            .compare_exchange(current, BUSY, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return; // lost the claim race; drop rather than spin
        }
        slot.data.set(event);
        slot.seq.store(ticket * 2, Ordering::Release);
    }

    /// Drains every readable event in emission order and resets the
    /// buffer. Returns the events plus the number of events dropped
    /// since the last drain (overwritten by newer events, lost to slot
    /// collisions, or in flight on another thread at drain time).
    ///
    /// Intended to run after worker threads have joined (end of run);
    /// a concurrent `push` is memory-safe but may be counted as dropped.
    pub fn drain(&self) -> (Vec<Event>, u64) {
        let issued = self.cursor.swap(0, Ordering::Relaxed);
        let mut out: Vec<(u64, Event)> = Vec::new();
        for slot in &self.slots {
            let current = slot.seq.load(Ordering::Acquire);
            if current == EMPTY || current == BUSY {
                continue;
            }
            if slot
                .seq
                .compare_exchange(current, BUSY, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            let event = slot.data.get();
            slot.seq.store(EMPTY, Ordering::Release);
            out.push((current / 2, event));
        }
        out.sort_unstable_by_key(|&(ticket, _)| ticket);
        let dropped = issued.saturating_sub(out.len() as u64);
        (out.into_iter().map(|(_, e)| e).collect(), dropped)
    }
}

// ---------------------------------------------------------------------------
// Process-global stream
// ---------------------------------------------------------------------------

/// Default capacity of the global stream (events, not bytes; an [`Event`]
/// is five words, so the default bounds the stream under 3 MiB).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<EventBuf> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: Cell<Option<u64>> = const { Cell::new(None) };
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// This thread's small event tid (assigned densely on first use).
#[must_use]
pub fn thread_id() -> u64 {
    TID.with(|cell| match cell.get() {
        Some(tid) => tid,
        None => {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            cell.set(Some(tid));
            tid
        }
    })
}

/// Nanoseconds since the process event epoch (monotonic).
#[must_use]
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Enables the global event stream with the default capacity.
pub fn enable() {
    enable_with_capacity(DEFAULT_CAPACITY);
}

/// Enables the global event stream with an explicit slot capacity.
/// Idempotent; the capacity of the first call wins.
pub fn enable_with_capacity(capacity: usize) {
    let _ = epoch(); // pin t=0 before the first event
    let _ = GLOBAL.get_or_init(|| EventBuf::with_capacity(capacity));
    ENABLED.store(true, Ordering::Release);
}

/// Whether events are currently recorded: one relaxed load, so hot
/// paths can call [`emit`] unconditionally.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Records one event into the global stream; a no-op unless [`enable`]d.
pub fn emit(kind: EventKind, name: &'static str, arg: u64) {
    if !enabled() {
        return;
    }
    if let Some(buf) = GLOBAL.get() {
        buf.push(Event {
            ts_ns: now_ns(),
            tid: thread_id(),
            kind,
            name,
            arg,
        });
    }
}

/// Records a point-in-time event (Chrome `ph: "i"`).
pub fn instant(name: &'static str, arg: u64) {
    emit(EventKind::Instant, name, arg);
}

/// Opens a Begin/End event pair around a scope, *without* touching the
/// span registry (use [`crate::span`] when aggregate timing is also
/// wanted; spans emit their own Begin/End events when the stream is
/// enabled).
#[must_use]
pub fn scope(name: &'static str) -> ScopeGuard {
    emit(EventKind::Begin, name, 0);
    ScopeGuard { name }
}

/// Emits the matching End event on drop.
#[derive(Debug)]
pub struct ScopeGuard {
    name: &'static str,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        emit(EventKind::End, self.name, 0);
    }
}

/// Disables recording and drains the global stream: events in emission
/// order plus the number of dropped events. Returns empty when the
/// stream was never enabled.
pub fn drain_global() -> (Vec<Event>, u64) {
    ENABLED.store(false, Ordering::Release);
    match GLOBAL.get() {
        Some(buf) => buf.drain(),
        None => (Vec::new(), 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, ts_ns: u64) -> Event {
        Event {
            ts_ns,
            tid: 0,
            kind: EventKind::Instant,
            name,
            arg: 0,
        }
    }

    #[test]
    fn drains_in_emission_order() {
        let buf = EventBuf::with_capacity(8);
        for i in 0..5 {
            buf.push(ev("e", i));
        }
        let (events, dropped) = buf.drain();
        assert_eq!(dropped, 0);
        assert_eq!(
            events.iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let buf = EventBuf::with_capacity(4);
        for i in 0..10 {
            buf.push(ev("e", i));
        }
        let (events, dropped) = buf.drain();
        assert_eq!(dropped, 6, "10 emissions into 4 slots drop 6");
        assert_eq!(
            events.iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "the newest events survive"
        );
    }

    #[test]
    fn drain_resets_the_buffer() {
        let buf = EventBuf::with_capacity(4);
        for i in 0..7 {
            buf.push(ev("a", i));
        }
        let _ = buf.drain();
        buf.push(ev("b", 100));
        let (events, dropped) = buf.drain();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "b");
    }

    #[test]
    fn concurrent_pushes_lose_nothing_within_capacity() {
        let buf = EventBuf::with_capacity(1 << 12);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let buf = &buf;
                s.spawn(move || {
                    for i in 0..500 {
                        buf.push(ev("c", t * 1000 + i));
                    }
                });
            }
        });
        let (events, dropped) = buf.drain();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 2000);
    }

    #[test]
    fn concurrent_overflow_completes_and_reports_drops() {
        let buf = EventBuf::with_capacity(64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let buf = &buf;
                s.spawn(move || {
                    for i in 0..5_000 {
                        buf.push(ev("hot", i));
                    }
                });
            }
        });
        let (events, dropped) = buf.drain();
        assert!(events.len() <= 64);
        assert_eq!(
            events.len() as u64 + dropped,
            20_000,
            "every emission is either retained or counted as dropped"
        );
        assert!(dropped >= 20_000 - 64);
    }

    #[test]
    fn thread_ids_are_small_and_distinct() {
        let main = thread_id();
        assert_eq!(main, thread_id(), "stable per thread");
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(main, other);
    }

    #[test]
    fn scope_guard_pairs_begin_end_on_the_global_stream() {
        enable_with_capacity(DEFAULT_CAPACITY);
        {
            let _g = scope("events-test-scope");
            instant("events-test-instant", 7);
        }
        let (events, _) = drain_global();
        let ours: Vec<&Event> = events
            .iter()
            .filter(|e| e.name.starts_with("events-test-"))
            .collect();
        let begin = ours
            .iter()
            .find(|e| e.kind == EventKind::Begin)
            .expect("begin recorded");
        let end = ours
            .iter()
            .find(|e| e.kind == EventKind::End)
            .expect("end recorded");
        let inst = ours
            .iter()
            .find(|e| e.kind == EventKind::Instant)
            .expect("instant recorded");
        assert_eq!(begin.name, "events-test-scope");
        assert_eq!(end.name, "events-test-scope");
        assert_eq!(inst.arg, 7);
        assert_eq!(begin.tid, end.tid);
        assert!(begin.ts_ns <= inst.ts_ns && inst.ts_ns <= end.ts_ns);
        assert!(!enabled(), "drain_global disables recording");
    }
}
