#![warn(missing_docs)]

//! # vp-obs — zero-dependency structured observability for provp
//!
//! The experiment pipeline (compile → profile → annotate → simulate) is
//! cached and parallel; this crate makes it *visible* without perturbing
//! it. Three layers, all dependency-free (the workspace stays
//! offline-buildable):
//!
//! 1. **Spans** ([`span`]) — hierarchical wall-clock timing on a
//!    monotonic clock, recorded into a process-global, thread-safe
//!    [`Registry`]. Worker threads spawned by `parallel_map` adopt their
//!    parent's span path (see [`span::adopt`]), so per-phase totals
//!    aggregate across threads.
//! 2. **Metrics** ([`metrics`]) — typed counters, gauges and decile
//!    histograms (reusing [`vp_stats::DecileHistogram`]) under static
//!    string keys. Counters saturate instead of wrapping; updates are
//!    relaxed atomics, cheap enough for per-run (never per-instruction)
//!    recording.
//! 3. **Exporters** ([`export`], [`manifest`]) — a human-readable table
//!    on stderr and a machine-readable JSON *run manifest* that captures
//!    per-phase wall time, cache behaviour, simulator throughput,
//!    predictor table health and peak RSS. The JSON round-trips through
//!    the in-tree hand-rolled parser in [`json`] — no serde.
//!
//! On top of the aggregates sit three time-resolved layers, all opt-in
//! and all bounded:
//!
//! - **Events** ([`events`]) — a lock-free, fixed-capacity ring buffer
//!   of span begin/end and pipeline instant events, exported as a Chrome
//!   `trace_event` JSON document ([`chrome`]) loadable in Perfetto.
//!   Disabled by default; when the ring overflows it drops the *oldest*
//!   events and reports the loss (`trace.dropped_events`).
//! - **Sampling** ([`sampler`]) — a background thread snapshotting the
//!   counter/gauge registry mid-run, embedded as the `samples` series of
//!   a `provp-run-manifest/v2` document (v1 documents stay valid and
//!   byte-identical on round-trip).
//! - **Profiling** ([`profiler`], [`flame`]) — a background thread
//!   sampling every worker's open-span stack at `--profile-hz`, folded
//!   on shutdown into collapsed stacks (`a;b;c <count>`), a
//!   zero-dependency flamegraph SVG and the `profile` section of a
//!   `provp-run-manifest/v4` document that `manifest-diff` can blame
//!   and `metrics-check` can gate.
//! - **Diffing** ([`diff`]) — attribution of wall-clock and counter
//!   deltas between two manifests, powering the `manifest-diff` binary
//!   and CI regression blame tables.
//! - **Prediction attribution** ([`attribution`]) — passive per-PC
//!   misprediction-cause and profile-drift results, embedded as the
//!   `attribution` array of a `provp-run-manifest/v3` document and
//!   rendered by the `attribution-report` binary.
//!
//! Instrumentation is observation-only by design: nothing in this crate
//! writes to stdout, and nothing feeds back into simulation results, so
//! golden experiment output stays byte-identical whether or not a
//! manifest is requested.
//!
//! ## Example
//!
//! ```
//! use vp_obs::{metrics, span};
//!
//! {
//!     let _phase = span("example/phase");
//!     metrics::counter("example.items").add(3);
//! }
//! let snap = vp_obs::global().snapshot();
//! assert_eq!(snap.counters["example.items"], 3);
//! assert_eq!(snap.spans["example/phase"].count, 1);
//! ```

pub mod attribution;
pub mod chrome;
pub mod diff;
pub mod events;
pub mod export;
pub mod flame;
pub mod json;
pub mod log;
pub mod manifest;
pub mod metrics;
pub mod profiler;
pub mod registry;
pub mod rss;
pub mod sampler;
pub mod span;

pub use attribution::{AttributionPc, AttributionRun, AttributionTotals};
pub use chrome::{chrome_trace, write_chrome_trace};
pub use diff::ManifestDiff;
pub use export::{print_table, render_table, write_manifest};
pub use flame::flamegraph_svg;
pub use log::Level;
pub use manifest::{
    HotStack, PhaseShare, ProfileSection, RunManifest, SCHEMA_V1, SCHEMA_V2, SCHEMA_V3, SCHEMA_V4,
};
pub use metrics::{counter, gauge, histogram, Counter, Gauge, Histogram};
pub use profiler::{Profile, Profiler};
pub use registry::{global, Registry, Snapshot, SpanStat};
pub use sampler::{Sample, Sampler};
pub use span::{span, SpanGuard};
