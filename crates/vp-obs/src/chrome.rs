//! Chrome `trace_event` JSON export of the event stream.
//!
//! Converts a drained [`crate::events`] buffer into the JSON object
//! format consumed by Perfetto and `chrome://tracing`: a top-level
//! `traceEvents` array of `B`/`E`/`i` phase records with microsecond
//! timestamps. Because the ring buffer drops its *oldest* events, a
//! drained stream can open mid-span — [`chrome_trace`] therefore
//! sanitises the stream per thread before export:
//!
//! - an `E` with no matching open `B` on its thread is dropped (its
//!   begin was overwritten);
//! - a `B` still open at the end of the stream gets a synthetic closing
//!   `E` at the last observed timestamp, so viewers never see an
//!   unbounded span;
//! - timestamps are already monotone per thread (each thread reads the
//!   shared monotonic clock in emission order); the exporter asserts
//!   nothing but preserves emission order, which the validity test
//!   (`all B matched by E, timestamps monotone per thread`) checks.
//!
//! The exporter never writes to stdout; [`write_chrome_trace`] uses the
//! same atomic temp-file rename as the manifest exporter.

use std::io;
use std::path::Path;

use crate::events::{Event, EventKind};
use crate::json::Json;

/// The process id recorded in every trace event (the format wants one;
/// a single provp run is always a single process).
const PID: u64 = 1;

/// Sanitises `events` (see the module docs) and renders the Chrome
/// `trace_event` JSON document, including a `provp.dropped_events`
/// metadata entry when the ring buffer lost events.
#[must_use]
pub fn chrome_trace(events: &[Event], dropped: u64) -> String {
    let mut records: Vec<Json> = Vec::with_capacity(events.len());
    // Per-tid stack depth of currently-open B events; E events beyond
    // depth 0 have no surviving begin and are dropped.
    let mut depth: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    // Per-tid stack of names still open, for synthetic closes.
    let mut open: std::collections::BTreeMap<u64, Vec<&'static str>> =
        std::collections::BTreeMap::new();
    let mut last_ts: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();

    for event in events {
        let entry = last_ts.entry(event.tid).or_insert(0);
        *entry = (*entry).max(event.ts_ns);
        match event.kind {
            EventKind::Begin => {
                *depth.entry(event.tid).or_insert(0) += 1;
                open.entry(event.tid).or_default().push(event.name);
                records.push(phase_record("B", event));
            }
            EventKind::End => {
                let d = depth.entry(event.tid).or_insert(0);
                if *d == 0 {
                    continue; // orphan: begin was overwritten
                }
                *d -= 1;
                open.entry(event.tid).or_default().pop();
                records.push(phase_record("E", event));
            }
            EventKind::Instant => {
                let mut r = phase_record("i", event);
                if let Json::Obj(members) = &mut r {
                    members.push(("s".to_owned(), Json::from("t")));
                }
                records.push(r);
            }
        }
    }

    // Synthetically close anything still open, innermost first.
    for (tid, names) in &open {
        let ts = last_ts.get(tid).copied().unwrap_or(0);
        for name in names.iter().rev() {
            records.push(phase_record(
                "E",
                &Event {
                    ts_ns: ts,
                    tid: *tid,
                    kind: EventKind::End,
                    name,
                    arg: 0,
                },
            ));
        }
    }

    let mut doc = Json::obj()
        .with("traceEvents", Json::Arr(records))
        .with("displayTimeUnit", "ms");
    if dropped > 0 {
        if let Json::Obj(members) = &mut doc {
            members.push(("provp.dropped_events".to_owned(), Json::from(dropped)));
        }
    }
    doc.to_string()
}

fn phase_record(ph: &str, event: &Event) -> Json {
    Json::obj()
        .with("name", event.name)
        .with("ph", ph)
        // Chrome wants microseconds; keep sub-us precision as a float.
        .with("ts", event.ts_ns as f64 / 1_000.0)
        .with("pid", PID)
        .with("tid", event.tid)
        .with("args", Json::obj().with("value", event.arg))
}

/// Writes the Chrome trace for `events` to `path` (atomically, via a
/// sibling temp file) with a trailing newline.
///
/// # Errors
///
/// Propagates filesystem failures; the temp file is removed when the
/// final rename fails.
pub fn write_chrome_trace(events: &[Event], dropped: u64, path: &Path) -> io::Result<()> {
    let mut text = chrome_trace(events, dropped);
    text.push('\n');
    crate::export::write_atomically(path, &text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(kind: EventKind, name: &'static str, tid: u64, ts_ns: u64) -> Event {
        Event {
            ts_ns,
            tid,
            kind,
            name,
            arg: 0,
        }
    }

    /// Asserts the Chrome-format validity contract on a rendered trace:
    /// every `B` is matched by a later `E` on the same tid, and
    /// timestamps are monotone per tid. Returns the parsed records.
    fn assert_valid(doc: &str) -> Vec<Json> {
        let parsed = Json::parse(doc).expect("trace is valid JSON");
        let records = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array")
            .to_vec();
        let mut depth: std::collections::BTreeMap<u64, i64> = std::collections::BTreeMap::new();
        let mut last: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
        for r in &records {
            let tid = r.get("tid").and_then(Json::as_u64).expect("tid");
            let ts = r.get("ts").and_then(Json::as_f64).expect("ts");
            let ph = r.get("ph").and_then(Json::as_str).expect("ph");
            assert!(r.get("name").and_then(Json::as_str).is_some(), "name");
            assert!(r.get("pid").and_then(Json::as_u64).is_some(), "pid");
            let prev = last.entry(tid).or_insert(0.0);
            assert!(ts >= *prev, "timestamps must be monotone per thread");
            *prev = ts;
            match ph {
                "B" => *depth.entry(tid).or_insert(0) += 1,
                "E" => {
                    let d = depth.entry(tid).or_insert(0);
                    assert!(*d > 0, "E without open B on tid {tid}");
                    *d -= 1;
                }
                "i" => {}
                other => panic!("unexpected phase {other}"),
            }
        }
        for (tid, d) in depth {
            assert_eq!(d, 0, "unclosed B on tid {tid}");
        }
        records
    }

    #[test]
    fn well_formed_stream_round_trips() {
        let events = [
            e(EventKind::Begin, "run", 0, 100),
            e(EventKind::Begin, "profile", 0, 200),
            e(EventKind::Instant, "evict", 1, 250),
            e(EventKind::End, "profile", 0, 300),
            e(EventKind::End, "run", 0, 400),
        ];
        let doc = chrome_trace(&events, 0);
        let records = assert_valid(&doc);
        assert_eq!(records.len(), 5);
        assert!((records[0].get("ts").unwrap().as_f64().unwrap() - 0.1).abs() < 1e-12);
        assert!(!doc.contains("provp.dropped_events"));
    }

    #[test]
    fn orphan_ends_are_dropped() {
        // The ring dropped the B for the outer span; its E must not leak.
        let events = [
            e(EventKind::End, "lost-outer", 0, 100),
            e(EventKind::Begin, "inner", 0, 150),
            e(EventKind::End, "inner", 0, 200),
        ];
        let records = assert_valid(&chrome_trace(&events, 3));
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].get("name").unwrap().as_str(), Some("inner"));
    }

    #[test]
    fn unclosed_begins_get_synthetic_ends() {
        let events = [
            e(EventKind::Begin, "outer", 0, 100),
            e(EventKind::Begin, "inner", 0, 200),
            e(EventKind::Instant, "tick", 0, 300),
        ];
        let records = assert_valid(&chrome_trace(&events, 0));
        // 3 originals + 2 synthetic closes, innermost first.
        assert_eq!(records.len(), 5);
        assert_eq!(records[3].get("name").unwrap().as_str(), Some("inner"));
        assert_eq!(records[4].get("name").unwrap().as_str(), Some("outer"));
        // Synthetic closes land at the last observed timestamp.
        assert!((records[4].get("ts").unwrap().as_f64().unwrap() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn dropped_count_is_recorded_as_metadata() {
        let doc = chrome_trace(&[], 42);
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(
            parsed.get("provp.dropped_events").and_then(Json::as_u64),
            Some(42)
        );
    }

    #[test]
    fn write_is_atomic_with_trailing_newline() -> Result<(), Box<dyn std::error::Error>> {
        let path = std::env::temp_dir().join(format!("vp-obs-chrome-{}.json", std::process::id()));
        let events = [e(EventKind::Begin, "x", 0, 1), e(EventKind::End, "x", 0, 2)];
        write_chrome_trace(&events, 0, &path)?;
        let text = std::fs::read_to_string(&path)?;
        assert!(text.ends_with('\n'));
        assert_valid(text.trim_end());
        std::fs::remove_file(&path)?;
        Ok(())
    }
}
