//! Typed counters, gauges and histograms under static string keys.
//!
//! Handles are cheap clones of `Arc`ed cells in the global
//! [`crate::Registry`]; look one up once per phase (never per simulated
//! instruction) and update it with relaxed atomics.
//!
//! Counters **saturate** at `u64::MAX` instead of wrapping: a counter
//! that has been incremented past the end reads as `u64::MAX`, which is
//! unambiguous in an exported manifest, whereas a wrapped counter would
//! silently masquerade as a small value.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use vp_stats::DecileHistogram;

use crate::registry::global;

/// A monotonic, saturating counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`, saturating at `u64::MAX`.
    pub fn add(&self, n: u64) {
        if n == 0 {
            return;
        }
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_add(n);
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Publishes an externally-tracked monotone total, raising the
    /// counter to `v` if `v` is larger and never lowering it.
    ///
    /// Use this when a subsystem keeps its own internally-consistent
    /// totals (e.g. the trace store's stats block, snapshotted under one
    /// lock) and republishing must be *idempotent*: the mid-run sampler
    /// hook and the end-of-run exporter can both publish the same totals
    /// without double counting, which `add` would do.
    pub fn record_absolute(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value gauge with a monotonic-max helper.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the gauge.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (peak tracking).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A decile histogram over percentage values in `[0, 100]`, backed by
/// [`vp_stats::DecileHistogram`] (the paper's ten intervals).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<Mutex<DecileHistogram>>);

impl Histogram {
    /// Records one percentage sample (clamped to `[0, 100]`).
    pub fn record(&self, pct: f64) {
        self.0.lock().expect("histogram poisoned").add(pct);
    }

    /// A copy of the current bins.
    #[must_use]
    pub fn get(&self) -> DecileHistogram {
        *self.0.lock().expect("histogram poisoned")
    }
}

/// The global counter named `key` (registered on first use).
#[must_use]
pub fn counter(key: &'static str) -> Counter {
    Counter(global().counter_cell(key))
}

/// The global gauge named `key`.
#[must_use]
pub fn gauge(key: &'static str) -> Gauge {
    Gauge(global().gauge_cell(key))
}

/// The global histogram named `key`.
#[must_use]
pub fn histogram(key: &'static str) -> Histogram {
    Histogram(global().histogram_cell(key))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_handles() {
        counter("metrics-test-acc").add(2);
        counter("metrics-test-acc").inc();
        assert_eq!(counter("metrics-test-acc").get(), 3);
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let c = counter("metrics-test-sat");
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX, "must saturate, not wrap");
        c.inc();
        assert_eq!(c.get(), u64::MAX, "stays pinned at the ceiling");
    }

    #[test]
    fn record_absolute_is_idempotent_and_monotone() {
        let c = counter("metrics-test-abs");
        c.record_absolute(10);
        c.record_absolute(10);
        assert_eq!(c.get(), 10, "republishing the same total is a no-op");
        c.record_absolute(7);
        assert_eq!(c.get(), 10, "never lowers");
        c.record_absolute(25);
        assert_eq!(c.get(), 25);
    }

    #[test]
    fn gauge_set_and_peak() {
        let g = gauge("metrics-test-gauge");
        g.set(10);
        g.set_max(5);
        assert_eq!(g.get(), 10, "set_max never lowers");
        g.set_max(20);
        assert_eq!(g.get(), 20);
        g.set(1);
        assert_eq!(g.get(), 1, "set overwrites");
    }

    #[test]
    fn histogram_uses_paper_bins() {
        let h = histogram("metrics-test-hist");
        h.record(5.0);
        h.record(95.0);
        let bins = h.get();
        assert_eq!(bins.count(0), 1);
        assert_eq!(bins.count(9), 1);
    }

    #[test]
    fn concurrent_counter_adds_are_lossless() {
        let c = counter("metrics-test-conc");
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        counter("metrics-test-conc").inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}
