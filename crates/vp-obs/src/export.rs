//! Exporters: human-readable stderr table and JSON manifest file.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::manifest::RunManifest;

/// Renders the manifest as a human-readable report (the stderr
/// exporter).
#[must_use]
pub fn render_table(manifest: &RunManifest) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== {} run report ({} args, {:.1} ms wall, peak RSS {:.1} MiB) ==",
        manifest.bin,
        manifest.args.len(),
        manifest.wall_ms,
        manifest.peak_rss_bytes as f64 / (1024.0 * 1024.0),
    );

    if !manifest.phases.is_empty() {
        let _ = writeln!(out, "-- phases --");
        let width = manifest
            .phases
            .iter()
            .map(|p| p.path.len())
            .max()
            .unwrap_or(0)
            .max(5);
        let _ = writeln!(
            out,
            "{:width$}  {:>7}  {:>12}  {:>12}  {:>12}",
            "phase", "count", "total ms", "min ms", "max ms"
        );
        for p in &manifest.phases {
            let _ = writeln!(
                out,
                "{:width$}  {:>7}  {:>12.2}  {:>12.2}  {:>12.2}",
                p.path, p.count, p.total_ms, p.min_ms, p.max_ms
            );
        }
    }

    if !manifest.counters.is_empty() {
        let _ = writeln!(out, "-- counters --");
        let width = manifest.counters.keys().map(String::len).max().unwrap_or(0);
        for (k, v) in &manifest.counters {
            let _ = writeln!(out, "{k:width$}  {v}");
        }
    }

    if !manifest.gauges.is_empty() {
        let _ = writeln!(out, "-- gauges --");
        let width = manifest.gauges.keys().map(String::len).max().unwrap_or(0);
        for (k, v) in &manifest.gauges {
            let _ = writeln!(out, "{k:width$}  {v}");
        }
    }

    for name in manifest.histograms.keys() {
        let _ = writeln!(out, "-- histogram {name} --");
        if let Some(h) = manifest.histogram(name) {
            let _ = write!(out, "{h}");
        }
    }

    let _ = writeln!(out, "-- derived --");
    let _ = writeln!(
        out,
        "sim throughput      {:.0} instr/s",
        manifest.sim_instr_per_sec()
    );
    let _ = writeln!(
        out,
        "trace-store hit rate {:.1}%",
        100.0 * manifest.trace_hit_rate()
    );

    // Data-loss footer: any recorded event/sample loss must be visible
    // without opening the manifest (a zero is printed too, so "tracing
    // was on and nothing was lost" is distinguishable from "not traced").
    let dropped = manifest.counters.get("trace.dropped_events");
    let discarded = manifest.counters.get("sampler.discarded_samples");
    let prof_dropped = manifest.counters.get("profiler.dropped_samples");
    if dropped.is_some() || discarded.is_some() || prof_dropped.is_some() {
        let _ = writeln!(out, "-- data loss --");
        if let Some(n) = dropped {
            let _ = writeln!(
                out,
                "trace events dropped  {n}{}",
                if *n > 0 {
                    " (ring overflowed; oldest events were lost)"
                } else {
                    ""
                }
            );
        }
        if let Some(n) = discarded {
            let _ = writeln!(
                out,
                "samples discarded     {n}{}",
                if *n > 0 {
                    " (sampler at capacity; raise --sample-ms)"
                } else {
                    ""
                }
            );
        }
        if let Some(n) = prof_dropped {
            let _ = writeln!(
                out,
                "profile samples lost  {n}{}",
                if *n > 0 {
                    " (profiler ring overflowed; oldest samples were lost)"
                } else {
                    ""
                }
            );
        }
    }
    out
}

/// Prints the human-readable report to stderr (never stdout).
pub fn print_table(manifest: &RunManifest) {
    eprint!("{}", render_table(manifest));
}

/// Writes the JSON manifest to `path` (atomically, via a sibling
/// temp file) with a trailing newline.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_manifest(manifest: &RunManifest, path: &Path) -> io::Result<()> {
    let mut text = manifest.to_json();
    text.push('\n');
    write_atomically(path, &text)
}

/// Writes `text` to `path` via a sibling `*.json.tmp` file followed by
/// an atomic rename, so a crash mid-write never leaves a truncated
/// document behind. Shared by the manifest and Chrome-trace exporters.
///
/// # Errors
///
/// Propagates filesystem failures; the temp file is removed when the
/// final rename fails.
pub fn write_atomically(path: &Path, text: &str) -> io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, text)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::PhaseEntry;

    fn manifest() -> RunManifest {
        let mut m = RunManifest {
            bin: "demo".to_owned(),
            wall_ms: 12.0,
            ..RunManifest::default()
        };
        m.phases.push(PhaseEntry {
            path: "demo/work".to_owned(),
            count: 2,
            total_ms: 10.0,
            min_ms: 4.0,
            max_ms: 6.0,
        });
        m.counters.insert("sim.instructions".to_owned(), 100);
        m.counters.insert("sim.wall_ns".to_owned(), 1_000_000_000);
        m
    }

    #[test]
    fn table_lists_phases_counters_and_derived_rates() {
        let table = render_table(&manifest());
        assert!(table.contains("demo run report"));
        assert!(table.contains("demo/work"));
        assert!(table.contains("sim.instructions"));
        assert!(table.contains("100 instr/s"));
        // No event/sampler counters recorded: no data-loss footer.
        assert!(!table.contains("-- data loss --"));
    }

    #[test]
    fn table_footer_surfaces_event_and_sample_loss() {
        let mut m = manifest();
        m.counters.insert("trace.dropped_events".to_owned(), 12);
        m.counters.insert("sampler.discarded_samples".to_owned(), 0);
        let table = render_table(&m);
        assert!(table.contains("-- data loss --"));
        assert!(table.contains("trace events dropped  12 (ring overflowed"));
        // A recorded zero is shown plainly, without the loss hint.
        assert!(table.contains("samples discarded     0\n"));
        // No profiler counter recorded: that loss channel is absent.
        assert!(!table.contains("profile samples lost"));
    }

    #[test]
    fn table_footer_surfaces_profiler_loss() {
        let mut m = manifest();
        m.counters.insert("profiler.dropped_samples".to_owned(), 7);
        let table = render_table(&m);
        assert!(table.contains("-- data loss --"));
        assert!(table.contains("profile samples lost  7 (profiler ring overflowed"));
        let mut m = manifest();
        m.counters.insert("profiler.dropped_samples".to_owned(), 0);
        assert!(render_table(&m).contains("profile samples lost  0\n"));
    }

    #[test]
    fn write_manifest_round_trips_via_file() -> Result<(), Box<dyn std::error::Error>> {
        let path = std::env::temp_dir().join(format!("vp-obs-export-{}.json", std::process::id()));
        write_manifest(&manifest(), &path)?;
        let text = std::fs::read_to_string(&path)?;
        assert!(text.ends_with('\n'));
        let back = RunManifest::parse(text.trim_end())?;
        assert_eq!(back, manifest());
        std::fs::remove_file(&path)?;
        Ok(())
    }

    #[test]
    fn atomic_write_leaves_no_temp_file_on_success() -> Result<(), Box<dyn std::error::Error>> {
        let path =
            std::env::temp_dir().join(format!("vp-obs-export-clean-{}.json", std::process::id()));
        write_atomically(&path, "{}\n")?;
        assert!(!path.with_extension("json.tmp").exists());
        std::fs::remove_file(&path)?;
        Ok(())
    }

    #[test]
    fn atomic_write_cleans_temp_file_when_rename_fails() -> Result<(), Box<dyn std::error::Error>> {
        // The sibling temp file is writable, but the final rename fails
        // because the target path is an existing *directory*; the
        // helper must clean the temp file up before reporting the error.
        let dir = std::env::temp_dir().join(format!("vp-obs-export-fail-{}", std::process::id()));
        let target = dir.join("out.json");
        std::fs::create_dir_all(&target)?;
        let err = write_atomically(&target, "{}\n");
        assert!(err.is_err(), "renaming a file onto a directory must fail");
        assert!(
            !target.with_extension("json.tmp").exists(),
            "temp file must be cleaned up on failure"
        );
        std::fs::remove_dir_all(&dir)?;
        Ok(())
    }
}
