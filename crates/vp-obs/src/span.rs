//! Hierarchical wall-clock spans on a monotonic clock.
//!
//! A [`span`] opens a timing scope; dropping the guard records the
//! elapsed time into the global [`crate::Registry`] under a
//! `/`-separated path built from the stack of open spans on the current
//! thread. Worker threads (e.g. `parallel_map` workers) call [`adopt`]
//! with the spawning thread's [`current_path`], so their timings land
//! under the same hierarchical path and aggregate with the parent's.
//!
//! Spans are intended for *phase* granularity (a whole profiling run, a
//! whole experiment) — the cost per span is two monotonic clock reads
//! and one short mutex hold, which is invisible at that granularity and
//! must never be paid per simulated instruction.

use std::cell::RefCell;
use std::time::Instant;

use crate::registry::global;

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    static BASE: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// The hierarchical path of the innermost open span on this thread
/// (including any adopted base path), or `None` outside all spans.
#[must_use]
pub fn current_path() -> Option<String> {
    let stack = STACK.with(|s| s.borrow().join("/"));
    let base = BASE.with(|b| b.borrow().clone());
    match (base, stack.is_empty()) {
        (None, true) => None,
        (None, false) => Some(stack),
        (Some(b), true) => Some(b),
        (Some(b), false) => Some(format!("{b}/{stack}")),
    }
}

/// Opens a span named `name` nested under the spans currently open on
/// this thread. Recorded into the global registry when dropped, and —
/// when the event stream is enabled — bracketed by Begin/End events
/// carrying the leaf name (the Chrome trace reconstructs nesting from
/// per-thread B/E pairing, so the full path is never materialised).
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    STACK.with(|s| s.borrow_mut().push(name));
    crate::profiler::stack_push(name);
    crate::events::emit(crate::events::EventKind::Begin, name, 0);
    SpanGuard {
        name,
        started: Instant::now(),
    }
}

/// An open span; records its wall time on drop.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    started: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        // The End event carries the elapsed nanoseconds as its argument.
        crate::events::emit(crate::events::EventKind::End, self.name, ns);
        let path = current_path().unwrap_or_default();
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
        crate::profiler::stack_pop();
        if !path.is_empty() {
            global().record_span(&path, ns);
        }
    }
}

/// Adopts `path` as this thread's base span path until the guard drops.
///
/// Used by worker pools: capture [`current_path`] on the spawning
/// thread, then `adopt` it inside each worker so spans opened by the
/// worker aggregate under the parent's hierarchy.
#[must_use]
pub fn adopt(path: Option<String>) -> AdoptGuard {
    crate::profiler::stack_set_base(path.as_deref());
    let previous = BASE.with(|b| b.replace(path));
    AdoptGuard { previous }
}

/// Restores the previous base path on drop.
#[derive(Debug)]
pub struct AdoptGuard {
    previous: Option<String>,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        crate::profiler::stack_set_base(previous.as_deref());
        BASE.with(|b| {
            *b.borrow_mut() = previous;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_slash_paths() {
        {
            let _a = span("span-test-outer");
            assert_eq!(current_path().as_deref(), Some("span-test-outer"));
            {
                let _b = span("inner");
                assert_eq!(current_path().as_deref(), Some("span-test-outer/inner"));
            }
        }
        let snap = global().snapshot();
        assert_eq!(snap.spans["span-test-outer"].count, 1);
        assert_eq!(snap.spans["span-test-outer/inner"].count, 1);
        assert!(
            snap.spans["span-test-outer"].total_ns >= snap.spans["span-test-outer/inner"].total_ns
        );
    }

    #[test]
    fn adopt_prefixes_worker_spans() {
        let base = {
            let _parent = span("span-test-adopt");
            current_path()
        };
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let _g = adopt(base.clone());
                    let _w = span("work");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                });
            }
        });
        let snap = global().snapshot();
        assert_eq!(snap.spans["span-test-adopt/work"].count, 2);
        assert!(snap.spans["span-test-adopt/work"].min_ns > 0);
    }

    #[test]
    fn adopt_restores_previous_base() {
        let g = adopt(Some("span-test-base".to_owned()));
        assert_eq!(current_path().as_deref(), Some("span-test-base"));
        drop(g);
        // Back outside any span: no base, empty stack.
        let stackless = STACK.with(|s| s.borrow().is_empty());
        if stackless {
            assert_eq!(BASE.with(|b| b.borrow().clone()), None);
        }
    }
}
