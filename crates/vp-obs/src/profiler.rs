//! In-process sampling profiler over the span stack.
//!
//! Aggregate spans say how long each phase took *in total*; the sampling
//! profiler says **where wall time concentrates** while costing nothing
//! when it is off. Every thread that opens a [`crate::span`] maintains a
//! lock-free, seqlock-published mirror of its open-span stack
//! ([`ThreadStack`]); a background [`Profiler`] thread periodically
//! snapshots every registered thread's stack into bounded per-thread
//! ring buffers (drop-oldest, accounted by the
//! `profiler.dropped_samples` counter — the same loss discipline as the
//! event ring) and, on [`Profiler::stop`], folds the samples into
//! collapsed-stack form (`a;b;c <count>`), ready for the flamegraph
//! renderer ([`crate::flame`]) and the manifest's `profile` section.
//!
//! ## Cost contract
//!
//! - **Off (the default):** span guards pay one relaxed atomic load and
//!   a branch per push/pop — stack publishing only arms when the first
//!   [`Profiler`] starts, and stays armed for the process lifetime so a
//!   mid-run stop/start can never tear stack prefixes.
//! - **On:** push/pop additionally write the thread-owned seqlock'd
//!   frame array (a handful of relaxed stores on the thread's own cache
//!   line) and intern the (static) span name once per push. Nothing in
//!   the hot path blocks on the profiler thread.
//! - **Snapshots are observation-only:** a reader that races a writer
//!   retries a few times and then *skips* the sample (counted by
//!   `profiler.torn_snapshots`), so a published stack is always a
//!   prefix-valid span path — never a torn mixture of two states.
//!
//! Worker threads spawned by `parallel_map` adopt their parent's span
//! path ([`crate::span::adopt`]); the adopted base is published to the
//! mirror too, so worker samples fold under the same hierarchical stack
//! a serial run would produce.
//!
//! Arm the profiler (*start it*) before opening the spans it should
//! see: spans already open when the first profiler starts are invisible
//! to the mirror (their pops are ignored by saturation, so later
//! samples stay prefix-valid, merely shallower). The bench harness
//! starts the profiler before its root span, which satisfies this.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::sampler::StopSignal;

/// Maximum stack depth mirrored per thread; deeper nesting is recorded
/// truncated (the true depth keeps counting, so pops stay balanced and
/// samples of an over-deep stack are skipped rather than mis-attributed).
pub const MAX_FRAMES: usize = 32;

// ---------------------------------------------------------------------------
// Static-name interning
// ---------------------------------------------------------------------------
//
// Frames are mirrored as small integer ids instead of `&'static str`
// fat pointers: a torn or stale id resolves to `None` (the sample is
// skipped) instead of becoming an out-of-thin-air reference, so the
// whole mirror stays safe Rust.

struct Interner {
    /// Keyed by the *address* of the static string (distinct literals
    /// with equal text fold to the same name at fold time anyway).
    ids: HashMap<(usize, usize), u32>,
    names: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            ids: HashMap::new(),
            names: Vec::new(),
        })
    })
}

fn intern(name: &'static str) -> u32 {
    let mut i = interner().lock().expect("name interner poisoned");
    let key = (name.as_ptr() as usize, name.len());
    if let Some(&id) = i.ids.get(&key) {
        return id;
    }
    let id = u32::try_from(i.names.len()).expect("interned name count fits u32");
    i.names.push(name);
    i.ids.insert(key, id);
    id
}

fn resolve(id: u32) -> Option<&'static str> {
    interner()
        .lock()
        .expect("name interner poisoned")
        .names
        .get(id as usize)
        .copied()
}

// ---------------------------------------------------------------------------
// Per-thread mirrored stack (single writer, seqlock-validated readers)
// ---------------------------------------------------------------------------

/// One thread's published span stack. Written only by the owning thread
/// (push/pop/adopt), read by profiler threads through the seqlock.
pub(crate) struct ThreadStack {
    /// Event-stream thread id (shared with Chrome-trace `tid`s).
    tid: u64,
    /// Seqlock version: odd while the owner is mid-update.
    version: AtomicU64,
    /// True stack depth (may exceed [`MAX_FRAMES`]).
    depth: AtomicUsize,
    /// Interned frame ids, valid up to `min(depth, MAX_FRAMES)`.
    frames: [AtomicU32; MAX_FRAMES],
    /// Adopted base path (slash-separated), for `parallel_map` workers.
    base: Mutex<Option<String>>,
    /// Set when the owning thread exits; the profiler prunes dead stacks.
    dead: AtomicBool,
}

impl ThreadStack {
    fn new(tid: u64) -> ThreadStack {
        ThreadStack {
            tid,
            version: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
            frames: std::array::from_fn(|_| AtomicU32::new(0)),
            base: Mutex::new(None),
            dead: AtomicBool::new(false),
        }
    }

    /// Begin an owner-side update (version goes odd).
    fn begin_write(&self) -> u64 {
        let v = self.version.load(Ordering::Relaxed);
        self.version.store(v.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        v
    }

    /// Finish an owner-side update (version returns even).
    fn end_write(&self, v: u64) {
        self.version.store(v.wrapping_add(2), Ordering::Release);
    }

    fn push(&self, id: u32) {
        let v = self.begin_write();
        let d = self.depth.load(Ordering::Relaxed);
        if d < MAX_FRAMES {
            self.frames[d].store(id, Ordering::Relaxed);
        }
        self.depth.store(d + 1, Ordering::Relaxed);
        self.end_write(v);
    }

    fn pop(&self) {
        let v = self.begin_write();
        let d = self.depth.load(Ordering::Relaxed);
        // Saturate: a pop of a span pushed before the profiler armed has
        // no mirrored frame to remove.
        self.depth.store(d.saturating_sub(1), Ordering::Relaxed);
        self.end_write(v);
    }

    fn set_base(&self, base: Option<String>) {
        let v = self.begin_write();
        *self.base.lock().expect("thread-stack base poisoned") = base;
        self.end_write(v);
    }

    /// Seqlock read: a consistent `(base, frame ids)` snapshot, or
    /// `None` after a few racing retries (the caller skips the sample)
    /// or when the stack was deeper than [`MAX_FRAMES`] at sample time.
    fn sample(&self) -> Option<(Option<String>, Vec<u32>)> {
        for _ in 0..4 {
            let v1 = self.version.load(Ordering::Acquire);
            if v1 % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let base = self
                .base
                .lock()
                .expect("thread-stack base poisoned")
                .clone();
            let depth = self.depth.load(Ordering::Relaxed);
            let ids: Vec<u32> = self.frames[..depth.min(MAX_FRAMES)]
                .iter()
                .map(|f| f.load(Ordering::Relaxed))
                .collect();
            fence(Ordering::Acquire);
            if self.version.load(Ordering::Relaxed) != v1 {
                continue;
            }
            if depth > MAX_FRAMES {
                crate::counter("profiler.truncated_snapshots").inc();
                return None;
            }
            return Some((base, ids));
        }
        crate::counter("profiler.torn_snapshots").inc();
        None
    }
}

// ---------------------------------------------------------------------------
// Registry of live thread stacks + span-guard hooks
// ---------------------------------------------------------------------------

/// Armed once the first [`Profiler`] starts; never disarmed (see the
/// module docs for why stickiness matters).
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn threads() -> &'static Mutex<Vec<Arc<ThreadStack>>> {
    static THREADS: OnceLock<Mutex<Vec<Arc<ThreadStack>>>> = OnceLock::new();
    THREADS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Marks the stack dead when the owning thread's TLS is torn down.
struct Registration {
    stack: Arc<ThreadStack>,
}

impl Drop for Registration {
    fn drop(&mut self) {
        self.stack.dead.store(true, Ordering::Release);
    }
}

thread_local! {
    static MY_STACK: std::cell::RefCell<Option<Registration>> =
        const { std::cell::RefCell::new(None) };
}

fn with_stack(f: impl FnOnce(&ThreadStack)) {
    // `try_with` so span guards dropping during thread teardown (after
    // TLS destruction) degrade to a no-op instead of aborting.
    let _ = MY_STACK.try_with(|cell| {
        let mut slot = cell.borrow_mut();
        let reg = slot.get_or_insert_with(|| {
            let stack = Arc::new(ThreadStack::new(crate::events::thread_id()));
            threads()
                .lock()
                .expect("thread-stack registry poisoned")
                .push(Arc::clone(&stack));
            Registration { stack }
        });
        f(&reg.stack);
    });
}

/// Span-guard hook: mirrors a span push. One relaxed load when no
/// profiler ever armed.
pub(crate) fn stack_push(name: &'static str) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    let id = intern(name);
    with_stack(|s| s.push(id));
}

/// Span-guard hook: mirrors a span pop.
pub(crate) fn stack_pop() {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    with_stack(ThreadStack::pop);
}

/// Adopt hook: publishes (or restores) a worker's base span path.
pub(crate) fn stack_set_base(base: Option<&str>) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    let owned = base.map(str::to_owned);
    with_stack(|s| s.set_base(owned.clone()));
}

// ---------------------------------------------------------------------------
// The profiler thread
// ---------------------------------------------------------------------------

/// One recorded stack sample (interned base + frame ids).
struct SampleRec {
    /// Id into the run-local base-path interner.
    base: Option<u32>,
    frames: Vec<u32>,
}

/// A bounded drop-oldest ring of one thread's samples.
struct Ring {
    buf: VecDeque<SampleRec>,
}

/// The folded result of one profiling run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Profile {
    /// Sampling cadence the run was started with, Hz.
    pub hz: u32,
    /// Samples retained (the folded counts sum to this).
    pub samples: u64,
    /// Samples discarded because a per-thread ring overflowed
    /// (drop-oldest; also published as `profiler.dropped_samples`).
    pub dropped: u64,
    /// Threads that contributed at least one sample.
    pub threads: u64,
    /// Collapsed stacks: `a;b;c` → sample count.
    pub folded: BTreeMap<String, u64>,
}

impl Profile {
    /// Renders the canonical collapsed-stack text form, one
    /// `stack count` line per distinct stack, sorted by stack.
    #[must_use]
    pub fn folded_text(&self) -> String {
        let mut out = String::new();
        for (stack, count) in &self.folded {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses collapsed-stack text back into a folded map (duplicate
    /// stacks accumulate). The inverse of [`Profile::folded_text`].
    ///
    /// # Errors
    ///
    /// Rejects lines without a trailing integer count, naming the line.
    pub fn parse_folded(text: &str) -> Result<BTreeMap<String, u64>, String> {
        let mut folded = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let (stack, count) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("line {}: no sample count in `{line}`", i + 1))?;
            let count: u64 = count
                .parse()
                .map_err(|_| format!("line {}: bad sample count `{count}`", i + 1))?;
            *folded.entry(stack.to_owned()).or_insert(0) += count;
        }
        Ok(folded)
    }

    /// Builds the manifest's `profile` section: the `top_k` hottest
    /// stacks (0 = all) plus per-phase self/total sample shares derived
    /// from the folded stacks (a phase's *total* share counts every
    /// sample whose stack passes through it; its *self* share counts
    /// samples whose stack ends exactly there).
    #[must_use]
    pub fn to_section(&self, top_k: usize) -> crate::manifest::ProfileSection {
        let total: u64 = self.folded.values().sum();
        let share = |count: u64| {
            if total == 0 {
                0.0
            } else {
                count as f64 / total as f64
            }
        };
        let mut hot: Vec<(&String, &u64)> = self.folded.iter().collect();
        hot.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        let take = if top_k == 0 { hot.len() } else { top_k };
        let hot_stacks = hot
            .into_iter()
            .take(take)
            .map(|(stack, &count)| crate::manifest::HotStack {
                stack: stack.clone(),
                count,
                share: share(count),
            })
            .collect();

        let mut self_counts: BTreeMap<String, u64> = BTreeMap::new();
        let mut total_counts: BTreeMap<String, u64> = BTreeMap::new();
        for (stack, &count) in &self.folded {
            let mut path = String::new();
            for frame in stack.split(';') {
                if !path.is_empty() {
                    path.push('/');
                }
                path.push_str(frame);
                *total_counts.entry(path.clone()).or_insert(0) += count;
            }
            *self_counts.entry(path).or_insert(0) += count;
        }
        let phases = total_counts
            .iter()
            .map(|(path, &tc)| crate::manifest::PhaseShare {
                path: path.clone(),
                self_share: share(self_counts.get(path).copied().unwrap_or(0)),
                total_share: share(tc),
            })
            .collect();

        crate::manifest::ProfileSection {
            hz: u64::from(self.hz),
            samples: self.samples,
            dropped: self.dropped,
            threads: self.threads,
            hot_stacks,
            phases,
        }
    }
}

/// A background span-stack sampler; collect the folded profile with
/// [`Profiler::stop`].
pub struct Profiler {
    shared: Arc<StopSignal>,
    handle: Option<JoinHandle<Profile>>,
}

impl Profiler {
    /// Default per-thread ring capacity (samples, not bytes): ~11
    /// minutes of samples per thread at 99 Hz before drop-oldest.
    pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

    /// Starts sampling every registered thread's span stack at `hz`
    /// (clamped to ≥ 1). Arms stack mirroring process-wide; start the
    /// profiler *before* opening the spans it should attribute.
    #[must_use]
    pub fn start(hz: u32) -> Profiler {
        Profiler::start_with_capacity(hz, Profiler::DEFAULT_RING_CAPACITY)
    }

    /// Like [`Profiler::start`] with an explicit per-thread ring
    /// capacity (tests use tiny rings to exercise drop-oldest).
    #[must_use]
    pub fn start_with_capacity(hz: u32, ring_capacity: usize) -> Profiler {
        let hz = hz.max(1);
        let ring_capacity = ring_capacity.max(1);
        ACTIVE.store(true, Ordering::Release);
        let shared = StopSignal::new();
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("vp-obs-profiler".to_owned())
            .spawn(move || run(&thread_shared, hz, ring_capacity))
            .expect("spawn profiler thread");
        Profiler {
            shared,
            handle: Some(handle),
        }
    }

    /// Stops the profiler and folds the retained samples.
    #[must_use]
    pub fn stop(mut self) -> Profile {
        self.shared.signal();
        match self.handle.take() {
            Some(handle) => handle.join().unwrap_or_default(),
            None => Profile::default(),
        }
    }
}

impl Drop for Profiler {
    fn drop(&mut self) {
        // A dropped (not `stop`ped) profiler must not leave its thread
        // running; the samples are discarded.
        self.shared.signal();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn run(shared: &StopSignal, hz: u32, ring_capacity: usize) -> Profile {
    let interval = Duration::from_secs_f64(1.0 / f64::from(hz));
    let mut rings: BTreeMap<u64, Ring> = BTreeMap::new();
    let mut bases: Vec<String> = Vec::new();
    let mut base_ids: HashMap<String, u32> = HashMap::new();
    let mut dropped = 0u64;
    loop {
        tick(
            &mut rings,
            &mut bases,
            &mut base_ids,
            ring_capacity,
            &mut dropped,
        );
        if shared.wait(interval) {
            break;
        }
    }
    fold(hz, rings, &bases, dropped)
}

/// One profiler tick: snapshot every live stack, record non-empty
/// samples, track the loss counters and the sampled-RSS max gauge.
fn tick(
    rings: &mut BTreeMap<u64, Ring>,
    bases: &mut Vec<String>,
    base_ids: &mut HashMap<String, u32>,
    ring_capacity: usize,
    dropped: &mut u64,
) {
    let stacks: Vec<Arc<ThreadStack>> = {
        let mut list = threads().lock().expect("thread-stack registry poisoned");
        // Dead threads can never publish again; their retained samples
        // already live in this profiler's rings.
        list.retain(|s| !s.dead.load(Ordering::Acquire));
        list.clone()
    };
    for stack in stacks {
        let Some((base, frames)) = stack.sample() else {
            continue;
        };
        if base.is_none() && frames.is_empty() {
            continue; // outside all spans: nothing to attribute
        }
        let base = base.map(|b| match base_ids.get(&b) {
            Some(&id) => id,
            None => {
                let id = u32::try_from(bases.len()).expect("base count fits u32");
                base_ids.insert(b.clone(), id);
                bases.push(b);
                id
            }
        });
        let ring = rings.entry(stack.tid).or_insert_with(|| Ring {
            buf: VecDeque::new(),
        });
        if ring.buf.len() >= ring_capacity {
            ring.buf.pop_front();
            *dropped += 1;
            crate::counter("profiler.dropped_samples").inc();
        }
        ring.buf.push_back(SampleRec { base, frames });
    }
    crate::counter("profiler.ticks").inc();
    // Satellite of the same tick: the true transient RSS peak, not just
    // the end-of-run procfs high-water mark.
    let rss = crate::rss::current_rss_bytes();
    if rss > 0 {
        crate::gauge("rss.sampled_peak_bytes").set_max(rss);
    }
}

fn fold(hz: u32, rings: BTreeMap<u64, Ring>, bases: &[String], dropped: u64) -> Profile {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    let mut samples = 0u64;
    let mut threads_seen = 0u64;
    for ring in rings.values() {
        let mut contributed = false;
        'rec: for rec in &ring.buf {
            let mut key = String::new();
            if let Some(b) = rec.base {
                // Base paths are slash-separated span hierarchies;
                // re-split so folded frames stay one span per frame.
                for frame in bases[b as usize].split('/') {
                    if !key.is_empty() {
                        key.push(';');
                    }
                    key.push_str(frame);
                }
            }
            for &id in &rec.frames {
                let Some(name) = resolve(id) else {
                    continue 'rec; // torn id: skip, never mis-attribute
                };
                if !key.is_empty() {
                    key.push(';');
                }
                key.push_str(name);
            }
            if key.is_empty() {
                continue;
            }
            *folded.entry(key).or_insert(0) += 1;
            samples += 1;
            contributed = true;
        }
        if contributed {
            threads_seen += 1;
        }
    }
    // Publish the retained/dropped totals so the manifest and the
    // --metrics-table footer can report the loss channel even when the
    // folded output goes unexported.
    crate::counter("profiler.samples").record_absolute(samples);
    crate::counter("profiler.dropped_samples").record_absolute(dropped);
    Profile {
        hz,
        samples,
        dropped,
        threads: threads_seen,
        folded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_is_stable_and_total() {
        let a = intern("profiler-test-a");
        let b = intern("profiler-test-b");
        assert_ne!(a, b);
        assert_eq!(intern("profiler-test-a"), a, "same static str, same id");
        assert_eq!(resolve(a), Some("profiler-test-a"));
        assert_eq!(resolve(u32::MAX), None, "unknown ids resolve to None");
    }

    #[test]
    fn thread_stack_push_pop_sample() {
        let s = ThreadStack::new(7);
        let a = intern("ts-a");
        let b = intern("ts-b");
        s.push(a);
        s.push(b);
        let (base, frames) = s.sample().expect("uncontended sample succeeds");
        assert_eq!(base, None);
        assert_eq!(frames, vec![a, b]);
        s.pop();
        let (_, frames) = s.sample().unwrap();
        assert_eq!(frames, vec![a]);
        s.pop();
        s.pop(); // over-pop saturates
        let (_, frames) = s.sample().unwrap();
        assert!(frames.is_empty());
    }

    #[test]
    fn thread_stack_base_is_published() {
        let s = ThreadStack::new(8);
        s.set_base(Some("root/worker".to_owned()));
        let (base, _) = s.sample().unwrap();
        assert_eq!(base.as_deref(), Some("root/worker"));
        s.set_base(None);
        let (base, _) = s.sample().unwrap();
        assert_eq!(base, None);
    }

    #[test]
    fn overdeep_stacks_are_skipped_not_torn() {
        let s = ThreadStack::new(9);
        let id = intern("ts-deep");
        for _ in 0..MAX_FRAMES + 3 {
            s.push(id);
        }
        assert!(s.sample().is_none(), "over-deep stacks yield no sample");
        for _ in 0..3 {
            s.pop();
        }
        let (_, frames) = s.sample().expect("back within bounds");
        assert_eq!(frames.len(), MAX_FRAMES);
    }

    #[test]
    fn folded_text_round_trips() {
        let mut folded = BTreeMap::new();
        folded.insert("a;b;c".to_owned(), 41u64);
        folded.insert("a;b".to_owned(), 7u64);
        let p = Profile {
            hz: 99,
            samples: 48,
            dropped: 0,
            threads: 1,
            folded: folded.clone(),
        };
        let text = p.folded_text();
        assert_eq!(text, "a;b 7\na;b;c 41\n");
        assert_eq!(Profile::parse_folded(&text).unwrap(), folded);
        assert!(Profile::parse_folded("no-count-line").is_err());
        assert!(Profile::parse_folded("a;b x").is_err());
        // Blank lines are tolerated; duplicates accumulate.
        let dup = Profile::parse_folded("a 1\n\na 2\n").unwrap();
        assert_eq!(dup["a"], 3);
    }

    #[test]
    fn section_shares_partition_correctly() {
        let mut folded = BTreeMap::new();
        folded.insert("run;predict".to_owned(), 30u64);
        folded.insert("run;profile".to_owned(), 60u64);
        folded.insert("run".to_owned(), 10u64);
        let p = Profile {
            hz: 99,
            samples: 100,
            dropped: 2,
            threads: 3,
            folded,
        };
        let s = p.to_section(2);
        assert_eq!(s.hz, 99);
        assert_eq!(s.samples, 100);
        assert_eq!(s.dropped, 2);
        assert_eq!(s.threads, 3);
        assert_eq!(s.hot_stacks.len(), 2, "top-k truncates");
        assert_eq!(s.hot_stacks[0].stack, "run;profile");
        assert!((s.hot_stacks[0].share - 0.6).abs() < 1e-12);

        let phase = |path: &str| s.phases.iter().find(|p| p.path == path).unwrap();
        assert!((phase("run").total_share - 1.0).abs() < 1e-12);
        assert!((phase("run").self_share - 0.1).abs() < 1e-12);
        assert!((phase("run/profile").total_share - 0.6).abs() < 1e-12);
        assert!((phase("run/profile").self_share - 0.6).abs() < 1e-12);
        assert!((phase("run/predict").total_share - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_has_empty_section() {
        let s = Profile::default().to_section(10);
        assert_eq!(s.samples, 0);
        assert!(s.hot_stacks.is_empty());
        assert!(s.phases.is_empty());
    }

    #[test]
    fn profiler_samples_spans_end_to_end() {
        let profiler = Profiler::start(500);
        {
            let _g = crate::span("profiler-e2e-root");
            std::thread::sleep(Duration::from_millis(40));
        }
        let profile = profiler.stop();
        assert!(profile.samples > 0, "a 40 ms span at 500 Hz must be seen");
        assert!(
            profile
                .folded
                .keys()
                .any(|k| k.split(';').next_back() == Some("profiler-e2e-root")),
            "the open span is attributed: {:?}",
            profile.folded
        );
    }

    #[test]
    fn tiny_rings_drop_oldest_and_count() {
        let profiler = Profiler::start_with_capacity(1000, 2);
        {
            let _g = crate::span("profiler-drop-test");
            std::thread::sleep(Duration::from_millis(50));
        }
        let profile = profiler.stop();
        assert!(
            profile.dropped > 0,
            "a 2-slot ring at 1 kHz over 50 ms must drop"
        );
        // Retained samples are bounded by the ring, per thread.
        assert!(profile.samples <= 2 * profile.threads.max(1));
        assert!(crate::counter("profiler.dropped_samples").get() >= profile.dropped);
    }
}
