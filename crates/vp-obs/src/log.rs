//! A tiny level-filtered stderr logger (`PROVP_LOG=warn|info|debug`).
//!
//! Bench binaries route all their human-facing diagnostics through this
//! helper instead of hand-rolled `eprintln!`, so one environment
//! variable controls verbosity everywhere. Errors always print; the
//! default level is `warn`. Nothing here ever writes to stdout —
//! experiment output stays byte-identical at any log level.

use std::fmt;
use std::sync::OnceLock;

/// Log severities, in decreasing order of urgency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or user-visible failures; always printed.
    Error,
    /// Suspicious-but-survivable conditions (the default threshold).
    Warn,
    /// Progress and summary notes.
    Info,
    /// Per-phase detail.
    Debug,
}

impl Level {
    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }

    fn tag(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// The threshold parsed from `PROVP_LOG` (cached; default `warn`).
#[must_use]
pub fn threshold() -> Level {
    static THRESHOLD: OnceLock<Level> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        std::env::var("PROVP_LOG")
            .ok()
            .as_deref()
            .and_then(Level::parse)
            .unwrap_or(Level::Warn)
    })
}

/// Whether messages at `level` currently print.
#[must_use]
pub fn enabled(level: Level) -> bool {
    level <= threshold()
}

/// Writes one line to stderr if `level` passes the filter. Prefer the
/// [`crate::obs_error!`] family of macros.
pub fn log(level: Level, args: fmt::Arguments<'_>) {
    if enabled(level) {
        eprintln!("provp[{}]: {args}", level.tag());
    }
}

/// Logs at error level (always printed).
#[macro_export]
macro_rules! obs_error {
    ($($arg:tt)*) => {
        $crate::log::log($crate::Level::Error, format_args!($($arg)*))
    };
}

/// Logs at warn level (printed by default).
#[macro_export]
macro_rules! obs_warn {
    ($($arg:tt)*) => {
        $crate::log::log($crate::Level::Warn, format_args!($($arg)*))
    };
}

/// Logs at info level (needs `PROVP_LOG=info` or `debug`).
#[macro_export]
macro_rules! obs_info {
    ($($arg:tt)*) => {
        $crate::log::log($crate::Level::Info, format_args!($($arg)*))
    };
}

/// Logs at debug level (needs `PROVP_LOG=debug`).
#[macro_export]
macro_rules! obs_debug {
    ($($arg:tt)*) => {
        $crate::log::log($crate::Level::Debug, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_urgency() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn parses_common_spellings() {
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse(" debug "), Some(Level::Debug));
        assert_eq!(Level::parse("trace"), Some(Level::Debug));
        assert_eq!(Level::parse("nope"), None);
    }

    #[test]
    fn errors_always_pass_the_filter() {
        // Threshold is at least Error regardless of PROVP_LOG.
        assert!(enabled(Level::Error));
    }

    #[test]
    fn macros_compile_with_formatting() {
        // Smoke test: goes to stderr only, never panics.
        crate::obs_debug!("value = {}", 42);
        crate::obs_info!("phase {} done", "profile");
    }
}
