//! Mid-run time-series sampling of the metric registry.
//!
//! End-of-run aggregates say *that* throughput regressed; a time series
//! says *when*. The [`Sampler`] runs one background thread that
//! periodically copies every counter and gauge out of a [`Registry`]
//! into a [`Sample`], producing the `samples` array embedded in a
//! `provp-run-manifest/v2` document.
//!
//! Sampling follows the same rules as the rest of the layer: it never
//! writes to stdout, never feeds back into experiment results, and is
//! bounded — at most [`Sampler::MAX_SAMPLES`] snapshots are retained
//! (the sampler stops recording and warns once beyond that, rather than
//! growing without limit).
//!
//! A *pre-sample hook* runs before every snapshot on the sampler
//! thread. The bench harness uses it to publish the trace store's
//! internally-consistent counter block (`TraceStore::stats` snapshots
//! all fields under one lock) into the registry right before the copy,
//! so invariants like `memory_hits + misses == requests` hold in every
//! sample, not just at end of run. Sample timestamps share the event
//! stream's monotonic epoch ([`crate::events::now_ns`]), so a sample at
//! `t_ms` lines up with the Chrome trace at the same instant.

use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::Registry;

/// One point-in-time copy of the counter/gauge registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Sample {
    /// Milliseconds since the process event epoch (monotonic; shared
    /// with Chrome-trace timestamps).
    pub t_ms: f64,
    /// Every counter at sample time.
    pub counters: BTreeMap<String, u64>,
    /// Every gauge at sample time.
    pub gauges: BTreeMap<String, u64>,
}

/// Stop/wake plumbing shared by every background observation thread
/// (the [`Sampler`] here and the [`crate::profiler::Profiler`]): a
/// mutex-guarded stop flag plus a condvar so `stop()` interrupts the
/// inter-tick sleep immediately instead of waiting out the interval.
pub(crate) struct StopSignal {
    stop: Mutex<bool>,
    wake: Condvar,
}

impl StopSignal {
    pub(crate) fn new() -> Arc<StopSignal> {
        Arc::new(StopSignal {
            stop: Mutex::new(false),
            wake: Condvar::new(),
        })
    }

    /// Requests shutdown and wakes any thread sleeping in [`wait`].
    ///
    /// [`wait`]: StopSignal::wait
    pub(crate) fn signal(&self) {
        if let Ok(mut stop) = self.stop.lock() {
            *stop = true;
        }
        self.wake.notify_all();
    }

    /// Sleeps for up to `interval` (woken early by [`signal`]); returns
    /// `true` once shutdown has been requested.
    ///
    /// [`signal`]: StopSignal::signal
    pub(crate) fn wait(&self, interval: Duration) -> bool {
        let stop = self.stop.lock().expect("stop flag poisoned");
        if *stop {
            return true;
        }
        let (stop, _) = self
            .wake
            .wait_timeout(stop, interval)
            .expect("stop flag poisoned");
        *stop
    }
}

/// A background registry sampler; collect the series with
/// [`Sampler::stop`].
pub struct Sampler {
    shared: Arc<StopSignal>,
    handle: Option<JoinHandle<Vec<Sample>>>,
}

impl Sampler {
    /// Upper bound on retained samples (~2 hours at 1 s cadence); the
    /// sampler stops recording beyond it so manifests stay bounded.
    pub const MAX_SAMPLES: usize = 7_200;

    /// Starts sampling `registry` every `interval`. One sample is taken
    /// immediately and one more at [`Sampler::stop`], so a series always
    /// holds at least two points.
    #[must_use]
    pub fn start(interval: Duration, registry: &'static Registry) -> Sampler {
        Sampler::start_with_hook(interval, registry, || {})
    }

    /// Like [`Sampler::start`], with `hook` invoked on the sampler
    /// thread immediately before every snapshot (see the module docs).
    #[must_use]
    pub fn start_with_hook(
        interval: Duration,
        registry: &'static Registry,
        hook: impl Fn() + Send + 'static,
    ) -> Sampler {
        let interval = interval.max(Duration::from_millis(1));
        let shared = StopSignal::new();
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("vp-obs-sampler".to_owned())
            .spawn(move || run(&thread_shared, interval, registry, &hook))
            .expect("spawn sampler thread");
        Sampler {
            shared,
            handle: Some(handle),
        }
    }

    /// Stops the sampler, takes one final sample and returns the series.
    #[must_use]
    pub fn stop(mut self) -> Vec<Sample> {
        self.shared.signal();
        match self.handle.take() {
            Some(handle) => handle.join().unwrap_or_default(),
            None => Vec::new(),
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        // A dropped (not `stop`ped) sampler must not leave a thread
        // spinning; the series is discarded.
        self.shared.signal();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn run(
    shared: &StopSignal,
    interval: Duration,
    registry: &Registry,
    hook: &(impl Fn() + ?Sized),
) -> Vec<Sample> {
    let mut samples = Vec::new();
    let mut warned = false;
    loop {
        if samples.len() < Sampler::MAX_SAMPLES {
            samples.push(take_sample(registry, hook));
        } else {
            // Count every discard so the loss is visible in the manifest
            // and the --metrics-table footer, not only in the log.
            registry
                .counter_cell("sampler.discarded_samples")
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if !warned {
                warned = true;
                crate::obs_warn!(
                    "sampler reached {} samples; later samples are discarded \
                     (raise --sample-ms to cover longer runs)",
                    Sampler::MAX_SAMPLES
                );
            }
        }
        if shared.wait(interval) {
            break;
        }
    }
    // Final sample so the series always covers the end of the run (and
    // a short run still yields >= 2 points).
    if samples.len() < Sampler::MAX_SAMPLES + 1 {
        samples.push(take_sample(registry, hook));
    }
    samples
}

fn take_sample(registry: &Registry, hook: &(impl Fn() + ?Sized)) -> Sample {
    hook();
    let snapshot = registry.snapshot();
    Sample {
        t_ms: crate::events::now_ns() as f64 / 1e6,
        counters: snapshot.counters,
        gauges: snapshot.gauges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn leaked_registry() -> &'static Registry {
        Box::leak(Box::new(Registry::new()))
    }

    #[test]
    fn collects_at_least_first_and_final_samples() {
        let registry = leaked_registry();
        registry.counter_cell("s.work").store(3, Ordering::Relaxed);
        let sampler = Sampler::start(Duration::from_millis(5), registry);
        std::thread::sleep(Duration::from_millis(20));
        let samples = sampler.stop();
        assert!(samples.len() >= 2, "got {}", samples.len());
        for s in &samples {
            assert_eq!(s.counters.get("s.work"), Some(&3));
        }
        for pair in samples.windows(2) {
            assert!(pair[0].t_ms <= pair[1].t_ms, "series must be monotone");
        }
    }

    #[test]
    fn immediate_stop_still_yields_two_points() {
        let registry = leaked_registry();
        let sampler = Sampler::start(Duration::from_millis(500), registry);
        let samples = sampler.stop();
        assert!(samples.len() >= 2);
    }

    #[test]
    fn hook_runs_before_every_snapshot() {
        let registry = leaked_registry();
        let cell = registry.counter_cell("s.hooked");
        let calls = Arc::new(AtomicU64::new(0));
        let hook_calls = Arc::clone(&calls);
        let sampler = Sampler::start_with_hook(Duration::from_millis(5), registry, move || {
            let n = hook_calls.fetch_add(1, Ordering::Relaxed) + 1;
            cell.store(n, Ordering::Relaxed);
        });
        std::thread::sleep(Duration::from_millis(25));
        let samples = sampler.stop();
        assert_eq!(calls.load(Ordering::Relaxed), samples.len() as u64);
        // Each sample observes the value its own hook published: the
        // hook happens-before the snapshot on the sampler thread.
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(s.counters.get("s.hooked"), Some(&(i as u64 + 1)));
        }
    }

    #[test]
    fn dropped_sampler_shuts_down_cleanly() {
        let registry = leaked_registry();
        let sampler = Sampler::start(Duration::from_millis(1), registry);
        drop(sampler); // must join, not detach or hang
    }
}
