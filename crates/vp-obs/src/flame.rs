//! Zero-dependency flamegraph SVG renderer for collapsed stacks.
//!
//! Consumes the folded form the profiler produces (`a;b;c <count>`,
//! see [`crate::profiler::Profile`]) and emits a self-contained SVG —
//! no JavaScript, no external fonts, no network fetches — where each
//! frame's width is proportional to its sample share. Layout is an
//! *icicle* (root on top, callees growing downward) and fully
//! deterministic: siblings are ordered lexicographically and colors are
//! derived from an FNV hash of the frame name, so the same folded input
//! renders byte-identical SVG on every run and every machine — the
//! property the determinism test and CI artifact diffing rely on.
//!
//! Hover text is carried by `<title>` elements (native browser
//! tooltips), so the rendered file stays inert data.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Rendered image width in CSS pixels.
const WIDTH: f64 = 1200.0;
/// Height of one stack frame in CSS pixels.
const FRAME_HEIGHT: f64 = 18.0;
/// Vertical space above the first frame row (the title band).
const HEADER: f64 = 28.0;
/// Frames narrower than this are still drawn (shares stay truthful)
/// but get no text label.
const MIN_LABEL_WIDTH: f64 = 35.0;
/// Approximate glyph width of the embedded monospace font, used to
/// truncate labels to their frame.
const GLYPH_WIDTH: f64 = 7.2;

/// One node of the stack trie.
#[derive(Default)]
struct Node {
    total: u64,
    children: BTreeMap<String, Node>,
}

impl Node {
    fn depth(&self) -> usize {
        1 + self.children.values().map(Node::depth).max().unwrap_or(0)
    }
}

fn build_trie(folded: &BTreeMap<String, u64>) -> Node {
    let mut root = Node::default();
    for (stack, &count) in folded {
        root.total += count;
        let mut node = &mut root;
        for frame in stack.split(';') {
            node = node.children.entry(frame.to_owned()).or_default();
            node.total += count;
        }
    }
    root
}

/// FNV-1a over the frame name; the basis of the deterministic palette.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Warm flame palette (red-orange-yellow band), keyed by name only —
/// the same span name gets the same color in every graph.
fn color(name: &str) -> String {
    let h = fnv1a(name);
    let r = 205 + (h % 50) as u8;
    let g = 80 + ((h >> 8) % 130) as u8;
    let b = ((h >> 16) % 55) as u8;
    format!("rgb({r},{g},{b})")
}

/// Escapes text for XML attribute and element content.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Shortest-float-ish coordinate formatting: two decimals, trailing
/// zeros trimmed, so output bytes are stable across platforms.
fn px(v: f64) -> String {
    let s = format!("{v:.2}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() {
        "0".to_owned()
    } else {
        s.to_owned()
    }
}

fn render_node(
    out: &mut String,
    name: &str,
    path: &str,
    node: &Node,
    grand_total: u64,
    x: f64,
    depth: usize,
) {
    let width = WIDTH * node.total as f64 / grand_total as f64;
    let y = HEADER + depth as f64 * FRAME_HEIGHT;
    let share = 100.0 * node.total as f64 / grand_total as f64;
    let _ = writeln!(
        out,
        "<g><title>{} — {} samples ({:.2}%)</title>",
        escape(path),
        node.total,
        share
    );
    let _ = writeln!(
        out,
        r#"<rect x="{}" y="{}" width="{}" height="{}" fill="{}" rx="1" stroke="white" stroke-width="0.5"/>"#,
        px(x),
        px(y),
        px(width),
        px(FRAME_HEIGHT - 1.0),
        color(name),
    );
    if width >= MIN_LABEL_WIDTH {
        let max_chars = ((width - 6.0) / GLYPH_WIDTH) as usize;
        let label: String = if name.chars().count() > max_chars {
            name.chars()
                .take(max_chars.saturating_sub(2))
                .collect::<String>()
                + ".."
        } else {
            name.to_owned()
        };
        let _ = writeln!(
            out,
            r##"<text x="{}" y="{}" font-size="11" font-family="monospace" fill="#1a1a1a">{}</text>"##,
            px(x + 3.0),
            px(y + FRAME_HEIGHT - 6.0),
            escape(&label),
        );
    }
    out.push_str("</g>\n");
    let mut child_x = x;
    for (child_name, child) in &node.children {
        let child_path = format!("{path};{child_name}");
        render_node(
            out,
            child_name,
            &child_path,
            child,
            grand_total,
            child_x,
            depth + 1,
        );
        child_x += WIDTH * child.total as f64 / grand_total as f64;
    }
}

/// Renders collapsed stacks as a deterministic, self-contained
/// flamegraph SVG (icicle layout; frame width ∝ sample share). The
/// same `folded` map and `title` produce byte-identical output.
#[must_use]
pub fn flamegraph_svg(folded: &BTreeMap<String, u64>, title: &str) -> String {
    let root = build_trie(folded);
    let depth = if root.children.is_empty() {
        1
    } else {
        root.depth() - 1 // the synthetic root row is not drawn
    };
    let height = HEADER + depth as f64 * FRAME_HEIGHT + 10.0;
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}">"#,
        px(WIDTH),
        px(height),
        px(WIDTH),
        px(height),
    );
    let _ = writeln!(
        out,
        r##"<rect x="0" y="0" width="{}" height="{}" fill="#f8f8f8"/>"##,
        px(WIDTH),
        px(height),
    );
    let _ = writeln!(
        out,
        r##"<text x="6" y="18" font-size="13" font-family="monospace" fill="#1a1a1a">{} — {} samples</text>"##,
        escape(title),
        root.total,
    );
    if root.total == 0 {
        let _ = writeln!(
            out,
            r##"<text x="6" y="{}" font-size="11" font-family="monospace" fill="#777777">(no samples)</text>"##,
            px(HEADER + 12.0),
        );
    } else {
        let mut x = 0.0;
        for (name, child) in &root.children {
            render_node(&mut out, name, name, child, root.total, x, 0);
            x += WIDTH * child.total as f64 / root.total as f64;
        }
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn folded() -> BTreeMap<String, u64> {
        let mut f = BTreeMap::new();
        f.insert("run;profile".to_owned(), 60u64);
        f.insert("run;predict;replay".to_owned(), 30u64);
        f.insert("run".to_owned(), 10u64);
        f
    }

    #[test]
    fn renders_every_frame_with_proportional_width() {
        let svg = flamegraph_svg(&folded(), "test");
        assert!(svg.starts_with("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
        // `run` spans the full canvas (total share 1.0)...
        assert!(svg.contains(r#"width="1200""#), "{svg}");
        // ...`profile` takes 60%, `predict`/`replay` 30%.
        assert!(svg.contains(r#"width="720""#));
        assert!(svg.contains(r#"width="360""#));
        assert!(svg.contains("run;profile — 60 samples (60.00%)"));
        assert!(svg.contains("run;predict;replay — 30 samples (30.00%)"));
    }

    #[test]
    fn output_is_deterministic() {
        let a = flamegraph_svg(&folded(), "test");
        let b = flamegraph_svg(&folded(), "test");
        assert_eq!(a, b);
    }

    #[test]
    fn escapes_xml_metacharacters() {
        let mut f = BTreeMap::new();
        f.insert("a<b>&\"c\"".to_owned(), 5u64);
        let svg = flamegraph_svg(&f, "ti<tle>&");
        assert!(svg.contains("ti&lt;tle&gt;&amp;"));
        assert!(svg.contains("a&lt;b&gt;&amp;&quot;c&quot;"));
        assert!(!svg.contains("<b>"), "raw metacharacters must not leak");
    }

    #[test]
    fn empty_input_renders_placeholder() {
        let svg = flamegraph_svg(&BTreeMap::new(), "empty");
        assert!(svg.contains("(no samples)"));
        assert!(svg.contains("0 samples"));
    }

    #[test]
    fn colors_are_stable_per_name() {
        assert_eq!(color("predict"), color("predict"));
        assert_ne!(color("predict"), color("profile"));
    }

    #[test]
    fn px_trims_trailing_zeros() {
        assert_eq!(px(1200.0), "1200");
        assert_eq!(px(719.999), "720");
        assert_eq!(px(0.5), "0.5");
        assert_eq!(px(0.0), "0");
    }
}
