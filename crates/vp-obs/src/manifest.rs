//! The machine-readable JSON run manifest.
//!
//! One manifest describes one bench-binary invocation: which binary ran
//! with which arguments, how wall-clock distributed over phases
//! (spans), every counter/gauge/histogram the run recorded, derived
//! rates (simulator throughput, cache hit rate) and peak RSS. Schema is
//! documented in `OBSERVABILITY.md`; the `schema` field is versioned so
//! downstream tooling can detect incompatible changes.
//!
//! Manifests round-trip through the serde-free parser in [`crate::json`]
//! — [`RunManifest::to_json`] then [`RunManifest::parse`] reproduces the
//! manifest exactly (modulo float formatting, which is shortest-roundtrip
//! and therefore lossless).
//!
//! ## Versioning
//!
//! Four schema versions exist and the parser accepts all of them:
//!
//! - **v1** (PR 2) — end-of-run aggregates only.
//! - **v2** — adds the `samples` array: a mid-run time series of the
//!   counter/gauge registry collected by [`crate::sampler`].
//! - **v3** — adds the `attribution` array: per-PC misprediction
//!   attribution and profile drift per predictor replay (see
//!   [`crate::attribution`]).
//! - **v4** — adds the `profile` object: folded span-stack samples from
//!   the sampling profiler (see [`crate::profiler`]) — top-K hot stacks
//!   and per-phase self/total sample shares.
//!
//! The version is *derived from content*: a manifest with a profile
//! section serialises as v4, one with attribution runs (but no profile)
//! as v3, one with samples as v2, and one with none of them as v1 — so
//! documents produced before any layer existed re-serialise
//! byte-identically, older documents parse as manifests with the newer
//! sections empty, and version-aware tooling (`manifest-diff`,
//! `metrics-check`, `attribution-report`) transparently reads any of
//! the four.

use std::collections::BTreeMap;

use vp_stats::DecileHistogram;

use crate::attribution::AttributionRun;
use crate::json::{Json, ParseError};
use crate::registry::Snapshot;
use crate::sampler::Sample;

/// The v1 schema identifier (aggregates only).
pub const SCHEMA_V1: &str = "provp-run-manifest/v1";

/// The v2 schema identifier (aggregates plus the `samples` time series).
pub const SCHEMA_V2: &str = "provp-run-manifest/v2";

/// The v3 schema identifier (v2 plus the `attribution` array).
pub const SCHEMA_V3: &str = "provp-run-manifest/v3";

/// The v4 schema identifier (v3 plus the `profile` section).
pub const SCHEMA_V4: &str = "provp-run-manifest/v4";

/// The oldest schema identifier (kept for downstream code spelled
/// against PR 2's single-version constant).
pub const SCHEMA: &str = SCHEMA_V1;

/// Wall-time aggregate of one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseEntry {
    /// Hierarchical span path (`repro-all/table_2_1`).
    pub path: String,
    /// Completed instances.
    pub count: u64,
    /// Total wall time in milliseconds.
    pub total_ms: f64,
    /// Shortest instance, milliseconds.
    pub min_ms: f64,
    /// Longest instance, milliseconds.
    pub max_ms: f64,
}

/// One hot collapsed stack in the manifest's `profile` section.
#[derive(Debug, Clone, PartialEq)]
pub struct HotStack {
    /// Collapsed stack (`a;b;c`), one span name per frame.
    pub stack: String,
    /// Samples whose stack was exactly this.
    pub count: u64,
    /// `count` over all retained samples, in `[0, 1]`.
    pub share: f64,
}

/// One span path's sample shares in the `profile` section.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseShare {
    /// Slash-separated span path (same namespace as [`PhaseEntry`]).
    pub path: String,
    /// Share of samples whose stack ends exactly at this path.
    pub self_share: f64,
    /// Share of samples whose stack passes through this path (a
    /// prefix's total share is >= the sum of its children's).
    pub total_share: f64,
}

/// The folded sampling-profiler results embedded in a v4 manifest.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileSection {
    /// Sampling cadence, Hz.
    pub hz: u64,
    /// Samples retained across all threads.
    pub samples: u64,
    /// Samples lost to ring overflow (drop-oldest).
    pub dropped: u64,
    /// Threads that contributed at least one sample.
    pub threads: u64,
    /// Hottest collapsed stacks, descending by count (top-K truncated).
    pub hot_stacks: Vec<HotStack>,
    /// Per-phase self/total sample shares, sorted by path.
    pub phases: Vec<PhaseShare>,
}

impl ProfileSection {
    /// Serialises the section (the `profile` value of a v4 document).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let hot_stacks: Vec<Json> = self
            .hot_stacks
            .iter()
            .map(|h| {
                Json::obj()
                    .with("stack", h.stack.as_str())
                    .with("count", h.count)
                    .with("share", h.share)
            })
            .collect();
        let phases: Vec<Json> = self
            .phases
            .iter()
            .map(|p| {
                Json::obj()
                    .with("path", p.path.as_str())
                    .with("self_share", p.self_share)
                    .with("total_share", p.total_share)
            })
            .collect();
        Json::obj()
            .with("hz", self.hz)
            .with("samples", self.samples)
            .with("dropped", self.dropped)
            .with("threads", self.threads)
            .with("hot_stacks", Json::Arr(hot_stacks))
            .with("phases", Json::Arr(phases))
    }

    /// Parses a `profile` value back into the section.
    ///
    /// # Errors
    ///
    /// Rejects missing or mistyped fields, naming the field.
    pub fn parse(v: &Json) -> Result<ProfileSection, ManifestError> {
        let field = |k: &'static str| v.get(k).ok_or(ManifestError::Field(k));
        let num = |k: &'static str| field(k)?.as_u64().ok_or_else(|| ManifestError::field(k));
        let hot_stacks = field("hot_stacks")?
            .as_arr()
            .ok_or_else(|| ManifestError::field("hot_stacks"))?
            .iter()
            .map(parse_hot_stack)
            .collect::<Result<Vec<_>, _>>()?;
        let phases = field("phases")?
            .as_arr()
            .ok_or_else(|| ManifestError::field("profile phases"))?
            .iter()
            .map(parse_phase_share)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ProfileSection {
            hz: num("hz")?,
            samples: num("samples")?,
            dropped: num("dropped")?,
            threads: num("threads")?,
            hot_stacks,
            phases,
        })
    }
}

/// Everything one bench-binary run observed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunManifest {
    /// The binary that produced this manifest.
    pub bin: String,
    /// Its command-line arguments.
    pub args: Vec<String>,
    /// End-to-end wall time of the run, milliseconds.
    pub wall_ms: f64,
    /// Peak resident set size in bytes (0 when unavailable).
    pub peak_rss_bytes: u64,
    /// Per-phase wall time, from the span registry.
    pub phases: Vec<PhaseEntry>,
    /// All counters.
    pub counters: BTreeMap<String, u64>,
    /// All gauges.
    pub gauges: BTreeMap<String, u64>,
    /// All histograms (ten decile bins each).
    pub histograms: BTreeMap<String, [u64; 10]>,
    /// Mid-run counter/gauge time series (empty in v1 documents; a
    /// manifest with samples serialises under the v2 schema).
    pub samples: Vec<Sample>,
    /// Per-PC attribution of one or more predictor replays (empty in
    /// v1/v2 documents; a manifest with attribution serialises under
    /// the v3 schema).
    pub attribution: Vec<AttributionRun>,
    /// Folded sampling-profiler results (absent below v4; a manifest
    /// carrying one serialises under the v4 schema).
    pub profile: Option<ProfileSection>,
}

const NS_PER_MS: f64 = 1_000_000.0;

impl RunManifest {
    /// Builds a manifest from a registry snapshot.
    #[must_use]
    pub fn from_snapshot(
        bin: impl Into<String>,
        args: Vec<String>,
        wall_ms: f64,
        snapshot: &Snapshot,
    ) -> RunManifest {
        RunManifest {
            bin: bin.into(),
            args,
            wall_ms,
            peak_rss_bytes: crate::rss::peak_rss_bytes(),
            phases: snapshot
                .spans
                .iter()
                .map(|(path, stat)| PhaseEntry {
                    path: path.clone(),
                    count: stat.count,
                    total_ms: stat.total_ns as f64 / NS_PER_MS,
                    min_ms: stat.min_ns as f64 / NS_PER_MS,
                    max_ms: stat.max_ns as f64 / NS_PER_MS,
                })
                .collect(),
            counters: snapshot.counters.clone(),
            gauges: snapshot.gauges.clone(),
            histograms: snapshot
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.counts()))
                .collect(),
            samples: Vec::new(),
            attribution: Vec::new(),
            profile: None,
        }
    }

    /// Attaches a mid-run time series (promoting the manifest to the v2
    /// schema when `samples` is non-empty).
    #[must_use]
    pub fn with_samples(mut self, samples: Vec<Sample>) -> RunManifest {
        self.samples = samples;
        self
    }

    /// Attaches per-PC attribution runs (promoting the manifest to the
    /// v3 schema when `attribution` is non-empty).
    #[must_use]
    pub fn with_attribution(mut self, attribution: Vec<AttributionRun>) -> RunManifest {
        self.attribution = attribution;
        self
    }

    /// Attaches (or removes) the profiler section (promoting the
    /// manifest to the v4 schema when present).
    #[must_use]
    pub fn with_profile(mut self, profile: Option<ProfileSection>) -> RunManifest {
        self.profile = profile;
        self
    }

    /// The schema version this manifest serialises under: v4 when it
    /// carries a profile section, v3 when it carries attribution, v2
    /// when it carries only samples, v1 otherwise (see the module docs).
    #[must_use]
    pub fn schema(&self) -> &'static str {
        if self.profile.is_some() {
            SCHEMA_V4
        } else if !self.attribution.is_empty() {
            SCHEMA_V3
        } else if !self.samples.is_empty() {
            SCHEMA_V2
        } else {
            SCHEMA_V1
        }
    }

    /// Simulator throughput in retired instructions per second, derived
    /// from the `sim.instructions` / `sim.wall_ns` counters (0 when the
    /// run simulated nothing).
    #[must_use]
    pub fn sim_instr_per_sec(&self) -> f64 {
        let instructions = self.counters.get("sim.instructions").copied().unwrap_or(0);
        let wall_ns = self.counters.get("sim.wall_ns").copied().unwrap_or(0);
        if wall_ns == 0 {
            0.0
        } else {
            instructions as f64 / (wall_ns as f64 / 1e9)
        }
    }

    /// TraceStore hit rate over all requests (memory + disk hits), in
    /// `[0, 1]`; 0 when the store was never used.
    #[must_use]
    pub fn trace_hit_rate(&self) -> f64 {
        let get = |k: &str| self.counters.get(k).copied().unwrap_or(0);
        let requests = get("trace_store.requests");
        if requests == 0 {
            0.0
        } else {
            (get("trace_store.memory_hits") + get("trace_store.disk_hits")) as f64 / requests as f64
        }
    }

    /// Serialises to the versioned JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let phases: Vec<Json> = self
            .phases
            .iter()
            .map(|p| {
                Json::obj()
                    .with("path", p.path.as_str())
                    .with("count", p.count)
                    .with("total_ms", p.total_ms)
                    .with("min_ms", p.min_ms)
                    .with("max_ms", p.max_ms)
            })
            .collect();
        let map = |m: &BTreeMap<String, u64>| {
            Json::Obj(m.iter().map(|(k, v)| (k.clone(), Json::from(*v))).collect())
        };
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, bins)| {
                    (
                        k.clone(),
                        Json::Arr(bins.iter().map(|&b| Json::from(b)).collect()),
                    )
                })
                .collect(),
        );
        let derived = Json::obj()
            .with("sim_instr_per_sec", self.sim_instr_per_sec())
            .with("trace_hit_rate", self.trace_hit_rate());
        let mut doc = Json::obj()
            .with("schema", self.schema())
            .with("bin", self.bin.as_str())
            .with(
                "args",
                Json::Arr(self.args.iter().map(|a| Json::from(a.as_str())).collect()),
            )
            .with("wall_ms", self.wall_ms)
            .with("peak_rss_bytes", self.peak_rss_bytes)
            .with("phases", Json::Arr(phases))
            .with("counters", map(&self.counters))
            .with("gauges", map(&self.gauges))
            .with("histograms", histograms);
        if !self.samples.is_empty() {
            let samples: Vec<Json> = self
                .samples
                .iter()
                .map(|s| {
                    Json::obj()
                        .with("t_ms", s.t_ms)
                        .with("counters", map(&s.counters))
                        .with("gauges", map(&s.gauges))
                })
                .collect();
            doc = doc.with("samples", Json::Arr(samples));
        }
        if !self.attribution.is_empty() {
            doc = doc.with(
                "attribution",
                Json::Arr(
                    self.attribution
                        .iter()
                        .map(AttributionRun::to_json)
                        .collect(),
                ),
            );
        }
        if let Some(profile) = &self.profile {
            doc = doc.with("profile", profile.to_json());
        }
        doc.with("derived", derived).to_string()
    }

    /// Parses a manifest back from its JSON form. Accepts both schema
    /// versions: a v1 document parses as a manifest with an empty
    /// `samples` array.
    ///
    /// # Errors
    ///
    /// Rejects malformed JSON, an unknown `schema`, or structurally
    /// wrong fields (with a field-naming message).
    pub fn parse(text: &str) -> Result<RunManifest, ManifestError> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or_else(|| ManifestError::field("schema"))?;
        if schema != SCHEMA_V1 && schema != SCHEMA_V2 && schema != SCHEMA_V3 && schema != SCHEMA_V4
        {
            return Err(ManifestError::Schema(schema.to_owned()));
        }
        let field = |k: &'static str| doc.get(k).ok_or(ManifestError::Field(k));
        let bin = field("bin")?
            .as_str()
            .ok_or_else(|| ManifestError::field("bin"))?
            .to_owned();
        let args = field("args")?
            .as_arr()
            .ok_or_else(|| ManifestError::field("args"))?
            .iter()
            .map(|a| a.as_str().map(str::to_owned))
            .collect::<Option<Vec<_>>>()
            .ok_or_else(|| ManifestError::field("args"))?;
        let wall_ms = field("wall_ms")?
            .as_f64()
            .ok_or_else(|| ManifestError::field("wall_ms"))?;
        let peak_rss_bytes = field("peak_rss_bytes")?
            .as_u64()
            .ok_or_else(|| ManifestError::field("peak_rss_bytes"))?;
        let phases = field("phases")?
            .as_arr()
            .ok_or_else(|| ManifestError::field("phases"))?
            .iter()
            .map(parse_phase)
            .collect::<Result<Vec<_>, _>>()?;
        let counters = field("counters")?
            .as_u64_map()
            .ok_or_else(|| ManifestError::field("counters"))?;
        let gauges = field("gauges")?
            .as_u64_map()
            .ok_or_else(|| ManifestError::field("gauges"))?;
        let histograms = match field("histograms")? {
            Json::Obj(members) => members
                .iter()
                .map(|(k, v)| parse_bins(v).map(|bins| (k.clone(), bins)))
                .collect::<Result<BTreeMap<_, _>, _>>()?,
            _ => return Err(ManifestError::field("histograms")),
        };
        // `samples` is optional (absent in v1 documents; a v2 document
        // without it is treated as an empty series).
        let samples = match doc.get("samples") {
            None => Vec::new(),
            Some(v) => v
                .as_arr()
                .ok_or_else(|| ManifestError::field("samples"))?
                .iter()
                .map(parse_sample)
                .collect::<Result<Vec<_>, _>>()?,
        };
        // `attribution` is optional (absent in v1/v2 documents; a v3
        // document without it is treated as an empty array).
        let attribution = match doc.get("attribution") {
            None => Vec::new(),
            Some(v) => v
                .as_arr()
                .ok_or_else(|| ManifestError::field("attribution"))?
                .iter()
                .map(AttributionRun::parse)
                .collect::<Result<Vec<_>, _>>()?,
        };
        // `profile` is optional (absent below v4; a v4 document without
        // it is treated as profiled-nothing).
        let profile = match doc.get("profile") {
            None => None,
            Some(v) => Some(ProfileSection::parse(v)?),
        };
        Ok(RunManifest {
            bin,
            args,
            wall_ms,
            peak_rss_bytes,
            phases,
            counters,
            gauges,
            histograms,
            samples,
            attribution,
            profile,
        })
    }

    /// Rebuilds the decile histograms for analysis code.
    #[must_use]
    pub fn histogram(&self, key: &str) -> Option<DecileHistogram> {
        let bins = self.histograms.get(key)?;
        let mut h = DecileHistogram::new();
        for (i, &count) in bins.iter().enumerate() {
            for _ in 0..count.min(1_000_000) {
                h.add(i as f64 * 10.0 + 5.0);
            }
        }
        Some(h)
    }
}

fn parse_phase(v: &Json) -> Result<PhaseEntry, ManifestError> {
    let field = |k: &'static str| v.get(k).ok_or(ManifestError::Field(k));
    Ok(PhaseEntry {
        path: field("path")?
            .as_str()
            .ok_or_else(|| ManifestError::field("path"))?
            .to_owned(),
        count: field("count")?
            .as_u64()
            .ok_or_else(|| ManifestError::field("count"))?,
        total_ms: field("total_ms")?
            .as_f64()
            .ok_or_else(|| ManifestError::field("total_ms"))?,
        min_ms: field("min_ms")?
            .as_f64()
            .ok_or_else(|| ManifestError::field("min_ms"))?,
        max_ms: field("max_ms")?
            .as_f64()
            .ok_or_else(|| ManifestError::field("max_ms"))?,
    })
}

fn parse_hot_stack(v: &Json) -> Result<HotStack, ManifestError> {
    let field = |k: &'static str| v.get(k).ok_or(ManifestError::Field(k));
    Ok(HotStack {
        stack: field("stack")?
            .as_str()
            .ok_or_else(|| ManifestError::field("stack"))?
            .to_owned(),
        count: field("count")?
            .as_u64()
            .ok_or_else(|| ManifestError::field("hot-stack count"))?,
        share: field("share")?
            .as_f64()
            .ok_or_else(|| ManifestError::field("share"))?,
    })
}

fn parse_phase_share(v: &Json) -> Result<PhaseShare, ManifestError> {
    let field = |k: &'static str| v.get(k).ok_or(ManifestError::Field(k));
    Ok(PhaseShare {
        path: field("path")?
            .as_str()
            .ok_or_else(|| ManifestError::field("phase-share path"))?
            .to_owned(),
        self_share: field("self_share")?
            .as_f64()
            .ok_or_else(|| ManifestError::field("self_share"))?,
        total_share: field("total_share")?
            .as_f64()
            .ok_or_else(|| ManifestError::field("total_share"))?,
    })
}

fn parse_sample(v: &Json) -> Result<Sample, ManifestError> {
    let field = |k: &'static str| v.get(k).ok_or(ManifestError::Field(k));
    Ok(Sample {
        t_ms: field("t_ms")?
            .as_f64()
            .ok_or_else(|| ManifestError::field("t_ms"))?,
        counters: field("counters")?
            .as_u64_map()
            .ok_or_else(|| ManifestError::field("sample counters"))?,
        gauges: field("gauges")?
            .as_u64_map()
            .ok_or_else(|| ManifestError::field("sample gauges"))?,
    })
}

fn parse_bins(v: &Json) -> Result<[u64; 10], ManifestError> {
    let arr = v
        .as_arr()
        .ok_or_else(|| ManifestError::field("histogram bins"))?;
    if arr.len() != 10 {
        return Err(ManifestError::field("histogram bins (want 10)"));
    }
    let mut bins = [0u64; 10];
    for (slot, item) in bins.iter_mut().zip(arr) {
        *slot = item
            .as_u64()
            .ok_or_else(|| ManifestError::field("histogram bin"))?;
    }
    Ok(bins)
}

/// Why a manifest failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum ManifestError {
    /// The JSON itself was malformed.
    Json(ParseError),
    /// The `schema` field named an unknown version.
    Schema(String),
    /// A required field was missing or had the wrong type.
    Field(&'static str),
    /// Like [`ManifestError::Field`] with a dynamic description.
    FieldNamed(String),
}

impl ManifestError {
    fn field(name: &'static str) -> ManifestError {
        ManifestError::Field(name)
    }
}

impl From<ParseError> for ManifestError {
    fn from(e: ParseError) -> Self {
        ManifestError::Json(e)
    }
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Json(e) => write!(f, "{e}"),
            ManifestError::Schema(s) => {
                write!(
                    f,
                    "unknown manifest schema `{s}` (want `{SCHEMA_V1}`, `{SCHEMA_V2}`, `{SCHEMA_V3}` or `{SCHEMA_V4}`)"
                )
            }
            ManifestError::Field(name) => write!(f, "missing or mistyped manifest field `{name}`"),
            ManifestError::FieldNamed(name) => {
                write!(f, "missing or mistyped manifest field `{name}`")
            }
        }
    }
}

impl std::error::Error for ManifestError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        let mut counters = BTreeMap::new();
        counters.insert("sim.instructions".to_owned(), 2_000_000u64);
        counters.insert("sim.wall_ns".to_owned(), 500_000_000u64);
        counters.insert("trace_store.requests".to_owned(), 10u64);
        counters.insert("trace_store.memory_hits".to_owned(), 7u64);
        counters.insert("trace_store.disk_hits".to_owned(), 1u64);
        let mut gauges = BTreeMap::new();
        gauges.insert("predictor.occupancy.max".to_owned(), 512u64);
        let mut histograms = BTreeMap::new();
        histograms.insert(
            "predictor.accuracy".to_owned(),
            [1, 0, 0, 0, 0, 0, 0, 0, 0, 4],
        );
        RunManifest {
            bin: "repro-all".to_owned(),
            args: vec![
                "--jobs=4".to_owned(),
                "--metrics-out=/tmp/m.json".to_owned(),
            ],
            wall_ms: 1234.5,
            peak_rss_bytes: 77_000_000,
            phases: vec![PhaseEntry {
                path: "repro-all/table_2_1".to_owned(),
                count: 1,
                total_ms: 100.25,
                min_ms: 100.25,
                max_ms: 100.25,
            }],
            counters,
            gauges,
            histograms,
            samples: Vec::new(),
            attribution: Vec::new(),
            profile: None,
        }
    }

    fn sample_v2() -> RunManifest {
        let mut m = sample();
        let mut counters = BTreeMap::new();
        counters.insert("trace_store.requests".to_owned(), 4u64);
        counters.insert("trace_store.memory_hits".to_owned(), 3u64);
        counters.insert("trace_store.misses".to_owned(), 1u64);
        m.samples = vec![
            Sample {
                t_ms: 10.5,
                counters: counters.clone(),
                gauges: BTreeMap::new(),
            },
            Sample {
                t_ms: 20.25,
                counters,
                gauges: m.gauges.clone(),
            },
        ];
        m
    }

    #[test]
    fn round_trips_through_hand_parser() {
        let m = sample();
        let text = m.to_json();
        let back = RunManifest::parse(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn v2_round_trips_with_samples() {
        let m = sample_v2();
        assert_eq!(m.schema(), SCHEMA_V2);
        let text = m.to_json();
        assert!(text.contains(r#""schema":"provp-run-manifest/v2""#));
        let back = RunManifest::parse(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.samples.len(), 2);
        // Canonical: re-serialisation is byte-identical.
        assert_eq!(back.to_json(), text);
    }

    fn sample_v3() -> RunManifest {
        use crate::attribution::{AttributionPc, AttributionRun, AttributionTotals};
        let mut causes = BTreeMap::new();
        causes.insert("stride-break".to_owned(), 4u64);
        sample_v2().with_attribution(vec![AttributionRun {
            workload: "compress".to_owned(),
            config: "stride[512x2]/profile".to_owned(),
            threshold: Some(0.9),
            totals: AttributionTotals {
                pcs: 1,
                accesses: 10,
                hits: 9,
                raw_correct: 6,
                speculated: 8,
                speculated_correct: 6,
                causes: causes.clone(),
            },
            pcs: vec![AttributionPc {
                pc: 17,
                directive: "stride".to_owned(),
                accesses: 10,
                hits: 9,
                raw_correct: 6,
                speculated: 8,
                speculated_correct: 6,
                causes,
                profiled_accuracy: Some(0.95),
                drift: Some(0.35),
            }],
        }])
    }

    #[test]
    fn v3_round_trips_with_attribution() {
        let m = sample_v3();
        assert_eq!(m.schema(), SCHEMA_V3);
        let text = m.to_json();
        assert!(text.contains(r#""schema":"provp-run-manifest/v3""#));
        let back = RunManifest::parse(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.attribution.len(), 1);
        // Canonical: re-serialisation is byte-identical.
        assert_eq!(back.to_json(), text);
        // Attribution without samples is still v3.
        let mut no_samples = m;
        no_samples.samples.clear();
        assert_eq!(no_samples.schema(), SCHEMA_V3);
    }

    fn sample_v4() -> RunManifest {
        sample_v3().with_profile(Some(ProfileSection {
            hz: 99,
            samples: 100,
            dropped: 3,
            threads: 2,
            hot_stacks: vec![HotStack {
                stack: "repro-all;predict".to_owned(),
                count: 60,
                share: 0.6,
            }],
            phases: vec![
                PhaseShare {
                    path: "repro-all".to_owned(),
                    self_share: 0.4,
                    total_share: 1.0,
                },
                PhaseShare {
                    path: "repro-all/predict".to_owned(),
                    self_share: 0.6,
                    total_share: 0.6,
                },
            ],
        }))
    }

    #[test]
    fn v4_round_trips_with_profile() {
        let m = sample_v4();
        assert_eq!(m.schema(), SCHEMA_V4);
        let text = m.to_json();
        assert!(text.contains(r#""schema":"provp-run-manifest/v4""#));
        let back = RunManifest::parse(&text).unwrap();
        assert_eq!(back, m);
        // Canonical: re-serialisation is byte-identical.
        assert_eq!(back.to_json(), text);
        // A profile without attribution or samples is still v4.
        let mut lone = m;
        lone.samples.clear();
        lone.attribution.clear();
        assert_eq!(lone.schema(), SCHEMA_V4);
        let back = RunManifest::parse(&lone.to_json()).unwrap();
        assert_eq!(back, lone);
        // Dropping the profile demotes back to v3/v2/v1 rules.
        assert_eq!(sample_v4().with_profile(None).schema(), SCHEMA_V3);
    }

    #[test]
    fn profile_section_rejects_mistyped_fields() {
        let good = sample_v4();
        let text = good.to_json();
        let broken = text.replace(r#""hz":99"#, r#""hz":"fast""#);
        assert!(matches!(
            RunManifest::parse(&broken).unwrap_err(),
            ManifestError::Field("hz")
        ));
        let broken = text.replace(r#""hot_stacks""#, r#""hot_snacks""#);
        assert!(matches!(
            RunManifest::parse(&broken).unwrap_err(),
            ManifestError::Field("hot_stacks")
        ));
    }

    #[test]
    fn v1_documents_parse_with_empty_samples() {
        let m = sample();
        assert_eq!(m.schema(), SCHEMA_V1);
        let text = m.to_json();
        assert!(text.contains(r#""schema":"provp-run-manifest/v1""#));
        assert!(!text.contains("samples"));
        let back = RunManifest::parse(&text).unwrap();
        assert!(back.samples.is_empty());
        // And a v2 document that happens to carry no samples is still
        // accepted (forward tolerance).
        let forced_v2 = text.replace("provp-run-manifest/v1", "provp-run-manifest/v2");
        let back = RunManifest::parse(&forced_v2).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn derived_rates() {
        let m = sample();
        assert!((m.sim_instr_per_sec() - 4_000_000.0).abs() < 1e-6);
        assert!((m.trace_hit_rate() - 0.8).abs() < 1e-12);
        assert_eq!(RunManifest::default().sim_instr_per_sec(), 0.0);
        assert_eq!(RunManifest::default().trace_hit_rate(), 0.0);
    }

    #[test]
    fn rejects_wrong_schema_and_missing_fields() {
        let err = RunManifest::parse(r#"{"schema":"other/v9"}"#).unwrap_err();
        assert!(matches!(err, ManifestError::Schema(_)));
        let err = RunManifest::parse(r#"{"schema":"provp-run-manifest/v1"}"#).unwrap_err();
        assert!(matches!(err, ManifestError::Field("bin")));
        assert!(RunManifest::parse("not json").is_err());
    }

    #[test]
    fn from_snapshot_converts_units() {
        let r = crate::Registry::new();
        r.record_span("x", 2_000_000); // 2 ms
        let snap = r.snapshot();
        let m = RunManifest::from_snapshot("b", vec![], 9.0, &snap);
        assert_eq!(m.phases.len(), 1);
        assert_eq!(m.phases[0].path, "x");
        assert!((m.phases[0].total_ms - 2.0).abs() < 1e-9);
    }
}
