//! The process-global, thread-safe registry behind spans and metrics.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use vp_stats::DecileHistogram;

/// Aggregate timing of one span path across every thread that recorded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Number of completed span instances.
    pub count: u64,
    /// Total wall time, nanoseconds (saturating).
    pub total_ns: u64,
    /// Shortest instance, nanoseconds.
    pub min_ns: u64,
    /// Longest instance, nanoseconds.
    pub max_ns: u64,
}

impl SpanStat {
    fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count = self.count.saturating_add(1);
        self.total_ns = self.total_ns.saturating_add(ns);
    }

    /// Mean duration in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// A point-in-time copy of everything the registry has observed.
///
/// Maps are ordered (`BTreeMap`) so exports are deterministic.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Aggregated spans, keyed by hierarchical path (`a/b/c`).
    pub spans: BTreeMap<String, SpanStat>,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-written (or max-tracked) gauges.
    pub gauges: BTreeMap<String, u64>,
    /// Decile histograms over percentage values.
    pub histograms: BTreeMap<String, DecileHistogram>,
}

/// A thread-safe registry of spans, counters, gauges and histograms.
///
/// Usually accessed through the process-global instance ([`global`]);
/// independent instances exist only for tests.
#[derive(Default)]
pub struct Registry {
    spans: Mutex<BTreeMap<String, SpanStat>>,
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Mutex<DecileHistogram>>>>,
}

impl Registry {
    /// A fresh, empty registry (tests; production code uses [`global`]).
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Records one completed span instance under `path`.
    pub fn record_span(&self, path: &str, ns: u64) {
        let mut spans = self.spans.lock().expect("span registry poisoned");
        if let Some(stat) = spans.get_mut(path) {
            stat.record(ns);
        } else {
            let mut stat = SpanStat::default();
            stat.record(ns);
            spans.insert(path.to_owned(), stat);
        }
    }

    /// The shared cell behind the counter named `key` (registering it on
    /// first use).
    pub fn counter_cell(&self, key: &'static str) -> Arc<AtomicU64> {
        let mut map = self.counters.lock().expect("counter registry poisoned");
        Arc::clone(map.entry(key).or_default())
    }

    /// The shared cell behind the gauge named `key`.
    pub fn gauge_cell(&self, key: &'static str) -> Arc<AtomicU64> {
        let mut map = self.gauges.lock().expect("gauge registry poisoned");
        Arc::clone(map.entry(key).or_default())
    }

    /// The shared histogram named `key`.
    pub fn histogram_cell(&self, key: &'static str) -> Arc<Mutex<DecileHistogram>> {
        let mut map = self.histograms.lock().expect("histogram registry poisoned");
        Arc::clone(map.entry(key).or_default())
    }

    /// Copies out everything observed so far.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let spans = self.spans.lock().expect("span registry poisoned").clone();
        let counters = self
            .counters
            .lock()
            .expect("counter registry poisoned")
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge registry poisoned")
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(k, v)| ((*k).to_owned(), *v.lock().expect("histogram cell poisoned")))
            .collect();
        Snapshot {
            spans,
            counters,
            gauges,
            histograms,
        }
    }
}

/// The process-global registry every span and metric records into.
#[must_use]
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_stat_tracks_min_max_mean() {
        let mut s = SpanStat::default();
        s.record(10);
        s.record(30);
        s.record(20);
        assert_eq!(s.count, 3);
        assert_eq!(s.total_ns, 60);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 30);
        assert_eq!(s.mean_ns(), 20);
    }

    #[test]
    fn span_stat_saturates_instead_of_overflowing() {
        let mut s = SpanStat::default();
        s.record(u64::MAX);
        s.record(u64::MAX);
        assert_eq!(s.total_ns, u64::MAX);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn snapshot_is_a_consistent_copy() {
        let r = Registry::new();
        r.record_span("a/b", 5);
        r.counter_cell("c").fetch_add(7, Ordering::Relaxed);
        let snap = r.snapshot();
        assert_eq!(snap.spans["a/b"].count, 1);
        assert_eq!(snap.counters["c"], 7);
        // Mutating after the snapshot does not change the copy.
        r.record_span("a/b", 5);
        assert_eq!(snap.spans["a/b"].count, 1);
    }

    #[test]
    fn cells_are_shared_per_key() {
        let r = Registry::new();
        let a = r.counter_cell("same");
        let b = r.counter_cell("same");
        a.fetch_add(1, Ordering::Relaxed);
        b.fetch_add(2, Ordering::Relaxed);
        assert_eq!(r.snapshot().counters["same"], 3);
    }
}
