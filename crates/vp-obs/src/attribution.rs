//! Passive, serialisable per-PC attribution results.
//!
//! The live accounting (cause taxonomy, shard-mergeable tables) lives in
//! `vp-predictor`; this module holds the *observed results* in plain
//! string-keyed form so the manifest, `attribution-report` and
//! `manifest-diff` can carry them without depending on predictor types.
//! One [`AttributionRun`] describes one predictor replay (a workload ×
//! config × threshold point): exact whole-table totals plus the top-K
//! hottest mispredicting PCs, each with its cause breakdown and
//! profile-drift (profiled accuracy minus observed replay accuracy — the
//! paper's central assumption, measured per instruction).
//!
//! Everything here is derived from exactly-merged integer counters, so
//! runs are bit-identical at any `--jobs`/shard count and totals
//! reconcile exactly with `PredictorStats` (checked by `vp-verify`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::Json;
use crate::manifest::ManifestError;

/// Every attribution cause name, in stable report order (must match
/// `vp_predictor::AttributionCause::ALL`).
pub const CAUSE_ORDER: [&str; 6] = [
    "cold",
    "conflict",
    "stride-break",
    "last-value-churn",
    "class-mismatch",
    "uncovered",
];

/// One static instruction's observed prediction behaviour.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttributionPc {
    /// Static instruction address (text index).
    pub pc: u64,
    /// The profile directive the instruction carried (`none`, `lv`,
    /// `stride` — `Directive::suffix` names).
    pub directive: String,
    /// Dynamic accesses at this PC.
    pub accesses: u64,
    /// Accesses that found a table entry.
    pub hits: u64,
    /// Raw predictions that matched the actual value.
    pub raw_correct: u64,
    /// Accesses where the prediction was actually used.
    pub speculated: u64,
    /// Used predictions that were correct.
    pub speculated_correct: u64,
    /// Raw-incorrect accesses per cause (zero-count causes omitted);
    /// values sum to `accesses - raw_correct`.
    pub causes: BTreeMap<String, u64>,
    /// The accuracy the Phase-2 profile promised under this PC's
    /// directive; `None` when the profile never saw the PC.
    pub profiled_accuracy: Option<f64>,
    /// Profile drift: `profiled_accuracy - raw_accuracy()`. Positive
    /// means the profile over-promised. `None` without a profile record.
    pub drift: Option<f64>,
}

impl AttributionPc {
    /// Observed raw prediction accuracy at this PC, in `[0, 1]`.
    #[must_use]
    pub fn raw_accuracy(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.raw_correct as f64 / self.accesses as f64
        }
    }

    /// Used predictions that were wrong.
    #[must_use]
    pub fn speculated_incorrect(&self) -> u64 {
        self.speculated - self.speculated_correct
    }

    /// The cause with the largest count (ties go to the earlier cause in
    /// [`CAUSE_ORDER`]); `None` when the PC never mispredicted.
    #[must_use]
    pub fn dominant_cause(&self) -> Option<&str> {
        let mut best: Option<(&str, u64)> = None;
        for name in CAUSE_ORDER {
            let n = self.causes.get(name).copied().unwrap_or(0);
            if n > 0 && best.is_none_or(|(_, b)| n > b) {
                best = Some((name, n));
            }
        }
        best.map(|(name, _)| name)
    }

    fn to_json(&self) -> Json {
        let mut o = Json::obj()
            .with("pc", self.pc)
            .with("directive", self.directive.as_str())
            .with("accesses", self.accesses)
            .with("hits", self.hits)
            .with("raw_correct", self.raw_correct)
            .with("speculated", self.speculated)
            .with("speculated_correct", self.speculated_correct)
            .with("causes", u64_map_json(&self.causes));
        if let Some(p) = self.profiled_accuracy {
            o = o.with("profiled_accuracy", p);
        }
        if let Some(d) = self.drift {
            o = o.with("drift", d);
        }
        o
    }

    fn parse(v: &Json) -> Result<AttributionPc, ManifestError> {
        let field = |k: &'static str| v.get(k).ok_or(ManifestError::Field(k));
        let num =
            |k: &'static str| field(k).and_then(|j| j.as_u64().ok_or(ManifestError::Field(k)));
        Ok(AttributionPc {
            pc: num("pc")?,
            directive: field("directive")?
                .as_str()
                .ok_or(ManifestError::Field("directive"))?
                .to_owned(),
            accesses: num("accesses")?,
            hits: num("hits")?,
            raw_correct: num("raw_correct")?,
            speculated: num("speculated")?,
            speculated_correct: num("speculated_correct")?,
            causes: field("causes")?
                .as_u64_map()
                .ok_or(ManifestError::Field("causes"))?,
            profiled_accuracy: v
                .get("profiled_accuracy")
                .map(|j| j.as_f64().ok_or(ManifestError::Field("profiled_accuracy")))
                .transpose()?,
            drift: v
                .get("drift")
                .map(|j| j.as_f64().ok_or(ManifestError::Field("drift")))
                .transpose()?,
        })
    }
}

/// Exact whole-table totals of one replay (independent of the top-K
/// selection, so reconciliation against `PredictorStats` never depends
/// on K).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttributionTotals {
    /// Static PCs tracked.
    pub pcs: u64,
    /// Dynamic accesses.
    pub accesses: u64,
    /// Accesses that found an entry.
    pub hits: u64,
    /// Raw-correct accesses.
    pub raw_correct: u64,
    /// Accesses that used the prediction.
    pub speculated: u64,
    /// Used-and-correct accesses.
    pub speculated_correct: u64,
    /// Cause counts over the whole table (zero-count causes omitted).
    pub causes: BTreeMap<String, u64>,
}

impl AttributionTotals {
    /// Raw prediction accuracy over all accesses, in `[0, 1]`.
    #[must_use]
    pub fn raw_accuracy(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.raw_correct as f64 / self.accesses as f64
        }
    }

    /// Accuracy of the predictions the machine actually used.
    #[must_use]
    pub fn effective_accuracy(&self) -> f64 {
        if self.speculated == 0 {
            0.0
        } else {
            self.speculated_correct as f64 / self.speculated as f64
        }
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .with("pcs", self.pcs)
            .with("accesses", self.accesses)
            .with("hits", self.hits)
            .with("raw_correct", self.raw_correct)
            .with("speculated", self.speculated)
            .with("speculated_correct", self.speculated_correct)
            .with("causes", u64_map_json(&self.causes))
    }

    fn parse(v: &Json) -> Result<AttributionTotals, ManifestError> {
        let num = |k: &'static str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or(ManifestError::Field(k))
        };
        Ok(AttributionTotals {
            pcs: num("pcs")?,
            accesses: num("accesses")?,
            hits: num("hits")?,
            raw_correct: num("raw_correct")?,
            speculated: num("speculated")?,
            speculated_correct: num("speculated_correct")?,
            causes: v
                .get("causes")
                .and_then(Json::as_u64_map)
                .ok_or(ManifestError::Field("causes"))?,
        })
    }
}

/// One predictor replay's attribution: a workload × config (× optional
/// classification threshold) point.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttributionRun {
    /// Workload name (`compress`, `ijpeg`, …).
    pub workload: String,
    /// Predictor configuration label (`PredictorConfig::label`).
    pub config: String,
    /// Classification threshold of the profile sweep point, when the
    /// replay came from a threshold sweep.
    pub threshold: Option<f64>,
    /// Exact whole-table totals.
    pub totals: AttributionTotals,
    /// The top-K hottest mispredicting PCs (already ranked by the
    /// deterministic speculated-incorrect / raw-incorrect / address
    /// order).
    pub pcs: Vec<AttributionPc>,
}

impl AttributionRun {
    /// A `workload/config@threshold` display label identifying the run.
    #[must_use]
    pub fn label(&self) -> String {
        match self.threshold {
            Some(t) => format!("{}/{}@{:.2}", self.workload, self.config, t),
            None => format!("{}/{}", self.workload, self.config),
        }
    }

    /// Serialises the run for the manifest's `attribution` array.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj()
            .with("workload", self.workload.as_str())
            .with("config", self.config.as_str());
        o = match self.threshold {
            Some(t) => o.with("threshold", t),
            None => o.with("threshold", Json::Null),
        };
        o.with("totals", self.totals.to_json()).with(
            "pcs",
            Json::Arr(self.pcs.iter().map(AttributionPc::to_json).collect()),
        )
    }

    /// Parses a run back from its JSON form.
    ///
    /// # Errors
    ///
    /// Rejects missing or mistyped fields with a field-naming message.
    pub fn parse(v: &Json) -> Result<AttributionRun, ManifestError> {
        let field = |k: &'static str| v.get(k).ok_or(ManifestError::Field(k));
        let threshold = match field("threshold")? {
            Json::Null => None,
            other => Some(other.as_f64().ok_or(ManifestError::Field("threshold"))?),
        };
        Ok(AttributionRun {
            workload: field("workload")?
                .as_str()
                .ok_or(ManifestError::Field("workload"))?
                .to_owned(),
            config: field("config")?
                .as_str()
                .ok_or(ManifestError::Field("config"))?
                .to_owned(),
            threshold,
            totals: AttributionTotals::parse(field("totals")?)?,
            pcs: field("pcs")?
                .as_arr()
                .ok_or(ManifestError::Field("pcs"))?
                .iter()
                .map(AttributionPc::parse)
                .collect::<Result<Vec<_>, _>>()?,
        })
    }
}

fn u64_map_json(m: &BTreeMap<String, u64>) -> Json {
    Json::Obj(m.iter().map(|(k, v)| (k.clone(), Json::from(*v))).collect())
}

fn fmt_opt_pct(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{:.1}%", 100.0 * v),
        None => "-".to_owned(),
    }
}

/// Formats a drift value in signed percentage points (`+12.3pp`).
fn fmt_drift(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{:+.1}pp", 100.0 * v),
        None => "-".to_owned(),
    }
}

/// Renders runs as aligned text (the `attribution-report` default),
/// showing at most `top` PCs per run (0 means all carried PCs).
#[must_use]
pub fn render_report_table(runs: &[AttributionRun], top: usize) -> String {
    let take = |n: usize| if top == 0 { n } else { n.min(top) };
    let mut out = String::new();
    for run in runs {
        let t = &run.totals;
        let _ = writeln!(out, "== attribution: {} ==", run.label());
        let _ = writeln!(
            out,
            "{} pcs, {} accesses, raw accuracy {:.1}%, effective accuracy {:.1}%",
            t.pcs,
            t.accesses,
            100.0 * t.raw_accuracy(),
            100.0 * t.effective_accuracy(),
        );
        let causes: Vec<String> = CAUSE_ORDER
            .iter()
            .filter_map(|&c| {
                let n = t.causes.get(c).copied().unwrap_or(0);
                (n > 0).then(|| format!("{c} {n}"))
            })
            .collect();
        let _ = writeln!(
            out,
            "causes: {}",
            if causes.is_empty() {
                "none".to_owned()
            } else {
                causes.join(", ")
            }
        );
        if run.pcs.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "{:>8}  {:>9}  {:>10}  {:>8}  {:>10}  {:16}  {:>8}  {:>8}",
            "pc",
            "directive",
            "accesses",
            "raw acc",
            "spec wrong",
            "dominant cause",
            "profiled",
            "drift"
        );
        for pc in run.pcs.iter().take(take(run.pcs.len())) {
            let _ = writeln!(
                out,
                "{:>8}  {:>9}  {:>10}  {:>7.1}%  {:>10}  {:16}  {:>8}  {:>8}",
                format!("@{}", pc.pc),
                pc.directive,
                pc.accesses,
                100.0 * pc.raw_accuracy(),
                pc.speculated_incorrect(),
                pc.dominant_cause().unwrap_or("-"),
                fmt_opt_pct(pc.profiled_accuracy),
                fmt_drift(pc.drift),
            );
        }
    }
    out
}

/// Renders runs as GitHub-flavoured Markdown (for
/// `$GITHUB_STEP_SUMMARY`), showing at most `top` PCs per run (0 means
/// all carried PCs).
#[must_use]
pub fn render_report_markdown(runs: &[AttributionRun], top: usize) -> String {
    let take = |n: usize| if top == 0 { n } else { n.min(top) };
    let mut out = String::new();
    for run in runs {
        let t = &run.totals;
        let _ = writeln!(out, "### Attribution: `{}`", run.label());
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{} PCs, {} accesses, raw accuracy **{:.1}%**, effective accuracy **{:.1}%**",
            t.pcs,
            t.accesses,
            100.0 * t.raw_accuracy(),
            100.0 * t.effective_accuracy(),
        );
        let _ = writeln!(out);
        if run.pcs.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "| pc | directive | accesses | raw acc | spec wrong | dominant cause | profiled | drift |"
        );
        let _ = writeln!(out, "|---|---|---:|---:|---:|---|---:|---:|");
        for pc in run.pcs.iter().take(take(run.pcs.len())) {
            let _ = writeln!(
                out,
                "| `@{}` | {} | {} | {:.1}% | {} | {} | {} | {} |",
                pc.pc,
                pc.directive,
                pc.accesses,
                100.0 * pc.raw_accuracy(),
                pc.speculated_incorrect(),
                pc.dominant_cause().unwrap_or("-"),
                fmt_opt_pct(pc.profiled_accuracy),
                fmt_drift(pc.drift),
            );
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run() -> AttributionRun {
        let mut causes = BTreeMap::new();
        causes.insert("stride-break".to_owned(), 30u64);
        causes.insert("cold".to_owned(), 10u64);
        AttributionRun {
            workload: "compress".to_owned(),
            config: "stride[512x2]/profile".to_owned(),
            threshold: Some(0.9),
            totals: AttributionTotals {
                pcs: 2,
                accesses: 100,
                hits: 90,
                raw_correct: 60,
                speculated: 80,
                speculated_correct: 55,
                causes: causes.clone(),
            },
            pcs: vec![AttributionPc {
                pc: 42,
                directive: "stride".to_owned(),
                accesses: 70,
                hits: 65,
                raw_correct: 35,
                speculated: 60,
                speculated_correct: 32,
                causes,
                profiled_accuracy: Some(0.93),
                drift: Some(0.43),
            }],
        }
    }

    #[test]
    fn round_trips_through_json() {
        let r = run();
        let text = r.to_json().to_string();
        let back = AttributionRun::parse(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
        // Canonical: re-serialisation is byte-identical.
        assert_eq!(back.to_json().to_string(), text);
    }

    #[test]
    fn null_threshold_and_missing_drift_round_trip() {
        let mut r = run();
        r.threshold = None;
        r.pcs[0].profiled_accuracy = None;
        r.pcs[0].drift = None;
        let text = r.to_json().to_string();
        assert!(text.contains(r#""threshold":null"#));
        assert!(!text.contains("profiled_accuracy"));
        let back = AttributionRun::parse(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn dominant_cause_breaks_ties_in_cause_order() {
        let mut pc = AttributionPc::default();
        assert_eq!(pc.dominant_cause(), None);
        pc.causes.insert("uncovered".to_owned(), 5);
        pc.causes.insert("cold".to_owned(), 5);
        // Tie at 5: `cold` comes earlier in CAUSE_ORDER.
        assert_eq!(pc.dominant_cause(), Some("cold"));
        pc.causes.insert("stride-break".to_owned(), 9);
        assert_eq!(pc.dominant_cause(), Some("stride-break"));
    }

    #[test]
    fn labels_and_ratios() {
        let r = run();
        assert_eq!(r.label(), "compress/stride[512x2]/profile@0.90");
        assert!((r.totals.raw_accuracy() - 0.6).abs() < 1e-12);
        assert!((r.totals.effective_accuracy() - 55.0 / 80.0).abs() < 1e-12);
        assert_eq!(r.pcs[0].speculated_incorrect(), 28);
    }

    #[test]
    fn renders_table_and_markdown() {
        let runs = [run()];
        let table = render_report_table(&runs, 10);
        assert!(table.contains("== attribution: compress/stride[512x2]/profile@0.90 =="));
        assert!(table.contains("@42"));
        assert!(table.contains("stride-break 30"));
        assert!(table.contains("+43.0pp"));

        let md = render_report_markdown(&runs, 10);
        assert!(md.starts_with("### Attribution:"));
        assert!(md.contains("| `@42` |"));
        assert!(md.contains("93.0%"));
    }

    #[test]
    fn top_limits_pc_rows() {
        let mut r = run();
        let mut second = r.pcs[0].clone();
        second.pc = 99;
        r.pcs.push(second);
        let table = render_report_table(&[r.clone()], 1);
        assert!(table.contains("@42"));
        assert!(!table.contains("@99"));
        let all = render_report_table(&[r], 0);
        assert!(all.contains("@99"));
    }

    #[test]
    fn parse_rejects_missing_fields() {
        let bad = Json::parse(r#"{"workload":"w","config":"c"}"#).unwrap();
        assert!(AttributionRun::parse(&bad).is_err());
    }
}
