//! A minimal, hand-rolled JSON value, writer and recursive-descent
//! parser — no serde, keeping the workspace dependency-free.
//!
//! Supports exactly the JSON the run manifest needs: objects, arrays,
//! strings (with `\uXXXX` escapes on input, control-character escaping
//! on output), finite numbers, booleans and `null`. Object members keep
//! insertion order on output via a `Vec` of pairs, so serialised
//! manifests are deterministic.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite inputs serialise as 0).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a member to an object (panics on non-objects — builder
    /// misuse is a programming error).
    #[must_use]
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(members) => members.push((key.into(), value.into())),
            other => panic!("Json::with on non-object {other:?}"),
        }
        self
    }

    /// Member lookup on objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64` (floor; negative → `None`).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object members as an ordered map (numbers coerced with `as_u64`).
    #[must_use]
    pub fn as_u64_map(&self) -> Option<BTreeMap<String, u64>> {
        match self {
            Json::Obj(members) => members
                .iter()
                .map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                .collect(),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a byte-offset-annotated message for malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(if n.is_finite() { n } else { 0.0 })
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                let n = if n.is_finite() { *n } else { 0.0 };
                if n == n.trunc() && n.abs() < 9.2e18 {
                    write!(f, "{}", n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_deterministic_objects() {
        let j = Json::obj()
            .with("b", 1u64)
            .with("a", "x")
            .with("list", vec![Json::Bool(true), Json::Null]);
        assert_eq!(j.to_string(), r#"{"b":1,"a":"x","list":[true,null]}"#);
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(3.5).to_string(), "3.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "0");
    }

    #[test]
    fn parses_what_it_writes() {
        let j = Json::obj()
            .with("name", "repro-all \"quoted\"\n")
            .with("n", 12345u64)
            .with("pi", 3.25)
            .with("neg", Json::Num(-7.0))
            .with("flag", false)
            .with("none", Json::Null)
            .with("arr", vec![Json::from(1u64), Json::from(2u64)]);
        let back = Json::parse(&j.to_string()).unwrap();
        assert_eq!(back, j);
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let j = Json::parse(" { \"k\" : [ 1 , \"\\u0041\\u00e9\u{2603}\" ] } ").unwrap();
        let arr = j.get("k").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_str(), Some("Aé\u{2603}"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "tru",
            "\"unterminated",
            "{} x",
            "--1",
        ] {
            assert!(Json::parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let e = Json::parse("[1, @]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}
