//! Resident-set-size introspection (end-of-run peak and live value).

/// Peak resident set size of this process in bytes, read from
/// `/proc/self/status` (`VmHWM`). Returns 0 on platforms without procfs
/// — callers treat 0 as "unavailable".
#[must_use]
pub fn peak_rss_bytes() -> u64 {
    read_status_field(
        &std::fs::read_to_string("/proc/self/status").unwrap_or_default(),
        "VmHWM:",
    )
}

/// Current resident set size of this process in bytes (`VmRSS`).
/// Sampled on every profiler tick into the `rss.sampled_peak_bytes`
/// max-gauge, so transient allocation peaks freed before process exit
/// are still observable. Returns 0 without procfs.
#[must_use]
pub fn current_rss_bytes() -> u64 {
    read_status_field(
        &std::fs::read_to_string("/proc/self/status").unwrap_or_default(),
        "VmRSS:",
    )
}

/// Parses the `VmHWM` line of a `/proc/<pid>/status` document (kB →
/// bytes).
#[must_use]
pub fn read_status_vmhwm(status: &str) -> u64 {
    read_status_field(status, "VmHWM:")
}

/// Parses one kB-valued `/proc/<pid>/status` field (e.g. `VmHWM:`,
/// `VmRSS:`) into bytes; 0 when absent or malformed.
#[must_use]
pub fn read_status_field(status: &str, field: &str) -> u64 {
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb.saturating_mul(1024);
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vmhwm_lines() {
        let status = "Name:\tprovp\nVmPeak:\t  999 kB\nVmHWM:\t  1234 kB\nVmRSS:\t 1000 kB\n";
        assert_eq!(read_status_vmhwm(status), 1234 * 1024);
        assert_eq!(read_status_vmhwm(""), 0);
        assert_eq!(read_status_vmhwm("VmHWM:\tgarbage kB\n"), 0);
    }

    #[test]
    fn parses_vmrss_lines() {
        let status = "VmHWM:\t  1234 kB\nVmRSS:\t 1000 kB\n";
        assert_eq!(read_status_field(status, "VmRSS:"), 1000 * 1024);
        assert_eq!(read_status_field(status, "VmSwap:"), 0);
    }

    #[test]
    fn live_current_rss_is_sane_on_linux() {
        let rss = current_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(rss > 0, "a running process has a nonzero current RSS");
            assert!(rss <= peak_rss_bytes(), "current RSS cannot exceed peak");
        }
    }

    #[test]
    fn live_reading_is_sane_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(rss > 0, "a running process has a nonzero peak RSS");
        }
    }
}
