//! Peak resident-set-size introspection.

/// Peak resident set size of this process in bytes, read from
/// `/proc/self/status` (`VmHWM`). Returns 0 on platforms without procfs
/// — callers treat 0 as "unavailable".
#[must_use]
pub fn peak_rss_bytes() -> u64 {
    read_status_vmhwm(&std::fs::read_to_string("/proc/self/status").unwrap_or_default())
}

/// Parses the `VmHWM` line of a `/proc/<pid>/status` document (kB →
/// bytes).
#[must_use]
pub fn read_status_vmhwm(status: &str) -> u64 {
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb.saturating_mul(1024);
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vmhwm_lines() {
        let status = "Name:\tprovp\nVmPeak:\t  999 kB\nVmHWM:\t  1234 kB\nVmRSS:\t 1000 kB\n";
        assert_eq!(read_status_vmhwm(status), 1234 * 1024);
        assert_eq!(read_status_vmhwm(""), 0);
        assert_eq!(read_status_vmhwm("VmHWM:\tgarbage kB\n"), 0);
    }

    #[test]
    fn live_reading_is_sane_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(rss > 0, "a running process has a nonzero peak RSS");
        }
    }
}
